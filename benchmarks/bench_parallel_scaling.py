"""P1 — wall-clock scaling of the parallel campaign executor.

Runs one fixed campaign at ``jobs ∈ {1, 2, 4}`` (fresh store each time, so
every run simulates the same work) and appends the timings to
``benchmarks/output/BENCH_parallel.json`` — a trajectory file: one record
per invocation, so speedup regressions are visible across commits.

Scale knobs: ``REPRO_SCALING_SAMPLES`` (default 4 injections/cell — this
bench measures the scheduler, not the statistics) and
``REPRO_SCALING_JOBS`` (comma-separated list overriding ``1,2,4``).

The equivalence assertion runs unconditionally; the ≥2× speedup assertion
(the ISSUE's acceptance bar) only applies when the machine actually has
≥4 cores — on fewer cores the numbers are still recorded.
"""

from __future__ import annotations

import os
import time

from _shared import OUTPUT_DIR, append_bench_record

from repro.core.campaign import CampaignConfig, CampaignStore, run_campaign

TRAJECTORY_PATH = OUTPUT_DIR / "BENCH_parallel.json"

#: Four workloads × two components × two cardinalities = 16 cells: enough
#: cells per worker that scheduling overhead amortises, small enough for CI.
SCALING_WORKLOADS = ("stringsearch", "crc32", "sha", "qsort")
SCALING_COMPONENTS = ("regfile", "itlb")
SCALING_CARDINALITIES = (1, 2)


def _scaling_config() -> CampaignConfig:
    return CampaignConfig(
        workloads=SCALING_WORKLOADS,
        components=SCALING_COMPONENTS,
        cardinalities=SCALING_CARDINALITIES,
        samples=int(os.environ.get("REPRO_SCALING_SAMPLES", "4")),
        seed=0,
    )


def _jobs_levels() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_SCALING_JOBS", "1,2,4")
    return tuple(int(level) for level in raw.split(",") if level.strip())


def test_parallel_scaling(tmp_path):
    config = _scaling_config()
    levels = _jobs_levels()
    timings: dict[str, float] = {}
    blobs: dict[int, str] = {}
    for jobs in levels:
        store = CampaignStore(tmp_path / f"store-jobs{jobs}.json")
        begin = time.perf_counter()
        result = run_campaign(config, store=store, jobs=jobs)
        timings[str(jobs)] = round(time.perf_counter() - begin, 3)
        blobs[jobs] = result.to_json()

    # Serial/parallel equivalence: the engine's core guarantee.
    reference = blobs[levels[0]]
    for jobs in levels[1:]:
        assert blobs[jobs] == reference, f"jobs={jobs} diverged from serial"

    append_bench_record(
        "parallel",
        {
            "samples": config.samples,
            "cells": len(config.cells()),
            "cpus": os.cpu_count(),
            "seconds_by_jobs": timings,
        },
        wall_seconds=sum(timings.values()),
    )
    print(f"\nparallel scaling: {timings} (cpus={os.cpu_count()})")

    if (os.cpu_count() or 1) >= 4 and "1" in timings and "4" in timings:
        speedup = timings["1"] / timings["4"]
        assert speedup >= 2.0, (
            f"jobs=4 speedup {speedup:.2f}x < 2x on a "
            f"{os.cpu_count()}-core machine"
        )
