"""A5 — Ablation: error-protection schemes against spatial MBUs.

The paper's bottom line is that protection must be designed for realistic
multi-bit upsets.  This ablation quantifies the canonical options on the
L1D geometry with the paper's 3x3-cluster fault model: parity, plain
SECDED, and SECDED with 2/4-way physical interleaving, for 1/2/3-bit
faults — including the residual AVF after protection (escapes only),
using the shared campaign's measured L1D AVFs.
"""

from _shared import write_artifact

from repro.core.protection import (
    PARITY,
    SECDED,
    evaluate_scheme,
    residual_avf,
    secded_interleaved,
)
from repro.core.report import format_table
from repro.cpu.system import System

SCHEMES = (PARITY, SECDED, secded_interleaved(2), secded_interleaved(4))
TRIALS = 1500


def test_ablation_protection(campaign, benchmark):
    target = System().injectable_targets()["l1d"]

    def analyse():
        rows = []
        for cardinality in (1, 2, 3):
            avf = campaign.weighted_avf("l1d", cardinality)
            for scheme in SCHEMES:
                stats = evaluate_scheme(
                    scheme, target, cardinality, trials=TRIALS, seed=5
                )
                rows.append([
                    f"{cardinality}-bit",
                    scheme.name,
                    f"{100 * stats.correct_fraction:6.1f}%",
                    f"{100 * stats.detect_fraction:6.1f}%",
                    f"{100 * stats.escape_fraction:6.1f}%",
                    f"{100 * residual_avf(avf, stats):6.2f}%",
                ])
        return format_table(
            ["Faults", "Scheme", "Corrected", "Detected (DUE)",
             "Escaped", "Residual L1D AVF"],
            rows,
            "ABLATION A5: protection schemes vs spatial multi-bit upsets "
            f"({TRIALS} masks per cell)",
        )

    text = benchmark.pedantic(analyse, rounds=1, iterations=1)
    text += (
        "\n\nReading: SECDED alone only *detects* adjacent double-bit"
        "\nupsets and can be escaped by triples, while interleaving at or"
        "\nabove the cluster width restores full correction — the classic"
        "\nmotivation for interleaved ECC that the paper's MBU rates imply."
    )
    print("\n" + text)
    write_artifact("ablation_protection", text)

    secded_3 = evaluate_scheme(SECDED, target, 3, trials=TRIALS, seed=5)
    x4_3 = evaluate_scheme(
        secded_interleaved(4), target, 3, trials=TRIALS, seed=5
    )
    assert x4_3.correct_fraction == 1.0   # k >= cluster width
    assert secded_3.correct_fraction < 1.0
    single = evaluate_scheme(SECDED, target, 1, trials=TRIALS, seed=5)
    assert single.correct_fraction == 1.0
