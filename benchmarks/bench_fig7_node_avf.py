"""F7 — Fig. 7: aggregate multi-bit AVF per component per technology node.

Eq. 3 over the shared campaign's Table V values: green = single-bit-only
AVF (identical to the 250nm bar), red = the extra vulnerability the
realistic MBU mix adds.  The paper's headline: the single-bit-only
assessment gap reaches 11-35% (by component) at 22nm.
"""

from _shared import write_artifact

from repro.core.avf import assessment_gap, node_avf
from repro.core.report import COMPONENT_ORDER, render_fig7
from repro.core.technology import TECHNOLOGY_NODES


def test_fig7_node_avf(campaign, benchmark):
    text = benchmark(render_fig7, campaign)
    print("\n" + text)
    write_artifact("fig7_node_avf", text)

    for component in COMPONENT_ORDER:
        avfs = campaign.weighted_avf_by_cardinality(component)
        # 250nm is single-bit only: aggregate equals the single-bit AVF.
        assert node_avf(avfs, "250nm") == avfs[1]
        # The assessment gap grows monotonically with density (modulo the
        # paper's own 45nm->32nm plateau, which the rates data encodes).
        gaps = [assessment_gap(avfs, node) for node in TECHNOLOGY_NODES]
        assert gaps[0] == 0.0
        if avfs[1] > 0.02:  # meaningful single-bit baseline
            assert gaps[-1] >= gaps[1] - 1e-9
            assert gaps[-1] > 0.0  # single-bit-only assessment misses AVF
