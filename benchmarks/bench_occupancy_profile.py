"""D1 — Diagnostic: structure-occupancy profiles (HVF-style).

Not a paper artifact, but the measurement that justifies the scale model
(DESIGN.md §5): occupancy upper-bounds AVF, so these profiles explain the
per-component AVF magnitudes of Figs. 1-6 and would flag any future change
that silently drains a structure.
"""

from _shared import write_artifact

from repro.core.campaign import golden_run
from repro.core.occupancy import profile_occupancy
from repro.core.report import format_table
from repro.cpu.system import System
from repro.workloads import get_workload

WORKLOADS = ("dijkstra", "sha", "susan_c")
COMPONENTS = ("l1d", "l1i", "l2", "regfile", "dtlb", "itlb")


def _profile(name):
    workload = get_workload(name)
    golden = golden_run(workload)
    system = System()
    system.load(workload.program())
    return profile_occupancy(system, 4 * golden.cycles, interval=800)


def test_occupancy_profiles(benchmark):
    profiles = {name: _profile(name) for name in WORKLOADS[:-1]}
    profiles[WORKLOADS[-1]] = benchmark.pedantic(
        _profile, args=(WORKLOADS[-1],), rounds=1, iterations=1
    )

    rows = []
    for name, profile in profiles.items():
        summary = profile.summary()
        for component in COMPONENTS:
            mean, peak = summary[component]
            rows.append([
                name if component == COMPONENTS[0] else "",
                component,
                f"{100 * mean:6.1f}%",
                f"{100 * peak:6.1f}%",
            ])
    text = format_table(
        ["Workload", "Component", "Mean occupancy", "Peak occupancy"],
        rows,
        "DIAGNOSTIC D1: live-state occupancy of the injected structures",
    )
    print("\n" + text)
    write_artifact("occupancy_profile", text)

    for profile in profiles.values():
        summary = profile.summary()
        # The scale model's purpose: warm structures, like the paper's.
        assert summary["l1i"][1] > 0.5
        assert summary["itlb"][1] >= 0.25
        assert all(0.0 <= m <= p <= 1.0 for m, p in summary.values())
