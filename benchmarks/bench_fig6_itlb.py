"""F6 — Fig. 6: AVF for single/double/triple-bit faults, Instruction TLB.

Regenerates the per-workload fault-effect breakdown from the shared
campaign and checks the figure's qualitative shape.
"""

from _shared import write_artifact

from repro.core.report import render_component_figure

COMPONENT = "itlb"


def test_fig6_itlb_breakdown(campaign, benchmark):
    text = benchmark(
        render_component_figure, campaign, COMPONENT, "FIG. 6"
    )
    print("\n" + text)
    write_artifact("fig6_itlb", text)

    cards = campaign.cardinalities()
    weighted = {
        card: campaign.weighted_avf(COMPONENT, card) for card in cards
    }
    for card in cards:
        assert 0.0 <= weighted[card] <= 1.0
    # Multi-bit faults must not *reduce* the weighted AVF (noise margin for
    # small default sample counts).
    if 1 in weighted and 3 in weighted:
        assert weighted[3] >= weighted[1] - 0.10

    # Paper observation: ITLB shows virtually zero SDC — corrupted fetch
    # translations crash or livelock, they do not silently corrupt output.
    from repro.core.avf import FaultClass, weighted_fraction
    cycles = campaign.golden_cycles()
    counts = campaign.counts_by_workload(COMPONENT, 3)
    sdc = weighted_fraction(counts, cycles, FaultClass.SDC)
    crash = weighted_fraction(counts, cycles, FaultClass.CRASH)
    assert sdc < 0.10
    assert crash > sdc
