"""T5 — Table V: execution-time-weighted AVF per component × cardinality.

Eq. 2 of the paper applied to the shared campaign, with the paper's
reference values printed alongside for comparison.
"""

from _shared import write_artifact

from repro.core.report import COMPONENT_ORDER, render_table5

#: Paper Table V for side-by-side comparison in the artifact.
PAPER_TABLE5 = {
    "l1d": (20.32, 29.70, 36.28),
    "l1i": (12.01, 19.57, 25.14),
    "l2": (17.94, 24.83, 30.13),
    "regfile": (10.95, 18.65, 23.01),
    "itlb": (50.31, 62.91, 66.67),
    "dtlb": (50.66, 61.77, 67.22),
}


def test_table5_weighted_avf(campaign, benchmark):
    text = benchmark(render_table5, campaign)
    text += "\n\nPaper reference values (Table V):\n"
    for component, values in PAPER_TABLE5.items():
        text += f"  {component:8s} " + "  ".join(
            f"{card}b={v:5.2f}%" for card, v in zip((1, 2, 3), values)
        ) + "\n"
    print("\n" + text)
    write_artifact("table5_weighted_avf", text)

    for component in COMPONENT_ORDER:
        weighted = campaign.weighted_avf_by_cardinality(component)
        # Weighted AVF grows (or at minimum does not collapse) with fault
        # cardinality — the central claim of Table V.
        assert weighted[3] >= weighted[1] - 0.05
        assert all(0.0 <= v <= 1.0 for v in weighted.values())

    # Cross-component structure: the register file is the most resilient;
    # the TLBs sit at or near the top (the paper's headline ordering).
    single = {c: campaign.weighted_avf(c, 1) for c in COMPONENT_ORDER}
    assert single["regfile"] == min(single.values())
