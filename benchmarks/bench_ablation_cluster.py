"""A1 — Ablation: fault-cluster geometry (2x2 vs 3x3 vs 4x4).

The paper fixes a 3x3 cluster (citing Ibe's observation that larger upsets
are vanishingly rare at <=22nm).  This ablation measures how sensitive the
triple-bit AVF is to that choice: a wider cluster spreads the same number
of flips over more rows (cache lines / TLB entries), changing how often a
multi-bit fault hits multiple architectural entities.
"""

import os

from _shared import CACHE_DIR, write_artifact

from repro.core.campaign import CampaignConfig, CampaignStore, run_campaign
from repro.core.generator import ClusterShape
from repro.core.report import format_table

WORKLOADS = ("stringsearch", "djpeg")
COMPONENTS = ("l1d", "dtlb")
SHAPES = (ClusterShape(2, 2), ClusterShape(3, 3), ClusterShape(4, 4))


def _samples() -> int:
    return int(os.environ.get("REPRO_ABLATION_SAMPLES", "12"))


def test_ablation_cluster_geometry(benchmark):
    store = CampaignStore(CACHE_DIR / "ablation_cluster.json")
    results = {}
    for shape in SHAPES:
        config = CampaignConfig(
            workloads=WORKLOADS, components=COMPONENTS,
            cardinalities=(3,), samples=_samples(), seed=17, cluster=shape,
        )
        results[shape] = run_campaign(config, store=store)

    def analyse():
        rows = []
        for shape, result in results.items():
            for component in COMPONENTS:
                rows.append([
                    f"{shape.rows}x{shape.cols}",
                    component,
                    f"{100 * result.weighted_avf(component, 3):6.2f}%",
                ])
        return format_table(
            ["Cluster", "Component", "3-bit weighted AVF"], rows,
            "ABLATION A1: cluster geometry vs triple-bit AVF",
        )

    text = benchmark(analyse)
    print("\n" + text)
    write_artifact("ablation_cluster", text)

    for result in results.values():
        for component in COMPONENTS:
            assert 0.0 <= result.weighted_avf(component, 3) <= 1.0
