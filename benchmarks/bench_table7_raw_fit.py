"""T7 — Table VII: raw FIT per bit for 250nm-22nm nodes (input data)."""

from _shared import write_artifact

from repro.core.report import render_table7
from repro.core.technology import RAW_FIT_PER_BIT, TECHNOLOGY_NODES


def test_table7_raw_fit(benchmark):
    text = benchmark(render_table7)
    print("\n" + text)
    write_artifact("table7_raw_fit", text)

    assert RAW_FIT_PER_BIT["250nm"] == 47e-8
    assert RAW_FIT_PER_BIT["130nm"] == 106e-8
    assert RAW_FIT_PER_BIT["22nm"] == 23e-8
    # Rises to a 130nm peak, then falls monotonically.
    values = [RAW_FIT_PER_BIT[n] for n in TECHNOLOGY_NODES]
    peak = values.index(max(values))
    assert TECHNOLOGY_NODES[peak] == "130nm"
    assert values[peak:] == sorted(values[peak:], reverse=True)
    assert values[:peak + 1] == sorted(values[:peak + 1])
