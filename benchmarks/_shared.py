"""Shared campaign configuration for the benchmark harness.

All per-table / per-figure benchmarks read from ONE fault-injection
campaign, cached incrementally on disk, so regenerating every artifact costs
one set of simulations.  Scale knobs (environment variables):

* ``REPRO_SAMPLES``   — injections per (workload, component, cardinality)
  cell; default 10 for a laptop-scale run, 2000 for the paper's setup.
* ``REPRO_WORKLOADS`` — comma-separated subset of the 15 workloads.
* ``REPRO_SEED``      — campaign seed (default 0).
* ``REPRO_JOBS``      — worker processes for the campaign (default 1;
  results are byte-identical at any value, see ``repro.core.parallel``).
* ``REPRO_MAX_INCIDENTS`` — infra-incident budget before aborting
  (default: unlimited; incidents land in ``benchmarks/.cache/incidents.jsonl``).
* ``REPRO_TELEMETRY`` — set to ``0`` to disable campaign telemetry
  (default on; the run's wall clock, samples/sec and metric summary are
  stamped into ``benchmarks/output/BENCH_campaign.json``).
* ``REPRO_PRUNE`` — set to ``1`` to enable liveness mask pruning
  (``repro.core.liveness``); results are byte-identical to an unpruned
  run — same store cache keys — only faster, and each bench record gains
  a ``pruned_fraction`` stamp.

The cell cache lives in ``benchmarks/.cache/campaign_store.json`` (snapshot
+ write-ahead journal) and is keyed by the exact cell parameters plus a
platform fingerprint, so changing any knob re-simulates only what changed.
Campaigns run under the supervisor: a killed run resumes mid-cell from the
store's partial checkpoints, bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro import obs
from repro.core.campaign import (
    CampaignConfig,
    CampaignResult,
    CampaignStore,
    run_campaign,
)
from repro.core.supervisor import IncidentJournal, Supervisor

CACHE_DIR = Path(__file__).resolve().parent / ".cache"
STORE_PATH = CACHE_DIR / "campaign_store.json"
INCIDENT_JOURNAL_PATH = CACHE_DIR / "incidents.jsonl"
OUTPUT_DIR = Path(__file__).resolve().parent / "output"

DEFAULT_SAMPLES = 10


def shared_config() -> CampaignConfig:
    samples = int(os.environ.get("REPRO_SAMPLES", DEFAULT_SAMPLES))
    workloads_env = os.environ.get("REPRO_WORKLOADS", "")
    workloads = tuple(
        name.strip() for name in workloads_env.split(",") if name.strip()
    )
    seed = int(os.environ.get("REPRO_SEED", "0"))
    return CampaignConfig(workloads=workloads, samples=samples, seed=seed)


def shared_campaign(progress: bool = True) -> CampaignResult:
    """Run (or load from cache) the shared campaign, fault-contained."""
    config = shared_config()
    store = CampaignStore(STORE_PATH)
    if store.quarantined is not None:
        print(
            f"warning: corrupt campaign store quarantined to "
            f"{store.quarantined}; rebuilt from its journal",
            file=sys.stderr,
        )
    max_incidents_env = os.environ.get("REPRO_MAX_INCIDENTS", "")
    supervisor = Supervisor(
        journal=IncidentJournal(INCIDENT_JOURNAL_PATH),
        max_incidents=int(max_incidents_env) if max_incidents_env else None,
    )

    def report(done: int, total: int, cell) -> None:
        print(
            f"\r[campaign {done}/{total}] {cell.workload}/{cell.component}/"
            f"{cell.cardinality}b",
            end="",
            file=sys.stderr,
            flush=True,
        )

    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    prune = os.environ.get("REPRO_PRUNE", "0") == "1"
    telemetry = None
    if os.environ.get("REPRO_TELEMETRY", "1") != "0":
        telemetry = obs.enable()
    begin = time.perf_counter()
    try:
        result = run_campaign(
            config, progress=report if progress else None, store=store,
            supervisor=supervisor, resume=True, jobs=jobs, prune=prune,
        )
    finally:
        wall = time.perf_counter() - begin
        if telemetry is not None:
            obs.disable()
    if progress:
        print(file=sys.stderr)
    if supervisor.incident_count:
        print(
            f"warning: {supervisor.incident_count} infra incident(s) "
            f"contained; see {INCIDENT_JOURNAL_PATH}",
            file=sys.stderr,
        )
    if telemetry is not None:
        append_bench_record(
            "campaign",
            {
                "samples": config.samples,
                "cells": len(config.cells()),
                "jobs": jobs,
                "incidents": supervisor.incident_count,
            },
            wall_seconds=wall,
            telemetry=telemetry,
        )
    return result


def append_bench_record(
    name: str,
    record: dict,
    *,
    wall_seconds: float | None = None,
    telemetry=None,
) -> Path:
    """Append one record to the ``BENCH_<name>.json`` trajectory file.

    Each benchmark output is a trajectory — one record per invocation, so
    regressions stay visible across commits.  Every record is stamped with
    the wall clock and, when telemetry is active (explicitly passed or
    globally enabled via :func:`repro.obs.enable`), the campaign's metric
    summary (counters/derived rates, no trace events — traces belong in
    ``repro-campaign trace`` output, not a trajectory file).
    """
    record = dict(record)
    if telemetry is None:
        telemetry = obs.active()
    if wall_seconds is None and telemetry is not None:
        wall_seconds = telemetry.wall_seconds()
    if wall_seconds is not None:
        record.setdefault("wall_seconds", round(wall_seconds, 3))
    if telemetry is not None:
        summary = telemetry.summary(include_trace=False)
        if wall_seconds is not None:
            samples = summary["counters"].get("sim.samples", 0)
            if samples and wall_seconds > 0:
                record.setdefault(
                    "samples_per_sec", round(samples / wall_seconds, 2)
                )
        pruned = summary["counters"].get("sim.pruned.total", 0)
        undecided = summary["counters"].get("sim.undecided.total", 0)
        if pruned + undecided:
            record.setdefault(
                "pruned_fraction", round(pruned / (pruned + undecided), 4)
            )
        record.setdefault(
            "telemetry",
            {
                "counters": summary["counters"],
                "derived": summary["derived"],
            },
        )
    path = OUTPUT_DIR / f"BENCH_{name}.json"
    trajectory = []
    if path.exists():
        try:
            trajectory = json.loads(path.read_text())
        except ValueError:
            trajectory = []
    trajectory.append(record)
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trajectory, indent=1) + "\n")
    return path


def write_artifact(name: str, text: str) -> Path:
    """Persist a regenerated table/figure under benchmarks/output/."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path
