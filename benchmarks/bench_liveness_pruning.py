"""P2 — samples/sec speedup from liveness-based mask pruning.

Runs one cell per injectable component twice — plain and with
``prune=True`` — on the same workload and appends the per-component
timings, speedups and pruned fractions to
``benchmarks/output/BENCH_liveness.json`` (a trajectory file: one record
per invocation, so speedup regressions stay visible across commits).

The liveness trace is built once before any timed region and its build
cost is recorded separately (``trace_build_seconds``): the trace is a
per-workload artifact amortised over every cell of a campaign, so folding
it into one cell's timing would misstate both numbers.

Scale knob: ``REPRO_LIVENESS_SAMPLES`` (default 30 injections/cell).

The equivalence assertion runs unconditionally; the ≥3× speedup
acceptance bar applies to the best cache-family cell (l1d/l1i/l2), where
large arrays make most masks provably dead.
"""

from __future__ import annotations

import os
import time

from _shared import OUTPUT_DIR, append_bench_record

from repro import obs
from repro.core.campaign import CampaignConfig, run_cell
from repro.core.liveness import liveness_for
from repro.cpu.system import COMPONENT_NAMES
from repro.workloads import get_workload

TRAJECTORY_PATH = OUTPUT_DIR / "BENCH_liveness.json"

LIVENESS_WORKLOAD = "crc32"
CACHE_FAMILY = ("l1d", "l1i", "l2")


def _liveness_config() -> CampaignConfig:
    return CampaignConfig(
        workloads=(LIVENESS_WORKLOAD,),
        components=COMPONENT_NAMES,
        cardinalities=(1,),
        samples=int(os.environ.get("REPRO_LIVENESS_SAMPLES", "30")),
        seed=0,
    )


def test_liveness_pruning_speedup():
    config = _liveness_config()

    # Warm the liveness cache outside the timed regions, recording the
    # one-off trace build cost explicitly.
    begin = time.perf_counter()
    liveness_for(get_workload(LIVENESS_WORKLOAD))
    trace_build = time.perf_counter() - begin

    per_component: dict[str, dict] = {}
    for component in COMPONENT_NAMES:
        begin = time.perf_counter()
        plain = run_cell(LIVENESS_WORKLOAD, component, 1, config)
        plain_seconds = time.perf_counter() - begin

        telemetry = obs.enable()
        begin = time.perf_counter()
        pruned = run_cell(
            LIVENESS_WORKLOAD, component, 1, config, prune=True
        )
        pruned_seconds = time.perf_counter() - begin
        counters = {
            name: counter.value
            for name, counter in telemetry.metrics.counters.items()
        }
        obs.disable()

        # Pruning must never change the result — only the wall clock.
        assert pruned.counts == plain.counts, (
            f"{component}: pruned counts diverged from plain"
        )
        pruned_n = counters.get("sim.pruned." + component, 0)
        per_component[component] = {
            "plain_seconds": round(plain_seconds, 3),
            "pruned_seconds": round(pruned_seconds, 3),
            "speedup": round(plain_seconds / pruned_seconds, 2)
            if pruned_seconds > 0 else None,
            "pruned_fraction": round(pruned_n / config.samples, 4),
        }

    append_bench_record(
        "liveness",
        {
            "workload": LIVENESS_WORKLOAD,
            "samples": config.samples,
            "trace_build_seconds": round(trace_build, 3),
            "per_component": per_component,
        },
        wall_seconds=sum(
            entry["plain_seconds"] + entry["pruned_seconds"]
            for entry in per_component.values()
        ),
    )
    summary = {
        component: f"{entry['speedup']}x"
        for component, entry in per_component.items()
    }
    print(f"\nliveness pruning: {summary} "
          f"(trace build {trace_build:.2f}s)")

    best_cache = max(
        per_component[c]["speedup"] or 0.0 for c in CACHE_FAMILY
    )
    assert best_cache >= 3.0, (
        f"best cache-family speedup {best_cache:.2f}x < 3x "
        f"({ {c: per_component[c]['speedup'] for c in CACHE_FAMILY} })"
    )
