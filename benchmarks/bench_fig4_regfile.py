"""F4 — Fig. 4: AVF for single/double/triple-bit faults, Register File.

Regenerates the per-workload fault-effect breakdown from the shared
campaign and checks the figure's qualitative shape.
"""

from _shared import write_artifact

from repro.core.report import render_component_figure

COMPONENT = "regfile"


def test_fig4_regfile_breakdown(campaign, benchmark):
    text = benchmark(
        render_component_figure, campaign, COMPONENT, "FIG. 4"
    )
    print("\n" + text)
    write_artifact("fig4_regfile", text)

    cards = campaign.cardinalities()
    weighted = {
        card: campaign.weighted_avf(COMPONENT, card) for card in cards
    }
    for card in cards:
        assert 0.0 <= weighted[card] <= 1.0
    # Multi-bit faults must not *reduce* the weighted AVF (noise margin for
    # small default sample counts).
    if 1 in weighted and 3 in weighted:
        assert weighted[3] >= weighted[1] - 0.10

    # Paper observation: the register file is the least vulnerable
    # component (highest masked rate).
    others = [c for c in ("l1d", "l1i", "l2", "dtlb", "itlb")]
    rf_avf = campaign.weighted_avf(COMPONENT, 1)
    other_avfs = [campaign.weighted_avf(c, 1) for c in others]
    assert rf_avf <= min(other_avfs) + 0.05
