"""A4 — Ablation: out-of-order vs in-order-like core vulnerability.

The paper's conclusion states the methodology "is generic and ... also
applicable to other CPU models (e.g., in-order CPUs)".  This ablation
demonstrates that: the same campaign runs on a narrow, in-order-like
configuration (single-issue, minimal windows) and compares register-file
and L1D AVFs.  In-flight state shrinks drastically on the narrow machine,
which shifts where faults get masked.
"""

import os

from _shared import CACHE_DIR, write_artifact

from repro.core.campaign import CampaignConfig, CampaignStore, run_campaign
from repro.core.report import format_table
from repro.cpu.config import CoreConfig

WORKLOADS = ("stringsearch", "susan_c")
COMPONENTS = ("l1d", "regfile")

#: Narrow, in-order-like machine: single-issue, tiny windows.
INORDER_CONFIG = CoreConfig(
    fetch_width=1, rename_width=1, issue_width=1,
    writeback_width=1, commit_width=1,
    rob_entries=4, iq_entries=2, lq_entries=2, sq_entries=2,
)


def _samples() -> int:
    return int(os.environ.get("REPRO_ABLATION_SAMPLES", "12"))


def test_ablation_inorder_vs_ooo(benchmark):
    store = CampaignStore(CACHE_DIR / "ablation_inorder.json")
    config = CampaignConfig(
        workloads=WORKLOADS, components=COMPONENTS,
        cardinalities=(1, 3), samples=_samples(), seed=31,
    )
    ooo = run_campaign(config, store=store)
    inorder = run_campaign(config, store=store, core_cfg=INORDER_CONFIG)

    def analyse():
        rows = []
        for component in COMPONENTS:
            for cardinality in (1, 3):
                rows.append([
                    component,
                    f"{cardinality}-bit",
                    f"{100 * ooo.weighted_avf(component, cardinality):6.2f}%",
                    f"{100 * inorder.weighted_avf(component, cardinality):6.2f}%",
                ])
        return format_table(
            ["Component", "Faults", "Out-of-order AVF", "In-order-like AVF"],
            rows,
            "ABLATION A4: out-of-order vs in-order-like core",
        )

    text = benchmark(analyse)
    print("\n" + text)
    write_artifact("ablation_inorder", text)

    # Both platforms produce valid campaigns; the in-order machine takes
    # more cycles for the same work (no ILP).
    assert all(0 <= c.avf <= 1 for c in inorder.cells)
    for workload in WORKLOADS:
        ooo_cycles = ooo.cell(workload, "l1d", 1).golden_cycles
        inorder_cycles = inorder.cell(workload, "l1d", 1).golden_cycles
        assert inorder_cycles > ooo_cycles
