"""T3 — Table III: benchmark execution time (golden, fault-free runs).

Times one complete golden simulation and regenerates the execution-time
table for all 15 workloads, checking the rank agreement with the paper.
"""

from _shared import write_artifact

from repro.core.campaign import golden_run
from repro.core.report import render_table3
from repro.cpu.system import System, run_program
from repro.workloads import get_workload, workload_names


def test_table3_execution_time(benchmark):
    names = workload_names()
    measured = {name: golden_run(get_workload(name)).cycles for name in names}
    paper = {name: get_workload(name).paper_cycles for name in names}

    # Benchmark: one full golden simulation of the median-sized workload.
    program = get_workload("sha").program()
    benchmark.pedantic(
        lambda: run_program(program), rounds=1, iterations=1
    )

    text = render_table3(measured, paper)
    from scipy.stats import spearmanr
    rho, _ = spearmanr(
        [measured[n] for n in names], [paper[n] for n in names]
    )
    text += f"\n\nSpearman rank correlation with the paper: {rho:.2f}"
    print("\n" + text)
    write_artifact("table3_exec_time", text)

    assert all(cycles > 1000 for cycles in measured.values())
    assert rho > 0.6
    assert max(measured, key=measured.get) in ("crc32", "rijndael_dec", "fft")
