"""T8 — Table VIII: component sizes in bits.

Regenerates the bit-count table used by the FIT arithmetic and checks it
against both the paper's numbers and the simulated scale model's geometry.
"""

from _shared import write_artifact

from repro.core.report import render_table8
from repro.core.targets import PAPER_COMPONENT_BITS, simulated_component_bits


def test_table8_component_sizes(benchmark):
    text = benchmark(render_table8)
    simulated = simulated_component_bits()
    text += "\n\nSimulated scale-model sizes (bits):\n"
    for name, bits in simulated.items():
        text += f"  {name:8s} {bits:>9,}\n"
    print("\n" + text)
    write_artifact("table8_sizes", text)

    assert PAPER_COMPONENT_BITS == {
        "l1d": 262_144, "l1i": 262_144, "l2": 4_194_304,
        "regfile": 2_112, "itlb": 1_024, "dtlb": 1_024,
    }
    # The injected register file is full-size (66 x 32 = 2,112 bits).
    assert simulated["regfile"] == 2_112
    # Cache arrays are proportional scale models of the paper's.
    assert simulated["l1d"] < PAPER_COMPONENT_BITS["l1d"]
    assert simulated["l2"] > simulated["l1d"]
