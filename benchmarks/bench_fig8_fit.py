"""F8 — Fig. 8: whole-CPU FIT per technology node with the multi-bit share.

Eq. 4 with the paper's Table VII raw FIT rates and Table VIII bit counts on
the shared campaign's AVFs.  Shape checks: FIT peaks at 130nm and then
falls; the multi-bit share starts at 0% (250nm) and grows with density
(the paper reaches ~21% at 22nm).
"""

from _shared import write_artifact

from repro.core.fit import cpu_fit_by_node
from repro.core.report import COMPONENT_ORDER, render_fig8
from repro.core.technology import TECHNOLOGY_NODES


def test_fig8_cpu_fit(campaign, benchmark):
    text = benchmark(render_fig8, campaign)
    print("\n" + text)
    write_artifact("fig8_fit", text)

    avf_tables = {
        component: campaign.weighted_avf_by_cardinality(component)
        for component in COMPONENT_ORDER
    }
    fits = cpu_fit_by_node(avf_tables)

    totals = [fits[node].fit_total for node in TECHNOLOGY_NODES]
    assert TECHNOLOGY_NODES[totals.index(max(totals))] == "130nm"
    assert totals[-1] < totals[-2] < totals[-3]  # falling after the peak

    shares = [fits[node].multibit_share for node in TECHNOLOGY_NODES]
    assert shares[0] == 0.0
    assert shares[-1] == max(shares)
    assert shares[-1] > 0.02  # multi-bit faults contribute real FIT at 22nm

    # The L2, by far the largest structure, dominates CPU FIT.
    at_22 = {c.component: c.fit_total for c in fits["22nm"].components}
    assert max(at_22, key=at_22.get) == "l2"
