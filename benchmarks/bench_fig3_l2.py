"""F3 — Fig. 3: AVF for single/double/triple-bit faults, L2 Cache.

Regenerates the per-workload fault-effect breakdown from the shared
campaign and checks the figure's qualitative shape.
"""

from _shared import write_artifact

from repro.core.report import render_component_figure

COMPONENT = "l2"


def test_fig3_l2_breakdown(campaign, benchmark):
    text = benchmark(
        render_component_figure, campaign, COMPONENT, "FIG. 3"
    )
    print("\n" + text)
    write_artifact("fig3_l2", text)

    cards = campaign.cardinalities()
    weighted = {
        card: campaign.weighted_avf(COMPONENT, card) for card in cards
    }
    for card in cards:
        assert 0.0 <= weighted[card] <= 1.0
    # Multi-bit faults must not *reduce* the weighted AVF (noise margin for
    # small default sample counts).
    if 1 in weighted and 3 in weighted:
        assert weighted[3] >= weighted[1] - 0.10

    # Paper observation: L2 behaves like L1D (SDC + crash mix, low
    # timeout/assert rates).
    from repro.core.avf import FaultClass, weighted_fraction
    cycles = campaign.golden_cycles()
    counts = campaign.counts_by_workload(COMPONENT, 3)
    timeout = weighted_fraction(counts, cycles, FaultClass.TIMEOUT)
    assert timeout < 0.2
