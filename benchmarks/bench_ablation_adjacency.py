"""A2 — Ablation: spatially adjacent vs independent multi-bit placement.

The paper's core modelling claim is that realistic multi-bit upsets strike
*adjacent* cells (one particle, one cluster).  The naive alternative —
N independent uniform flips — spreads the damage across unrelated rows.
This ablation runs both placement models on the same cells and reports the
difference, quantifying what the adjacency modelling actually changes.
"""

import os

from _shared import CACHE_DIR, write_artifact

from repro.core.campaign import CampaignConfig, CampaignStore, run_campaign
from repro.core.generator import CLUSTERED, INDEPENDENT
from repro.core.report import format_table

WORKLOADS = ("stringsearch", "djpeg")
COMPONENTS = ("l1d", "itlb")


def _samples() -> int:
    return int(os.environ.get("REPRO_ABLATION_SAMPLES", "12"))


def test_ablation_adjacency(benchmark):
    store = CampaignStore(CACHE_DIR / "ablation_adjacency.json")
    results = {}
    for placement in (CLUSTERED, INDEPENDENT):
        config = CampaignConfig(
            workloads=WORKLOADS, components=COMPONENTS,
            cardinalities=(3,), samples=_samples(), seed=23,
            placement=placement,
        )
        results[placement] = run_campaign(config, store=store)

    def analyse():
        rows = []
        for component in COMPONENTS:
            clustered = results[CLUSTERED].weighted_avf(component, 3)
            independent = results[INDEPENDENT].weighted_avf(component, 3)
            rows.append([
                component,
                f"{100 * clustered:6.2f}%",
                f"{100 * independent:6.2f}%",
                f"{100 * (independent - clustered):+6.2f}pp",
            ])
        return format_table(
            ["Component", "Clustered (paper model)",
             "Independent (naive)", "Delta"],
            rows,
            "ABLATION A2: adjacent-cluster vs independent 3-bit placement",
        )

    text = benchmark(analyse)
    print("\n" + text)
    write_artifact("ablation_adjacency", text)

    for result in results.values():
        for component in COMPONENTS:
            assert 0.0 <= result.weighted_avf(component, 3) <= 1.0
