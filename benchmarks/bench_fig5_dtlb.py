"""F5 — Fig. 5: AVF for single/double/triple-bit faults, Data TLB.

Regenerates the per-workload fault-effect breakdown from the shared
campaign and checks the figure's qualitative shape.
"""

from _shared import write_artifact

from repro.core.report import render_component_figure

COMPONENT = "dtlb"


def test_fig5_dtlb_breakdown(campaign, benchmark):
    text = benchmark(
        render_component_figure, campaign, COMPONENT, "FIG. 5"
    )
    print("\n" + text)
    write_artifact("fig5_dtlb", text)

    cards = campaign.cardinalities()
    weighted = {
        card: campaign.weighted_avf(COMPONENT, card) for card in cards
    }
    for card in cards:
        assert 0.0 <= weighted[card] <= 1.0
    # Multi-bit faults must not *reduce* the weighted AVF (noise margin for
    # small default sample counts).
    if 1 in weighted and 3 in weighted:
        assert weighted[3] >= weighted[1] - 0.10

    # Paper observation: DTLB faults produce the highest Assert rates of
    # any component (corrupted frame numbers leaving the memory map), and
    # crashes/timeouts rather than SDCs dominate.
    from repro.core.avf import FaultClass, weighted_fraction
    cycles = campaign.golden_cycles()
    merged = {}
    for card in campaign.cardinalities():
        counts = campaign.counts_by_workload(COMPONENT, card)
        merged[card] = sum(
            c.count(FaultClass.ASSERT) for c in counts.values()
        )
    assert sum(merged.values()) >= 0  # asserts are possible here
