"""Benchmark fixtures: one shared fault-injection campaign per session."""

from __future__ import annotations

import pytest

from _shared import shared_campaign


@pytest.fixture(scope="session")
def campaign():
    """The shared campaign result every table/figure bench reads from."""
    return shared_campaign()
