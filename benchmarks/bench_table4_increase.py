"""T4 — Table IV: vulnerability increase per component (2-bit and 3-bit).

The paper's headline numbers: the worst-case workload ratio between
multi-bit and single-bit AVF per component (up to 3.2x for the L1I cache,
with TLBs showing the smallest relative effect because their single-bit
AVF is already high).
"""

from _shared import write_artifact

from repro.core.avf import max_increase
from repro.core.report import COMPONENT_ORDER, render_table4


def test_table4_vulnerability_increase(campaign, benchmark):
    text = benchmark(render_table4, campaign)
    print("\n" + text)
    write_artifact("table4_increase", text)

    increases = {}
    for component in COMPONENT_ORDER:
        single = campaign.avf_by_workload(component, 1)
        triple = campaign.avf_by_workload(component, 3)
        increases[component] = max_increase(single, triple)

    # Multi-bit faults amplify vulnerability for the cache hierarchy.
    for component in ("l1d", "l1i", "l2"):
        assert increases[component] >= 1.0
    # The TLBs' relative increase is the smallest of all components in the
    # paper (1.5-1.6x) because their single-bit AVF is already large.
    cache_max = max(increases[c] for c in ("l1d", "l1i", "l2"))
    assert cache_max >= min(increases["dtlb"], increases["itlb"]) * 0.8
