"""A3 — Ablation: statistical sample size vs error margin (paper §III.A).

Regenerates the Leveugle sample-size arithmetic behind the paper's choice
of 2,000 injections per cell (2.88% error at 99% confidence, tightening to
~2.4% after re-estimating p with the measured AVF).
"""

from _shared import write_artifact

from repro.core.report import format_table
from repro.core.sampling import error_margin, fault_population, sample_size


def test_ablation_sampling_statistics(benchmark):
    population = fault_population(bits=262_144, cycles=50_000_000)

    def analyse():
        rows = []
        for samples in (100, 500, 1000, 2000, 5000, 20000):
            margin = error_margin(population, samples, confidence=0.99)
            tightened = error_margin(
                population, samples, confidence=0.99, p=0.3
            )
            rows.append([
                f"{samples:,}",
                f"{100 * margin:5.2f}%",
                f"{100 * tightened:5.2f}%",
            ])
        return format_table(
            ["Samples per cell", "Error margin (p=0.5, 99%)",
             "Re-estimated (p=0.3)"],
            rows,
            "ABLATION A3: Leveugle sampling statistics",
        )

    text = benchmark(analyse)
    needed = sample_size(population, 0.0288, confidence=0.99)
    text += (
        f"\n\nSamples needed for the paper's 2.88% margin: {needed:,} "
        f"(paper uses 2,000)"
    )
    print("\n" + text)
    write_artifact("ablation_sampling", text)

    assert 1985 <= needed <= 2015
    margin_2000 = error_margin(population, 2000, confidence=0.99)
    assert abs(margin_2000 - 0.0288) < 0.0005
