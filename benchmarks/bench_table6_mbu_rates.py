"""T6 — Table VI: multi-bit upset rates per technology node (input data).

Transcribed from Ibe et al. via the paper; the bench regenerates the table
and validates its invariants.
"""

from _shared import write_artifact

from repro.core.report import render_table6
from repro.core.technology import MBU_RATES, TECHNOLOGY_NODES


def test_table6_mbu_rates(benchmark):
    text = benchmark(render_table6)
    print("\n" + text)
    write_artifact("table6_mbu_rates", text)

    assert MBU_RATES["250nm"] == (1.0, 0.0, 0.0)
    assert MBU_RATES["22nm"] == (0.553, 0.344, 0.103)
    for node in TECHNOLOGY_NODES:
        rates = MBU_RATES[node]
        assert abs(sum(rates) - 1.0) < 1e-9
    singles = [MBU_RATES[n][0] for n in TECHNOLOGY_NODES]
    assert singles == sorted(singles, reverse=True)
