"""T1 — Table I: summary of setup attributes.

Regenerates the configuration table and times full-system construction
(the per-injection setup cost of the campaign engine).
"""

from _shared import write_artifact

from repro.core.report import render_table1
from repro.cpu.config import DEFAULT_CONFIG
from repro.cpu.system import System


def test_table1_setup_attributes(benchmark):
    benchmark(System)  # cost of building one simulated machine
    text = render_table1(DEFAULT_CONFIG)
    text += (
        "\n\nNote: capacities are the scale model (DESIGN.md §5); "
        "the paper's full-size\nconfiguration is "
        "CoreConfig.paper_scale():\n\n"
    )
    from repro.core.report import format_table
    paper = DEFAULT_CONFIG.paper_scale()
    text += format_table(
        ["Microarchitectural attribute", "Value (paper scale)"],
        [[k, v] for k, v in paper.table1_rows()],
    )
    print("\n" + text)
    write_artifact("table1_config", text)

    rows = dict(DEFAULT_CONFIG.table1_rows())
    assert rows["Reorder buffer"] == "40"
    assert rows["Instruction queue"] == "32"
    assert rows["Fetch / Execute / Writeback width"] == "2/4/4"
    paper_rows = dict(paper.table1_rows())
    assert paper_rows["L1 Data cache"] == "32KB 4-way"
    assert paper_rows["L2 cache"] == "512KB 8-way"
    assert paper_rows["Data / Instruction TLB"] == "32 entries"
