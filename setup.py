"""Shim so `pip install -e .` works on environments without the wheel
package (legacy editable install path); all metadata lives in pyproject.toml."""

from setuptools import setup

setup()
