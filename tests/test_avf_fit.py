"""AVF/FIT arithmetic, validated against the paper's own published numbers.

Table V (weighted AVFs) + Table VI (MBU rates) + Table VII (raw FIT) +
Table VIII (bit counts) are enough to recompute every number quoted around
Figs. 7 and 8 — these tests feed the paper's data through our Eq. 2/3/4
implementations and check we land on the paper's quoted results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.avf import (
    ClassCounts,
    FaultClass,
    assessment_gap,
    max_increase,
    node_avf,
    weighted_avf,
    weighted_fraction,
)
from repro.core.fit import component_node_fit, cpu_fit_by_node
from repro.core.targets import PAPER_COMPONENT_BITS
from repro.core.technology import (
    MBU_RATES,
    RAW_FIT_PER_BIT,
    TECHNOLOGY_NODES,
    mbu_rates,
    raw_fit_per_bit,
)
from repro.errors import ConfigError

#: Paper Table V: component -> {cardinality -> weighted AVF}.
PAPER_TABLE5 = {
    "l1d": {1: 0.2032, 2: 0.2970, 3: 0.3628},
    "l1i": {1: 0.1201, 2: 0.1957, 3: 0.2514},
    "l2": {1: 0.1794, 2: 0.2483, 3: 0.3013},
    "regfile": {1: 0.1095, 2: 0.1865, 3: 0.2301},
    "itlb": {1: 0.5031, 2: 0.6291, 3: 0.6667},
    "dtlb": {1: 0.5066, 2: 0.6177, 3: 0.6722},
}


# -- ClassCounts ---------------------------------------------------------------


def test_class_counts_avf():
    counts = ClassCounts(masked=80, sdc=10, crash=5, timeout=3, assertion=2)
    assert counts.total == 100
    assert counts.avf == pytest.approx(0.20)
    assert counts.fraction(FaultClass.SDC) == pytest.approx(0.10)


def test_class_counts_add_and_merge():
    counts = ClassCounts()
    counts.add(FaultClass.MASKED, 3)
    counts.add(FaultClass.CRASH)
    merged = counts.merged(ClassCounts(sdc=2))
    assert (merged.masked, merged.crash, merged.sdc) == (3, 1, 2)


def test_class_counts_json_round_trip():
    counts = ClassCounts(masked=1, sdc=2, crash=3, timeout=4, assertion=5)
    assert ClassCounts.from_dict(counts.as_dict()) == counts


def test_empty_counts_have_zero_avf():
    assert ClassCounts().avf == 0.0


# -- Eq. 2: weighted AVF -----------------------------------------------------------


def test_weighted_avf_weights_by_execution_time():
    avfs = {"long": 0.5, "short": 0.1}
    cycles = {"long": 900, "short": 100}
    assert weighted_avf(avfs, cycles) == pytest.approx(0.46)


def test_weighted_avf_reduces_to_mean_for_equal_times():
    avfs = {"a": 0.2, "b": 0.4}
    assert weighted_avf(avfs, {"a": 5, "b": 5}) == pytest.approx(0.3)


def test_weighted_avf_missing_time_rejected():
    with pytest.raises(ValueError, match="no execution time"):
        weighted_avf({"a": 0.1}, {})


def test_weighted_fraction():
    counts = {
        "a": ClassCounts(masked=5, sdc=5),
        "b": ClassCounts(masked=9, sdc=1),
    }
    cycles = {"a": 100, "b": 100}
    assert weighted_fraction(counts, cycles, FaultClass.SDC) == pytest.approx(0.3)


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(
    st.sampled_from(["w1", "w2", "w3"]),
    st.tuples(
        st.floats(min_value=0, max_value=1),
        st.integers(min_value=1, max_value=10**6),
    ),
    min_size=1,
))
def test_weighted_avf_stays_in_hull(data):
    avfs = {k: v[0] for k, v in data.items()}
    cycles = {k: v[1] for k, v in data.items()}
    value = weighted_avf(avfs, cycles)
    assert min(avfs.values()) - 1e-12 <= value <= max(avfs.values()) + 1e-12


# -- Eq. 3 / Fig. 7: node aggregation, against the paper's quoted numbers ------------


def test_node_avf_at_250nm_is_pure_single_bit():
    for component, avfs in PAPER_TABLE5.items():
        assert node_avf(avfs, "250nm") == pytest.approx(avfs[1])


def test_paper_l1i_22nm_aggregate_and_gap():
    """Paper (Fig. 7 caption): L1I 12% single-bit vs ~16% at 22nm, 33% gap."""
    avfs = PAPER_TABLE5["l1i"]
    assert node_avf(avfs, "22nm") == pytest.approx(0.1596, abs=0.002)
    assert assessment_gap(avfs, "22nm") == pytest.approx(0.33, abs=0.01)


def test_paper_gap_extremes_dtlb_and_regfile():
    """Paper §V.B: gap ranges from ~11% (DTLB) to ~35% (register file)."""
    assert assessment_gap(PAPER_TABLE5["dtlb"], "22nm") == pytest.approx(
        0.11, abs=0.01
    )
    assert assessment_gap(PAPER_TABLE5["regfile"], "22nm") == pytest.approx(
        0.355, abs=0.01
    )


def test_gap_grows_monotonically_with_density():
    avfs = PAPER_TABLE5["l1d"]
    gaps = [assessment_gap(avfs, node) for node in TECHNOLOGY_NODES]
    assert gaps[0] == 0.0
    assert all(b >= a for a, b in zip(gaps, gaps[1:]))


def test_unknown_node_rejected():
    with pytest.raises(ConfigError):
        node_avf({1: 0.1}, "7nm")
    with pytest.raises(ConfigError):
        raw_fit_per_bit("7nm")


# -- max increase (Table IV definition) ------------------------------------------------


def test_max_increase_picks_worst_workload():
    single = {"a": 0.10, "b": 0.05}
    triple = {"a": 0.20, "b": 0.16}
    assert max_increase(single, triple) == pytest.approx(3.2)


def test_max_increase_skips_zero_single():
    assert max_increase({"a": 0.0}, {"a": 0.5}) == 0.0


# -- Eq. 4 / Fig. 8: FIT ------------------------------------------------------------------


def test_component_fit_formula():
    fit = component_node_fit("l1d", {1: 0.2, 2: 0.0, 3: 0.0}, "250nm")
    expected = 0.2 * 47e-8 * 262_144
    assert fit.fit_total == pytest.approx(expected)
    assert fit.fit_multibit == pytest.approx(0.0)


def test_cpu_fit_shape_matches_paper():
    """FIT peaks at 130nm then decreases; MBU share grows to ~20% at 22nm."""
    fits = cpu_fit_by_node(PAPER_TABLE5)
    totals = {node: fits[node].fit_total for node in TECHNOLOGY_NODES}
    assert max(totals, key=totals.get) == "130nm"
    assert totals["22nm"] < totals["32nm"] < totals["45nm"]
    shares = [fits[node].multibit_share for node in TECHNOLOGY_NODES]
    assert shares[0] == 0.0
    assert all(b >= a for a, b in zip(shares, shares[1:]))
    assert 0.15 < fits["22nm"].multibit_share < 0.25  # paper: ~21%


def test_cpu_fit_dominated_by_l2():
    fits = cpu_fit_by_node(PAPER_TABLE5)
    at_22 = {c.component: c.fit_total for c in fits["22nm"].components}
    assert at_22["l2"] > sum(v for k, v in at_22.items() if k != "l2")


# -- technology tables ----------------------------------------------------------------------


def test_mbu_rates_sum_to_one():
    for node, rates in MBU_RATES.items():
        assert sum(rates) == pytest.approx(1.0), node


def test_mbu_rates_single_bit_fraction_decreases():
    singles = [MBU_RATES[node][0] for node in TECHNOLOGY_NODES]
    assert all(b <= a for a, b in zip(singles, singles[1:]))


def test_raw_fit_peaks_at_130nm():
    assert max(RAW_FIT_PER_BIT, key=RAW_FIT_PER_BIT.get) == "130nm"


def test_all_nodes_present_in_both_tables():
    assert set(MBU_RATES) == set(TECHNOLOGY_NODES)
    assert set(RAW_FIT_PER_BIT) == set(TECHNOLOGY_NODES)
    assert mbu_rates("250nm") == (1.0, 0.0, 0.0)


def test_paper_component_bits_match_table8():
    assert PAPER_COMPONENT_BITS["l1d"] == 32 * 1024 * 8
    assert PAPER_COMPONENT_BITS["l2"] == 512 * 1024 * 8
    assert PAPER_COMPONENT_BITS["regfile"] == 2112
    assert PAPER_COMPONENT_BITS["itlb"] == 1024
