"""Injection into live systems and end-to-end campaign machinery."""

import pytest

from repro.core.avf import ClassCounts
from repro.core.campaign import (
    CampaignConfig,
    CampaignResult,
    CampaignStore,
    CellResult,
    golden_run,
    run_campaign,
    run_one_injection,
)
from repro.core.classify import FaultClass
from repro.core.faults import FaultMask
from repro.core.generator import MultiBitFaultGenerator
from repro.core.injector import inject
from repro.errors import ConfigError
from repro.cpu.system import System
from repro.workloads import get_workload

WORKLOAD = "stringsearch"  # the fastest workload: keeps these tests quick


def test_inject_flips_named_bits():
    system = System()
    system.load(get_workload(WORKLOAD).program())
    mask = FaultMask("regfile", ((4, 7), (5, 8)), (4, 7), (3, 3))
    target = system.injectable_targets()["regfile"]
    assert target.read_bit(4, 7) == 0
    inject(system, mask)
    assert target.read_bit(4, 7) == 1
    assert target.read_bit(5, 8) == 1
    inject(system, mask)  # flipping twice restores
    assert target.read_bit(4, 7) == 0


def test_inject_unknown_component_rejected():
    system = System()
    mask = FaultMask("l3", ((0, 0),), (0, 0), (3, 3))
    with pytest.raises(ConfigError, match="unknown component"):
        inject(system, mask)


def test_golden_run_is_cached_and_validated():
    workload = get_workload(WORKLOAD)
    first = golden_run(workload)
    second = golden_run(workload)
    assert first is second
    assert first.output == workload.expected_output


def test_run_one_injection_returns_classification():
    workload = get_workload(WORKLOAD)
    golden = golden_run(workload)
    generator = MultiBitFaultGenerator(seed=42)
    fault_class, result, mask = run_one_injection(
        workload, "l1d", generator, 2, inject_cycle=golden.cycles // 2
    )
    assert isinstance(fault_class, FaultClass)
    assert mask.cardinality == 2
    assert result.cycles <= 4 * golden.cycles + 10


def test_campaign_is_deterministic():
    config = CampaignConfig(
        workloads=(WORKLOAD,), components=("regfile",),
        cardinalities=(1,), samples=6, seed=3,
    )
    first = run_campaign(config)
    second = run_campaign(config)
    cell_a = first.cell(WORKLOAD, "regfile", 1)
    cell_b = second.cell(WORKLOAD, "regfile", 1)
    assert cell_a.counts == cell_b.counts
    assert cell_a.counts.total == 6


def test_campaign_seed_changes_results_eventually():
    def counts(seed):
        config = CampaignConfig(
            workloads=(WORKLOAD,), components=("itlb",),
            cardinalities=(3,), samples=8, seed=seed,
        )
        return run_campaign(config).cell(WORKLOAD, "itlb", 3).counts

    # Not guaranteed per-seed, but across several seeds the histograms
    # cannot all be identical unless sampling is broken.
    histograms = {str(counts(seed).as_dict()) for seed in range(4)}
    assert len(histograms) > 1


def test_campaign_result_json_round_trip():
    config = CampaignConfig(
        workloads=(WORKLOAD,), components=("regfile",),
        cardinalities=(1, 2), samples=4, seed=1,
    )
    result = run_campaign(config)
    restored = CampaignResult.from_json(result.to_json())
    assert len(restored) == len(result)
    for cell in result.cells:
        other = restored.cell(cell.workload, cell.component, cell.cardinality)
        assert other.counts == cell.counts
        assert other.golden_cycles == cell.golden_cycles


def test_campaign_store_resumes(tmp_path):
    path = tmp_path / "store.json"
    config = CampaignConfig(
        workloads=(WORKLOAD,), components=("regfile",),
        cardinalities=(1,), samples=4, seed=9,
    )
    store = CampaignStore(path)
    first = run_campaign(config, store=store)
    assert len(store) == 1

    # Second run must come from cache: fabricate a sentinel to prove it.
    key = config.cell_key(WORKLOAD, "regfile", 1)
    sentinel = CellResult(
        workload=WORKLOAD, component="regfile", cardinality=1,
        counts=ClassCounts(masked=999), golden_cycles=1,
    )
    store2 = CampaignStore(path)
    store2.put(key, sentinel)
    resumed = run_campaign(config, store=CampaignStore(path))
    assert resumed.cell(WORKLOAD, "regfile", 1).counts.masked == 999
    assert first.cell(WORKLOAD, "regfile", 1).counts.total == 4


def test_cell_keys_distinguish_parameters():
    config = CampaignConfig(samples=4, seed=1)
    keys = {
        config.cell_key("a", "l1d", 1),
        config.cell_key("a", "l1d", 2),
        config.cell_key("a", "l1i", 1),
        config.cell_key("b", "l1d", 1),
        CampaignConfig(samples=5, seed=1).cell_key("a", "l1d", 1),
        CampaignConfig(samples=4, seed=2).cell_key("a", "l1d", 1),
    }
    assert len(keys) == 6


def test_progress_callback_invoked():
    calls = []
    config = CampaignConfig(
        workloads=(WORKLOAD,), components=("regfile", "itlb"),
        cardinalities=(1,), samples=2, seed=0,
    )
    run_campaign(config, progress=lambda done, total, cell: calls.append((done, total)))
    assert calls == [(1, 2), (2, 2)]


def test_cells_enumeration_order():
    config = CampaignConfig(
        workloads=("a", "b"), components=("l1d",), cardinalities=(1, 2),
    )
    assert config.cells() == [
        ("a", "l1d", 1), ("a", "l1d", 2), ("b", "l1d", 1), ("b", "l1d", 2),
    ]


def test_default_workloads_resolve_to_all_15():
    assert len(CampaignConfig().resolved_workloads()) == 15
