"""Fault-effect classification and the Leveugle sampling statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import FaultClass, classify
from repro.core.sampling import error_margin, fault_population, sample_size
from repro.kernel.status import RunResult, RunStatus


def result(status, output=b"ok", exit_code=0):
    return RunResult(status=status, cycles=100, instructions=80,
                     output=output, exit_code=exit_code)


GOLDEN = result(RunStatus.FINISHED)


def test_identical_run_is_masked():
    assert classify(result(RunStatus.FINISHED), GOLDEN) is FaultClass.MASKED


def test_different_output_is_sdc():
    faulty = result(RunStatus.FINISHED, output=b"corrupted")
    assert classify(faulty, GOLDEN) is FaultClass.SDC


def test_different_exit_code_is_sdc():
    faulty = result(RunStatus.FINISHED, exit_code=1)
    assert classify(faulty, GOLDEN) is FaultClass.SDC


@pytest.mark.parametrize("status,expected", [
    (RunStatus.CRASH_PROCESS, FaultClass.CRASH),
    (RunStatus.CRASH_KERNEL, FaultClass.CRASH),
    (RunStatus.TIMEOUT_DEADLOCK, FaultClass.TIMEOUT),
    (RunStatus.TIMEOUT_LIVELOCK, FaultClass.TIMEOUT),
    (RunStatus.SIM_ASSERT, FaultClass.ASSERT),
])
def test_status_mapping(status, expected):
    assert classify(result(status), GOLDEN) is expected


# -- sampling ------------------------------------------------------------------


def test_paper_sample_size_gives_paper_margin():
    """2,000 samples <-> 2.88% error at 99% confidence (paper §III.A)."""
    population = fault_population(bits=262_144, cycles=10_000_000)
    margin = error_margin(population, 2000, confidence=0.99)
    assert margin == pytest.approx(0.0288, abs=0.0003)
    needed = sample_size(population, 0.0288, confidence=0.99)
    assert 1990 <= needed <= 2010


def test_reestimated_margin_tightens_with_lower_p():
    """Post-campaign re-estimation with measured AVF (paper: 2.4%-2.88%)."""
    population = fault_population(bits=262_144, cycles=10_000_000)
    margin = error_margin(population, 2000, confidence=0.99, p=0.3)
    assert margin < 0.0288
    assert margin == pytest.approx(0.0264, abs=0.0005)


def test_small_population_needs_fewer_samples():
    assert sample_size(1000, 0.05) < 1000
    assert sample_size(10, 0.01) <= 10


def test_error_margin_zero_when_census():
    assert error_margin(500, 500) == 0.0


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError):
        sample_size(0, 0.05)
    with pytest.raises(ValueError):
        sample_size(100, 1.5)
    with pytest.raises(ValueError):
        error_margin(100, 0)
    with pytest.raises(ValueError):
        error_margin(100, 200)
    with pytest.raises(ValueError):
        error_margin(100, 10, confidence=1.5)


@settings(max_examples=50, deadline=None)
@given(
    population=st.integers(min_value=10_000, max_value=10**12),
    samples=st.integers(min_value=10, max_value=2000),
)
def test_margin_decreases_with_more_samples(population, samples):
    wider = error_margin(population, samples)
    tighter = error_margin(population, samples * 2)
    assert tighter < wider


@settings(max_examples=50, deadline=None)
@given(
    population=st.integers(min_value=10_000, max_value=10**12),
    margin=st.floats(min_value=0.01, max_value=0.2),
)
def test_sample_size_inverts_error_margin(population, margin):
    n = sample_size(population, margin)
    achieved = error_margin(population, n)
    assert achieved <= margin + 1e-9


def test_fault_population_scales_with_cardinality_patterns():
    single = fault_population(1024, 1000, cardinality=1)
    double = fault_population(1024, 1000, cardinality=2)
    triple = fault_population(1024, 1000, cardinality=3)
    assert double > single  # C(9,2)=36 patterns vs 9
    assert triple > double  # C(9,3)=84
