"""Directed fault-injection scenarios: each mechanism, provoked on purpose.

The campaign relies on specific physical fault paths; these tests build
each one deterministically instead of sampling:

* register file flip on a live value  -> silent data corruption
* L1D flip on a resident dirty line   -> corrupted store data
* L1I flip turning an instruction word illegal -> process crash
* ITLB frame-number flip past the memory map   -> simulator assert
* DTLB frame-number flip into kernel frames    -> kernel panic on store
* flip on a dead (never re-read) bit           -> masked
"""

from repro.errors import SimAssertion
from repro.isa.assembler import assemble
from repro.isa.encoding import decode
from repro.kernel.status import CrashReason, RunStatus
from repro.mem.paging import PAGE_SHIFT
from repro.mem.tlb import PPN_SHIFT, VALID_BIT
from repro.cpu.system import System


def make_system(source):
    system = System()
    system.load(assemble(source))
    return system


DELAY = "\n".join(["    NOP"] * 40)

REG_PROGRAM = f"""
_start:
    MOVI r1, #5
{DELAY}
    MOV  r0, r1
    SYS  #3
    SYS  #0
"""


def run_to(system, cycle):
    assert system.run_until(cycle, 1_000_000)


def test_regfile_flip_on_live_value_causes_sdc():
    system = make_system(REG_PROGRAM)
    # Step until the MOVI has committed; the consuming MOV sits behind the
    # 40-NOP sled and has not been fetched yet.
    while system.core.stats.committed < 2:
        system.step()
        assert system.cycle < 1000
    phys = system.core.rename_map[1]
    assert system.core.prf.values[phys] == 5
    system.core.prf.flip_bit(phys, 1)  # 5 ^ 2 = 7
    result = system.run(1_000_000)
    assert result.status is RunStatus.FINISHED
    assert result.output == b"7\n"


def test_regfile_flip_on_free_register_is_masked():
    system = make_system(REG_PROGRAM)
    while system.core.stats.committed < 2:
        system.step()
    free = system.core.free_list[-1]  # not mapped, not in flight
    system.core.prf.flip_bit(free, 0)
    result = system.run(1_000_000)
    assert result.output == b"5\n"


MEM_PROGRAM = f"""
_start:
    LA   r1, slot
    MOVI r2, #100
    STR  r2, [r1]
{DELAY}
{DELAY}
    LDR  r3, [r1]
    MOV  r0, r3
    SYS  #3
    SYS  #0
.data
slot: .word 0
"""

PANIC_PROGRAM = f"""
_start:
    LA   r1, slot
    MOVI r2, #100
    STR  r2, [r1]          ; warms the DTLB entry for the data page
{DELAY}
{DELAY}
    STR  r2, [r1, #4]      ; translates through the corrupted entry
    SYS  #0
.data
slot: .word 0, 0
"""


def _data_paddr(system, vaddr):
    entry = system.page_table.lookup(vaddr >> PAGE_SHIFT)
    assert entry is not None
    ppn = entry[0]
    return (ppn << PAGE_SHIFT) | (vaddr & ((1 << PAGE_SHIFT) - 1))


def test_l1d_flip_on_dirty_line_corrupts_reload():
    system = make_system(MEM_PROGRAM)
    # Step until the store has retired into the L1D (line resident and
    # dirty); the reload sits behind the NOP sled and has not issued yet.
    paddr = _data_paddr(system, system.cfg.layout.data_base)
    while system.l1d.probe(paddr) is None:
        system.step()
        assert system.cycle < 200
    hit = system.l1d.probe(paddr)
    assert hit is not None, "stored line should be resident"
    idx, offset = hit
    system.l1d.flip_bit(idx, offset * 8 + 3)  # 100 ^ 8 = 108
    result = system.run(1_000_000)
    assert result.status is RunStatus.FINISHED
    assert result.output == b"108\n"


def test_l1i_flip_to_illegal_opcode_crashes():
    system = make_system(REG_PROGRAM)
    run_to(system, 10)
    # Locate the resident line of a not-yet-executed instruction: the
    # MOV r0, r1 near the end of the NOP sled.
    text_base = system.cfg.layout.text_base
    target_pc = text_base + 4 * (1 + 40)  # after MOVI + 40 NOPs
    paddr = _data_paddr(system, target_pc)
    # Force the line resident (fetch may not be there yet).
    word, _ = system.l1i.read_word(paddr)
    hit = system.l1i.probe(paddr)
    assert hit is not None
    idx, offset = hit
    # NOP = opcode 0x3E; flipping opcode bit 26 makes 0x3F... choose a bit
    # whose flip yields an unassigned (illegal) opcode.
    for bit in range(26, 32):
        if decode(word ^ (1 << bit)).illegal:
            system.l1i.flip_bit(idx, offset * 8 + bit)
            break
    else:  # pragma: no cover
        raise AssertionError("no flip of NOP yields an illegal opcode")
    result = system.run(1_000_000)
    assert result.status is RunStatus.CRASH_PROCESS
    assert result.crash_reason is CrashReason.ILLEGAL_INSTRUCTION


def _find_valid_entry(tlb, vpn):
    for row, word in enumerate(tlb.packed):
        if word & VALID_BIT and (word >> 18) & 0x1FFF == vpn:
            return row
    raise AssertionError(f"vpn {vpn} not resident")


def test_itlb_frame_flip_past_memory_map_asserts():
    system = make_system(REG_PROGRAM)
    run_to(system, 10)
    vpn = system.cfg.layout.text_base >> PAGE_SHIFT
    row = _find_valid_entry(system.itlb, vpn)
    # Set the top frame-number bit: frames >= 4096 are outside 256 KiB.
    system.itlb.flip_bit(row, PPN_SHIFT + 12)
    result = system.run(1_000_000)
    assert result.status is RunStatus.SIM_ASSERT
    assert "memory map" in result.detail


def test_dtlb_frame_flip_into_kernel_frames_panics():
    system = make_system(PANIC_PROGRAM)
    vpn = system.cfg.layout.data_base >> PAGE_SHIFT
    # Execute until the first store has translated (entry resident); the
    # second store sits behind the NOP sled and will use the corrupted
    # translation.
    while True:
        try:
            row = _find_valid_entry(system.dtlb, vpn)
            break
        except AssertionError:
            system.step()
            assert system.cycle < 200
    # Clear frame bits so the translation lands in kernel-reserved frames.
    word = system.dtlb.packed[row]
    ppn = (word >> PPN_SHIFT) & 0x1FFF
    kernel_frames = system.cfg.layout.kernel_reserved >> PAGE_SHIFT
    for bit in range(13):
        if (ppn ^ (1 << bit)) < kernel_frames:
            system.dtlb.flip_bit(row, PPN_SHIFT + bit)
            break
    else:
        # Multi-bit clear as a fallback (still a legal injection).
        for bit in range(13):
            if ppn & (1 << bit):
                system.dtlb.flip_bit(row, PPN_SHIFT + bit)
        assert ((system.dtlb.packed[row] >> PPN_SHIFT) & 0x1FFF) < kernel_frames
    result = system.run(1_000_000)
    assert result.status is RunStatus.CRASH_KERNEL
    assert result.crash_reason is CrashReason.KERNEL_PANIC


def test_flip_after_last_use_is_masked():
    system = make_system(REG_PROGRAM)
    golden = System()
    golden.load(assemble(REG_PROGRAM))
    expected = golden.run(1_000_000)
    # Inject into r1's physical register *after* the final read (putd).
    run_to(system, expected.cycles - 2)
    phys = system.core.rename_map[1]
    system.core.prf.flip_bit(phys, 0)
    result = system.run(1_000_000)
    assert result.status is RunStatus.FINISHED
    assert result.output == expected.output
