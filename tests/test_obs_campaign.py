"""Campaign-level observability: determinism, purity, CLI, overhead.

The contracts under test (DESIGN.md §8):

* telemetry never perturbs the simulation — results and stores are
  byte-identical with telemetry on or off, serial or parallel;
* ``sim.*`` counters are a function of the campaign configuration alone,
  so a serial run and a ``--jobs 2`` run agree on them exactly;
* the written ``telemetry.json`` and the Chrome trace derived from it
  validate against their schemas and drive the stats/trace subcommands;
* the disabled subsystem is one attribute check per event site — bounded
  here by timing the guard itself, not a full campaign (CI-stable).
"""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.core import cli
from repro.core.campaign import CampaignConfig, CampaignStore, run_campaign
from repro.obs.metrics import deterministic_counters
from repro.obs.schema import validate_chrome_trace, validate_telemetry
from repro.obs.telemetry import load_summary, summary_chrome_trace

#: Small but multi-cell: 2 workloads × 2 components × 1 cardinality.
GRID = CampaignConfig(
    workloads=("stringsearch", "crc32"),
    components=("regfile", "itlb"),
    cardinalities=(1,),
    samples=2,
    seed=0,
)


@pytest.fixture(autouse=True)
def _no_global_telemetry():
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module")
def observed_serial():
    """One telemetry-on serial run shared by the read-only assertions."""
    obs.disable()
    telemetry = obs.enable()
    result = run_campaign(GRID)
    summary = telemetry.summary()
    obs.disable()
    return result, summary


def test_telemetry_does_not_perturb_results(observed_serial):
    observed_result, _ = observed_serial
    plain = run_campaign(GRID)
    assert observed_result.to_json() == plain.to_json()


def test_serial_summary_is_schema_valid(observed_serial):
    _, summary = observed_serial
    assert validate_telemetry(summary) == []
    assert validate_chrome_trace(summary_chrome_trace(summary)) == []
    # The instrumented paths actually fired.
    assert summary["counters"]["sim.samples"] == len(GRID.cells()) * 2
    assert summary["counters"]["sim.cells"] == len(GRID.cells())
    assert summary["histograms"]["time.cell"]["count"] == len(GRID.cells())
    assert summary["counters"]["sim.mem.l1i.hits"] > 0


def test_parallel_deterministic_counters_match_serial(observed_serial):
    serial_result, serial_summary = observed_serial
    telemetry = obs.enable()
    parallel_result = run_campaign(GRID, jobs=2)
    parallel_summary = telemetry.summary()
    obs.disable()

    assert parallel_result.to_json() == serial_result.to_json()
    assert deterministic_counters(parallel_summary) == deterministic_counters(
        serial_summary
    )
    assert validate_telemetry(parallel_summary) == []
    # Schedule-dependent execution metrics exist but are NOT asserted
    # equal — that is the point of the exec.* namespace.
    assert parallel_summary["counters"]["exec.workers_spawned"] == 2


def test_telemetry_on_store_matches_telemetry_off(tmp_path):
    config = CampaignConfig(
        workloads=("crc32",), components=("regfile",), cardinalities=(1,),
        samples=2, seed=0,
    )
    store_off = CampaignStore(tmp_path / "off.json")
    result_off = run_campaign(config, store=store_off)

    obs.enable()
    store_on = CampaignStore(tmp_path / "on.json")
    result_on = run_campaign(config, store=store_on)
    obs.disable()

    assert result_on.to_json() == result_off.to_json()
    # The store's write-ahead journal is what a short run persists; the
    # telemetry-on journal must be byte-identical to the telemetry-off one.
    assert (tmp_path / "on.json.journal").read_bytes() == \
        (tmp_path / "off.json.journal").read_bytes()


def test_cli_run_stats_trace_roundtrip(tmp_path, capsys):
    store = tmp_path / "store.json"
    out = tmp_path / "result.json"
    rc = cli.main([
        "run", "--workloads", "crc32", "--components", "regfile",
        "--cardinalities", "1", "--samples", "2",
        "--store", str(store), "--telemetry", "--out", str(out),
    ])
    assert rc == 0
    telemetry_path = tmp_path / "store.json.telemetry.json"
    assert telemetry_path.exists()
    summary = load_summary(telemetry_path)
    assert validate_telemetry(summary) == []
    assert summary["counters"]["sim.samples"] == 2
    capsys.readouterr()

    assert cli.main(
        ["stats", "--telemetry", str(telemetry_path), "--check"]
    ) == 0
    stats_out = capsys.readouterr().out
    assert "sim.samples" in stats_out
    assert "time.cell" in stats_out

    trace_path = tmp_path / "run.trace.json"
    assert cli.main([
        "trace", "--telemetry", str(telemetry_path),
        "--out", str(trace_path),
    ]) == 0
    trace = json.loads(trace_path.read_text())
    assert validate_chrome_trace(trace) == []
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_cli_stats_check_rejects_corrupt_telemetry(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"kind": "nope", "schema": 1}))
    assert cli.main(["stats", "--telemetry", str(bad), "--check"]) == 1
    assert "invalid:" in capsys.readouterr().err
    assert cli.main(
        ["stats", "--telemetry", str(tmp_path / "missing.json")]
    ) == 2


def test_cli_incidents_json(tmp_path, capsys):
    journal = tmp_path / "incidents.jsonl"
    record = {
        "kind": "exception", "workload": "crc32", "component": "regfile",
        "cardinality": 1, "cell_seed": "0:crc32:regfile:1",
        "sample_index": 2, "inject_cycle": 5, "mask": None,
        "error_type": "ValueError", "message": "boom", "traceback": "",
    }
    journal.write_text(json.dumps(record) + "\n")
    assert cli.main(
        ["incidents", "--journal", str(journal), "--json"]
    ) == 0
    loaded = json.loads(capsys.readouterr().out)
    assert loaded[0]["error_type"] == "ValueError"
    assert loaded[0]["cell_seed"] == "0:crc32:regfile:1"


def test_smp_campaign_metrics_are_keyed_by_core_id():
    """A --cores campaign publishes per-core cache/TLB counters (``c{k}.``
    prefixes) plus shared-L2 and coherence-bus counters, all in the
    deterministic ``sim.*`` namespace."""
    config = CampaignConfig(
        workloads=("crc32_p",), components=("l2",), cardinalities=(1,),
        samples=1, seed=0, cores=2,
    )
    telemetry = obs.enable()
    run_campaign(config)
    summary = telemetry.summary()
    obs.disable()

    counters = summary["counters"]
    assert counters["sim.mem.c0.l1d.hits"] > 0
    assert counters["sim.mem.c1.l1d.hits"] > 0
    assert counters["sim.mem.c0.itlb.hits"] > 0
    assert counters["sim.mem.l2.hits"] > 0
    # The workload's producer/consumer traffic exercises the bus.
    assert any(key.startswith("sim.mem.bus.") for key in counters)
    # Per-core keys are deterministic like every other sim.* counter.
    assert all(
        key in deterministic_counters(summary)
        for key in counters if key.startswith("sim.mem.c")
    )


def test_smp_metrics_do_not_perturb_results():
    config = CampaignConfig(
        workloads=("crc32_p",), components=("l2",), cardinalities=(1,),
        samples=1, seed=0, cores=2,
    )
    obs.enable()
    observed = run_campaign(config)
    obs.disable()
    plain = run_campaign(config)
    assert observed.to_json() == plain.to_json()


def test_disabled_guard_overhead_is_negligible():
    """The disabled subsystem must cost ~one attribute check per event.

    A full campaign-vs-campaign wall-clock comparison is hopelessly noisy
    in CI, so bound the primitive instead: the per-event guard, run as
    many times as a smoke campaign fires it (a few thousand), must cost
    far less than 5% of even a sub-second campaign.
    """
    obs.disable()
    events = 10_000  # generous: >> guard sites hit in a smoke campaign
    begin = time.perf_counter()
    for _ in range(events):
        tel = obs.active()
        if tel is not None:  # pragma: no cover - disabled branch
            tel.metrics.counter("sim.samples").inc()
    elapsed = time.perf_counter() - begin
    # 10k guards in under 50ms (~5% of a 1s smoke campaign); in practice
    # this measures ~1-2ms, so the bound has 25x headroom for CI noise.
    assert elapsed < 0.05, f"{events} disabled guards took {elapsed:.3f}s"
