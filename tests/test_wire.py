"""Frame codec tests: the shared wire layer under both stream backends.

Every hostile-input case must come back as a diagnosed non-frame, never
an exception — a codec that can crash its reader is itself an injection
target (DESIGN.md §12).
"""

import io
import struct

import pytest

from repro.core.wire import (
    FRAME_CORRUPT,
    FRAME_EOF,
    FRAME_OK,
    FRAME_OVERSIZE,
    FRAME_STALE,
    FRAME_TORN,
    HANDSHAKE_EPOCH,
    MAX_FRAME_BYTES,
    read_frame,
    read_frame_ex,
    write_corrupt_frame,
    write_frame,
)

_HEADER = struct.Struct(">IIQ")


def _encoded(message, epoch=HANDSHAKE_EPOCH) -> bytes:
    stream = io.BytesIO()
    write_frame(stream, message, epoch)
    return stream.getvalue()


def test_roundtrip_plain():
    stream = io.BytesIO(_encoded(("task", [1, 2, 3])))
    assert read_frame(stream) == ("task", [1, 2, 3])


def test_roundtrip_carries_epoch():
    stream = io.BytesIO(_encoded(("heartbeat", 0, 1, 2), epoch=77))
    frame, status = read_frame_ex(stream)
    assert status == FRAME_OK
    assert frame.epoch == 77
    assert frame.message == ("heartbeat", 0, 1, 2)


def test_multiple_frames_in_sequence():
    stream = io.BytesIO(
        _encoded("first", epoch=5) + _encoded("second", epoch=5)
    )
    assert read_frame(stream, epoch=5) == "first"
    assert read_frame(stream, epoch=5) == "second"
    frame, status = read_frame_ex(stream, epoch=5)
    assert frame is None and status == FRAME_EOF


def test_clean_eof():
    frame, status = read_frame_ex(io.BytesIO(b""))
    assert frame is None and status == FRAME_EOF


def test_torn_header():
    frame, status = read_frame_ex(io.BytesIO(b"\x00\x00\x00"))
    assert frame is None and status == FRAME_TORN


def test_torn_payload():
    encoded = _encoded({"key": "value"})
    frame, status = read_frame_ex(io.BytesIO(encoded[:-3]))
    assert frame is None and status == FRAME_TORN


def test_oversized_length_is_refused_without_allocating():
    header = _HEADER.pack(MAX_FRAME_BYTES + 1, 0, 0)
    frame, status = read_frame_ex(io.BytesIO(header))
    assert frame is None and status == FRAME_OVERSIZE


def test_crc_mismatch_is_corrupt():
    encoded = bytearray(_encoded("payload under test"))
    encoded[-1] ^= 0xFF  # flip a payload bit; header CRC now lies
    frame, status = read_frame_ex(io.BytesIO(bytes(encoded)))
    assert frame is None and status == FRAME_CORRUPT


def test_unpicklable_payload_with_honest_crc_is_corrupt():
    import zlib

    payload = b"\x00not a pickle\x00"
    header = _HEADER.pack(len(payload), zlib.crc32(payload), 0)
    frame, status = read_frame_ex(io.BytesIO(header + payload))
    assert frame is None and status == FRAME_CORRUPT


def test_write_corrupt_frame_is_diagnosed_and_consumes_exactly_one_frame():
    stream = io.BytesIO()
    write_corrupt_frame(stream, epoch=9)
    write_frame(stream, "survivor", epoch=9)
    stream.seek(0)
    frame, status = read_frame_ex(stream, epoch=9)
    assert frame is None and status == FRAME_CORRUPT
    # The honest length means the reader resynchronises on the next frame.
    assert read_frame(stream, epoch=9) == "survivor"


def test_stale_epoch_refused_before_unpickling():
    class Exploding:
        def __reduce__(self):
            return (_explode, ())

    stream = io.BytesIO(_encoded(Exploding(), epoch=3))
    frame, status = read_frame_ex(stream, epoch=4)
    assert frame is None and status == FRAME_STALE


def _explode():  # pragma: no cover - must never run
    raise AssertionError("stale payload was unpickled")


def test_expected_epoch_accepts_matching_frames():
    stream = io.BytesIO(_encoded("hello", epoch=3))
    assert read_frame(stream, epoch=3) == "hello"


def test_none_epoch_accepts_any_session():
    stream = io.BytesIO(_encoded("hello", epoch=12345))
    assert read_frame(stream, epoch=None) == "hello"


@pytest.mark.parametrize("bad", [b"", b"\x01", b"\x00" * 15])
def test_truncated_streams_never_raise(bad):
    frame, status = read_frame_ex(io.BytesIO(bad))
    assert frame is None
    assert status in (FRAME_EOF, FRAME_TORN)
