"""Out-of-order core: architectural behaviour through assembly programs."""

import pytest

from repro.isa.assembler import assemble
from repro.kernel.status import CrashReason, RunStatus
from repro.cpu.config import CoreConfig
from repro.cpu.system import System, run_program


def run_asm(source, max_cycles=200_000):
    return run_program(assemble(source), max_cycles=max_cycles)


def test_arithmetic_pipeline():
    result = run_asm("""
    _start:
        MOVI r1, #6
        MOVI r2, #7
        MUL  r3, r1, r2
        MOV  r0, r3
        SYS  #3
        MOVI r0, #0
        SYS  #0
    """)
    assert result.status is RunStatus.FINISHED
    assert result.output == b"42\n"


def test_dependent_chain_correctness():
    result = run_asm("""
    _start:
        MOVI r1, #1
        ADDI r1, r1, #1
        ADDI r1, r1, #1
        ADDI r1, r1, #1
        MOV  r0, r1
        SYS  #3
        SYS  #0
    """)
    assert result.output == b"4\n"


def test_backward_branch_loop():
    result = run_asm("""
    _start:
        MOVI r1, #0
        MOVI r2, #100
    loop:
        ADDI r1, r1, #1
        BLT  r1, r2, loop
        MOV  r0, r1
        SYS  #3
        SYS  #0
    """)
    assert result.output == b"100\n"
    assert result.stats["mispredicts"] >= 1  # final not-taken iteration


def test_forward_branch_prediction_recovers():
    result = run_asm("""
    _start:
        MOVI r1, #5
        MOVI r2, #5
        BEQ  r1, r2, taken       ; forward: predicted not-taken, mispredicts
        MOVI r0, #111
        SYS  #3
        SYS  #0
    taken:
        MOVI r0, #222
        SYS  #3
        SYS  #0
    """)
    assert result.output == b"222\n"
    assert result.stats["mispredicts"] >= 1
    assert result.stats["squashed"] >= 1


def test_store_load_forwarding():
    result = run_asm("""
    _start:
        LA   r1, slot
        MOVI r2, #77
        STR  r2, [r1]
        LDR  r3, [r1]            ; must see the in-flight store
        MOV  r0, r3
        SYS  #3
        SYS  #0
    .data
    slot: .word 0
    """)
    assert result.output == b"77\n"


def test_byte_store_word_load_waits_for_commit():
    result = run_asm("""
    _start:
        LA   r1, slot
        MOVI r2, #0xAB
        STRB r2, [r1, #1]
        LDR  r3, [r1]            ; partial overlap: stalls until commit
        MOV  r0, r3
        SYS  #1
        SYS  #0
    .data
    slot: .word 0
    """)
    assert result.output == b"0000ab00\n"


def test_function_call_and_return():
    result = run_asm("""
    _start:
        MOVI r0, #20
        BL   double
        SYS  #3
        SYS  #0
    double:
        ADD  r0, r0, r0
        RET
    """)
    assert result.output == b"40\n"


def test_illegal_instruction_crashes():
    result = run_asm("""
    _start:
        .word 0                  ; all-zero word: illegal opcode
        HALT
    """)
    assert result.status is RunStatus.CRASH_PROCESS
    assert result.crash_reason is CrashReason.ILLEGAL_INSTRUCTION


def test_div_by_zero_crashes():
    result = run_asm("""
    _start:
        MOVI r1, #1
        MOVI r2, #0
        DIV  r3, r1, r2
        HALT
    """)
    assert result.status is RunStatus.CRASH_PROCESS
    assert result.crash_reason is CrashReason.DIV_ZERO


def test_misaligned_load_crashes():
    result = run_asm("""
    _start:
        LA   r1, slot
        LDR  r2, [r1, #2]
        HALT
    .data
    slot: .word 0
    """)
    assert result.status is RunStatus.CRASH_PROCESS
    assert result.crash_reason is CrashReason.MISALIGNED


def test_unmapped_load_page_faults():
    result = run_asm("""
    _start:
        MOVW r1, #0x00300000
        LDR  r2, [r1]
        HALT
    """)
    assert result.status is RunStatus.CRASH_PROCESS
    assert result.crash_reason is CrashReason.PAGE_FAULT


def test_store_to_text_protection_faults():
    result = run_asm("""
    _start:
        MOVW r1, #0x00010000
        MOVI r2, #1
        STR  r2, [r1]
        HALT
    """)
    assert result.status is RunStatus.CRASH_PROCESS
    assert result.crash_reason is CrashReason.PROT_FAULT


def test_jump_to_garbage_crashes():
    result = run_asm("""
    _start:
        MOVW r1, #0x00700000
        JR   r1
    """)
    assert result.status is RunStatus.CRASH_PROCESS


def test_wrong_path_fault_does_not_crash():
    """A load on a mispredicted path must never take down the run."""
    result = run_asm("""
    _start:
        MOVI r1, #0
        MOVW r4, #0x00300000     ; unmapped address
        BEQZ r1, safe            ; forward: predicted not-taken (wrong)
        LDR  r5, [r4]            ; wrong-path load, would page-fault
        HALT
    safe:
        MOVI r0, #9
        SYS  #3
        SYS  #0
    """)
    assert result.status is RunStatus.FINISHED
    assert result.output == b"9\n"


def test_livelock_times_out():
    result = run_asm("""
    _start:
        MOVI r1, #0
    spin:
        ADDI r1, r1, #1
        B    spin
    """, max_cycles=20_000)
    assert result.status is RunStatus.TIMEOUT_LIVELOCK


def test_recursive_stack_overflow_crashes():
    result = run_asm("""
    _start:
        BL   recurse
        HALT
    recurse:
        ADDI sp, sp, #-8
        STR  lr, [sp]
        BL   recurse
        LDR  lr, [sp]
        ADDI sp, sp, #8
        RET
    """, max_cycles=500_000)
    assert result.status is RunStatus.CRASH_PROCESS
    assert result.crash_reason is CrashReason.PAGE_FAULT


def test_ipc_is_plausible():
    result = run_asm("""
    _start:
        MOVI r1, #0
        MOVI r2, #200
    loop:
        ADDI r3, r1, #1
        ADDI r4, r1, #2
        ADDI r1, r1, #1
        BLT  r1, r2, loop
        SYS  #0
    """)
    assert result.status is RunStatus.FINISHED
    assert 0.3 < result.ipc <= 4.0


def test_stats_accumulate():
    result = run_asm("""
    _start:
        LA   r1, slot
        MOVI r2, #5
        STR  r2, [r1]
        LDR  r3, [r1]
        SYS  #0
    .data
    slot: .word 0
    """)
    assert result.stats["stores"] == 1
    assert result.stats["loads"] == 1
    assert result.stats["syscalls"] == 1
    assert result.instructions == result.stats["committed"]


def test_custom_config_validation():
    with pytest.raises(Exception):
        CoreConfig(phys_regs=10).validate()


def test_system_injectable_targets_names():
    system = System()
    targets = system.injectable_targets()
    assert set(targets) == {"l1d", "l1i", "l2", "regfile", "dtlb", "itlb"}
    for target in targets.values():
        assert target.inject_rows >= 3 and target.inject_cols >= 3


def test_run_until_reaches_cycle():
    system = System()
    system.load(assemble("""
    _start:
        MOVI r1, #0
        MOVI r2, #1000
    loop:
        ADDI r1, r1, #1
        BLT  r1, r2, loop
        SYS  #0
    """))
    assert system.run_until(200, 100_000)
    assert system.cycle >= 200
    assert not system.finished
    result = system.run(100_000)
    assert result.status is RunStatus.FINISHED
