"""TLBs: translation, refill, permissions, and fault-injection behaviour."""

from repro.mem.paging import PAGE_SHIFT, PAGE_SIZE, PageTable
from repro.mem.tlb import (
    ACCESS_EXEC,
    ACCESS_LOAD,
    ACCESS_STORE,
    FAULT_PAGE,
    FAULT_PROT,
    PPN_SHIFT,
    TLB,
    VPN_SHIFT,
    TLBEntryFields,
)


def make_tlb(entries=8):
    table = PageTable(walk_latency=20)
    table.map_page(0x10, 0x100, writable=False, executable=True)
    table.map_page(0x20, 0x200, writable=True, executable=False)
    table.map_page(0x30, 0x300, writable=True, executable=False, kernel=True)
    return TLB("tlb", table, entries=entries), table


def va(vpn, offset=0):
    return (vpn << PAGE_SHIFT) | offset


def test_miss_walks_and_refills():
    tlb, _ = make_tlb()
    paddr, lat, fault = tlb.translate(va(0x20, 5), ACCESS_LOAD)
    assert fault is None
    assert paddr == (0x200 << PAGE_SHIFT) | 5
    assert lat == tlb.hit_latency + 20
    assert tlb.misses == 1
    _, lat, _ = tlb.translate(va(0x20, 9), ACCESS_LOAD)
    assert lat == tlb.hit_latency
    assert tlb.hits == 1


def test_unmapped_page_faults():
    tlb, _ = make_tlb()
    _, _, fault = tlb.translate(va(0x77), ACCESS_LOAD)
    assert fault == FAULT_PAGE


def test_vpn_beyond_field_width_faults():
    tlb, _ = make_tlb()
    _, _, fault = tlb.translate(0xFFFF_F000, ACCESS_LOAD)
    assert fault == FAULT_PAGE


def test_permission_checks():
    tlb, _ = make_tlb()
    assert tlb.translate(va(0x10), ACCESS_EXEC)[2] is None
    assert tlb.translate(va(0x10), ACCESS_STORE)[2] == FAULT_PROT
    assert tlb.translate(va(0x20), ACCESS_STORE)[2] is None
    assert tlb.translate(va(0x20), ACCESS_EXEC)[2] == FAULT_PROT
    # Kernel pages are off-limits to user accesses entirely.
    assert tlb.translate(va(0x30), ACCESS_LOAD)[2] == FAULT_PROT


def test_lru_eviction_and_reload():
    table = PageTable(walk_latency=20)
    for vpn in range(6):
        table.map_page(vpn, 0x100 + vpn, writable=True)
    tlb = TLB("tlb", table, entries=4)
    for vpn in range(4):
        tlb.translate(va(vpn), ACCESS_LOAD)
    tlb.translate(va(0), ACCESS_LOAD)       # 0 becomes MRU
    tlb.translate(va(4), ACCESS_LOAD)       # evicts vpn 1 (LRU)
    misses_before = tlb.misses
    tlb.translate(va(0), ACCESS_LOAD)
    assert tlb.misses == misses_before      # still resident
    tlb.translate(va(1), ACCESS_LOAD)
    assert tlb.misses == misses_before + 1  # was evicted


def test_ppn_flip_redirects_translation():
    tlb, _ = make_tlb()
    tlb.translate(va(0x20), ACCESS_LOAD)
    entry_idx = next(
        i for i, w in enumerate(tlb.packed)
        if w >> 31 and (w >> VPN_SHIFT) & 0x1FFF == 0x20
    )
    tlb.flip_bit(entry_idx, PPN_SHIFT)  # flip ppn LSB
    paddr, _, fault = tlb.translate(va(0x20), ACCESS_LOAD)
    assert fault is None
    assert paddr >> PAGE_SHIFT == 0x201  # silently wrong frame


def test_valid_flip_heals_via_refill():
    tlb, _ = make_tlb()
    tlb.translate(va(0x20), ACCESS_LOAD)
    entry_idx = next(i for i, w in enumerate(tlb.packed) if w >> 31)
    tlb.flip_bit(entry_idx, 31)  # clear valid
    paddr, lat, fault = tlb.translate(va(0x20), ACCESS_LOAD)
    assert fault is None
    assert paddr >> PAGE_SHIFT == 0x200  # correct again after the walk
    assert lat > tlb.hit_latency


def test_writable_flip_causes_protection_fault():
    tlb, _ = make_tlb()
    tlb.translate(va(0x20), ACCESS_STORE)
    entry_idx = next(i for i, w in enumerate(tlb.packed) if w >> 31)
    tlb.flip_bit(entry_idx, 4)  # clear the writable bit
    assert tlb.translate(va(0x20), ACCESS_STORE)[2] == FAULT_PROT


def test_vpn_flip_makes_entry_match_wrong_page():
    tlb, table = make_tlb()
    table.map_page(0x21, 0x500, writable=True)
    tlb.translate(va(0x20), ACCESS_LOAD)
    entry_idx = next(i for i, w in enumerate(tlb.packed) if w >> 31)
    tlb.flip_bit(entry_idx, VPN_SHIFT)  # vpn 0x20 -> 0x21
    paddr, _, fault = tlb.translate(va(0x21), ACCESS_LOAD)
    assert fault is None
    assert paddr >> PAGE_SHIFT == 0x200  # 0x21 now wrongly maps to 0x200


def test_spare_bit_flip_is_architecturally_masked():
    tlb, _ = make_tlb()
    tlb.translate(va(0x20), ACCESS_LOAD)
    entry_idx = next(i for i, w in enumerate(tlb.packed) if w >> 31)
    tlb.flip_bit(entry_idx, 0)  # spare bit
    paddr, _, fault = tlb.translate(va(0x20), ACCESS_LOAD)
    assert fault is None and paddr >> PAGE_SHIFT == 0x200


def test_entry_fields_pack_unpack_round_trip():
    word = TLBEntryFields.pack(0x123, 0x456, True, False, True)
    fields = TLBEntryFields(word)
    assert (fields.vpn, fields.ppn) == (0x123, 0x456)
    assert fields.writable and not fields.executable and fields.kernel
    assert fields.valid


def test_flush_invalidates_everything():
    tlb, _ = make_tlb()
    tlb.translate(va(0x20), ACCESS_LOAD)
    tlb.flush()
    assert not tlb.valid_entries()
    misses = tlb.misses
    tlb.translate(va(0x20), ACCESS_LOAD)
    assert tlb.misses == misses + 1


def test_inject_geometry():
    tlb, _ = make_tlb(entries=8)
    assert (tlb.inject_rows, tlb.inject_cols) == (8, 32)
    assert PAGE_SIZE == 1 << PAGE_SHIFT
