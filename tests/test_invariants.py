"""Microarchitectural invariant checks catch tampered state.

Each test runs a real workload partway, breaks one specific piece of
bookkeeping by hand, and asserts the corresponding invariant fires.  The
positive direction — a healthy platform passes every check on every step —
is covered both here (full susan_c run under ``check_invariants``) and by
the differential/fuzz suites.
"""

import dataclasses

import pytest

from repro.core.campaign import golden_run
from repro.core.generator import MultiBitFaultGenerator
from repro.cpu.config import DEFAULT_CONFIG
from repro.cpu.system import System
from repro.errors import InvariantViolation
from repro.kernel.status import RunStatus
from repro.verify.invariants import (
    InvariantChecker,
    check_mask_applied,
    snapshot_mask_bits,
    state_fingerprint,
)
from repro.workloads import get_workload

WORKLOAD = "susan_c"


def running_system(min_rob: int = 2) -> System:
    """A system stepped into the middle of susan_c with a busy pipeline."""
    system = System()
    system.load(get_workload(WORKLOAD).program())
    while len(system.core.rob) < min_rob and not system.finished:
        system.step()
    assert not system.finished
    return system


def test_healthy_system_passes_all_checks():
    system = running_system()
    checker = InvariantChecker()
    checker.check_core(system.core)
    checker.check_system(system)


def test_full_run_under_check_invariants_flag():
    cfg = dataclasses.replace(DEFAULT_CONFIG, check_invariants=True)
    system = System(cfg)
    assert system.core.invariant_checker is not None
    system.load(get_workload(WORKLOAD).program())
    golden = golden_run(get_workload(WORKLOAD))
    result = system.run(4 * golden.cycles)
    # Per-step checking changes nothing observable.
    assert result.status is RunStatus.FINISHED
    assert result.output == golden.output
    assert system.core.invariant_checker is not None  # survives the run


def test_plain_config_attaches_no_checker():
    assert System().core.invariant_checker is None


def test_rename_map_alias_detected():
    system = running_system()
    core = system.core
    core.rename_map[0] = core.rename_map[1]
    with pytest.raises(InvariantViolation, match="aliases"):
        InvariantChecker().check_core(core)


def test_free_list_duplicate_detected():
    system = running_system()
    core = system.core
    core.free_list.append(next(iter(core.free_list)))
    with pytest.raises(InvariantViolation, match="duplicate"):
        InvariantChecker().check_core(core)


def test_leaked_physical_register_detected():
    system = running_system()
    core = system.core
    core.free_list.pop()
    with pytest.raises(InvariantViolation, match="conservation"):
        InvariantChecker().check_core(core)


def test_double_ownership_detected():
    system = running_system()
    core = system.core
    core.free_list.append(core.rename_map[0])
    with pytest.raises(InvariantViolation, match="owned by both"):
        InvariantChecker().check_core(core)


def test_rob_out_of_order_detected():
    system = running_system(min_rob=2)
    rob = list(system.core.rob)
    rob[1].seq = rob[0].seq  # retirement order now ambiguous
    with pytest.raises(InvariantViolation, match="program order"):
        InvariantChecker().check_core(system.core)


def test_squashed_uop_in_rob_detected():
    system = running_system(min_rob=1)
    next(iter(system.core.rob)).squashed = True
    with pytest.raises(InvariantViolation, match="squashed"):
        InvariantChecker().check_core(system.core)


def test_stale_clean_cache_line_detected():
    system = running_system()
    # Warm lines exist by now; corrupt the first valid (clean) L1I line.
    lines = list(system.l1i.audit_lines())
    assert lines, "expected warm instruction lines"
    idx, _, dirty = lines[0]
    assert not dirty  # L1I never dirties lines
    system.l1i.flip_bit(idx, 0)
    with pytest.raises(InvariantViolation, match="clean line"):
        InvariantChecker().check_system(system)


def test_broken_lru_stack_detected():
    system = running_system()
    cache = system.l1d
    assert cache.assoc >= 2
    cache._lru[0][0] = cache._lru[0][1]
    with pytest.raises(InvariantViolation, match="LRU"):
        InvariantChecker().check_system(system)


def test_drifting_tlb_entry_detected():
    system = running_system()
    entries = list(system.itlb.audit_entries())
    assert entries, "expected warm ITLB entries"
    idx, _ = entries[0]
    system.itlb.flip_bit(idx, 5)  # lowest ppn bit: entry stays valid
    with pytest.raises(InvariantViolation, match="disagrees"):
        InvariantChecker().check_system(system)


def test_mask_application_accounting():
    system = running_system()
    target = system.injectable_targets()["l1d"]
    mask = MultiBitFaultGenerator(seed=7).generate(target, cardinality=3)
    before = snapshot_mask_bits(target, mask)
    for row, col in mask.bits:
        target.flip_bit(row, col)
    check_mask_applied(target, mask, before)  # all three toggled: passes
    # Undo one flip — the conservation check must notice the lost bit.
    row, col = mask.bits[1]
    target.flip_bit(row, col)
    with pytest.raises(InvariantViolation, match="did not flip"):
        check_mask_applied(target, mask, before)


def test_state_fingerprint_discriminates():
    a = running_system()
    b = running_system()
    assert state_fingerprint(a) == state_fingerprint(b)
    b.step()
    assert state_fingerprint(a) != state_fingerprint(b)
    # A single flipped SRAM bit anywhere must change the fingerprint.
    c = running_system()
    c.injectable_targets()["regfile"].flip_bit(0, 0)
    assert state_fingerprint(a) != state_fingerprint(c)


# -- SMP coherence invariants -------------------------------------------------


def running_smp(cores: int = 2, ready=None):
    """A multi-core system mid-run; by default with a dirty L1D line."""
    from repro.cpu.smp import SMPSystem
    from repro.workloads import get_workload

    if ready is None:
        ready = lambda smp: bool(smp.bus.owner)  # noqa: E731
    smp = SMPSystem(ncores=cores)
    smp.load(get_workload("crc32_p").program_for(cores))
    for _ in range(2_000_000):
        smp.step()
        if smp.finished:  # pragma: no cover - budget far exceeds the run
            break
        if ready(smp):
            return smp
    raise AssertionError("never reached the requested SMP state")


def test_healthy_smp_passes_coherence_audit():
    smp = running_smp()
    InvariantChecker().check_smp(smp)


def test_bus_owner_pointing_at_wrong_cache_detected():
    smp = running_smp()
    addr = next(iter(smp.bus.owner))
    owner = smp.bus.owner[addr]
    other = next(
        bundle.l1d for bundle in smp.cores if bundle.l1d is not owner
    )
    smp.bus.owner[addr] = other
    with pytest.raises(InvariantViolation, match="owner map"):
        InvariantChecker().check_smp(smp)


def test_phantom_owner_entry_detected():
    smp = running_smp()
    # Claim dirty ownership of a line no cache holds dirty.
    smp.bus.owner[0x7FFF_FF80] = smp.cores[0].l1d
    with pytest.raises(InvariantViolation, match="owner map"):
        InvariantChecker().check_smp(smp)


def test_unregistered_dirty_holder_detected():
    smp = running_smp()
    addr = next(iter(smp.bus.owner))
    del smp.bus.owner[addr]
    with pytest.raises(InvariantViolation, match="owner"):
        InvariantChecker().check_smp(smp)


def test_corrupt_shared_l2_line_detected():
    smp = running_smp(ready=lambda smp: any(
        not dirty for _, _, dirty in smp.l2.audit_lines()
    ))
    lines = [
        (idx, dirty) for idx, _, dirty in smp.l2.audit_lines() if not dirty
    ]
    assert lines, "expected warm clean L2 lines"
    smp.l2.flip_bit(lines[0][0], 0)
    with pytest.raises(InvariantViolation, match="clean line"):
        InvariantChecker().check_smp(smp)


def test_coherence_holds_across_random_interleavings():
    """Property fuzz: random multithreaded programs at 2-4 cores.

    Steps each program under the deterministic interleaver and audits the
    full coherence state (single-writer, clean agreement, owner map)
    every few quanta, from first spawn to termination.
    """
    from repro.cpu.smp import SMPSystem
    from repro.verify.fuzz import SMPProgramFuzzer

    checker = InvariantChecker()
    audits = 0
    for seed, cores in ((0, 2), (1, 3), (2, 4)):
        program = SMPProgramFuzzer(seed=seed, length=30, cores=cores).program()
        smp = SMPSystem(ncores=cores)
        smp.load(program)
        for quantum in range(500_000):
            smp.step()
            if smp.finished:
                break
            if quantum % 50 == 0:
                checker.check_smp(smp)
                audits += 1
        assert smp.finished, f"fuzz program {seed} did not terminate"
    assert audits > 10


def test_smp_fingerprint_discriminates():
    from repro.verify.invariants import smp_state_fingerprint

    a = running_smp()
    b = running_smp()
    assert smp_state_fingerprint(a) == smp_state_fingerprint(b)
    b.step()
    assert smp_state_fingerprint(a) != smp_state_fingerprint(b)
    c = running_smp()
    c.injectable_targets()["c1.regfile"].flip_bit(0, 0)
    assert smp_state_fingerprint(a) != smp_state_fingerprint(c)
