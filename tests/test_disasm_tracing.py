"""Disassembler and commit tracer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble, disassemble_program
from repro.isa.encoding import decode, encode
from repro.isa.opcodes import Op
from repro.kernel.status import RunStatus
from repro.cpu.system import System
from repro.cpu.tracing import CommitTracer

PROGRAM = """
_start:
    MOVI r1, #3
    MOVI r2, #4
    ADD  r3, r1, r2
    MOV  r0, r3
    SYS  #3
    SYS  #0
"""


def test_disassemble_basic_forms():
    assert disassemble(encode(Op.ADD, rd=3, rs1=1, rs2=2)) == "add r3, r1, r2"
    assert disassemble(encode(Op.MOVI, rd=1, imm=-5)) == "movi r1, #-5"
    assert disassemble(encode(Op.LDR, rd=2, rs1=13, imm=8)) == "ldr r2, [sp, #8]"
    assert disassemble(encode(Op.STRB, rd=2, rs1=4, imm=-1)) == "strb r2, [r4, #-1]"
    assert disassemble(encode(Op.SYS, imm=3)) == "sys #3"
    assert disassemble(encode(Op.JR, rs1=14)) == "jr lr"
    assert disassemble(encode(Op.HALT)) == "halt"


def test_disassemble_branch_targets():
    word = encode(Op.BEQ, rd=1, rs1=2, imm=-4)
    assert disassemble(word) == "beq r1, r2, .-4"
    assert disassemble(word, pc=0x1000) == "beq r1, r2, 0x00000ff0"
    assert disassemble(encode(Op.BNEZ, rd=3, imm=2), pc=0x100) == (
        "bnez r3, 0x00000108"
    )


def test_disassemble_illegal():
    text = disassemble(0)
    assert "illegal" in text and "0x00000000" in text


def test_disassemble_program_lines():
    program = assemble(PROGRAM)
    lines = disassemble_program(program.text, program.text_base)
    assert len(lines) == program.num_instructions
    assert lines[0].endswith("movi r1, #3")
    assert lines[0].startswith("0x00010000:")


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_disassemble_is_total(word):
    text = disassemble(word)
    assert isinstance(text, str) and text


def test_disassembly_reassembles_to_same_word():
    """Non-control instructions round-trip through the assembler."""
    for op, kwargs in [
        (Op.ADD, dict(rd=1, rs1=2, rs2=3)),
        (Op.ADDI, dict(rd=4, rs1=5, imm=-7)),
        (Op.MOVI, dict(rd=6, imm=100)),
        (Op.LDR, dict(rd=7, rs1=8, imm=12)),
        (Op.STR, dict(rd=9, rs1=10, imm=-4)),
        (Op.EOR, dict(rd=11, rs1=12, rs2=13)),
    ]:
        word = encode(op, **kwargs)
        source = f"_start:\n    {disassemble(word)}\n"
        program = assemble(source)
        assert int.from_bytes(program.text[:4], "little") == word


# -- tracer ------------------------------------------------------------------------


def run_traced(source):
    system = System()
    system.load(assemble(source))
    tracer = CommitTracer(system.core)
    result = system.run(1_000_000)
    return tracer, result


def test_tracer_records_committed_instructions():
    tracer, result = run_traced(PROGRAM)
    assert result.status is RunStatus.FINISHED
    assert len(tracer.records) == result.instructions
    assert tracer.records[0].asm == "movi r1, #3"
    assert tracer.records[0].dest == "r1"
    assert tracer.records[0].value == 3
    add = next(r for r in tracer.records if r.asm.startswith("add"))
    assert add.value == 7


def test_tracer_histogram():
    tracer, _ = run_traced(PROGRAM)
    histogram = tracer.mnemonic_histogram()
    assert histogram["movi"] == 2
    # The exiting SYS terminates the run before being counted/recorded.
    assert histogram["sys"] == 1


SLED_PROGRAM = "_start:\n    MOVI r1, #3\n" + "    NOP\n" * 40 + """\
    ADDI r2, r1, #1
    MOV  r0, r2
    SYS  #3
    SYS  #0
"""


def test_tracer_divergence_detection():
    golden, _ = run_traced(SLED_PROGRAM)

    system = System()
    system.load(assemble(SLED_PROGRAM))
    tracer = CommitTracer(system.core)
    # Corrupt r1 after the MOVI commits; the consuming ADDI sits behind
    # the NOP sled and has not issued yet.
    while system.core.stats.committed < 2:
        system.step()
    system.core.prf.flip_bit(system.core.rename_map[1], 3)
    system.run(1_000_000)

    divergence = tracer.first_divergence(golden)
    assert divergence is not None
    assert tracer.records[divergence].asm.startswith("addi")
    assert tracer.records[divergence].value == (3 ^ 8) + 1


def test_tracer_identical_runs_have_no_divergence():
    first, _ = run_traced(PROGRAM)
    second, _ = run_traced(PROGRAM)
    assert first.first_divergence(second) is None


def test_tracer_detach_stops_recording():
    system = System()
    system.load(assemble(PROGRAM))
    tracer = CommitTracer(system.core)
    while system.core.stats.committed < 1:
        system.step()
    recorded = len(tracer.records)
    tracer.detach()
    system.run(1_000_000)
    assert len(tracer.records) == recorded


def test_tracer_format():
    tracer, _ = run_traced(PROGRAM)
    text = tracer.format_trace(count=3)
    assert "movi r1, #3" in text
    assert "r1=0x00000003" in text
