"""Golden-run determinism across cold process boundaries.

Two fresh Python subprocesses — with *different* hash seeds, to flush out
any dict-ordering dependence — must produce bit-identical golden runs:
same cycle count, same retired instructions, same output bytes, same
stats, and the same SHA-256 fingerprint over the complete final machine
state.  Everything the campaign caches or compares downstream rests on
this property.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

SCRIPT = """
import json
from repro.core.campaign import golden_run
from repro.cpu.system import System
from repro.verify.invariants import state_fingerprint
from repro.workloads import get_workload

workload = get_workload("susan_c")
golden = golden_run(workload)
system = System()
system.load(workload.program())
system.run(4 * golden.cycles)
print(json.dumps({
    "cycles": golden.cycles,
    "instructions": golden.instructions,
    "output": golden.output.hex(),
    "exit_code": golden.exit_code,
    "stats": golden.stats,
    "fingerprint": state_fingerprint(system),
}, sort_keys=True))
"""


def _cold_run(hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    proc = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        check=True,
    )
    return json.loads(proc.stdout)


def test_golden_run_is_bit_identical_across_cold_processes():
    first = _cold_run("0")
    second = _cold_run("1")
    assert first == second
    assert first["cycles"] > 0
    assert first["instructions"] > 0
    assert len(first["fingerprint"]) == 64


def test_in_process_golden_matches_subprocess():
    from repro.core.campaign import golden_run
    from repro.workloads import get_workload

    cold = _cold_run("2")
    warm = golden_run(get_workload("susan_c"))
    assert warm.cycles == cold["cycles"]
    assert warm.instructions == cold["instructions"]
    assert warm.output.hex() == cold["output"]
    assert warm.stats == cold["stats"]


SMP_SCRIPT = """
import json
from repro.core.campaign import golden_run
from repro.cpu.smp import SMPSystem
from repro.verify.invariants import smp_state_fingerprint
from repro.workloads import get_workload

workload = get_workload("crc32_p")
golden = golden_run(workload, cores=2)
smp = SMPSystem(ncores=2)
smp.load(workload.program_for(2))
smp.run(4 * golden.cycles)
print(json.dumps({
    "cycles": golden.cycles,
    "instructions": golden.instructions,
    "output": golden.output.hex(),
    "exit_code": golden.exit_code,
    "fingerprint": smp_state_fingerprint(smp),
}, sort_keys=True))
"""


def _cold_smp_run(hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    proc = subprocess.run(
        [sys.executable, "-c", SMP_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        check=True,
    )
    return json.loads(proc.stdout)


def test_multi_core_golden_run_is_bit_identical_across_cold_processes():
    """The deterministic interleaver holds across process boundaries too:
    two cold 2-core golden runs agree on the complete final machine state,
    not just the architectural output."""
    first = _cold_smp_run("0")
    second = _cold_smp_run("1")
    assert first == second
    assert first["cycles"] > 0
    assert len(first["fingerprint"]) == 64

    from repro.core.campaign import golden_run
    from repro.workloads import get_workload

    warm = golden_run(get_workload("crc32_p"), cores=2)
    assert warm.cycles == first["cycles"]
    assert warm.output.hex() == first["output"]
