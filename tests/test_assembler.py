"""Two-pass assembler: syntax, labels, pseudo-instructions, directives."""

import struct

import pytest

from repro.errors import AsmError
from repro.isa.assembler import assemble
from repro.isa.encoding import decode, encode
from repro.isa.opcodes import Op
from repro.isa.program import DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE


def words(program):
    return list(struct.unpack(f"<{len(program.text) // 4}I", program.text))


def test_simple_program():
    prog = assemble("""
    .text
    _start:
        MOVI r0, #5
        ADDI r0, r0, #1
        HALT
    """)
    ws = words(prog)
    assert ws[0] == encode(Op.MOVI, rd=0, imm=5)
    assert ws[1] == encode(Op.ADDI, rd=0, rs1=0, imm=1)
    assert ws[2] == encode(Op.HALT)
    assert prog.entry == DEFAULT_TEXT_BASE


def test_labels_and_branches():
    prog = assemble("""
    loop:
        ADDI r1, r1, #1
        BNE r1, r2, loop
        B loop
    """)
    ws = words(prog)
    # BNE at pc+4 jumping back one word.
    assert decode(ws[1]).imm == -1
    assert decode(ws[2]).imm == -2


def test_forward_branch():
    prog = assemble("""
        BEQZ r0, done
        NOP
        NOP
    done:
        HALT
    """)
    assert decode(words(prog)[0]).imm == 3


def test_data_section_and_la():
    prog = assemble("""
    .text
        LA r1, table
        LDR r2, [r1, #4]
        HALT
    .data
    table: .word 10, 20, 30
    """)
    assert prog.symbols["table"] == DEFAULT_DATA_BASE
    assert struct.unpack("<3I", prog.data) == (10, 20, 30)
    ws = words(prog)
    # LA expands to LUI+ORRI holding the data base address.
    assert decode(ws[0]).op is Op.LUI
    assert decode(ws[1]).op is Op.ORRI


def test_word_directive_resolves_labels():
    prog = assemble("""
    .text
    main:
        HALT
    .data
    ptr: .word main
    """)
    assert struct.unpack("<I", prog.data)[0] == prog.symbols["main"]


def test_byte_space_align():
    prog = assemble("""
    .text
        HALT
    .data
    b: .byte 1, 2, 3
       .align 4
    buf: .space 8
    """)
    assert prog.data[:3] == bytes([1, 2, 3])
    assert len(prog.data) == 12
    assert prog.symbols["buf"] == DEFAULT_DATA_BASE + 4


def test_movw_small_and_large():
    prog = assemble("""
        MOVW r1, #100
        MOVW r2, #0x12345678
        HALT
    """)
    ws = words(prog)
    assert decode(ws[0]).op is Op.MOVI
    assert decode(ws[1]).op is Op.LUI
    assert decode(ws[2]).op is Op.ORRI
    assert decode(ws[1]).imm == 0x1234
    assert decode(ws[2]).imm == 0x5678


def test_movw_negative_one_is_single_word():
    prog = assemble("""
        MOVW r1, #4294967295
        HALT
    """)
    ws = words(prog)
    assert decode(ws[0]).op is Op.MOVI
    assert decode(ws[0]).imm == -1


def test_pseudo_mov_and_ret():
    prog = assemble("""
        MOV r1, r2
        RET
    """)
    ws = words(prog)
    assert decode(ws[0]).op is Op.ADDI and decode(ws[0]).imm == 0
    assert decode(ws[1]).op is Op.JR and decode(ws[1]).rs1 == 14


def test_memory_operands():
    prog = assemble("""
        LDR r1, [sp]
        STR r2, [sp, #-8]
        LDRB r3, [r4, #1]
        HALT
    """)
    ws = words(prog)
    assert decode(ws[0]).imm == 0 and decode(ws[0]).rs1 == 13
    assert decode(ws[1]).imm == -8
    assert decode(ws[2]).op is Op.LDRB


def test_comments_and_blank_lines():
    prog = assemble("""
    ; full-line comment
        NOP   ; trailing comment
        // another comment style
        HALT
    """)
    assert len(words(prog)) == 2


def test_entry_prefers_start_over_main():
    prog = assemble("""
    main:
        NOP
    _start:
        HALT
    """)
    assert prog.entry == prog.symbols["_start"]


def test_duplicate_label_rejected():
    with pytest.raises(AsmError, match="duplicate"):
        assemble("x:\n NOP\nx:\n HALT\n")


def test_undefined_symbol_rejected():
    with pytest.raises(AsmError, match="undefined"):
        assemble("B nowhere\n")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AsmError, match="unknown mnemonic"):
        assemble("FROB r1, r2\n")


def test_wrong_operand_count_rejected():
    with pytest.raises(AsmError, match="expects"):
        assemble("ADD r1, r2\n")


def test_instruction_in_data_section_rejected():
    with pytest.raises(AsmError, match="outside .text"):
        assemble(".data\nNOP\n")


def test_branch_out_of_range_rejected():
    source = "BEQ r0, r1, far\n" + "NOP\n" * 40000 + "far: HALT\n"
    with pytest.raises(AsmError, match="out of range"):
        assemble(source)
