"""CSV export of campaign results."""

import csv
import io

import pytest

from repro.core.avf import ClassCounts
from repro.core.campaign import CampaignResult, CellResult
from repro.core.export import (
    cells_to_csv,
    fit_to_csv,
    node_avf_to_csv,
    summary_to_csv,
    weighted_avf_to_csv,
)
from repro.core.technology import TECHNOLOGY_NODES


def small_result():
    cells = []
    for workload, cycles in (("alpha", 1000), ("beta", 3000)):
        for component in ("l1d", "itlb"):
            for cardinality in (1, 2, 3):
                cells.append(CellResult(
                    workload=workload, component=component,
                    cardinality=cardinality,
                    counts=ClassCounts(
                        masked=90 - 10 * cardinality,
                        sdc=5 * cardinality, crash=5 * cardinality,
                    ),
                    golden_cycles=cycles,
                ))
    return CampaignResult(cells)


def rows(text):
    return list(csv.DictReader(io.StringIO(text)))


def test_cells_csv_round_trips_counts():
    parsed = rows(cells_to_csv(small_result()))
    assert len(parsed) == 12
    first = parsed[0]
    assert first["workload"] == "alpha"
    total = sum(int(first[k]) for k in
                ("masked", "sdc", "crash", "timeout", "assertion"))
    assert total == 90
    assert float(first["avf"]) == pytest.approx(
        1 - int(first["masked"]) / total, abs=1e-5
    )


def test_cells_csv_is_sorted_and_stable():
    first = cells_to_csv(small_result())
    second = cells_to_csv(small_result())
    assert first == second
    workloads = [r["workload"] for r in rows(first)]
    assert workloads == sorted(workloads)


def test_weighted_avf_csv():
    parsed = rows(weighted_avf_to_csv(small_result()))
    assert len(parsed) == 2 * 3  # components x cardinalities
    by_key = {(r["component"], r["cardinality"]): float(r["weighted_avf"])
              for r in parsed}
    # All workloads share the same counts here, so the weighted AVF equals
    # the plain AVF of any cell.
    assert by_key[("l1d", "1")] == pytest.approx(1 - 80 / 90, abs=1e-5)
    assert by_key[("l1d", "3")] > by_key[("l1d", "1")]


def test_node_avf_csv_covers_all_nodes():
    parsed = rows(node_avf_to_csv(small_result()))
    assert len(parsed) == 2 * len(TECHNOLOGY_NODES)
    at_250 = [r for r in parsed if r["node"] == "250nm"]
    for row in at_250:
        assert float(row["aggregate_avf"]) == pytest.approx(
            float(row["single_bit_avf"]), abs=1e-5
        )


def test_summary_csv_carries_schema_and_incidents():
    result = small_result()
    result.incidents = 7
    parsed = rows(summary_to_csv(result))
    assert len(parsed) == 1
    row = parsed[0]
    assert int(row["schema"]) >= 2
    assert int(row["cells"]) == 12
    assert int(row["incidents"]) == 7
    assert int(row["total_injections"]) == sum(
        cell.counts.total for cell in result.cells
    )


def test_result_json_schema_round_trip_and_legacy_load():
    import json

    from repro.core.campaign import RESULT_SCHEMA

    result = small_result()
    result.incidents = 3
    restored = CampaignResult.from_json(result.to_json())
    assert restored.incidents == 3
    assert restored.schema == RESULT_SCHEMA

    # A pre-schema blob (cells only) must still load, defaulting the meta.
    legacy = json.dumps(
        {"cells": [cell.as_dict() for cell in result.cells]}
    )
    old = CampaignResult.from_json(legacy)
    assert old.incidents == 0
    assert old.schema == 1
    assert len(old) == len(result)


def test_fit_csv_decomposition_sums():
    parsed = rows(fit_to_csv(small_result()))
    assert [r["node"] for r in parsed] == list(TECHNOLOGY_NODES)
    for row in parsed:
        assert float(row["fit_total"]) == pytest.approx(
            float(row["fit_single_only"]) + float(row["fit_multibit"]),
            abs=2e-6,  # 6-decimal CSV rounding
        )
    assert float(parsed[0]["multibit_share"]) == 0.0
    assert float(parsed[-1]["multibit_share"]) > 0.0
