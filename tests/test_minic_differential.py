"""Differential testing: random MiniC expressions vs a Python evaluator.

Hypothesis builds random arithmetic/logical expression trees; each is
compiled, simulated on the full machine, and the printed value is compared
with a Python evaluation under C semantics (32-bit wrap, truncating
division, arithmetic shift).  This fuzzes the entire stack — parser,
codegen register allocation/spilling, encoder, OoO core, caches — far
beyond what hand-written cases reach.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernel.status import RunStatus
from repro.minic import compile_source
from repro.cpu.system import run_program
from repro.workloads.base import asr, s32, sdiv, smod, u32

# -- expression tree -----------------------------------------------------------

_BINOPS = ["+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%",
           "<", ">", "<=", ">=", "==", "!=", "&&", "||"]


class _DivZero(Exception):
    """Raised when the evaluated path divides by zero (-> CPU crash)."""


class Node:
    __slots__ = ("op", "kids", "value")

    def __init__(self, op, kids=(), value=0):
        self.op = op
        self.kids = kids
        self.value = value

    def render(self) -> str:
        if self.op == "lit":
            return str(self.value)
        if self.op == "var":
            return f"v{self.value}"
        if self.op in ("-u", "!", "~"):
            return f"({self.op[0]}{self.kids[0].render()})"
        return f"({self.kids[0].render()} {self.op} {self.kids[1].render()})"

    def evaluate(self, env) -> int:
        if self.op == "lit":
            return s32(self.value)
        if self.op == "var":
            return s32(env[self.value])
        if self.op == "-u":
            return s32(-self.kids[0].evaluate(env))
        if self.op == "!":
            return 0 if self.kids[0].evaluate(env) else 1
        if self.op == "~":
            return s32(~self.kids[0].evaluate(env))
        # Short-circuit operators evaluate like MiniC: the right-hand side
        # (and any division by zero inside it) may never run.
        if self.op == "&&":
            if not self.kids[0].evaluate(env):
                return 0
            return int(bool(self.kids[1].evaluate(env)))
        if self.op == "||":
            if self.kids[0].evaluate(env):
                return 1
            return int(bool(self.kids[1].evaluate(env)))
        a = self.kids[0].evaluate(env)
        b = self.kids[1].evaluate(env)
        op = self.op
        if op == "+":
            return s32(a + b)
        if op == "-":
            return s32(a - b)
        if op == "*":
            return s32(a * b)
        if op == "&":
            return s32(u32(a) & u32(b))
        if op == "|":
            return s32(u32(a) | u32(b))
        if op == "^":
            return s32(u32(a) ^ u32(b))
        if op == "<<":
            return s32(u32(a) << (u32(b) & 31))
        if op == ">>":
            return s32(asr(u32(a), u32(b) & 31))
        if op == "/":
            if b == 0:
                raise _DivZero
            return s32(sdiv(a, b))
        if op == "%":
            if b == 0:
                raise _DivZero
            return s32(smod(a, b))
        if op == "<":
            return int(a < b)
        if op == ">":
            return int(a > b)
        if op == "<=":
            return int(a <= b)
        if op == ">=":
            return int(a >= b)
        if op == "==":
            return int(a == b)
        if op == "!=":
            return int(a != b)
        raise AssertionError(op)


def _trees(depth):
    leaf = st.one_of(
        st.builds(lambda v: Node("lit", value=v),
                  st.integers(min_value=-1000, max_value=1000)),
        st.builds(lambda i: Node("var", value=i),
                  st.integers(min_value=0, max_value=3)),
    )
    if depth == 0:
        return leaf
    sub = _trees(depth - 1)
    return st.one_of(
        leaf,
        st.builds(lambda op, a, b: Node(op, (a, b)),
                  st.sampled_from(_BINOPS), sub, sub),
        st.builds(lambda op, a: Node(op, (a,)),
                  st.sampled_from(["-u", "!", "~"]), sub),
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    tree=_trees(4),
    env=st.lists(
        st.integers(min_value=-10_000, max_value=10_000),
        min_size=4, max_size=4,
    ),
)
def test_random_expression_matches_python(tree, env):
    try:
        expected = tree.evaluate(env)
    except _DivZero:
        expected = None
    source = f"""
        int main() {{
            int v0 = {env[0]};
            int v1 = {env[1]};
            int v2 = {env[2]};
            int v3 = {env[3]};
            putd({tree.render()});
            exit(0);
            return 0;
        }}
    """
    result = run_program(compile_source(source), max_cycles=3_000_000)
    if expected is None:
        # Division or modulo by zero somewhere in the tree.
        assert result.status is RunStatus.CRASH_PROCESS
        return
    assert result.status is RunStatus.FINISHED, (
        result.status, result.crash_reason, result.detail, tree.render()
    )
    assert result.output == f"{expected}\n".encode(), tree.render()
