"""N-core SMP simulation: scheduler, thread model, propagation, campaigns.

The contracts under test (DESIGN.md §13):

* the deterministic-interleaving scheduler makes multi-core runs bit-exact
  replayable (equal ``smp_state_fingerprint`` across independent runs);
* the thread model (SPAWN/COREID/NCORES + the greedy-spawn fallback) makes
  parallel workloads produce identical architectural output at every core
  count, including 1;
* a fault injected into the shared L2 propagates to consuming cores — the
  cross-core propagation matrix shows an "observed" verdict on a core that
  never executed the faulting access;
* the campaign layer's ``--cores`` knob keys its own cache cells while
  ``--cores 1`` stays byte-identical to a run predating the flag.
"""

import dataclasses

import pytest

from repro.core.campaign import (
    CampaignConfig,
    golden_run,
    run_campaign,
    run_cell,
    run_one_injection,
)
from repro.core.faults import FaultMask
from repro.core.generator import MultiBitFaultGenerator
from repro.core.supervisor import Supervisor
from repro.cpu.config import DEFAULT_CONFIG
from repro.cpu.smp import MAX_CORES, SMPSystem, run_smp_program
from repro.errors import ConfigError
from repro.isa.assembler import assemble
from repro.kernel.status import RunStatus
from repro.mem.paging import PAGE_SHIFT
from repro.verify.differential import run_smp_differential, verify_workload
from repro.verify.invariants import smp_state_fingerprint
from repro.verify.propagation import run_propagation
from repro.workloads import get_workload

#: Core 0 touches ``input`` (caching its line in the shared L2), spawns a
#: worker, and waits; the worker recomputes from ``input`` and publishes
#: through ``result``/``flag``.  On one core the spawn fails and the main
#: thread computes inline — same output either way.
PRODUCER_CONSUMER = """
_start:
    LA   r4, input
    LDR  r10, [r4, #0]
    LA   r0, worker
    MOVI r1, #0
    SYS  #4
    MOVW r5, #0xFFFFFFFF
    BEQ  r0, r5, inline
    LA   r6, flag
join:
    LDR  r7, [r6, #0]
    BEQ  r7, r8, join
    B    done
inline:
    BL   compute
done:
    LA   r6, result
    LDR  r0, [r6, #0]
    SYS  #1
    MOVI r0, #0
    SYS  #0

worker:
    BL   compute
    HALT

compute:
    LA   r3, input
    LDR  r1, [r3, #0]
    LDR  r2, [r3, #4]
    ADD  r1, r1, r2
    LA   r3, result
    STR  r1, [r3, #0]
    LA   r3, flag
    MOVI r2, #1
    AMOADD r9, r3, r2
    RET

.data
input:  .word 17, 25
result: .word 0
flag:   .word 0
"""

EXPECTED = b"0000002a\n"  # 17 + 25


def test_spawn_join_program_runs_on_two_cores():
    result = run_smp_program(assemble(PRODUCER_CONSUMER), ncores=2)
    assert result.status is RunStatus.FINISHED
    assert result.output == EXPECTED
    assert result.exit_code == 0


def test_single_core_spawn_fails_and_falls_back_inline():
    result = run_smp_program(assemble(PRODUCER_CONSUMER), ncores=1)
    assert result.status is RunStatus.FINISHED
    assert result.output == EXPECTED


def test_ncores_bounds_are_enforced():
    with pytest.raises(ConfigError, match="ncores"):
        SMPSystem(ncores=0)
    with pytest.raises(ConfigError, match="ncores"):
        SMPSystem(ncores=MAX_CORES + 1)


def test_injectable_targets_alias_core0_plus_shared_l2():
    smp = SMPSystem(ncores=2)
    targets = smp.injectable_targets()
    # The six standard names mean the same cell at every core count.
    assert targets["l2"] is smp.l2
    assert targets["l1d"] is smp.cores[0].l1d
    assert targets["regfile"] is smp.cores[0].pipe.prf
    # Every core's private structures stay reachable for targeted runs.
    assert targets["c1.l1d"] is smp.cores[1].l1d
    assert targets["c1.regfile"] is smp.cores[1].pipe.prf


def test_scheduler_replays_bit_exactly():
    fingerprints = []
    for _ in range(2):
        smp = SMPSystem(ncores=4)
        smp.load(assemble(PRODUCER_CONSUMER))
        result = smp.run(max_cycles=1_000_000)
        assert result.status is RunStatus.FINISHED
        fingerprints.append(smp_state_fingerprint(smp))
    assert fingerprints[0] == fingerprints[1]
    assert len(fingerprints[0]) == 64


def test_parallel_workload_output_invariant_across_core_counts():
    workload = get_workload("crc32_p")
    cycles = {}
    for cores in (1, 2, 4):
        result = run_smp_program(
            workload.program_for(cores), ncores=cores,
        )
        assert result.status is RunStatus.FINISHED
        assert result.output == workload.expected_output
        cycles[cores] = result.cycles
    # The point of spawning: real work moved off core 0.
    assert cycles[4] < cycles[1]


def test_smp_differential_lockstep_with_audit():
    report = run_smp_differential(
        assemble(PRODUCER_CONSUMER),
        dataclasses.replace(DEFAULT_CONFIG, check_invariants=True),
        cores=2,
        audit=True,
    )
    assert report.result.status is RunStatus.FINISHED
    assert report.result.output == EXPECTED
    assert report.committed > 0


def test_verify_workload_under_smp_oracle():
    verify_workload(get_workload("crc32_p"), cores=2)


def _l2_mask_for_symbol(program, symbol, bit):
    """A callable mask flipping *bit* of *symbol*'s word in the shared L2."""
    vaddr = program.symbols[symbol]

    def factory(smp):
        entry = smp.page_table.lookup(vaddr >> PAGE_SHIFT)
        paddr = (entry[0] << PAGE_SHIFT) | (vaddr & ((1 << PAGE_SHIFT) - 1))
        hit = smp.l2.probe(paddr)
        if hit is None:
            raise ConfigError("line not resident in L2 at inject time")
        row, off = hit
        col = off * 8 + bit
        return FaultMask("l2", ((row, col),), (row, col), (1, 1))

    return factory


def test_cross_core_propagation_through_shared_l2():
    """The acceptance scenario: a core observes a fault it never caused.

    Core 0 is the only core that executed the access which cached
    ``input`` in the shared L2; the injected flip is observed by the
    worker core when its own miss path reads through the corrupt line.
    """
    program = assemble(PRODUCER_CONSUMER)
    mask = _l2_mask_for_symbol(program, "input", 3)  # 17 ^ 8 = 25
    report = None
    for cycle in (100, 120, 150, 80, 60):
        try:
            report = run_propagation(program, mask, cycle, cores=4)
        except ConfigError:
            continue  # line not yet (or no longer) resident; try another
        if 1 in report.observed_cores():
            break
    assert report is not None, "no inject cycle found the line resident"
    worker = report.row(1)
    assert worker.verdict == "observed"
    assert worker.divergence_index is not None
    # Cores 2 and 3 never ran a thread: nothing to observe.
    assert {2, 3} <= set(report.masked_cores())
    # The corruption reached the architectural output end to end.
    assert report.golden.output == EXPECTED
    assert report.faulty.output != report.golden.output


# -- campaign integration -----------------------------------------------------


def test_cell_keys_unchanged_at_one_core_and_distinct_beyond():
    base = CampaignConfig(workloads=("crc32",), samples=2)
    one = dataclasses.replace(base, cores=1)
    two = dataclasses.replace(base, cores=2)
    key = base.cell_key("crc32", "regfile", 1)
    assert one.cell_key("crc32", "regfile", 1) == key
    assert two.cell_key("crc32", "regfile", 1) != key


def test_cores1_campaign_is_byte_identical():
    base = CampaignConfig(
        workloads=("crc32",), components=("regfile",), cardinalities=(1,),
        samples=2,
    )
    explicit = dataclasses.replace(base, cores=1)
    assert run_campaign(base).to_json() == run_campaign(explicit).to_json()


def test_two_core_supervised_verify_campaign_completes():
    config = CampaignConfig(
        workloads=("crc32_p",), components=("l2",), cardinalities=(1,),
        samples=2, cores=2,
    )
    supervisor = Supervisor(strict=True)
    core_cfg = dataclasses.replace(DEFAULT_CONFIG, check_invariants=True)
    result = run_campaign(
        config, core_cfg=core_cfg, supervisor=supervisor, verify=True,
    )
    cell = result.cell("crc32_p", "l2", 1)
    assert cell.counts.total == 2
    assert supervisor.incident_count == 0
    assert cell.golden_cycles == golden_run(
        get_workload("crc32_p"), core_cfg, cores=2
    ).cycles


def test_smp_cells_reject_pruning_and_checkpoints():
    config = CampaignConfig(
        workloads=("crc32_p",), components=("l2",), cardinalities=(1,),
        samples=1, cores=2,
    )
    with pytest.raises(ConfigError, match="prun"):
        run_cell("crc32_p", "l2", 1, config, prune=True)
    workload = get_workload("crc32_p")
    generator = MultiBitFaultGenerator(seed="smp-test")
    with pytest.raises(ConfigError, match="single-core"):
        run_one_injection(
            workload, "l2", generator, 1, 10, checkpoints=object(), cores=2,
        )
