"""Pipeline stress: resource exhaustion, misprediction storms, odd shapes.

These scenarios push the window structures (ROB/IQ/LSQ/free list) to their
limits and check the machine still computes the architecturally correct
result — the cases where an out-of-order model usually breaks.
"""

import pytest

from repro.isa.assembler import assemble
from repro.kernel.status import RunStatus
from repro.cpu.config import CoreConfig
from repro.cpu.system import System, run_program


def run_asm(source, cfg=None, max_cycles=2_000_000):
    system = System(cfg) if cfg else System()
    system.load(assemble(source))
    return system.run(max_cycles)


def test_free_list_pressure_long_independent_chain():
    """More independent writers in flight than free physical registers."""
    body = "\n".join(
        f"    MOVI r{1 + i % 10}, #{i}" for i in range(120)
    )
    source = f"""
_start:
{body}
    MOVI r0, #119
    SYS  #3
    SYS  #0
"""
    result = run_asm(source)
    assert result.status is RunStatus.FINISHED
    assert result.output == b"119\n"


def test_rob_wraparound_many_instructions():
    source = """
_start:
    MOVI r1, #0
    MOVI r2, #0
loop:
    ADDI r2, r2, #3
    ADDI r2, r2, #-1
    ADDI r1, r1, #1
    MOVI r3, #500
    BLT  r1, r3, loop
    MOV  r0, r2
    SYS  #3
    SYS  #0
"""
    result = run_asm(source)
    assert result.output == b"1000\n"


def test_misprediction_storm_alternating_branches():
    """A data-dependent alternating branch defeats the static predictor."""
    source = """
_start:
    MOVI r1, #0       ; i
    MOVI r2, #0       ; acc
    MOVI r4, #64
loop:
    ANDI r3, r1, #1
    BEQZ r3, even
    ADDI r2, r2, #2
    B    next
even:
    ADDI r2, r2, #1
next:
    ADDI r1, r1, #1
    BLT  r1, r4, loop
    MOV  r0, r2
    SYS  #3
    SYS  #0
"""
    result = run_asm(source)
    assert result.output == b"96\n"
    assert result.stats["mispredicts"] >= 30
    assert result.stats["squashed"] > 0


def test_store_queue_pressure():
    """More stores in flight than SQ entries."""
    stores = "\n".join(
        f"    STR r2, [r1, #{4 * i}]" for i in range(24)
    )
    source = f"""
_start:
    LA   r1, buf
    MOVI r2, #7
{stores}
    LDR  r0, [r1, #92]
    SYS  #3
    SYS  #0
.data
buf: .space 96
"""
    result = run_asm(source)
    assert result.output == b"7\n"


def test_load_queue_pressure():
    loads = "\n".join(
        f"    LDR r{2 + i % 8}, [r1, #{4 * (i % 8)}]" for i in range(24)
    )
    source = f"""
_start:
    LA   r1, tab
{loads}
    LDR  r0, [r1, #28]
    SYS  #3
    SYS  #0
.data
tab: .word 0, 1, 2, 3, 4, 5, 6, 77
"""
    result = run_asm(source)
    assert result.output == b"77\n"


def test_dependent_loads_pointer_chase():
    source = """
_start:
    LA   r1, n0
chase:
    LDR  r2, [r1, #4]
    LDR  r1, [r1]
    BNEZ r1, chase
    MOV  r0, r2
    SYS  #3
    SYS  #0
.data
n0: .word n1, 10
n1: .word n2, 20
n2: .word 0, 30
"""
    result = run_asm(source)
    assert result.output == b"30\n"


def test_narrow_inorder_like_config_correctness():
    cfg = CoreConfig(
        fetch_width=1, rename_width=1, issue_width=1,
        writeback_width=1, commit_width=1,
        rob_entries=4, iq_entries=2, lq_entries=2, sq_entries=2,
    )
    source = """
_start:
    MOVI r1, #6
    MOVI r2, #7
    MUL  r3, r1, r2
    MOV  r0, r3
    SYS  #3
    SYS  #0
"""
    wide = run_asm(source)
    narrow = run_asm(source, cfg=cfg)
    assert narrow.output == wide.output == b"42\n"
    assert narrow.cycles > wide.cycles  # no ILP on the narrow machine


def test_wide_config_is_not_slower():
    cfg = CoreConfig(issue_width=8, writeback_width=8, commit_width=8)
    source = """
_start:
    MOVI r1, #0
    MOVI r4, #300
loop:
    ADDI r2, r1, #1
    ADDI r3, r1, #2
    ADDI r5, r1, #3
    ADDI r1, r1, #1
    BLT  r1, r4, loop
    SYS  #0
"""
    base = run_asm(source)
    wide = run_asm(source, cfg=cfg)
    assert wide.status is RunStatus.FINISHED
    assert wide.cycles <= base.cycles


def test_deep_call_chain_within_stack():
    source = """
_start:
    MOVI r0, #40
    BL   down
    SYS  #3
    SYS  #0
down:
    ADDI sp, sp, #-8
    STR  lr, [sp]
    BEQZ r0, base
    ADDI r0, r0, #-1
    BL   down
    ADDI r0, r0, #1
base:
    LDR  lr, [sp]
    ADDI sp, sp, #8
    RET
"""
    result = run_asm(source)
    assert result.output == b"40\n"


def test_self_modifying_style_data_read_of_text_is_allowed():
    """Text pages are readable (PC-relative constants), just not writable."""
    source = """
_start:
    MOVW r1, #0x00010000
    LDR  r2, [r1]          ; read the first instruction word
    MOV  r0, r2
    SYS  #1
    SYS  #0
"""
    result = run_asm(source)
    assert result.status is RunStatus.FINISHED
    assert result.output != b"00000000\n"


def test_result_is_deterministic_across_runs():
    from repro.workloads import get_workload

    program = get_workload("stringsearch").program()
    first = run_program(program)
    second = run_program(program)
    assert first.cycles == second.cycles
    assert first.output == second.output
    assert first.stats == second.stats
