"""MiniC lexer."""

import pytest

from repro.errors import CompileError
from repro.minic.lexer import Token, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def test_keywords_vs_identifiers():
    tokens = tokenize("int x while whilex")
    assert [t.kind for t in tokens] == ["kw", "ident", "kw", "ident"]
    assert tokens[3].text == "whilex"


def test_integer_literals():
    tokens = tokenize("42 0x1F 0")
    assert [t.value for t in tokens] == [42, 31, 0]


def test_char_literals_and_escapes():
    tokens = tokenize(r"'a' '\n' '\0' '\\' '\''")
    assert [t.value for t in tokens] == [97, 10, 0, 92, 39]


def test_two_char_operators_lex_greedily():
    assert kinds("<< <= == != && || >>") == [
        "<<", "<=", "==", "!=", "&&", "||", ">>",
    ]
    assert kinds("<<=") == ["<<", "="]


def test_comments_are_skipped():
    tokens = tokenize("a // line comment\n b /* block\n comment */ c")
    assert [t.text for t in tokens] == ["a", "b", "c"]


def test_line_numbers_track_newlines():
    tokens = tokenize("a\nb\n\nc")
    assert [t.line for t in tokens] == [1, 2, 4]


def test_unterminated_block_comment_rejected():
    with pytest.raises(CompileError, match="unterminated"):
        tokenize("/* never closed")


def test_unterminated_char_literal_rejected():
    with pytest.raises(CompileError, match="unterminated"):
        tokenize("'a")


def test_unexpected_character_rejected():
    with pytest.raises(CompileError, match="unexpected character"):
        tokenize("a @ b")


def test_token_repr_mentions_line():
    token = Token("ident", "foo", 0, 7)
    assert "foo" in repr(token) and "7" in repr(token)
