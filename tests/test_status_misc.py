"""Small corners: run results, physical register file, micro-op basics."""

import pytest

from repro.errors import SimAssertion
from repro.isa.encoding import decode, encode
from repro.isa.opcodes import Op
from repro.kernel.status import RunResult, RunStatus
from repro.mem.physmem import PhysicalMemory
from repro.cpu.regfile import PhysRegFile
from repro.cpu.uop import WAITING, MicroOp


def test_run_result_ipc():
    result = RunResult(RunStatus.FINISHED, cycles=200, instructions=100)
    assert result.ipc == pytest.approx(0.5)
    assert result.finished_ok
    empty = RunResult(RunStatus.FINISHED, cycles=0, instructions=0)
    assert empty.ipc == 0.0


def test_run_result_crash_flags():
    result = RunResult(RunStatus.CRASH_PROCESS, cycles=10, instructions=5)
    assert not result.finished_ok


def test_phys_regfile_geometry_and_flips():
    prf = PhysRegFile(56, 10)
    assert prf.inject_rows == 66
    assert prf.inject_cols == 32
    assert prf.inject_name == "regfile"
    prf.values[7] = 0b1010
    prf.flip_bit(7, 0)
    assert prf.values[7] == 0b1011
    assert prf.read_bit(7, 0) == 1
    prf.flip_bit(7, 0)
    assert prf.values[7] == 0b1010


def test_phys_regfile_misc_registers():
    prf = PhysRegFile(56, 10)
    prf.write_misc(0, 0x1_2345_6789)  # wraps to 32 bits
    assert prf.read_misc(0) == 0x2345_6789
    assert prf.values[56] == 0x2345_6789


def test_microop_metadata():
    inst = decode(encode(Op.LDR, rd=3, rs1=4, imm=8))
    uop = MicroOp(seq=7, pc=0x1000, inst=inst)
    assert uop.seq == 7
    assert uop.state == WAITING
    assert uop.mem_size == 4
    assert not uop.squashed
    assert "LDR" in repr(uop)


def test_physical_memory_bounds():
    mem = PhysicalMemory(8192)
    mem.write(100, b"\x01\x02")
    assert mem.read(100, 2) == b"\x01\x02"
    with pytest.raises(SimAssertion, match="memory map"):
        mem.read(8191, 2)
    with pytest.raises(SimAssertion):
        mem.fetch_line(8192, 32)
    with pytest.raises(ValueError):
        PhysicalMemory(1000)  # not page aligned


def test_physical_memory_line_interface():
    mem = PhysicalMemory(8192, latency=7)
    assert mem.writeback_line(64, b"\xAA" * 32) == 7
    line, latency = mem.fetch_line(64, 32)
    assert bytes(line) == b"\xAA" * 32
    assert latency == 7
