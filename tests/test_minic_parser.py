"""MiniC parser: AST shapes and syntax errors."""

import pytest

from repro.errors import CompileError
from repro.minic.ast_nodes import (
    AssignStmt, Binary, Call, DeclStmt, ForStmt, IfStmt, Index, IntLit,
    ReturnStmt, Unary, VarRef, WhileStmt,
)
from repro.minic.parser import parse


def parse_main_body(body):
    module = parse("int main() { %s }" % body)
    return module.funcs[0].body.stmts


def first_expr(source):
    (stmt,) = parse_main_body(f"return {source};")
    assert isinstance(stmt, ReturnStmt)
    return stmt.value


def test_globals_scalars_and_arrays():
    module = parse("int g = 5; int arr[4] = {1, 2}; byte buf[8];")
    g, arr, buf = module.globals
    assert (g.name, g.size, g.init) == ("g", None, [5])
    assert (arr.size, arr.init) == (4, [1, 2])
    assert (buf.elem_type, buf.size, buf.init) == ("byte", 8, None)


def test_negative_initialisers():
    module = parse("int g = -3; int a[2] = {-1, -2};")
    assert module.globals[0].init == [-3]
    assert module.globals[1].init == [-1, -2]


def test_function_params():
    module = parse("void f(int a, int *p, byte *b) { }")
    assert [p.type for p in module.funcs[0].params] == ["int", "int*", "byte*"]


def test_precedence_mul_over_add():
    expr = first_expr("1 + 2 * 3")
    assert isinstance(expr, Binary) and expr.op == "+"
    assert isinstance(expr.rhs, Binary) and expr.rhs.op == "*"


def test_precedence_shift_between_add_and_compare():
    expr = first_expr("1 + 2 << 3 < 4")
    assert expr.op == "<"
    assert expr.lhs.op == "<<"
    assert expr.lhs.lhs.op == "+"


def test_precedence_bitand_below_equality():
    expr = first_expr("a == b & c == d")
    assert expr.op == "&"
    assert expr.lhs.op == "=="


def test_logical_operators_lowest():
    expr = first_expr("a < b && c < d || e")
    assert expr.op == "||"
    assert expr.lhs.op == "&&"


def test_unary_folding_of_negative_literals():
    expr = first_expr("-5")
    assert isinstance(expr, IntLit) and expr.value == -5
    expr = first_expr("-x")
    assert isinstance(expr, Unary) and expr.op == "-"


def test_array_assignment_vs_expression():
    assign, stmt = parse_main_body("a[i + 1] = 2; f(a[i]);")
    assert isinstance(assign, AssignStmt)
    assert isinstance(assign.target, Index)
    assert isinstance(stmt.expr, Call)


def test_if_else_chain():
    (stmt,) = parse_main_body(
        "if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }"
    )
    assert isinstance(stmt, IfStmt)
    assert isinstance(stmt.els, IfStmt)
    assert stmt.els.els is not None


def test_while_and_for():
    while_stmt, for_stmt = parse_main_body(
        "while (i < 10) { i = i + 1; } "
        "for (int j = 0; j < 4; j = j + 1) { }"
    )
    assert isinstance(while_stmt, WhileStmt)
    assert isinstance(for_stmt, ForStmt)
    assert isinstance(for_stmt.init, DeclStmt)
    assert isinstance(for_stmt.post, AssignStmt)


def test_for_with_empty_clauses():
    (stmt,) = parse_main_body("for (;;) { break; }")
    assert stmt.init is None and stmt.cond is None and stmt.post is None


def test_call_arguments():
    expr = first_expr("f(1, g(2), x)")
    assert isinstance(expr, Call) and len(expr.args) == 3
    assert isinstance(expr.args[1], Call)


def test_index_expression():
    expr = first_expr("a[b[0] + 1]")
    assert isinstance(expr, Index)
    assert isinstance(expr.index, Binary)


def test_missing_semicolon_rejected():
    with pytest.raises(CompileError, match="expected"):
        parse("int main() { x = 1 }")


def test_too_many_params_rejected():
    with pytest.raises(CompileError, match="more than 4"):
        parse("void f(int a, int b, int c, int d, int e) { }")


def test_byte_scalar_rejected():
    with pytest.raises(CompileError, match="byte variables must be arrays"):
        parse("byte b;")


def test_byte_value_param_rejected():
    with pytest.raises(CompileError, match="byte parameters"):
        parse("void f(byte b) { }")


def test_unbalanced_block_rejected():
    with pytest.raises(CompileError):
        parse("int main() { if (x) { }")


def test_too_many_array_initialisers_rejected():
    with pytest.raises(CompileError, match="too many"):
        parse("int a[2] = {1, 2, 3};")
