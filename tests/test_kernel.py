"""Kernel layer: syscalls, loader, memory layout."""

import pytest

from repro.errors import ConfigError
from repro.isa.assembler import assemble
from repro.kernel.layout import MemoryLayout
from repro.kernel.loader import load_program
from repro.kernel.status import CrashReason
from repro.kernel.syscalls import Kernel, Syscall
from repro.mem.paging import PAGE_SIZE, PageTable
from repro.mem.physmem import PhysicalMemory


def test_syscall_putw_format():
    kernel = Kernel()
    kernel.do_syscall(Syscall.PUTW, 0xDEADBEEF, 0, 0)
    assert kernel.output == b"deadbeef\n"


def test_syscall_putd_signed():
    kernel = Kernel()
    kernel.do_syscall(Syscall.PUTD, 0xFFFFFFFF, 0, 0)
    assert kernel.output == b"-1\n"


def test_syscall_putc_raw_byte():
    kernel = Kernel()
    kernel.do_syscall(Syscall.PUTC, 0x141, 0, 0)  # truncates to 0x41
    assert kernel.output == b"A"


def test_syscall_exit_sets_code():
    kernel = Kernel()
    _, exited, crash = kernel.do_syscall(Syscall.EXIT, 42, 0, 0)
    assert exited and crash is None
    assert kernel.exit_code == 42


def test_unknown_syscall_is_a_crash():
    kernel = Kernel()
    _, exited, crash = kernel.do_syscall(999, 0, 0, 0)
    assert not exited
    assert crash is CrashReason.BAD_SYSCALL


def test_output_limit_caps_livelocked_writers():
    kernel = Kernel(output_limit=4)
    for _ in range(10):
        kernel.do_syscall(Syscall.PUTC, ord("x"), 0, 0)
    assert len(kernel.output) <= 5


def make_loaded(source="_start:\n HALT\n"):
    layout = MemoryLayout()
    mem = PhysicalMemory(layout.phys_size)
    table = PageTable()
    program = assemble(source)
    proc = load_program(program, mem, table, layout)
    return proc, mem, table, layout, program


def test_loader_maps_text_data_stack():
    proc, mem, table, layout, program = make_loaded("""
    _start:
        HALT
    .data
    arr: .word 1, 2, 3
    """)
    assert proc.entry_pc == layout.text_base
    assert proc.initial_sp == layout.initial_sp
    assert proc.text_pages >= 1 and proc.data_pages >= 1
    assert proc.stack_pages == layout.stack_pages
    # Text copied into the frame the page table names.
    entry = table.lookup(layout.text_base >> (PAGE_SIZE - 1).bit_length())
    assert entry is not None
    ppn, writable, executable, kernel = entry
    assert executable and not writable and not kernel
    assert mem.read(ppn * PAGE_SIZE, 4) == program.text[:4]


def test_loader_text_readonly_data_writable():
    _, _, table, layout, _ = make_loaded("""
    _start:
        HALT
    .data
    x: .word 9
    """)
    shift = (PAGE_SIZE - 1).bit_length()
    data_entry = table.lookup(layout.data_base >> shift)
    assert data_entry is not None and data_entry[1]  # writable
    stack_entry = table.lookup(layout.stack_base >> shift)
    assert stack_entry is not None and stack_entry[1]


def test_loader_rejects_mismatched_bases():
    layout = MemoryLayout()
    mem = PhysicalMemory(layout.phys_size)
    program = assemble("_start:\n HALT\n", text_base=0x2000, data_base=0x3000)
    with pytest.raises(ConfigError, match="text base"):
        load_program(program, mem, PageTable(), layout)


def test_loader_rejects_empty_text():
    layout = MemoryLayout()
    mem = PhysicalMemory(layout.phys_size)
    program = assemble(".data\nx: .word 1\n")
    with pytest.raises(ConfigError, match="empty"):
        load_program(program, mem, PageTable(), layout)


def test_layout_invariants():
    layout = MemoryLayout()
    layout.validate()
    assert layout.stack_base < layout.stack_top
    assert layout.initial_sp % 8 == 0
    assert layout.first_user_frame * PAGE_SIZE == layout.kernel_reserved
    assert layout.text_base < layout.data_base < layout.stack_base


def test_layout_rejects_unaligned_bases():
    with pytest.raises(ValueError, match="page aligned"):
        MemoryLayout(text_base=0x10001).validate()


def test_layout_rejects_overlapping_sections():
    with pytest.raises(ValueError, match="overlap"):
        MemoryLayout(data_base=0x1_0000, text_base=0x4_0000).validate()
