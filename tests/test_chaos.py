"""The chaos matrix: injected faults must not move a single byte.

These tests drive :func:`repro.core.chaos.run_chaos` in-process over a
small grid and assert the fabric's headline guarantee — results and the
compacted store byte-identical to a serial run — under worker kills,
stalls, dropped/duplicated messages and torn checkpoint writes, plus the
quarantine contract for poison cells and the ``exec.lost_deltas``
telemetry accounting.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core.campaign import CampaignConfig
from repro.core.chaos import build_spec, run_chaos
from repro.core.executor import ResiliencePolicy
from repro.core.parallel import run_campaign_parallel
from repro.core.supervisor import IncidentJournal, Supervisor
from repro.errors import IncidentBudgetExceeded

CONFIG = CampaignConfig(
    workloads=("crc32",),
    components=("regfile", "itlb"),
    cardinalities=(1,),
    samples=3,
    seed=0,
)

#: The harness default, minus sleeps: sub-second heartbeats and retries
#: so escalation happens in test time, speculation off so stalls are
#: escalated rather than out-raced.
POLICY = ResiliencePolicy(
    heartbeat_interval=0.05,
    hang_timeout=1.0,
    grace_period=0.5,
    retry_base_delay=0.02,
    retry_max_delay=0.2,
    speculate=False,
)


def _kinds(outcome):
    return [incident.kind for incident in outcome.incidents]


def test_chaos_matrix_is_byte_identical(tmp_path):
    report = run_chaos(
        CONFIG,
        scenarios=("kill", "drop", "dup", "torn"),
        jobs=2, seed=0, workdir=tmp_path, policy=POLICY,
    )
    by_name = {outcome.scenario: outcome for outcome in report.outcomes}
    assert report.ok, {
        name: outcome.detail for name, outcome in by_name.items()
    }
    # The kill scenario must have actually exercised the recovery path:
    # journalled crashes, journalled retries, nothing swept under the rug.
    kill_kinds = _kinds(by_name["kill"])
    assert "worker-crash" in kill_kinds
    assert "retry" in kill_kinds
    retry = next(
        incident for incident in by_name["kill"].incidents
        if incident.kind == "retry"
    )
    assert retry.details["attempt"] >= 1
    assert retry.details["cause"] == "worker-crash"
    assert retry.details["backoff"] > 0
    # The torn scenario must have died mid-write and restarted at least
    # once; recovery went through journal replay on a torn journal.
    assert by_name["torn"].restarts >= 1
    # Incident journals land on disk for the operator.
    assert (tmp_path / "kill" / "incidents.jsonl").exists()


def test_chaos_stall_escalates_and_stays_identical(tmp_path):
    report = run_chaos(
        CONFIG, scenarios=("stall",), jobs=2, seed=0,
        workdir=tmp_path, policy=POLICY,
    )
    outcome = report.outcomes[0]
    assert outcome.ok, outcome.detail
    kinds = _kinds(outcome)
    assert "worker-hang" in kinds  # soft-cancel → kill actually fired
    retry = next(
        incident for incident in outcome.incidents
        if incident.kind == "retry"
    )
    assert retry.details["cause"] == "worker-hang"


def test_chaos_net_matrix_on_socket_backend_is_byte_identical(tmp_path):
    """The distributed failure modes: connection drop mid-cell, partition
    during the checkpoint stream, corrupted frame, stale-epoch rejoin and
    duplicate delivery — every one byte-identical to serial."""
    # Network faults surface as instant EOF, so hang escalation is not
    # part of these scenarios — and a tight hang_timeout would misread
    # slow socket-worker process startup under load as a stall.
    policy = ResiliencePolicy(
        heartbeat_interval=0.05,
        hang_timeout=30.0,
        grace_period=0.5,
        retry_base_delay=0.02,
        retry_max_delay=0.2,
        speculate=False,
    )
    report = run_chaos(
        CONFIG,
        scenarios=(
            "disconnect", "partition", "corrupt-frame", "stale-epoch",
            "dup-deliver",
        ),
        jobs=2, seed=0, workdir=tmp_path, policy=policy, backend="socket",
    )
    by_name = {outcome.scenario: outcome for outcome in report.outcomes}
    assert report.ok, {
        name: outcome.detail for name, outcome in by_name.items()
    }
    # A severed connection looks like a crash to the scheduler and must
    # have gone through the reschedule path, not been silently absorbed.
    for scenario in ("disconnect", "partition"):
        kinds = _kinds(by_name[scenario])
        assert "worker-crash" in kinds, (scenario, kinds)
        assert "retry" in kinds, (scenario, kinds)
    # The stale rejoin actually happened: the worker consumed its
    # one-shot marker, so the coordinator saw (and rejected) a join
    # claiming a dead session's epoch before the clean retry succeeded.
    stale_flag = (
        tmp_path / "stale-epoch" / "flags" / "chaos-stale-rejoin.fired"
    )
    assert stale_flag.exists()


def test_chaos_net_scenarios_refuse_non_socket_backends(tmp_path):
    with pytest.raises(ValueError, match="socket"):
        run_chaos(
            CONFIG, scenarios=("disconnect",), jobs=2, seed=0,
            workdir=tmp_path, policy=POLICY, backend="multiprocessing",
        )


def test_expired_lease_is_reclaimed_and_stays_byte_identical(tmp_path):
    """A worker that stops talking (partition-shaped silence) forfeits
    its cell lease: the cell is reclaimed, journalled as lease-expired,
    rescheduled from its last acked checkpoint — and the result bytes
    never move."""
    from repro.core.campaign import run_campaign

    serial = run_campaign(CONFIG)
    # Hang escalation pushed out of reach so the *lease*, not the hang
    # timeout, is what fires on the stalled worker.
    policy = ResiliencePolicy(
        heartbeat_interval=0.05,
        hang_timeout=600.0,
        grace_period=0.5,
        retry_base_delay=0.02,
        retry_max_delay=0.2,
        lease_factor=0.1,
        lease_floor=1.0,
        speculate=False,
    )
    spec = build_spec("stall", CONFIG, 0, tmp_path, stall_duration=30.0)
    supervisor = Supervisor(journal=IncidentJournal())
    result = run_campaign_parallel(
        CONFIG, jobs=2, supervisor=supervisor,
        policy=policy, chaos=spec,
    )
    kinds = [incident.kind for incident in supervisor.journal.incidents]
    assert "lease-expired" in kinds
    expired = next(
        incident for incident in supervisor.journal.incidents
        if incident.kind == "lease-expired"
    )
    assert expired.details["age"] > 0
    assert expired.details["lease"] >= 1.0
    retry = next(
        incident for incident in supervisor.journal.incidents
        if incident.kind == "retry"
        and incident.details["cause"] == "lease-expired"
    )
    assert retry.details["attempt"] >= 1
    # Lease reclaims are bookkeeping, like retries: journalled, never
    # counted against the incident budget (the quarantine/crash that
    # *caused* them is what counts).
    assert result.to_json() == serial.to_json()


def test_chaos_poison_quarantines_then_strict_aborts(tmp_path):
    report = run_chaos(
        CONFIG, scenarios=("poison",), jobs=2, seed=0,
        workdir=tmp_path, policy=POLICY,
    )
    outcome = report.outcomes[0]
    assert outcome.ok, outcome.detail
    kinds = _kinds(outcome)
    assert "poison-cell" in kinds
    # Quarantine is noisy on purpose: each doomed attempt is journalled.
    assert kinds.count("worker-crash") == POLICY.max_attempts


def test_poison_cell_respects_incident_budget(tmp_path):
    spec = build_spec("poison", CONFIG, 0, tmp_path, max_attempts=2)
    supervisor = Supervisor(journal=IncidentJournal(), max_incidents=0)
    with pytest.raises(IncidentBudgetExceeded):
        run_campaign_parallel(
            CONFIG, jobs=2, supervisor=supervisor,
            policy=ResiliencePolicy(
                max_attempts=2, retry_base_delay=0.02, retry_max_delay=0.1,
            ),
            chaos=spec,
        )


def test_worker_death_counts_lost_telemetry_deltas(tmp_path):
    obs.disable()
    telemetry = obs.enable()
    try:
        supervisor = Supervisor(journal=IncidentJournal())
        run_campaign_parallel(
            CONFIG, jobs=2, supervisor=supervisor,
            _crash_spec={
                "cell": ["crc32", "itlb", 1],
                "flag": str(tmp_path / "crashed.flag"),
            },
        )
        crash = supervisor.journal.incidents[0]
        assert crash.kind == "worker-crash"
        assert crash.details["lost_deltas"] >= 1
        assert "telemetry delta(s) lost" in crash.message
        counter = telemetry.metrics.counter("exec.lost_deltas")
        assert counter.value >= crash.details["lost_deltas"]
    finally:
        obs.disable()


def test_retry_incidents_render_in_incidents_cli(tmp_path):
    """Satellite contract: every reschedule is a structured incident an
    operator can pull out of ``repro-campaign incidents --json``."""
    import json

    journal_path = tmp_path / "incidents.jsonl"
    supervisor = Supervisor(journal=IncidentJournal(journal_path))
    run_campaign_parallel(
        CONFIG, jobs=2, supervisor=supervisor,
        _crash_spec={
            "cell": ["crc32", "regfile", 1],
            "flag": str(tmp_path / "crashed.flag"),
        },
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parent.parent / "src"
    ) + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-m", "repro.core.cli", "incidents",
         "--journal", str(journal_path), "--json"],
        env=env, capture_output=True, timeout=60,
    )
    assert out.returncode == 0, out.stderr.decode()
    records = json.loads(out.stdout)
    retries = [r for r in records if r["kind"] == "retry"]
    assert retries and retries[0]["details"]["attempt"] == 1
    assert {r["kind"] for r in records} >= {"worker-crash", "retry"}


def test_incidents_cli_filters_by_type(tmp_path):
    """``incidents --type retry`` narrows both the table and the JSON
    feed to the requested kinds and says so in the summary line."""
    import json

    journal_path = tmp_path / "incidents.jsonl"
    supervisor = Supervisor(journal=IncidentJournal(journal_path))
    run_campaign_parallel(
        CONFIG, jobs=2, supervisor=supervisor,
        _crash_spec={
            "cell": ["crc32", "regfile", 1],
            "flag": str(tmp_path / "crashed.flag"),
        },
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parent.parent / "src"
    ) + os.pathsep + env.get("PYTHONPATH", "")
    base = [sys.executable, "-m", "repro.core.cli", "incidents",
            "--journal", str(journal_path)]

    out = subprocess.run(
        base + ["--type", "retry", "--json"],
        env=env, capture_output=True, timeout=60,
    )
    assert out.returncode == 0, out.stderr.decode()
    records = json.loads(out.stdout)
    assert records and {r["kind"] for r in records} == {"retry"}

    out = subprocess.run(
        base + ["--type", "retry,lease-expired,poison-cell"],
        env=env, capture_output=True, timeout=60,
    )
    assert out.returncode == 0, out.stderr.decode()
    text = out.stdout.decode()
    assert "showing types" in text
    assert "worker-crash" not in text

    out = subprocess.run(
        base + ["--type", "gremlins"],
        env=env, capture_output=True, timeout=60,
    )
    assert out.returncode == 2
    assert "gremlins" in out.stderr.decode()


@pytest.mark.parametrize("backend", ["multiprocessing", "socket"])
def test_cli_sigterm_drains_and_resume_completes(tmp_path, backend):
    """SIGTERM is the operator's Ctrl-C: graceful drain, checkpoint
    flush, exit 143, and a later --resume lands on the reference bytes.

    The socket row is the satellite contract: a distributed coordinator
    drains its TCP workers exactly like local ones."""
    if os.name != "posix":  # pragma: no cover
        pytest.skip("signal delivery is POSIX-only")
    config_args = [
        "--workloads", "stringsearch",
        "--components", "regfile",
        "--cardinalities", "1",
        "--samples", "40",
        "--seed", "0",
        "--checkpoint-every", "2",
    ]
    store = tmp_path / "store.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parent.parent / "src"
    ) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.core.cli", "run", *config_args,
         "--jobs", "2", "--backend", backend, "--store", str(store),
         "--out", str(tmp_path / "ignored.json")],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        start_new_session=True,
    )
    time.sleep(2.0)
    proc.terminate()  # SIGTERM to the parent only, like a supervisor would
    proc.wait(timeout=60)
    if proc.returncode == 0:  # pragma: no cover - machine too fast
        pytest.skip("campaign finished before SIGTERM landed")
    assert proc.returncode == 143
    stderr = proc.stderr.read().decode()
    assert "SIGTERM" in stderr

    out = subprocess.run(
        [sys.executable, "-m", "repro.core.cli", "run", *config_args,
         "--jobs", "2", "--backend", backend, "--store", str(store),
         "--resume", "--out", str(tmp_path / "resumed.json")],
        env=env, capture_output=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr.decode()

    reference = subprocess.run(
        [sys.executable, "-m", "repro.core.cli", "run", *config_args,
         "--out", str(tmp_path / "reference.json")],
        env=env, capture_output=True, timeout=300,
    )
    assert reference.returncode == 0, reference.stderr.decode()
    assert (tmp_path / "resumed.json").read_bytes() == \
        (tmp_path / "reference.json").read_bytes()
