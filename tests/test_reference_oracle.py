"""The in-order reference executor agrees with the OoO pipeline.

Every test assembles a small hand-written program, runs it on both the
full out-of-order system (`run_program`) and the ISA-level oracle
(`ReferenceExecutor`), and asserts the architecturally visible outcome is
identical — status, crash taxonomy, faulting PC, detail string, syscall
output, exit code and retired-instruction count.  Cycle counts are
deliberately *not* compared: the oracle has no pipeline.
"""

import pytest

from repro.cpu.system import run_program
from repro.isa.assembler import assemble
from repro.kernel.status import CrashReason, RunStatus
from repro.verify.reference import ReferenceExecutor

#: The architectural contract both implementations must agree on.
ARCH_FIELDS = (
    "status",
    "crash_reason",
    "crash_pc",
    "detail",
    "exit_code",
    "output",
    "instructions",
)


def run_both(source: str):
    program = assemble(source)
    ooo = run_program(program)
    ref = ReferenceExecutor(program).run()
    for name in ARCH_FIELDS:
        assert getattr(ooo, name) == getattr(ref, name), (
            f"{name}: pipeline={getattr(ooo, name)!r} "
            f"oracle={getattr(ref, name)!r}"
        )
    return ooo, ref


def test_arithmetic_and_output():
    ooo, ref = run_both(
        """
        .text
        _start:
            movi r3, #21
            lsl  r4, r3, r3     ; shift amount masked to 21 & 31
            addi r4, r4, #-2
            mul  r5, r3, r4
            mov  r0, r5
            sys  #1             ; putw r5
            movi r0, #0
            sys  #0             ; exit 0
        """
    )
    assert ooo.status is RunStatus.FINISHED
    assert ooo.exit_code == 0
    assert ooo.output == b"371fffd6\n"


def test_loop_and_memory_roundtrip():
    ooo, _ = run_both(
        """
        .text
        _start:
            la   r1, buf
            movi r2, #5
            movi r3, #0
        loop:
            str  r3, [r1, #0]
            ldr  r4, [r1, #0]
            add  r3, r3, r4
            addi r3, r3, #1
            addi r2, r2, #-1
            bnez r2, loop
            mov  r0, r3
            sys  #1
            movi r0, #0
            sys  #0
        .data
        buf:
            .space 64
        """
    )
    assert ooo.status is RunStatus.FINISHED


def test_byte_memory():
    ooo, _ = run_both(
        """
        .text
        _start:
            la   r1, buf
            movi r3, #0x1A2
            strb r3, [r1, #3]   ; only the low byte lands
            ldrb r4, [r1, #3]
            mov  r0, r4
            sys  #1
            movi r0, #0
            sys  #0
        .data
        buf:
            .space 8
        """
    )
    assert ooo.output == b"000000a2\n"


def test_divide_by_zero_crashes_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            movi r3, #7
            movi r4, #0
            div  r5, r3, r4
            halt
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.DIV_ZERO


def test_misaligned_load_crashes_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            la   r1, buf
            addi r1, r1, #1
            ldr  r2, [r1, #0]
            halt
        .data
        buf:
            .space 8
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.MISALIGNED
    assert "load at" in ooo.detail


def test_misaligned_jump_crashes_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            la   r3, _start
            addi r3, r3, #2
            jr   r3
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.MISALIGNED
    assert "jump target" in ooo.detail


def test_illegal_instruction_crashes_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            .word 0xDEADBEEF
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.ILLEGAL_INSTRUCTION


def test_bad_syscall_crashes_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            sys #57
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.BAD_SYSCALL


def test_unmapped_load_page_faults_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            lui  r3, #0x0FF0    ; far above any mapped segment
            ldr  r4, [r3, #0]
            halt
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.PAGE_FAULT


def test_store_to_text_prot_faults_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            la   r3, _start
            str  r3, [r3, #0]   ; text pages are R+X, never W
            halt
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.PROT_FAULT


def test_commit_stream_matches_retired_count():
    program = assemble(
        """
        .text
        _start:
            movi r3, #3
            movi r4, #4
            add  r0, r3, r4
            sys  #1
            movi r0, #0
            sys  #0
        """
    )
    ref = ReferenceExecutor(program)
    records = list(ref.commit_stream())
    assert ref.result is not None
    # The terminating SYS #0 never retires, so it produces no record.
    assert len(records) == ref.result.instructions
    assert [r.index for r in records] == list(range(len(records)))
    first = records[0]
    assert first.pc == program.entry
    assert "movi" in repr(first) or "MOVI" in repr(first).upper()


def test_oracle_rejects_runaway_programs():
    from repro.errors import VerificationError

    program = assemble(
        """
        .text
        _start:
            b _start
        """
    )
    ref = ReferenceExecutor(program, max_instructions=1_000)
    with pytest.raises(VerificationError, match="instruction budget"):
        ref.run()


def test_amoadd_returns_old_value_and_stores_sum():
    ooo, _ = run_both(
        """
        .text
        _start:
            la     r1, cell
            movi   r2, #5
            amoadd r3, r1, r2   ; r3 = old (7), cell = 12
            mov    r0, r3
            sys    #1
            ldr    r0, [r1, #0]
            sys    #1
            movi   r0, #0
            sys    #0
        .data
        cell:
            .word 7
        """
    )
    assert ooo.output == b"00000007\n0000000c\n"


def test_amoswap_exchanges_atomically():
    ooo, _ = run_both(
        """
        .text
        _start:
            la      r1, cell
            movi    r2, #0x55
            amoswap r3, r1, r2  ; r3 = old (0x99), cell = 0x55
            mov     r0, r3
            sys     #1
            ldr     r0, [r1, #0]
            sys     #1
            movi    r0, #0
            sys     #0
        .data
        cell:
            .word 0x99
        """
    )
    assert ooo.output == b"00000099\n00000055\n"


def test_smp_oracle_matches_multi_core_machine():
    """Self-scheduled SMP oracle vs the 2-core machine: spawn + amo + join."""
    from repro.cpu.smp import run_smp_program
    from repro.verify.reference import SMPReferenceExecutor

    source = """
        .text
        _start:
            la   r0, worker
            movi r1, #40
            sys  #4             ; spawn(worker, 40)
            movw r5, #0xFFFFFFFF
            beq  r0, r5, inline
        join:
            la   r6, flag
            ldr  r7, [r6, #0]
            beqz r7, join
            b    done
        inline:
            movi r0, #40
            bl   work
        done:
            la   r6, cell
            ldr  r0, [r6, #0]
            sys  #1
            movi r0, #0
            sys  #0
        worker:
            bl   work
            halt
        work:
            addi r2, r0, #2
            la   r3, cell
            amoadd r4, r3, r2   ; cell += arg + 2
            la   r3, flag
            movi r2, #1
            amoadd r4, r3, r2
            ret
        .data
        cell:
            .word 0
        flag:
            .word 0
    """
    program = assemble(source)
    for cores in (1, 2):
        machine = run_smp_program(program, ncores=cores)
        oracle = SMPReferenceExecutor(program, ncores=cores).run()
        # The join spin retires a schedule-dependent number of iterations,
        # so instruction counts are comparable only under external
        # scheduling (run_smp_differential); the architectural outcome is
        # interleaving-independent and must agree here too.
        for name in ARCH_FIELDS:
            if name == "instructions" and cores > 1:
                continue
            assert getattr(machine, name) == getattr(oracle, name), (
                f"{cores}-core {name}: machine={getattr(machine, name)!r} "
                f"oracle={getattr(oracle, name)!r}"
            )
        assert machine.output == b"0000002a\n"  # 40 + 2


def test_smp_oracle_spawn_fails_on_single_core():
    """The oracle mirrors the machine's deterministic single-core SPAWN."""
    from repro.verify.reference import SMPReferenceExecutor

    program = assemble(
        """
        .text
        _start:
            la   r0, _start
            movi r1, #0
            sys  #4
            sys  #1             ; print SPAWN's return value
            movi r0, #0
            sys  #0
        """
    )
    result = SMPReferenceExecutor(program, ncores=1).run()
    assert result.output == b"ffffffff\n"
