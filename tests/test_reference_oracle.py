"""The in-order reference executor agrees with the OoO pipeline.

Every test assembles a small hand-written program, runs it on both the
full out-of-order system (`run_program`) and the ISA-level oracle
(`ReferenceExecutor`), and asserts the architecturally visible outcome is
identical — status, crash taxonomy, faulting PC, detail string, syscall
output, exit code and retired-instruction count.  Cycle counts are
deliberately *not* compared: the oracle has no pipeline.
"""

import pytest

from repro.cpu.system import run_program
from repro.isa.assembler import assemble
from repro.kernel.status import CrashReason, RunStatus
from repro.verify.reference import ReferenceExecutor

#: The architectural contract both implementations must agree on.
ARCH_FIELDS = (
    "status",
    "crash_reason",
    "crash_pc",
    "detail",
    "exit_code",
    "output",
    "instructions",
)


def run_both(source: str):
    program = assemble(source)
    ooo = run_program(program)
    ref = ReferenceExecutor(program).run()
    for name in ARCH_FIELDS:
        assert getattr(ooo, name) == getattr(ref, name), (
            f"{name}: pipeline={getattr(ooo, name)!r} "
            f"oracle={getattr(ref, name)!r}"
        )
    return ooo, ref


def test_arithmetic_and_output():
    ooo, ref = run_both(
        """
        .text
        _start:
            movi r3, #21
            lsl  r4, r3, r3     ; shift amount masked to 21 & 31
            addi r4, r4, #-2
            mul  r5, r3, r4
            mov  r0, r5
            sys  #1             ; putw r5
            movi r0, #0
            sys  #0             ; exit 0
        """
    )
    assert ooo.status is RunStatus.FINISHED
    assert ooo.exit_code == 0
    assert ooo.output == b"371fffd6\n"


def test_loop_and_memory_roundtrip():
    ooo, _ = run_both(
        """
        .text
        _start:
            la   r1, buf
            movi r2, #5
            movi r3, #0
        loop:
            str  r3, [r1, #0]
            ldr  r4, [r1, #0]
            add  r3, r3, r4
            addi r3, r3, #1
            addi r2, r2, #-1
            bnez r2, loop
            mov  r0, r3
            sys  #1
            movi r0, #0
            sys  #0
        .data
        buf:
            .space 64
        """
    )
    assert ooo.status is RunStatus.FINISHED


def test_byte_memory():
    ooo, _ = run_both(
        """
        .text
        _start:
            la   r1, buf
            movi r3, #0x1A2
            strb r3, [r1, #3]   ; only the low byte lands
            ldrb r4, [r1, #3]
            mov  r0, r4
            sys  #1
            movi r0, #0
            sys  #0
        .data
        buf:
            .space 8
        """
    )
    assert ooo.output == b"000000a2\n"


def test_divide_by_zero_crashes_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            movi r3, #7
            movi r4, #0
            div  r5, r3, r4
            halt
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.DIV_ZERO


def test_misaligned_load_crashes_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            la   r1, buf
            addi r1, r1, #1
            ldr  r2, [r1, #0]
            halt
        .data
        buf:
            .space 8
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.MISALIGNED
    assert "load at" in ooo.detail


def test_misaligned_jump_crashes_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            la   r3, _start
            addi r3, r3, #2
            jr   r3
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.MISALIGNED
    assert "jump target" in ooo.detail


def test_illegal_instruction_crashes_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            .word 0xDEADBEEF
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.ILLEGAL_INSTRUCTION


def test_bad_syscall_crashes_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            sys #57
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.BAD_SYSCALL


def test_unmapped_load_page_faults_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            lui  r3, #0x0FF0    ; far above any mapped segment
            ldr  r4, [r3, #0]
            halt
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.PAGE_FAULT


def test_store_to_text_prot_faults_identically():
    ooo, _ = run_both(
        """
        .text
        _start:
            la   r3, _start
            str  r3, [r3, #0]   ; text pages are R+X, never W
            halt
        """
    )
    assert ooo.status is RunStatus.CRASH_PROCESS
    assert ooo.crash_reason is CrashReason.PROT_FAULT


def test_commit_stream_matches_retired_count():
    program = assemble(
        """
        .text
        _start:
            movi r3, #3
            movi r4, #4
            add  r0, r3, r4
            sys  #1
            movi r0, #0
            sys  #0
        """
    )
    ref = ReferenceExecutor(program)
    records = list(ref.commit_stream())
    assert ref.result is not None
    # The terminating SYS #0 never retires, so it produces no record.
    assert len(records) == ref.result.instructions
    assert [r.index for r in records] == list(range(len(records)))
    first = records[0]
    assert first.pc == program.entry
    assert "movi" in repr(first) or "MOVI" in repr(first).upper()


def test_oracle_rejects_runaway_programs():
    from repro.errors import VerificationError

    program = assemble(
        """
        .text
        _start:
            b _start
        """
    )
    ref = ReferenceExecutor(program, max_instructions=1_000)
    with pytest.raises(VerificationError, match="instruction budget"):
        ref.run()
