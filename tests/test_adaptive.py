"""CI-driven adaptive sampling: degeneracy, early stopping, invariance.

The driver's contracts: ``ci_target=0`` reproduces the exact-replay
campaign byte-for-byte (no cell can ever meet a zero half-width, so no
budget moves); a loose target stops cells early and never spends more
than the configured budget; and allocation depends only on merged counts,
so any ``jobs`` value produces identical bytes.
"""

import pytest

from repro.core.adaptive import (
    ADAPTIVE_BATCH,
    AdaptiveReport,
    run_campaign_adaptive,
)
from repro.core.campaign import CampaignConfig, run_campaign
from repro.errors import ConfigError


def _config(samples: int = 30, components=("regfile", "itlb")):
    return CampaignConfig(
        workloads=("crc32",), components=components, cardinalities=(1,),
        samples=samples, seed=7,
    )


def test_ci_target_zero_is_byte_identical_to_exact_replay():
    config = _config(samples=30)
    exact = run_campaign(config)
    adaptive = run_campaign_adaptive(config, ci_target=0.0)
    assert adaptive.result.to_json() == exact.to_json()
    assert adaptive.spent_samples == adaptive.baseline_samples
    assert not any(cell.early_stopped for cell in adaptive.cells)


def test_loose_target_stops_early_and_frees_budget():
    config = _config(samples=60)
    events = []
    report = run_campaign_adaptive(
        config, ci_target=0.5, events=events.append
    )
    assert isinstance(report, AdaptiveReport)
    # Every cell meets a +/-0.5 half-width within the first wave.
    for cell in report.cells:
        assert cell.early_stopped
        assert cell.samples == ADAPTIVE_BATCH
        assert cell.half_width <= 0.5
    assert report.spent_samples < report.baseline_samples
    assert report.saved_fraction > 0
    assert any("freed" in message for message in events)


def test_spent_never_exceeds_baseline():
    config = _config(samples=30)
    report = run_campaign_adaptive(config, ci_target=0.08)
    assert report.spent_samples <= report.baseline_samples
    total_counted = sum(
        cell.counts.total for cell in report.result.cells
    )
    assert total_counted == report.spent_samples


def test_jobs_do_not_change_bytes():
    config = _config(samples=30, components=("regfile",))
    serial = run_campaign_adaptive(config, ci_target=0.3)
    parallel = run_campaign_adaptive(config, ci_target=0.3, jobs=2)
    assert parallel.result.to_json() == serial.result.to_json()
    assert parallel.spent_samples == serial.spent_samples


def test_early_stop_prefix_matches_exact_replay_prefix():
    # An early-stopped cell's counts are the exact-replay cell's first n
    # samples — adaptive never changes the draw sequence, only its length.
    config = _config(samples=30, components=("regfile",))
    report = run_campaign_adaptive(config, ci_target=0.5)
    (cell,) = report.cells
    assert cell.early_stopped and cell.samples == ADAPTIVE_BATCH
    prefix_config = _config(samples=ADAPTIVE_BATCH, components=("regfile",))
    exact = run_campaign(prefix_config)
    assert (
        report.result.cell("crc32", "regfile", 1).counts
        == exact.cell("crc32", "regfile", 1).counts
    )


def test_progress_fires_once_per_cell_in_canonical_order():
    config = _config(samples=30)
    seen = []
    run_campaign_adaptive(
        config, ci_target=0.5,
        progress=lambda done, total, cell: seen.append(
            (done, total, cell.component)
        ),
    )
    assert [done for done, _, _ in seen] == [1, 2]
    assert all(total == 2 for _, total, _ in seen)
    assert [component for _, _, component in seen] == ["regfile", "itlb"]


def test_negative_ci_target_rejected():
    with pytest.raises(ConfigError):
        run_campaign_adaptive(_config(), ci_target=-0.1)
