"""MiniC semantic analysis: name resolution and rule enforcement."""

import pytest

from repro.errors import CompileError
from repro.minic.parser import parse
from repro.minic.sema import analyse


def check(source):
    return analyse(parse(source))


def test_valid_program_resolves():
    info = check("""
        int table[4];
        int get(int *p, int i) { return p[i]; }
        int main() { table[0] = 1; return get(table, 0); }
    """)
    assert "main" in info.funcs
    assert info.scopes["get"].params == {"p": "int*", "i": "int"}


def test_missing_main_rejected():
    with pytest.raises(CompileError, match="no main"):
        check("int f() { return 0; }")


def test_main_with_params_rejected():
    with pytest.raises(CompileError, match="no parameters"):
        check("int main(int argc) { return 0; }")


def test_undefined_variable_rejected():
    with pytest.raises(CompileError, match="undefined name"):
        check("int main() { return nope; }")


def test_undefined_function_rejected():
    with pytest.raises(CompileError, match="undefined function"):
        check("int main() { return missing(); }")


def test_arity_mismatch_rejected():
    with pytest.raises(CompileError, match="argument"):
        check("int f(int a) { return a; } int main() { return f(1, 2); }")


def test_void_function_as_value_rejected():
    with pytest.raises(CompileError, match="used"):
        check("void f() { } int main() { return f(); }")


def test_array_as_value_rejected():
    with pytest.raises(CompileError, match="used as a value"):
        check("int a[4]; int main() { return a; }")


def test_assign_to_array_name_rejected():
    with pytest.raises(CompileError, match="cannot assign to array"):
        check("int a[4]; int main() { a = 1; return 0; }")


def test_index_of_scalar_rejected():
    with pytest.raises(CompileError, match="not indexable"):
        check("int g; int main() { return g[0]; }")


def test_pointer_argument_type_checking():
    with pytest.raises(CompileError, match="does not match"):
        check("""
            byte buf[4];
            int f(int *p) { return p[0]; }
            int main() { return f(buf); }
        """)


def test_pointer_argument_must_be_name():
    with pytest.raises(CompileError, match="pointer argument"):
        check("""
            int f(int *p) { return p[0]; }
            int main() { return f(1 + 2); }
        """)


def test_pointer_passthrough_allowed():
    check("""
        int a[4];
        int inner(int *p) { return p[0]; }
        int outer(int *q) { return inner(q); }
        int main() { return outer(a); }
    """)


def test_break_outside_loop_rejected():
    with pytest.raises(CompileError, match="outside a loop"):
        check("int main() { break; return 0; }")


def test_return_value_from_void_rejected():
    with pytest.raises(CompileError, match="void function returns"):
        check("void f() { return 1; } int main() { return 0; }")


def test_bare_return_from_int_rejected():
    with pytest.raises(CompileError, match="returns nothing"):
        check("int f() { return; } int main() { return 0; }")


def test_local_shadowing_parameter_rejected():
    with pytest.raises(CompileError, match="shadows"):
        check("int f(int a) { int a = 1; return a; } int main() { return 0; }")


def test_redeclared_local_reuses_slot():
    info = check("""
        int main() {
            for (int i = 0; i < 2; i = i + 1) { }
            for (int i = 0; i < 3; i = i + 1) { }
            return 0;
        }
    """)
    assert info.scopes["main"].locals == ["i"]


def test_duplicate_global_rejected():
    with pytest.raises(CompileError, match="duplicate"):
        check("int g; int g; int main() { return 0; }")


def test_intrinsic_shadowing_rejected():
    with pytest.raises(CompileError, match="duplicate"):
        check("int putw; int main() { return 0; }")


def test_literal_out_of_range_rejected():
    with pytest.raises(CompileError, match="32-bit"):
        check("int main() { return 4294967296; }")
