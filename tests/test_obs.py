"""Unit tests for the observability subsystem (repro.obs).

Covers the invariants everything else leans on: histogram bucket edges
(Prometheus ``le`` semantics), merge commutativity/associativity,
snapshot-delta round-trips (the worker shipping mechanism), Chrome trace
export shape, ETA tracking with an injected clock, and the schema
validators' ability to actually reject malformed documents.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    deterministic_counters,
    subtract_snapshot,
)
from repro.obs.progress import EtaTracker, format_duration
from repro.obs.schema import validate_chrome_trace, validate_telemetry
from repro.obs.telemetry import Telemetry, summary_chrome_trace
from repro.obs.tracing import MAIN_TID, Tracer, chrome_trace


@pytest.fixture(autouse=True)
def _no_global_telemetry():
    """Each test starts and ends with telemetry disabled."""
    obs.disable()
    yield
    obs.disable()


# -- counters / gauges ------------------------------------------------------


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    registry.counter("sim.samples").inc()
    registry.counter("sim.samples").inc(4)
    assert registry.counter("sim.samples").value == 5

    gauge = registry.gauge("exec.depth")
    gauge.set(3.0)
    gauge.set_max(2.0)
    assert gauge.value == 3.0
    gauge.set_max(7.5)
    assert gauge.value == 7.5


# -- histogram bucket edges -------------------------------------------------


def test_histogram_le_bucket_edges():
    hist = Histogram(bounds=(1.0, 2.0))
    hist.observe(1.0)    # == first bound -> bucket 0 (le semantics)
    hist.observe(1.5)    # (1, 2]        -> bucket 1
    hist.observe(2.0)    # == second bound -> bucket 1
    hist.observe(2.1)    # beyond last bound -> overflow bucket
    assert hist.counts == [1, 2, 1]
    assert hist.count == 4
    assert hist.sum == pytest.approx(6.6)
    assert hist.mean == pytest.approx(1.65)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(bounds=())


# -- merge semantics --------------------------------------------------------


def _registry_with(counter_incs, observations):
    registry = MetricsRegistry()
    for name, amount in counter_incs:
        registry.counter(name).inc(amount)
    for name, value in observations:
        registry.histogram(name, bounds=(0.1, 1.0)).observe(value)
    return registry


def test_merge_is_order_invariant():
    parts = [
        _registry_with([("sim.samples", 3)], [("time.cell", 0.05)]),
        _registry_with([("sim.samples", 2), ("sim.cells", 1)],
                       [("time.cell", 0.5)]),
        _registry_with([("sim.cells", 4)], [("time.cell", 5.0)]),
    ]
    snapshots = [part.as_dict() for part in parts]

    forward = MetricsRegistry()
    for snap in snapshots:
        forward.merge_dict(snap)
    backward = MetricsRegistry()
    for snap in reversed(snapshots):
        backward.merge_dict(snap)

    assert forward.as_dict() == backward.as_dict()
    assert forward.counter("sim.samples").value == 5
    assert forward.counter("sim.cells").value == 5
    assert forward.histogram("time.cell", (0.1, 1.0)).counts == [1, 1, 1]


def test_merge_rejects_mismatched_histogram_bounds():
    target = MetricsRegistry()
    target.histogram("time.cell", bounds=(0.1, 1.0)).observe(0.2)
    foreign = MetricsRegistry()
    foreign.histogram("time.cell", bounds=(0.5, 2.0)).observe(0.2)
    with pytest.raises(ValueError, match="mismatched bounds"):
        target.merge_dict(foreign.as_dict())


def test_subtract_snapshot_roundtrip():
    """merge(before, delta(after, before)) == after — the worker contract."""
    registry = MetricsRegistry()
    registry.counter("sim.samples").inc(3)
    registry.histogram("time.cell", (0.1, 1.0)).observe(0.05)
    before = registry.as_dict()

    registry.counter("sim.samples").inc(2)
    registry.counter("sim.cells").inc()
    registry.histogram("time.cell", (0.1, 1.0)).observe(0.7)
    registry.gauge("exec.depth").set_max(4.0)
    after = registry.as_dict()

    delta = subtract_snapshot(after, before)
    # Unchanged counters are dropped from the delta entirely.
    assert "sim.samples" in delta["counters"]
    rebuilt = MetricsRegistry()
    rebuilt.merge_dict(before)
    rebuilt.merge_dict(delta)
    assert rebuilt.as_dict() == after


def test_subtract_snapshot_drops_zero_deltas():
    registry = MetricsRegistry()
    registry.counter("sim.samples").inc(3)
    snap = registry.as_dict()
    delta = subtract_snapshot(snap, snap)
    assert delta["counters"] == {}
    assert delta["histograms"] == {}


def test_deterministic_counters_slices_sim_namespace():
    registry = MetricsRegistry()
    registry.counter("sim.samples").inc(7)
    registry.counter("exec.workers_spawned").inc(2)
    registry.counter("sim.class.masked").inc(5)
    det = deterministic_counters(registry.as_dict())
    assert det == {"sim.samples": 7, "sim.class.masked": 5}


# -- tracing ----------------------------------------------------------------


def test_tracer_span_and_chrome_export_schema():
    tracer = Tracer()
    with tracer.span("cell", workload="crc32"):
        pass
    tracer.instant("incident", kind="watchdog")
    assert len(tracer.events) == 2

    trace = chrome_trace(list(tracer.events))
    assert validate_chrome_trace(trace) == []
    # Must survive a JSON round trip unchanged (that is the export format).
    assert json.loads(json.dumps(trace)) == trace

    by_ph = {event["ph"]: event for event in trace["traceEvents"]}
    assert by_ph["M"]["args"]["name"] == "main"
    assert by_ph["X"]["name"] == "cell"
    assert by_ph["X"]["args"] == {"workload": "crc32"}
    assert by_ph["X"]["ts"] == 0  # rebased to the earliest event
    assert by_ph["i"]["s"] == "t"


def test_tracer_caps_events_and_counts_drops():
    tracer = Tracer(max_events=2)
    for _ in range(5):
        tracer.instant("tick")
    assert len(tracer.events) == 2
    assert tracer.dropped == 3
    trace = chrome_trace(tracer.drain(), dropped=tracer.dropped)
    assert trace["metadata"]["dropped_events"] == 3


def test_tracer_adopt_rewrites_tid():
    parent = Tracer()
    worker = Tracer()
    with worker.span("worker-batch", worker=1):
        pass
    parent.adopt(worker.drain(), tid=2)
    assert worker.events == []
    assert parent.events[0]["tid"] == 2
    names = {
        event["args"]["name"]
        for event in chrome_trace(parent.events)["traceEvents"]
        if event["ph"] == "M"
    }
    assert names == {"worker-1"}
    assert MAIN_TID == 0


# -- telemetry facade -------------------------------------------------------


def test_telemetry_summary_valid_and_writes(tmp_path):
    telemetry = Telemetry()
    with telemetry.span("golden-run", workload="sha"):
        pass
    telemetry.metrics.counter("sim.samples").inc(10)

    summary = telemetry.summary()
    assert validate_telemetry(summary) == []
    assert summary["deterministic_counters"] == {"sim.samples": 10}
    assert "time.golden-run" in summary["histograms"]
    assert validate_chrome_trace(summary_chrome_trace(summary)) == []

    path = telemetry.write(tmp_path / "telemetry.json")
    on_disk = json.loads(path.read_text())
    assert validate_telemetry(on_disk) == []


def test_obs_enable_disable_span():
    assert obs.active() is None
    assert obs.span("noop") is obs.NULL_SPAN

    telemetry = obs.enable()
    assert obs.active() is telemetry
    with obs.span("cell", workload="crc32"):
        pass
    assert telemetry.tracer.events[0]["name"] == "cell"
    assert telemetry.metrics.histograms["time.cell"].count == 1

    obs.disable()
    assert obs.active() is None


# -- schema validators must actually reject ---------------------------------


def test_validate_telemetry_rejects_malformed():
    good = Telemetry().summary()
    assert validate_telemetry(good) == []

    assert validate_telemetry([]) != []
    assert validate_telemetry({**good, "kind": "nope"}) != []
    assert validate_telemetry({**good, "counters": {"sim.x": 1.5}}) != []
    assert validate_telemetry(
        {**good, "deterministic_counters": {"exec.x": 1}}
    ) != []
    bad_hist = {
        **good,
        "histograms": {
            "time.cell": {"bounds": [1.0], "counts": [1], "sum": 0.5,
                          "count": 1},
        },
    }
    assert any("len(bounds)+1" in e for e in validate_telemetry(bad_hist))


def test_validate_chrome_trace_rejects_malformed():
    assert validate_chrome_trace({"traceEvents": "x"}) != []
    assert validate_chrome_trace(
        {"traceEvents": [{"name": "a", "ph": "X", "pid": 0, "tid": 0,
                          "ts": 1}]}
    ) != []  # complete event without dur
    assert validate_chrome_trace(
        {"traceEvents": [{"name": "a", "ph": "i", "pid": 0, "tid": 0,
                          "ts": 1}]}
    ) != []  # instant without scope


# -- ETA tracker ------------------------------------------------------------


class _FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def test_eta_tracker_rates_and_eta():
    clock = _FakeClock()
    eta = EtaTracker(samples_per_cell=10, clock=clock)
    assert eta.render() == ""  # no data yet

    eta.update(1, 5)
    assert eta.render() == ""  # one event is not a rate

    clock.now += 2.0
    eta.update(2, 5)
    assert eta.cells_per_sec == pytest.approx(0.5)
    assert eta.samples_per_sec == pytest.approx(5.0)
    assert eta.eta_seconds == pytest.approx(6.0)
    assert eta.render() == "5.0 samp/s · ETA 0:06"

    clock.now += 2.0
    eta.update(5, 5)
    assert eta.cells_remaining == 0
    assert eta.eta_seconds is None
    assert "ETA" not in eta.render()


def test_eta_tracker_burst_falls_back_to_since_start():
    """Buffered parallel completions land microseconds apart; the rate
    must come from the since-start average, not the burst window."""
    clock = _FakeClock()
    eta = EtaTracker(samples_per_cell=10, clock=clock)
    clock.now += 10.0
    eta.update(1, 4)
    clock.now += 0.001
    eta.update(2, 4)
    # Window span ~1ms would claim 1000 cells/s; since-start gives 2/10s.
    assert eta.cells_per_sec == pytest.approx(2 / 10.001, rel=1e-3)


def test_eta_tracker_silent_on_instant_replay():
    """A fully store-cached campaign replays in milliseconds; the tracker
    must show nothing rather than an absurd extrapolated rate."""
    clock = _FakeClock()
    eta = EtaTracker(samples_per_cell=10, clock=clock)
    clock.now += 0.0001
    eta.update(1, 4)
    clock.now += 0.0001
    eta.update(2, 4)
    assert eta.cells_per_sec is None
    assert eta.render() == ""


def test_eta_tracker_sliding_window_tracks_speedup():
    clock = _FakeClock()
    eta = EtaTracker(samples_per_cell=1, window=3, clock=clock)
    for done, dt in ((1, 0.0), (2, 100.0), (3, 2.0), (4, 2.0)):
        clock.now += dt
        eta.update(done, 10)
    # Window holds the last 3 events (done=2..4, 4s apart): recent rate,
    # not the 100s cold start.
    assert eta.cells_per_sec == pytest.approx(0.5)


def test_format_duration():
    assert format_duration(4.2) == "0:04"
    assert format_duration(95.0) == "1:35"
    assert format_duration(3725.4) == "1:02:05"
    assert format_duration(-3.0) == "0:00"
