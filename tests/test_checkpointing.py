"""Checkpointed injection must be bit-identical to direct simulation."""

import random

from repro.core.campaign import (
    CheckpointedWorkload,
    golden_run,
    run_one_injection,
)
from repro.core.generator import MultiBitFaultGenerator
from repro.kernel.status import RunStatus
from repro.workloads import get_workload

WORKLOAD = "susan_c"  # small and fast


def test_snapshot_resumes_exactly():
    workload = get_workload(WORKLOAD)
    golden = golden_run(workload)
    checkpoints = CheckpointedWorkload(workload, snapshots=8)
    system = checkpoints.system_at(golden.cycles // 2)
    assert system.cycle <= golden.cycles // 2
    assert system.run_until(golden.cycles // 2, golden.cycles + 10)
    result = system.run(4 * golden.cycles)
    assert result.status is RunStatus.FINISHED
    assert result.cycles == golden.cycles
    assert result.output == golden.output


def test_snapshot_at_cycle_zero_is_fresh_system():
    workload = get_workload(WORKLOAD)
    checkpoints = CheckpointedWorkload(workload, snapshots=4)
    system = checkpoints.system_at(0)
    assert system.cycle == 0


def test_snapshots_are_isolated():
    """Cloned systems must not share mutable state with the snapshot."""
    workload = get_workload(WORKLOAD)
    golden = golden_run(workload)
    checkpoints = CheckpointedWorkload(workload, snapshots=4)
    cycle = golden.cycles // 2
    first = checkpoints.system_at(cycle)
    # Wreck the first clone thoroughly.
    first.core.prf.values[:] = [0] * len(first.core.prf.values)
    first.l1d.flip_bit(0, 0)
    first.dtlb.flip_bit(0, 5)
    # A second clone from the same snapshot must still run clean.
    second = checkpoints.system_at(cycle)
    second.run_until(cycle, golden.cycles + 10)
    result = second.run(4 * golden.cycles)
    assert result.status is RunStatus.FINISHED
    assert result.output == golden.output


def test_system_at_bisect_picks_latest_checkpoint_not_after():
    workload = get_workload(WORKLOAD)
    golden = golden_run(workload)
    checkpoints = CheckpointedWorkload(workload, snapshots=8)
    cycles = checkpoints._cycles
    assert cycles == sorted(cycles)
    # Exactly on a snapshot, between snapshots, before the first, past the
    # last: the chosen clone is always the latest checkpoint <= cycle.
    probes = (
        [cycles[0] - 1] + list(cycles)
        + [c + 1 for c in cycles] + [golden.cycles + 5]
    )
    for probe in probes:
        expected = max((c for c in cycles if c <= probe), default=None)
        system = checkpoints.system_at(probe)
        if expected is None:
            assert system.cycle == 0
        else:
            assert system.cycle == expected


def test_caches_are_keyed_by_config_value_and_bounded():
    from repro.core import campaign as campaign_module
    from repro.core.campaign import _checkpoints_for
    from repro.cpu.config import CoreConfig

    workload = get_workload(WORKLOAD)
    # CoreConfig hashes by value: equal configs share one cache entry.
    assert hash(CoreConfig()) == hash(CoreConfig())
    first = golden_run(workload, CoreConfig())
    second = golden_run(workload, CoreConfig())
    assert first is second
    snaps_a = _checkpoints_for(workload, CoreConfig())
    snaps_b = _checkpoints_for(workload, CoreConfig())
    assert snaps_a is snaps_b
    # Both caches are LRU-bounded.
    assert len(campaign_module._GOLDEN_CACHE) \
        <= campaign_module.GOLDEN_CACHE_SIZE
    assert len(campaign_module._CHECKPOINT_CACHE) \
        <= campaign_module.CHECKPOINT_CACHE_SIZE


def test_bounded_cache_evicts_least_recently_used():
    from repro.core.campaign import _BoundedCache

    cache = _BoundedCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh a
    cache.put("c", 3)  # evicts b, the LRU entry
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert len(cache) == 2


def test_every_checkpoint_restores_to_fresh_run_state():
    """Restoring any checkpoint equals simulating from scratch, bit for bit.

    The step function is a pure function of machine state, so the staged
    run that built the snapshots and a cold run to the same cycle must
    agree on *all* state — verified with the SHA-256 fingerprint over
    core, caches, TLBs, kernel and physical memory.
    """
    from repro.cpu.system import System
    from repro.verify.invariants import state_fingerprint

    workload = get_workload(WORKLOAD)
    golden = golden_run(workload)
    checkpoints = CheckpointedWorkload(workload, snapshots=6)
    assert checkpoints._cycles, "expected at least one snapshot"
    for cycle in checkpoints._cycles:
        restored = checkpoints.system_at(cycle)
        assert restored.cycle == cycle
        fresh = System()
        fresh.load(workload.program())
        assert fresh.run_until(cycle, golden.cycles + 10)
        assert fresh.cycle == cycle
        assert state_fingerprint(restored) == state_fingerprint(fresh), (
            f"checkpoint at cycle {cycle} diverges from a fresh run"
        )


def test_checkpointed_injection_matches_direct():
    workload = get_workload(WORKLOAD)
    golden = golden_run(workload)
    checkpoints = CheckpointedWorkload(workload, snapshots=8)
    rng = random.Random(77)
    for trial in range(6):
        cycle = rng.randrange(golden.cycles)
        component = rng.choice(["l1d", "l1i", "itlb", "regfile"])
        direct = run_one_injection(
            workload, component,
            MultiBitFaultGenerator(seed=trial), 3, cycle,
        )
        fast = run_one_injection(
            workload, component,
            MultiBitFaultGenerator(seed=trial), 3, cycle,
            checkpoints=checkpoints,
        )
        assert direct[0] is fast[0]               # same fault class
        assert direct[2] == fast[2]               # same mask
        assert direct[1].cycles == fast[1].cycles  # same timing
        assert direct[1].output == fast[1].output  # same output
        assert direct[1].status == fast[1].status
