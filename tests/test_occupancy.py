"""Structure-occupancy (HVF-style) profiling."""

import pytest

from repro.core.occupancy import (
    OccupancyProfile,
    OccupancySample,
    profile_occupancy,
    snapshot_bits,
    snapshot_occupancy,
)
from repro.cpu.system import System
from repro.workloads import get_workload


def fresh_system(name="stringsearch"):
    system = System()
    system.load(get_workload(name).program())
    return system


def test_snapshot_on_cold_system_is_mostly_empty():
    fractions = snapshot_occupancy(fresh_system())
    for component in ("l1d", "l1i", "l2", "itlb", "dtlb"):
        assert fractions[component] == 0.0
    # The 16 architectural registers are always mapped.
    assert fractions["regfile"] == pytest.approx(16 / 66)


def test_snapshot_after_warmup_shows_live_state():
    system = fresh_system()
    system.run_until(2000, 100_000)
    fractions = snapshot_occupancy(system)
    assert fractions["l1i"] > 0.2     # code is resident
    assert fractions["itlb"] > 0.2
    assert fractions["regfile"] >= 16 / 66
    assert all(0.0 <= v <= 1.0 for v in fractions.values())


def test_profile_runs_to_completion_and_samples():
    system = fresh_system()
    profile = profile_occupancy(system, max_cycles=100_000, interval=400)
    assert system.finished
    assert len(profile.samples) >= 3
    assert profile.samples[0].cycle == 0
    cycles = [s.cycle for s in profile.samples]
    assert cycles == sorted(cycles)


def test_profile_summary_statistics():
    system = fresh_system("dijkstra")
    profile = profile_occupancy(system, max_cycles=200_000, interval=1000)
    summary = profile.summary()
    assert set(summary) == {"l1d", "l1i", "l2", "regfile", "itlb", "dtlb"}
    for mean, peak in summary.values():
        assert 0.0 <= mean <= peak <= 1.0
    # dijkstra's working set keeps the scaled TLBs hot (DESIGN.md §5).
    assert summary["dtlb"][1] > 0.5
    assert summary["l1i"][1] > 0.5


def test_profiling_does_not_change_execution():
    from repro.core.campaign import golden_run

    golden = golden_run(get_workload("susan_c"))
    system = fresh_system("susan_c")
    profile_occupancy(system, max_cycles=4 * golden.cycles, interval=300)
    assert system.core.result is not None
    assert system.core.result.cycles == golden.cycles
    assert system.core.result.output == golden.output


def test_empty_profile_statistics():
    profile = OccupancyProfile()
    assert profile.mean("l1d") == 0.0
    assert profile.peak("l1d") == 0.0
    assert profile.components() == []


def test_statistics_tolerate_missing_components():
    # A component absent from some samples (profiler attached mid-run)
    # must average over the samples that observed it, not raise.
    profile = OccupancyProfile(samples=[
        OccupancySample(0, {"l1d": 0.2}),
        OccupancySample(500, {"l1d": 0.6, "l2": 0.4}),
    ])
    assert profile.mean("l1d") == pytest.approx(0.4)
    assert profile.peak("l1d") == 0.6
    assert profile.mean("l2") == 0.4
    assert profile.peak("l2") == 0.4
    assert profile.mean("regfile") == 0.0
    assert profile.peak("regfile") == 0.0
    assert profile.components() == ["l1d", "l2"]
    assert set(profile.summary()) == {"l1d", "l2"}


def test_snapshot_bits_cold_system():
    system = fresh_system()
    bits = snapshot_bits(system)
    for component in ("l1d", "l1i", "l2", "itlb", "dtlb"):
        assert bits[component] == 0
    # The 16 architectural registers are mapped at reset: 16 words.
    assert bits["regfile"] == 16 * system.core.prf.inject_cols


def test_snapshot_bits_tracks_occupancy_after_warmup():
    system = fresh_system()
    system.run_until(2000, 100_000)
    bits = snapshot_bits(system)
    fractions = snapshot_occupancy(system)
    assert bits["l1i"] > 0 and bits["itlb"] > 0
    # Bits and fractions describe the same live state: a component with
    # zero occupancy holds zero live bits and vice versa.
    for component in ("l1d", "l1i", "l2", "itlb", "dtlb"):
        assert (bits[component] > 0) == (fractions[component] > 0)
    # Cache bit counts are whole lines.
    line_bits = system.l1i.line_size * 8
    assert bits["l1i"] % line_bits == 0


def test_bad_interval_rejected():
    with pytest.raises(ValueError):
        profile_occupancy(fresh_system(), 1000, interval=0)


def test_occupancy_bounds_measured_avf_direction():
    """Occupancy upper-bounds vulnerability: empty structures can't fail."""
    system = fresh_system("susan_c")
    profile = profile_occupancy(system, max_cycles=100_000, interval=500)
    # susan_c touches little data: its L2 occupancy stays well below 1,
    # consistent with its low measured L2 AVF.
    assert profile.mean("l2") < 0.9
