"""Property-based tests for the multi-bit fault-mask generator.

Thousands of seeds across representative and adversarial array
geometries; for every generated mask we assert the full §III.B contract:

* exactly N *distinct* bit flips (cardinality conservation);
* every flip inside the target array bounds;
* in clustered mode, the whole pattern fits the 3×3 cluster placed at the
  recorded origin (and therefore a 3×3 bounding box);
* in independent mode, distinct in-bounds bits with no shape constraint.
"""

import pytest

from repro.core.generator import (
    CLUSTERED,
    INDEPENDENT,
    ClusterShape,
    MultiBitFaultGenerator,
)
from repro.cpu.system import System


class FakeArray:
    """Duck-typed injection target with arbitrary geometry."""

    def __init__(self, rows: int, cols: int, name: str = "fake"):
        self._rows = rows
        self._cols = cols
        self._name = name

    @property
    def inject_name(self) -> str:
        return self._name

    @property
    def inject_rows(self) -> int:
        return self._rows

    @property
    def inject_cols(self) -> int:
        return self._cols

    def flip_bit(self, row: int, col: int) -> None:  # pragma: no cover
        pass

    def read_bit(self, row: int, col: int) -> int:  # pragma: no cover
        return 0


#: Edge geometries: exactly cluster-sized, one-dimension-tight, tall-thin,
#: wide-flat, and realistic SRAM shapes.
GEOMETRIES = (
    (3, 3),
    (3, 512),
    (512, 3),
    (4, 5),
    (64, 256),
    (66, 32),
    (8, 2048),
    (8192, 32),
)

SEEDS_PER_CASE = 150  # x 8 geometries x 3 cardinalities = 3,600 masks/mode


def check_mask_contract(mask, rows, cols, cardinality):
    assert len(mask.bits) == cardinality
    assert len(set(mask.bits)) == cardinality, "duplicate flip"
    assert mask.cardinality == cardinality
    assert list(mask.bits) == sorted(mask.bits), "bits not canonicalised"
    for row, col in mask.bits:
        assert 0 <= row < rows, f"row {row} outside {rows}x{cols}"
        assert 0 <= col < cols, f"col {col} outside {rows}x{cols}"


def test_clustered_masks_satisfy_contract_across_seed_space():
    for rows, cols in GEOMETRIES:
        target = FakeArray(rows, cols)
        for seed in range(SEEDS_PER_CASE):
            gen = MultiBitFaultGenerator(seed=seed)
            for cardinality in (1, 2, 3):
                mask = gen.generate(target, cardinality)
                check_mask_contract(mask, rows, cols, cardinality)
                # The pattern sits inside the 3x3 cluster at its origin...
                r0, c0 = mask.origin
                assert 0 <= r0 <= rows - 3 and 0 <= c0 <= cols - 3
                for row, col in mask.bits:
                    assert r0 <= row < r0 + 3
                    assert c0 <= col < c0 + 3
                # ...so its bounding box can never exceed 3x3.
                height, width = mask.bounding_box()
                assert 1 <= height <= 3
                assert 1 <= width <= 3


def test_independent_masks_satisfy_contract_across_seed_space():
    for rows, cols in GEOMETRIES:
        target = FakeArray(rows, cols)
        for seed in range(SEEDS_PER_CASE):
            gen = MultiBitFaultGenerator(mode=INDEPENDENT, seed=seed)
            for cardinality in (2, 3):
                mask = gen.generate(target, cardinality)
                check_mask_contract(mask, rows, cols, cardinality)


def test_mask_sequence_is_seed_deterministic():
    target = FakeArray(64, 256)
    a = MultiBitFaultGenerator(seed="cell")
    b = MultiBitFaultGenerator(seed="cell")
    for _ in range(50):
        assert a.generate(target, 3) == b.generate(target, 3)


def test_real_targets_satisfy_contract():
    system = System()
    gen = MultiBitFaultGenerator(seed=99)
    for name, target in system.injectable_targets().items():
        rows, cols = target.inject_rows, target.inject_cols
        for cardinality in (2, 3):
            mask = gen.generate(target, cardinality)
            assert mask.component == name
            check_mask_contract(mask, rows, cols, cardinality)


def test_cardinality_must_fit_cluster():
    with pytest.raises(ValueError, match="cannot fit"):
        MultiBitFaultGenerator().generate(FakeArray(64, 64), 10)


def test_target_must_fit_cluster():
    with pytest.raises(ValueError, match="smaller than"):
        MultiBitFaultGenerator().generate(FakeArray(2, 64), 2)
    # Independent mode has no shape constraint: 2x2 target is fine.
    mask = MultiBitFaultGenerator(mode=INDEPENDENT).generate(
        FakeArray(2, 2), 4
    )
    assert len(mask.bits) == 4


def test_custom_cluster_shape():
    gen = MultiBitFaultGenerator(cluster=ClusterShape(2, 4))
    target = FakeArray(16, 16)
    for _ in range(200):
        mask = gen.generate(target, 4)
        height, width = mask.bounding_box()
        assert 1 <= height <= 2
        assert 1 <= width <= 4
    with pytest.raises(ValueError):
        ClusterShape(0, 3)
