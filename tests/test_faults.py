"""Fault masks and the spatial multi-bit generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import FaultMask
from repro.core.generator import (
    CLUSTERED,
    INDEPENDENT,
    ClusterShape,
    MultiBitFaultGenerator,
)


class FakeArray:
    """Minimal InjectableArray for generator tests."""

    def __init__(self, rows, cols, name="fake"):
        self._rows, self._cols, self._name = rows, cols, name
        self.flips = []

    @property
    def inject_name(self):
        return self._name

    @property
    def inject_rows(self):
        return self._rows

    @property
    def inject_cols(self):
        return self._cols

    def flip_bit(self, row, col):
        self.flips.append((row, col))

    def read_bit(self, row, col):
        return self.flips.count((row, col)) % 2


def test_mask_validation_rejects_empty():
    with pytest.raises(ValueError, match="at least one"):
        FaultMask("l1d", (), (0, 0), (3, 3))


def test_mask_validation_rejects_duplicates():
    with pytest.raises(ValueError, match="duplicate"):
        FaultMask("l1d", ((1, 1), (1, 1)), (0, 0), (3, 3))


def test_mask_validation_rejects_out_of_cluster_bits():
    with pytest.raises(ValueError, match="outside"):
        FaultMask("l1d", ((5, 5),), (0, 0), (3, 3))


def test_bounding_box():
    mask = FaultMask("l1d", ((2, 3), (4, 3)), (2, 3), (3, 3))
    assert mask.bounding_box() == (3, 1)


def test_single_bit_generation():
    gen = MultiBitFaultGenerator(seed=7)
    array = FakeArray(64, 256)
    mask = gen.generate(array, 1)
    assert mask.cardinality == 1
    (row, col) = mask.bits[0]
    assert 0 <= row < 64 and 0 <= col < 256
    assert mask.component == "fake"


def test_triple_bit_stays_in_cluster():
    gen = MultiBitFaultGenerator(seed=3)
    array = FakeArray(16, 32)
    for _ in range(200):
        mask = gen.generate(array, 3)
        assert mask.cardinality == 3
        height, width = mask.bounding_box()
        assert height <= 3 and width <= 3


def test_subcluster_patterns_are_included():
    """Per paper §III.B: patterns fitting a smaller box must occur."""
    gen = MultiBitFaultGenerator(seed=11)
    array = FakeArray(16, 32)
    boxes = {gen.generate(array, 2).bounding_box() for _ in range(300)}
    assert (1, 2) in boxes or (2, 1) in boxes  # adjacent pair
    assert (3, 3) in boxes or (2, 3) in boxes or (3, 2) in boxes


def test_cardinality_exceeding_cluster_rejected():
    gen = MultiBitFaultGenerator(cluster=ClusterShape(2, 2), seed=0)
    with pytest.raises(ValueError, match="cannot fit"):
        gen.generate(FakeArray(8, 8), 5)


def test_geometry_smaller_than_cluster_rejected():
    gen = MultiBitFaultGenerator(seed=0)
    with pytest.raises(ValueError, match="smaller than"):
        gen.generate(FakeArray(2, 8), 1)


def test_zero_cardinality_rejected():
    gen = MultiBitFaultGenerator(seed=0)
    with pytest.raises(ValueError, match="at least 1"):
        gen.generate(FakeArray(8, 8), 0)


def test_determinism_per_seed():
    array = FakeArray(64, 256)
    a = [MultiBitFaultGenerator(seed=5).generate(array, 3) for _ in range(10)]
    b = [MultiBitFaultGenerator(seed=5).generate(array, 3) for _ in range(10)]
    assert a == b
    c = [MultiBitFaultGenerator(seed=6).generate(array, 3) for _ in range(10)]
    assert a != c


def test_independent_mode_spreads_bits():
    gen = MultiBitFaultGenerator(mode=INDEPENDENT, seed=9)
    array = FakeArray(64, 256)
    spread = False
    for _ in range(50):
        mask = gen.generate(array, 3)
        height, width = mask.bounding_box()
        if height > 3 or width > 3:
            spread = True
    assert spread  # independent bits routinely exceed a 3x3 box


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown placement"):
        MultiBitFaultGenerator(mode="diagonal")


def test_cluster_shape_validation():
    with pytest.raises(ValueError):
        ClusterShape(0, 3)


@settings(max_examples=60, deadline=None)
@given(
    rows=st.integers(min_value=3, max_value=128),
    cols=st.integers(min_value=3, max_value=512),
    cardinality=st.integers(min_value=1, max_value=9),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_generated_masks_always_in_bounds(rows, cols, cardinality, seed):
    gen = MultiBitFaultGenerator(seed=seed)
    array = FakeArray(rows, cols)
    mask = gen.generate(array, cardinality)
    assert len(set(mask.bits)) == cardinality
    for row, col in mask.bits:
        assert 0 <= row < rows
        assert 0 <= col < cols


def test_placement_covers_the_array():
    """Cluster origins should span the whole geometry, not cling to a corner."""
    gen = MultiBitFaultGenerator(seed=123)
    array = FakeArray(64, 256)
    rows = {gen.generate(array, 1).bits[0][0] for _ in range(400)}
    cols = {gen.generate(array, 1).bits[0][1] for _ in range(400)}
    assert min(rows) < 8 and max(rows) > 55
    assert min(cols) < 32 and max(cols) > 220
