"""End-to-end MiniC execution: compile, simulate, check program output.

These tests exercise the entire stack — lexer, parser, sema, codegen,
assembler, loader, TLBs, caches and the out-of-order core — and compare the
syscall output stream with independently computed expectations.
"""

import pytest

from repro.kernel.status import RunStatus
from repro.minic import compile_source
from repro.cpu.system import run_program


def run(source, max_cycles=2_000_000):
    return run_program(compile_source(source), max_cycles=max_cycles)


def out(source):
    result = run(source)
    assert result.status is RunStatus.FINISHED, (
        result.status, result.crash_reason, result.detail
    )
    return result.output.decode()


def test_putd_putw_putc():
    assert out("""
        int main() { putd(-42); putw(255); putc('A'); exit(0); return 0; }
    """) == "-42\n000000ff\nA"


def test_arithmetic_and_precedence():
    assert out("""
        int main() {
            putd(2 + 3 * 4);
            putd((2 + 3) * 4);
            putd(7 / 2);
            putd(-7 / 2);
            putd(-7 % 3);
            putd(1 << 10);
            putd(-8 >> 1);
            exit(0);
            return 0;
        }
    """) == "14\n20\n3\n-3\n-1\n1024\n-4\n"


def test_bitwise_operators():
    assert out("""
        int main() {
            putw(0xF0F0 & 0xFF00);
            putw(0xF0F0 | 0x0F0F);
            putw(0xFFFF ^ 0x00FF);
            putw(~0);
            exit(0);
            return 0;
        }
    """) == "0000f000\n0000ffff\n0000ff00\nffffffff\n"


def test_comparisons_as_values():
    assert out("""
        int main() {
            putd(3 < 4); putd(4 < 3); putd(3 <= 3); putd(4 > 5);
            putd(5 >= 5); putd(1 == 1); putd(1 != 1);
            putd(-1 < 0);
            exit(0);
            return 0;
        }
    """) == "1\n0\n1\n0\n1\n1\n0\n1\n"


def test_short_circuit_evaluation():
    # The second operand must not run (it would divide by zero and crash).
    assert out("""
        int zero() { return 0; }
        int main() {
            int x = 0;
            if (zero() && 1 / x) { putd(99); } else { putd(1); }
            if (1 || 1 / x) { putd(2); }
            exit(0);
            return 0;
        }
    """) == "1\n2\n"


def test_logical_not():
    assert out("""
        int main() { putd(!0); putd(!5); putd(!!7); exit(0); return 0; }
    """) == "1\n0\n1\n"


def test_while_break_continue():
    assert out("""
        int main() {
            int s = 0;
            int i = 0;
            while (1) {
                i = i + 1;
                if (i > 10) { break; }
                if (i % 2 == 0) { continue; }
                s = s + i;
            }
            putd(s);
            exit(0);
            return 0;
        }
    """) == "25\n"


def test_nested_for_loops():
    assert out("""
        int main() {
            int total = 0;
            for (int i = 0; i < 5; i = i + 1) {
                for (int j = 0; j <= i; j = j + 1) {
                    total = total + 1;
                }
            }
            putd(total);
            exit(0);
            return 0;
        }
    """) == "15\n"


def test_recursion_factorial_and_fib():
    assert out("""
        int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { putd(fact(7)); putd(fib(12)); exit(0); return 0; }
    """) == "5040\n144\n"


def test_global_arrays_and_scalars():
    assert out("""
        int counter = 100;
        int table[5] = {10, 20, 30};
        int main() {
            counter = counter + 1;
            table[3] = table[0] + table[1];
            putd(counter);
            putd(table[3]);
            putd(table[4]);
            exit(0);
            return 0;
        }
    """) == "101\n30\n0\n"


def test_byte_arrays_zero_extend():
    assert out("""
        byte buf[4] = {200, 1};
        int main() {
            buf[2] = 300;        // truncates to 44
            putd(buf[0] + buf[1]);
            putd(buf[2]);
            exit(0);
            return 0;
        }
    """) == "201\n44\n"


def test_pointer_parameters_mutate_caller_array():
    assert out("""
        int data[3] = {1, 2, 3};
        void double_all(int *p, int n) {
            for (int i = 0; i < n; i = i + 1) { p[i] = p[i] * 2; }
        }
        int main() {
            double_all(data, 3);
            putd(data[0] + data[1] + data[2]);
            exit(0);
            return 0;
        }
    """) == "12\n"


def test_deep_expression_register_pressure():
    assert out("""
        int main() {
            int a = 1;
            putd(((((a+1)*2+1)*2+1)*2+1)*2 + ((((a+2)*2+2)*2+2)*2+2)*2
                 + (a+3)*(a+4)*(a+5)*(a+6));
            exit(0);
            return 0;
        }
    """) == str(
        ((((1+1)*2+1)*2+1)*2+1)*2 + ((((1+2)*2+2)*2+2)*2+2)*2
        + (1+3)*(1+4)*(1+5)*(1+6)
    ) + "\n"


def test_calls_inside_expressions_preserve_temporaries():
    assert out("""
        int id(int x) { return x; }
        int main() {
            putd(id(1) + id(2) * id(3) + id(id(4)));
            exit(0);
            return 0;
        }
    """) == "11\n"


def test_division_by_zero_crashes_process():
    result = run("""
        int main() { int z = 0; putd(1 / z); exit(0); return 0; }
    """)
    assert result.status is RunStatus.CRASH_PROCESS


def test_exit_code_propagates():
    result = run("int main() { exit(3); return 0; }")
    assert result.status is RunStatus.FINISHED
    assert result.exit_code == 3


def test_main_return_value_becomes_exit_code():
    result = run("int main() { return 7; }")
    assert result.status is RunStatus.FINISHED
    assert result.exit_code == 7


def test_32bit_wraparound_semantics():
    assert out("""
        int main() {
            int big = 2147483647;
            putd(big + 1);
            putw(65535 * 65537);
            exit(0);
            return 0;
        }
    """) == "-2147483648\nffffffff\n"
