"""ECC/interleaving protection modelling."""

import pytest

from repro.core.faults import FaultMask
from repro.core.generator import ClusterShape, MultiBitFaultGenerator
from repro.core.protection import (
    NO_PROTECTION,
    PARITY,
    SECDED,
    ProtectionOutcome,
    ProtectionScheme,
    evaluate_scheme,
    residual_avf,
    secded_interleaved,
)


class FakeArray:
    def __init__(self, rows=64, cols=256):
        self._rows, self._cols = rows, cols

    @property
    def inject_name(self):
        return "fake"

    @property
    def inject_rows(self):
        return self._rows

    @property
    def inject_cols(self):
        return self._cols

    def flip_bit(self, row, col):
        pass

    def read_bit(self, row, col):
        return 0


def mask(*bits):
    rows = [r for r, _ in bits]
    cols = [c for _, c in bits]
    origin = (min(rows), min(cols))
    return FaultMask("fake", tuple(sorted(bits)), origin, (3, 3))


def test_secded_corrects_single_bit():
    assert SECDED.classify(mask((0, 5))) is ProtectionOutcome.CORRECTED


def test_secded_detects_double_in_same_word():
    assert SECDED.classify(mask((0, 5), (0, 6))) is ProtectionOutcome.DETECTED


def test_secded_escapes_triple_in_same_word():
    outcome = SECDED.classify(mask((0, 5), (0, 6), (0, 7)))
    assert outcome is ProtectionOutcome.ESCAPED


def test_secded_corrects_bits_in_different_rows():
    """Vertical clusters hit different words: each is a single-bit error."""
    outcome = SECDED.classify(mask((0, 5), (1, 5), (2, 5)))
    assert outcome is ProtectionOutcome.CORRECTED


def test_interleaving_splits_adjacent_columns():
    two_way = secded_interleaved(2)
    # Adjacent columns -> different words -> both corrected.
    assert two_way.classify(mask((0, 4), (0, 5))) is ProtectionOutcome.CORRECTED
    # Two columns apart -> same word again -> only detected.
    assert two_way.classify(mask((0, 4), (0, 6))) is ProtectionOutcome.DETECTED


def test_interleave_4_corrects_any_3_in_a_row_segment():
    four_way = secded_interleaved(4)
    outcome = four_way.classify(mask((0, 8), (0, 9), (0, 10)))
    assert outcome is ProtectionOutcome.CORRECTED


def test_parity_detects_odd_escapes_even():
    assert PARITY.classify(mask((0, 1))) is ProtectionOutcome.DETECTED
    assert PARITY.classify(mask((0, 1), (0, 2))) is ProtectionOutcome.ESCAPED


def test_no_protection_everything_escapes():
    assert NO_PROTECTION.classify(mask((0, 1))) is ProtectionOutcome.ESCAPED


def test_word_mapping_respects_groups():
    scheme = ProtectionScheme("x", word_bits=32, interleave=2)
    # Columns 0,2,4,... of the first 64-bit group -> word 0; odd -> word 1.
    assert scheme.word_of(3, 0) == (3, 0)
    assert scheme.word_of(3, 1) == (3, 1)
    assert scheme.word_of(3, 2) == (3, 0)
    # Next group of 64 columns starts word ids at 2.
    assert scheme.word_of(3, 64) == (3, 2)


def test_invalid_schemes_rejected():
    with pytest.raises(ValueError):
        ProtectionScheme("bad", word_bits=0)
    with pytest.raises(ValueError):
        ProtectionScheme("bad", correct_up_to=2, detect_up_to=1)


def test_evaluate_scheme_single_bit_always_corrected_by_secded():
    stats = evaluate_scheme(SECDED, FakeArray(), cardinality=1, trials=300)
    assert stats.correct_fraction == 1.0
    assert stats.escape_fraction == 0.0


def test_evaluate_scheme_double_bit_secded_mix():
    """Clustered doubles: some pairs share a word (detected), verticals
    split across rows (corrected); nothing escapes."""
    stats = evaluate_scheme(SECDED, FakeArray(), cardinality=2, trials=500)
    assert stats.escaped == 0
    assert stats.detected > 0
    assert stats.corrected > 0


def test_interleaving_improves_correction_rate():
    plain = evaluate_scheme(SECDED, FakeArray(), 3, trials=600, seed=1)
    x4 = evaluate_scheme(secded_interleaved(4), FakeArray(), 3,
                         trials=600, seed=1)
    assert x4.correct_fraction > plain.correct_fraction
    assert x4.escape_fraction <= plain.escape_fraction


def test_interleave_at_cluster_width_corrects_everything():
    """k >= cluster width guarantees <=1 flip per word for 3x3 clusters."""
    scheme = secded_interleaved(3)
    gen = MultiBitFaultGenerator(cluster=ClusterShape(3, 3), seed=9)
    array = FakeArray()
    for _ in range(400):
        assert scheme.classify(gen.generate(array, 3)) is (
            ProtectionOutcome.CORRECTED
        )


def test_residual_avf():
    stats = evaluate_scheme(SECDED, FakeArray(), 3, trials=400)
    assert residual_avf(0.30, stats) == pytest.approx(
        0.30 * stats.escape_fraction
    )
    assert residual_avf(0.30, stats) <= 0.30
