"""Randomized-program differential fuzzing.

Tier-1 keeps a small smoke loop; the full 25-program acceptance loop is
marked ``fuzz`` and runs in the CI ``verify`` job (``pytest -m fuzz`` /
``repro-campaign fuzz``).
"""

import pytest

from repro.core.cli import main
from repro.verify.fuzz import (
    ProgramFuzzer,
    SMPProgramFuzzer,
    run_fuzz,
    run_smp_fuzz,
)


def test_fuzzer_is_deterministic():
    assert ProgramFuzzer(seed=42).source() == ProgramFuzzer(seed=42).source()
    assert ProgramFuzzer(seed=42).source() != ProgramFuzzer(seed=43).source()


def test_fuzzer_emits_assemblable_programs():
    for seed in range(5):
        program = ProgramFuzzer(seed=seed, length=30).program()
        assert program.num_instructions > 10


def test_fuzz_smoke_loop():
    report = run_fuzz(programs=3, seed=1)
    assert report.ok, report.divergences
    assert report.programs == 3
    assert report.instructions > 0


def test_fuzz_reports_seeded_divergence(monkeypatch):
    import repro.cpu.core as core_module
    from repro.isa.opcodes import Op
    from repro.isa.semantics import ALU_OPS

    monkeypatch.setattr(
        core_module, "ALU_OPS",
        {**ALU_OPS, Op.EOR: lambda a, b: (a ^ b ^ 1) & 0xFFFFFFFF},
    )
    # Every fuzz program folds its registers with EOR in the epilogue, so
    # the planted bug cannot escape: the loop must report, not raise.
    report = run_fuzz(programs=2, seed=0)
    assert not report.ok
    assert len(report.divergences) == 2
    assert report.divergences[0].seed == "0:0"
    assert report.divergences[0].source  # repro bundle carries the program


def test_fuzz_cli_smoke(capsys):
    assert main(["fuzz", "--programs", "2", "--seed", "3", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "0 divergences" in out


@pytest.mark.fuzz
def test_fuzz_acceptance_loop():
    """The ISSUE's acceptance loop: 25 programs, seed 0, zero divergences."""
    report = run_fuzz(programs=25, seed=0)
    assert report.ok, report.divergences
    assert report.programs == 25


# -- multithreaded fuzzing ----------------------------------------------------


def test_smp_fuzzer_is_deterministic():
    assert SMPProgramFuzzer(seed=5).source() == SMPProgramFuzzer(seed=5).source()
    assert SMPProgramFuzzer(seed=5).source() != SMPProgramFuzzer(seed=6).source()


def test_smp_fuzzer_emits_spawning_programs():
    for seed in range(3):
        fuzzer = SMPProgramFuzzer(seed=seed, length=30, cores=4)
        source = fuzzer.source()
        assert "sys #4" in source      # spawn phase
        assert "amoadd" in source      # release via atomics
        assert fuzzer.program().num_instructions > 20


def test_smp_fuzzer_rejects_single_core():
    with pytest.raises(ValueError, match="cores"):
        SMPProgramFuzzer(seed=0, cores=1)


def test_smp_fuzz_smoke_loop():
    """Random spawn/amo programs retire identically under the SMP oracle."""
    report = run_smp_fuzz(programs=2, seed=1, cores=2)
    assert report.ok, report.divergences
    assert report.programs == 2
    assert report.instructions > 0


def test_smp_fuzz_cli_smoke(capsys):
    assert main([
        "fuzz", "--programs", "2", "--seed", "3", "--cores", "2", "--quiet",
    ]) == 0
    assert "0 divergences" in capsys.readouterr().out


@pytest.mark.fuzz
def test_smp_fuzz_acceptance_loop():
    """Multithreaded acceptance: 10 programs at 2 and 4 cores, no drift."""
    for cores in (2, 4):
        report = run_smp_fuzz(programs=10, seed=0, cores=cores)
        assert report.ok, report.divergences
        assert report.programs == 10
