"""The parallel campaign executor: equivalence, containment, scheduling.

The engine's contract is absolute: ``jobs=N`` produces the same
``CampaignResult.to_json()`` **bytes** as the serial path, for any N,
including when a worker process dies mid-campaign and its cells are
rescheduled.  Everything here runs on the two fastest workloads with tiny
sample counts; the properties under test do not depend on scale.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.campaign import (
    CampaignConfig,
    CampaignStore,
    run_campaign,
    run_cell,
)
from repro.core.parallel import _affinity_batches, _CellTask, run_campaign_parallel
from repro.core.supervisor import IncidentJournal, Supervisor
from repro.errors import (
    CampaignInterrupted,
    IncidentBudgetExceeded,
    InjectionIncident,
)

#: ≥2 workloads × 2 components × 2 cardinalities, per the acceptance bar.
GRID = CampaignConfig(
    workloads=("stringsearch", "crc32"),
    components=("regfile", "itlb"),
    cardinalities=(1, 2),
    samples=2,
    seed=0,
)


@pytest.fixture(scope="module")
def serial_reference():
    return run_campaign(GRID)


def test_parallel_matches_serial_byte_identically(serial_reference):
    parallel = run_campaign(GRID, jobs=4)
    assert parallel.to_json() == serial_reference.to_json()


def test_parallel_progress_is_ordered_and_complete(serial_reference):
    calls = []
    run_campaign(
        GRID, jobs=3,
        progress=lambda done, total, cell: calls.append(
            (done, total, cell.workload, cell.component, cell.cardinality)
        ),
    )
    expected = [
        (i + 1, len(GRID.cells()), w, c, k)
        for i, (w, c, k) in enumerate(GRID.cells())
    ]
    assert calls == expected


def test_worker_crash_is_contained_rescheduled_and_identical(
    serial_reference, tmp_path
):
    supervisor = Supervisor(journal=IncidentJournal(tmp_path / "inc.jsonl"))
    store = CampaignStore(tmp_path / "store.json")
    result = run_campaign_parallel(
        GRID, jobs=3, store=store, supervisor=supervisor,
        _crash_spec={
            "cell": ["crc32", "itlb", 2],
            "flag": str(tmp_path / "crashed.flag"),
        },
    )
    # The dead worker became an incident; the reschedule is journalled as
    # a bookkeeping "retry" record that never counts against the budget...
    assert supervisor.incident_count == 1
    kinds = [i.kind for i in supervisor.journal.incidents]
    # One counted crash; each cell the dead worker held becomes a
    # bookkeeping retry record (how many it held depends on timing).
    assert kinds[0] == "worker-crash"
    assert set(kinds[1:]) == {"retry"}
    retry = supervisor.journal.incidents[1]
    assert retry.details["attempt"] == 1
    assert retry.details["cause"] == "worker-crash"
    assert retry.details["backoff"] > 0
    # ...its journal lines are on disk...
    reloaded = IncidentJournal.load(tmp_path / "inc.jsonl")
    assert len(reloaded) == len(kinds)
    # ...no samples were lost (the cell was rescheduled, not dropped)...
    assert result.incidents == 0
    # ...and the merged result is still bit-identical to the serial run.
    assert result.to_json() == serial_reference.to_json()


def test_worker_crash_respects_strict(tmp_path):
    supervisor = Supervisor(journal=IncidentJournal(), strict=True)
    with pytest.raises(InjectionIncident, match=r"\[strict\].*died"):
        run_campaign_parallel(
            GRID, jobs=2, supervisor=supervisor,
            _crash_spec={
                "cell": ["stringsearch", "regfile", 1],
                "flag": str(tmp_path / "crashed.flag"),
            },
        )


def test_worker_crash_respects_incident_budget(tmp_path):
    supervisor = Supervisor(journal=IncidentJournal(), max_incidents=0)
    with pytest.raises(IncidentBudgetExceeded):
        run_campaign_parallel(
            GRID, jobs=2, supervisor=supervisor,
            _crash_spec={
                "cell": ["stringsearch", "regfile", 1],
                "flag": str(tmp_path / "crashed.flag"),
            },
        )


def test_parallel_store_matches_serial_store_after_compaction(
    serial_reference, tmp_path
):
    """Single-writer store: a --jobs run leaves the exact bytes a serial
    run would (snapshots are key-sorted), with no stray partials."""
    serial_store = CampaignStore(tmp_path / "serial.json")
    run_campaign(GRID, store=serial_store)
    serial_store.compact()

    parallel_store = CampaignStore(tmp_path / "parallel.json")
    run_campaign(GRID, jobs=4, store=parallel_store)
    parallel_store.compact()

    assert (tmp_path / "serial.json").read_bytes() == \
        (tmp_path / "parallel.json").read_bytes()
    assert parallel_store.partial_keys() == []


def test_parallel_run_on_warm_store_is_pure_cache_hit(
    serial_reference, tmp_path
):
    store = CampaignStore(tmp_path / "store.json")
    first = run_campaign(GRID, jobs=4, store=store)
    calls = []
    second = run_campaign(
        GRID, jobs=4, store=store,
        progress=lambda done, total, cell: calls.append(done),
    )
    assert second.to_json() == first.to_json() == serial_reference.to_json()
    assert calls == list(range(1, len(GRID.cells()) + 1))


def test_affinity_batches_group_by_workload_and_split_when_needed():
    tasks = [
        _CellTask(i, w, c, k, f"key{i}", None)
        for i, (w, c, k) in enumerate(
            (w, c, k)
            for w in ("a", "b")
            for c in ("regfile", "itlb")
            for k in (1, 2, 3)
        )
    ]
    # Two workloads, two workers: whole-workload batches, nothing split.
    batches = _affinity_batches(tasks, jobs=2)
    assert len(batches) == 2
    for batch in batches:
        assert len({task.workload for task in batch}) == 1
    # Four workers: splitting kicks in, but halves still share a workload.
    batches = _affinity_batches(tasks, jobs=4)
    assert len(batches) == 4
    for batch in batches:
        assert len({task.workload for task in batch}) == 1
    assert sorted(t.index for b in batches for t in b) == list(range(12))


def test_run_cell_stop_hook_flushes_checkpoint_and_resumes(tmp_path):
    config = CampaignConfig(
        workloads=("stringsearch",), components=("regfile",),
        cardinalities=(1,), samples=4, seed=0,
    )
    key = config.cell_key("stringsearch", "regfile", 1)
    reference = run_cell("stringsearch", "regfile", 1, config)

    store = CampaignStore(tmp_path / "store.json")
    fired = iter([False, False, True])  # stop before the 3rd sample
    with pytest.raises(CampaignInterrupted):
        run_cell(
            "stringsearch", "regfile", 1, config,
            store=store, cell_key=key, checkpoint_every=None,
            stop=lambda: next(fired, True),
        )
    checkpoint = store.get_partial(key)
    assert checkpoint is not None and checkpoint.samples_done == 2
    resumed = run_cell(
        "stringsearch", "regfile", 1, config,
        store=store, cell_key=key, checkpoint_every=None,
    )
    assert resumed.counts == reference.counts


def test_cli_sigint_drains_and_resume_completes(tmp_path):
    """End-to-end Ctrl-C: SIGINT a --jobs run, then --resume to the same
    bytes an uninterrupted run produces."""
    if os.name != "posix":  # pragma: no cover
        pytest.skip("SIGINT delivery is POSIX-only")
    config_args = [
        "--workloads", "stringsearch",
        "--components", "regfile",
        "--cardinalities", "1",
        "--samples", "40",
        "--seed", "0",
        "--checkpoint-every", "2",
    ]
    store = tmp_path / "store.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parent.parent / "src"
    ) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.core.cli", "run", *config_args,
         "--jobs", "2", "--store", str(store),
         "--out", str(tmp_path / "ignored.json")],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        start_new_session=True,
    )
    time.sleep(2.0)
    os.killpg(proc.pid, signal.SIGINT)
    proc.wait(timeout=60)
    if proc.returncode == 0:  # pragma: no cover - machine too fast
        pytest.skip("campaign finished before SIGINT landed")
    assert proc.returncode == 130

    out = subprocess.run(
        [sys.executable, "-m", "repro.core.cli", "run", *config_args,
         "--jobs", "2", "--store", str(store), "--resume",
         "--out", str(tmp_path / "resumed.json")],
        env=env, capture_output=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr.decode()

    reference = subprocess.run(
        [sys.executable, "-m", "repro.core.cli", "run", *config_args,
         "--out", str(tmp_path / "reference.json")],
        env=env, capture_output=True, timeout=300,
    )
    assert reference.returncode == 0, reference.stderr.decode()
    assert (tmp_path / "resumed.json").read_bytes() == \
        (tmp_path / "reference.json").read_bytes()


def test_unsupervised_parallel_run_works(serial_reference):
    config = CampaignConfig(
        workloads=("stringsearch",), components=("regfile",),
        cardinalities=(1, 2), samples=2, seed=0,
    )
    serial = run_campaign(config)
    parallel = run_campaign(config, jobs=2)
    assert parallel.to_json() == serial.to_json()
