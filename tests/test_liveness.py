"""Liveness-based mask pruning: soundness, byte-identity, audit backstop.

The pruner's contract is absolute: a pruned campaign's ClassCounts must be
byte-identical to an unpruned campaign's, because a pruned verdict is only
issued for faults whose flipped bits are provably never consumed.  These
tests pin the timeline encoding, the per-component decidability rules, the
end-to-end equality over both curated and fuzzed programs, and the
``--verify`` audit that re-simulates pruned verdicts.
"""

import random

import pytest

from repro.core import campaign
from repro.core.campaign import (
    CampaignConfig,
    golden_run,
    run_cell,
    run_one_injection,
)
from repro.core.classify import FaultClass
from repro.core.generator import CLUSTERED, ClusterShape, MultiBitFaultGenerator
from repro.core.liveness import (
    KILL,
    READ,
    _Timeline,
    build_liveness_trace,
    liveness_for,
)
from repro.errors import VerificationError
from repro.cpu.config import DEFAULT_CONFIG
from repro.cpu.system import System
from repro.verify.fuzz import ProgramFuzzer
from repro.workloads import get_workload
from repro.workloads.base import Workload


# -- timeline encoding --------------------------------------------------------


def test_timeline_verdict_brackets_events():
    timeline = _Timeline()
    timeline.record("k", 10, READ)
    timeline.record("k", 20, KILL)
    # The verdict at cycle C is the first event at or after C.
    assert timeline.verdict("k", 5) == READ
    assert timeline.verdict("k", 10) == READ
    assert timeline.verdict("k", 15) == KILL
    assert timeline.verdict("k", 20) == KILL
    # Past the last event nothing ever consumes the bit again.
    assert timeline.verdict("k", 21) is None
    assert timeline.verdict("missing", 0) is None


def test_timeline_run_compression_preserves_verdicts():
    timeline = _Timeline()
    for cycle in (10, 12, 14):
        timeline.record("k", cycle, READ)
    timeline.record("k", 20, KILL)
    # Three same-kind events collapse into one run...
    assert len(timeline.cycles["k"]) == 2
    # ...without changing any verdict inside the compressed span.
    for cycle in (9, 10, 11, 13, 14):
        assert timeline.verdict("k", cycle) == READ
    assert timeline.verdict("k", 15) == KILL


def test_timeline_first_event_survives_compression():
    timeline = _Timeline()
    timeline.record("k", 10, KILL)
    timeline.record("k", 30, KILL)
    # Run compression rewrote cycles[-1], but birth time must not move.
    assert timeline.born_before("k", 11)
    assert not timeline.born_before("k", 10)
    assert not timeline.born_before("other", 100)


# -- trace construction -------------------------------------------------------


def test_trace_geometry_matches_injectable_targets():
    workload = get_workload("crc32")
    trace = build_liveness_trace(workload)
    system = System(DEFAULT_CONFIG)
    system.load(workload.program())
    for name, target in system.injectable_targets().items():
        geometry = trace.target_geometry(name)
        assert geometry.inject_name == target.inject_name
        assert geometry.inject_rows == target.inject_rows
        assert geometry.inject_cols == target.inject_cols
    assert trace.golden_cycles == golden_run(workload).cycles


def test_trace_records_events_for_every_component():
    trace = build_liveness_trace(get_workload("crc32"))
    stats = trace.stats()
    # Every injectable structure is exercised by a real workload: the
    # caches and TLBs via fetch/load/store, the regfile via renaming.
    for component in ("l1d", "l1i", "l2", "itlb", "dtlb", "regfile"):
        assert stats[component] > 0, f"no liveness events for {component}"


def test_liveness_cache_hits():
    from repro import obs

    telemetry = obs.enable()
    try:
        workload = get_workload("crc32")
        liveness_for(workload)
        first = liveness_for(workload)
        second = liveness_for(workload)
        assert first is second
        counters = telemetry.metrics.counters
        assert counters["exec.lru.liveness.hits"].value >= 2
    finally:
        obs.disable()


# -- pruned == full, curated workloads ----------------------------------------


@pytest.mark.parametrize("component", ["l1d", "l2", "regfile", "dtlb"])
def test_pruned_cell_equals_unpruned(component):
    config = CampaignConfig(
        workloads=("crc32",), components=(component,), cardinalities=(2,),
        samples=8, seed=11,
    )
    plain = run_cell("crc32", component, 2, config)
    pruned = run_cell("crc32", component, 2, config, prune=True)
    assert pruned.counts == plain.counts
    assert pruned.golden_cycles == plain.golden_cycles


# -- pruned == full, fuzzed programs ------------------------------------------


class _FuzzWorkload(Workload):
    """A fuzzer-generated program wrapped as an injectable workload."""

    def __init__(self, seed: str) -> None:
        program = ProgramFuzzer(seed, length=30).program()
        system = System(DEFAULT_CONFIG)
        system.load(program)
        result = system.run(max_cycles=1_000_000)
        super().__init__(
            name=f"fuzz:{seed}", paper_name="fuzz", paper_cycles=0,
            description="fuzzed", source="", expected_output=result.output,
        )
        self._fuzz_program = program

    def program(self):
        return self._fuzz_program


def _verdict_stream(workload, component, samples, liveness):
    golden = golden_run(workload)
    generator = MultiBitFaultGenerator(
        cluster=ClusterShape(), mode=CLUSTERED, seed="fuzz-diff"
    )
    cycle_rng = random.Random("fuzz-diff-cycles")
    stream = []
    for _ in range(samples):
        inject_cycle = cycle_rng.randrange(golden.cycles)
        fault_class, _, mask = run_one_injection(
            workload, component, generator, 2, inject_cycle,
            liveness=liveness,
        )
        stream.append((fault_class, mask.bits, inject_cycle))
    return stream


@pytest.mark.parametrize("fuzz_seed", ["live0", "live1"])
def test_pruned_equals_full_on_fuzzed_programs(fuzz_seed):
    workload = _FuzzWorkload(fuzz_seed)
    liveness = build_liveness_trace(workload)
    for component in ("regfile", "l1d", "dtlb"):
        plain = _verdict_stream(workload, component, 6, None)
        pruned = _verdict_stream(workload, component, 6, liveness)
        assert pruned == plain, f"{component} diverged on fuzz:{fuzz_seed}"


# -- the --verify audit backstop ----------------------------------------------


def test_audit_selection_is_deterministic():
    workload = get_workload("crc32")
    golden = golden_run(workload)
    generator = MultiBitFaultGenerator(
        cluster=ClusterShape(), mode=CLUSTERED, seed="audit-select"
    )
    system = System(DEFAULT_CONFIG)
    system.load(workload.program())
    target = system.injectable_targets()["l1d"]
    picks = []
    for index in range(64):
        mask = generator.generate(target, 2)
        picks.append(
            campaign._prune_audit_selected(workload.name, mask, index)
        )
    # Deterministic (hash-based, no RNG) and neither empty nor total.
    assert any(picks) and not all(picks)
    repeat = [
        campaign._prune_audit_selected(workload.name, mask, 63)
    ]
    assert repeat == [picks[-1]]
    del golden


def test_audited_pruned_cell_equals_unpruned(monkeypatch):
    # Audit EVERY pruned verdict: each one is re-simulated end-to-end and
    # must come back Masked, or the cell raises.
    monkeypatch.setattr(campaign, "PRUNE_AUDIT_ONE_IN", 1)
    config = CampaignConfig(
        workloads=("crc32",), components=("regfile",), cardinalities=(1,),
        samples=6, seed=5,
    )
    plain = run_cell("crc32", "regfile", 1, config)
    audited = run_cell("crc32", "regfile", 1, config, prune=True, verify=True)
    assert audited.counts == plain.counts


def test_audit_rejects_unsound_prune_verdict():
    # Draw a fault that full simulation classifies as NOT masked, then
    # hand it to the audit as if the pruner had called it Masked: the
    # audit must raise.  (The probe stream's first l1i sample is a crash.)
    workload = get_workload("crc32")
    golden = golden_run(workload)
    generator = MultiBitFaultGenerator(
        cluster=ClusterShape(), mode=CLUSTERED, seed="audit-probe"
    )
    cycle_rng = random.Random("audit-probe-cycles")
    inject_cycle = cycle_rng.randrange(golden.cycles)
    fault_class, _, mask = run_one_injection(
        workload, "l1i", generator, 3, inject_cycle
    )
    assert fault_class is not FaultClass.MASKED
    with pytest.raises(VerificationError):
        campaign._audit_pruned_sample(
            workload, "l1i", mask, inject_cycle, golden,
            DEFAULT_CONFIG, None, None,
        )


def test_audit_accepts_sound_prune_verdict():
    # A verdict the pruner issued for real IS masked; the audit passes.
    workload = get_workload("crc32")
    golden = golden_run(workload)
    liveness = build_liveness_trace(workload)
    generator = MultiBitFaultGenerator(
        cluster=ClusterShape(), mode=CLUSTERED, seed="audit-sound"
    )
    cycle_rng = random.Random("audit-sound-cycles")
    for _ in range(24):
        inject_cycle = cycle_rng.randrange(golden.cycles)
        mask = generator.generate(liveness.target_geometry("l2"), 1)
        if liveness.classify(mask, inject_cycle):
            campaign._audit_pruned_sample(
                workload, "l2", mask, inject_cycle, golden,
                DEFAULT_CONFIG, None, None,
            )
            return
    pytest.fail("no prunable l2 fault in 24 draws")
