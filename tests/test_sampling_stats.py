"""Statistical reproducibility and confidence-interval mathematics.

Satellite of the verification subsystem: (1) a fixed campaign seed must
reproduce per-cell classification fractions *exactly* — not approximately
— across repeated runs; (2) the binomial CI helper must match the
closed-form Wald/Wilson formulas, including the paper's signature
n = 2,000 / 99% / p = 0.5 → ±2.88% half-width.
"""

import math

import pytest

from repro.core.campaign import CampaignConfig, run_cell
from repro.core.sampling import (
    _t_value,
    _wilson_half,
    binomial_confidence_interval,
    error_margin,
    required_additional_samples,
    sample_size,
    wilson_half_width,
)

#: Two-sided normal quantile at 99% confidence, independently computed
#: (scipy.stats.norm.ppf(0.995)); hard-coded so a drifted _t_value cannot
#: hide behind its own output.
Z_99 = 2.5758293035489004


def _config(samples: int = 24) -> CampaignConfig:
    return CampaignConfig(
        workloads=("susan_c",),
        components=("regfile",),
        cardinalities=(2,),
        samples=samples,
        seed=777,
    )


def test_fixed_seed_reproduces_fractions_exactly():
    config = _config()
    first = run_cell("susan_c", "regfile", 2, config)
    second = run_cell("susan_c", "regfile", 2, config)
    assert first.counts == second.counts
    assert first.counts.as_dict() == second.counts.as_dict()
    assert first.counts.total == config.samples
    for name in ("masked", "sdc", "crash", "timeout", "assertion"):
        frac_a = getattr(first.counts, name) / first.counts.total
        frac_b = getattr(second.counts, name) / second.counts.total
        assert frac_a == frac_b  # exact, not approximate


def test_different_seed_changes_mask_sequence():
    a = run_cell("susan_c", "regfile", 2, _config())
    b_cfg = CampaignConfig(
        workloads=("susan_c",),
        components=("regfile",),
        cardinalities=(2,),
        samples=24,
        seed=778,
    )
    b = run_cell("susan_c", "regfile", 2, b_cfg)
    # Not a strict inequality in general, but with 24 independent draws a
    # collision of the full histogram *and* equal seeds would be a bug in
    # the seed derivation; allow equality of counts only if seeds differ.
    assert a.counts.total == b.counts.total == 24


def test_t_value_matches_tabulated_quantile():
    assert _t_value(0.99) == pytest.approx(Z_99, abs=1e-12)
    assert _t_value(0.95) == pytest.approx(1.959963984540054, abs=1e-12)


def test_wald_interval_matches_closed_form():
    n, k = 2_000, 1_000
    lo, hi = binomial_confidence_interval(k, n, confidence=0.99, method="wald")
    half = Z_99 * math.sqrt(0.25 / n)
    assert lo == pytest.approx(0.5 - half, abs=1e-12)
    assert hi == pytest.approx(0.5 + half, abs=1e-12)
    # The paper's headline number: 2,000 samples -> 2.88% error margin.
    assert round(half, 4) == 0.0288


def test_wilson_interval_matches_closed_form():
    n, k = 2_000, 137
    p = k / n
    t = Z_99
    denom = 1 + t * t / n
    centre = (p + t * t / (2 * n)) / denom
    half = t * math.sqrt(p * (1 - p) / n + t * t / (4 * n * n)) / denom
    lo, hi = binomial_confidence_interval(k, n, confidence=0.99)
    assert lo == pytest.approx(centre - half, abs=1e-12)
    assert hi == pytest.approx(centre + half, abs=1e-12)


def test_interval_edge_cases():
    # Wald degenerates to a point at the extremes; Wilson does not.
    assert binomial_confidence_interval(0, 100, method="wald") == (0.0, 0.0)
    lo, hi = binomial_confidence_interval(0, 100, method="wilson")
    assert lo == 0.0 and 0.0 < hi < 0.1
    lo, hi = binomial_confidence_interval(100, 100, method="wilson")
    assert 0.9 < lo < 1.0 and hi == 1.0
    # Both stay inside [0, 1] everywhere.
    for k in (0, 1, 50, 99, 100):
        for method in ("wald", "wilson"):
            lo, hi = binomial_confidence_interval(k, 100, method=method)
            assert 0.0 <= lo <= hi <= 1.0


def test_interval_input_validation():
    with pytest.raises(ValueError):
        binomial_confidence_interval(1, 0)
    with pytest.raises(ValueError):
        binomial_confidence_interval(5, 4)
    with pytest.raises(ValueError):
        binomial_confidence_interval(-1, 4)
    with pytest.raises(ValueError):
        binomial_confidence_interval(1, 4, method="jeffreys")


def test_wilson_half_width_matches_interval():
    # Away from the [0, 1] clamp, the half-width IS half the interval —
    # the stopping rule and the report can never disagree.
    for k, n in ((137, 2_000), (500, 1_000), (30, 100)):
        lo, hi = binomial_confidence_interval(k, n, confidence=0.99)
        assert wilson_half_width(k, n) == pytest.approx(
            (hi - lo) / 2, abs=1e-12
        )


def test_wilson_half_width_shrinks_with_samples():
    widths = [wilson_half_width(n // 4, n) for n in (40, 400, 4_000, 40_000)]
    assert widths == sorted(widths, reverse=True)
    assert widths[-1] < 0.01


def test_required_additional_samples_is_exact_inverse():
    t = _t_value(0.99)
    for k, n, target in (
        (137, 200, 0.02), (10, 50, 0.05), (0, 25, 0.01), (25, 25, 0.03),
    ):
        extra = required_additional_samples(k, n, target)
        p = k / n
        # Minimality: n + extra meets the target, n + extra - 1 does not.
        assert _wilson_half(p, n + extra, t) <= target
        if extra > 0:
            assert _wilson_half(p, n + extra - 1, t) > target


def test_required_additional_samples_zero_when_met():
    assert required_additional_samples(500, 100_000, 0.02) == 0
    # And the paper's setup: 2,000 samples at p=0.5 sit just under +/-2.9%.
    assert required_additional_samples(1_000, 2_000, 0.029) == 0
    assert required_additional_samples(1_000, 2_000, 0.028) > 0


def test_required_additional_samples_validation():
    with pytest.raises(ValueError):
        required_additional_samples(1, 0, 0.02)
    with pytest.raises(ValueError):
        required_additional_samples(5, 4, 0.02)
    with pytest.raises(ValueError):
        required_additional_samples(1, 4, 0.0)
    with pytest.raises(ValueError):
        wilson_half_width(1, 0)
    with pytest.raises(ValueError):
        wilson_half_width(5, 4)


def test_paper_sampling_numbers_cross_check():
    # For an astronomically large population the finite-population
    # correction vanishes and the error margin at n = 2,000 approaches the
    # Wald half-width at p = 0.5 — the paper's 2.88%.
    population = 10**12
    margin = error_margin(population, 2_000, confidence=0.99)
    assert round(margin, 4) == 0.0288
    # And the inverse: asking for that margin needs ~2,000 samples.
    n = sample_size(population, margin, confidence=0.99)
    assert abs(n - 2_000) <= 1
