"""Cache hierarchy: hits, LRU, write-back, injection geometry."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import Cache
from repro.mem.physmem import PhysicalMemory


def make_l1(mem=None, size=256, assoc=4):
    mem = mem or PhysicalMemory(8192, latency=50)
    return Cache("l1", size, assoc, 32, 2, mem), mem


def test_read_miss_then_hit():
    cache, mem = make_l1()
    mem.write(0x100, b"\xAA\xBB\xCC\xDD")
    data, lat1 = cache.read(0x100, 4)
    assert data == b"\xAA\xBB\xCC\xDD"
    assert lat1 > cache.hit_latency  # cold miss
    data, lat2 = cache.read(0x100, 4)
    assert data == b"\xAA\xBB\xCC\xDD"
    assert lat2 == cache.hit_latency
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_write_allocates_and_dirties():
    cache, mem = make_l1()
    cache.write(0x40, b"\x01\x02\x03\x04")
    assert cache.read(0x40, 4)[0] == b"\x01\x02\x03\x04"
    # Memory not updated until eviction (write-back).
    assert mem.read(0x40, 4) == b"\x00\x00\x00\x00"


def test_dirty_eviction_writes_back():
    cache, mem = make_l1(size=128, assoc=1)  # 4 sets, direct-mapped
    cache.write(0x0, b"\xEE" * 4)
    # Conflict: same set (addresses 128 bytes apart with 4 sets of 32B).
    cache.read(0x80, 4)
    assert mem.read(0x0, 4) == b"\xEE" * 4
    assert cache.stats.writebacks == 1


def test_clean_eviction_discards_corruption():
    """A flipped bit in a clean line vanishes on eviction (masking path)."""
    cache, mem = make_l1(size=128, assoc=1)
    mem.write(0x0, b"\x10\x20\x30\x40")
    cache.read(0x0, 4)
    cache.flip_bit(0, 0)  # corrupt the resident clean line
    cache.read(0x80, 4)   # evict it (clean: no write-back)
    assert mem.read(0x0, 4) == b"\x10\x20\x30\x40"
    assert cache.read(0x0, 4)[0] == b"\x10\x20\x30\x40"  # refetched clean


def test_dirty_corruption_propagates():
    """A flipped bit in a dirty line infects memory on write-back."""
    cache, mem = make_l1(size=128, assoc=1)
    cache.write(0x0, b"\x10\x20\x30\x40")
    cache.flip_bit(0, 0)  # flip LSB of byte 0
    cache.read(0x80, 4)
    assert mem.read(0x0, 4) == b"\x11\x20\x30\x40"


def test_lru_replacement_order():
    cache, mem = make_l1(size=128, assoc=4)  # one set of 4 ways
    for i in range(4):
        cache.read(i * 32, 4)
    cache.read(0, 4)          # touch line 0: now MRU
    cache.read(4 * 32, 4)     # evicts LRU = line at 32
    assert cache.probe(0) is not None
    assert cache.probe(32) is None
    assert cache.probe(4 * 32) is not None


def test_two_level_latency_accumulates():
    mem = PhysicalMemory(8192, latency=50)
    l2 = Cache("l2", 1024, 8, 32, 8, mem)
    l1 = Cache("l1", 256, 4, 32, 2, l2)
    _, cold = l1.read(0x200, 4)
    assert cold == 2 + 8 + 50
    l1_evicting = Cache("l1b", 256, 4, 32, 2, l2)
    _, warm = l1_evicting.read(0x200, 4)  # L2 now holds the line
    assert warm == 2 + 8


def test_inject_geometry_matches_table():
    cache, _ = make_l1(size=256, assoc=4)
    assert cache.inject_rows == 8
    assert cache.inject_cols == 256
    assert cache.inject_rows * cache.inject_cols == 256 * 8


def test_flip_bit_round_trip():
    cache, _ = make_l1()
    assert cache.read_bit(3, 17) == 0
    cache.flip_bit(3, 17)
    assert cache.read_bit(3, 17) == 1
    cache.flip_bit(3, 17)
    assert cache.read_bit(3, 17) == 0


def test_straddling_access_rejected():
    cache, _ = make_l1()
    with pytest.raises(ValueError, match="straddles"):
        cache.read(30, 4)


def test_flush_all_writes_back_everything():
    cache, mem = make_l1()
    cache.write(0x20, b"\x05\x06\x07\x08")
    cache.flush_all()
    assert mem.read(0x20, 4) == b"\x05\x06\x07\x08"
    assert cache.probe(0x20) is None


def test_bad_configuration_rejected():
    mem = PhysicalMemory(8192)
    with pytest.raises(ValueError, match="not divisible"):
        Cache("x", 100, 4, 32, 1, mem)
    with pytest.raises(ValueError, match="power of two"):
        Cache("x", 96 * 32, 32, 32, 1, mem)  # 3 sets


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_random_access_sequence_matches_flat_memory(seed):
    """Property: a cache hierarchy is semantically a flat memory."""
    rng = random.Random(seed)
    mem = PhysicalMemory(4096, latency=10)
    l2 = Cache("l2", 512, 8, 32, 4, mem)
    l1 = Cache("l1", 128, 2, 32, 1, l2)
    model = bytearray(4096)
    for _ in range(200):
        addr = rng.randrange(0, 4096 - 4)
        if rng.random() < 0.5:
            size = rng.choice([1, 4])
            addr &= ~(size - 1)
            if addr % 32 + size > 32:
                continue
            payload = bytes(rng.randrange(256) for _ in range(size))
            l1.write(addr, payload)
            model[addr:addr + size] = payload
        else:
            size = rng.choice([1, 4])
            addr &= ~(size - 1)
            if addr % 32 + size > 32:
                continue
            data, _ = l1.read(addr, size)
            assert data == bytes(model[addr:addr + size])
