"""Supervisor containment: incidents, watchdog, budgets, strict mode, CLI."""

import pytest

from repro.core import campaign
from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.classify import FaultClass
from repro.core.cli import main
from repro.core.supervisor import Incident, IncidentJournal, Supervisor
from repro.core import supervisor as supervisor_module
from repro.errors import (
    IncidentBudgetExceeded,
    InjectionIncident,
    SimAssertion,
    WatchdogTimeout,
)
from repro.cpu.system import System
from repro.workloads import get_workload

WORKLOAD = "stringsearch"  # the fastest workload: keeps these tests quick


def sabotage_inject(monkeypatch, every=None):
    """Make the injector raise RuntimeError (on every Nth call, or always)."""
    real = campaign.inject
    calls = {"count": 0}

    def boom(system, mask):
        calls["count"] += 1
        if every is None or calls["count"] % every == 0:
            raise RuntimeError(f"sabotaged injection #{calls['count']}")
        return real(system, mask)

    monkeypatch.setattr(campaign, "inject", boom)
    return calls


def tiny_config(samples=6, seed=3):
    return CampaignConfig(
        workloads=(WORKLOAD,), components=("regfile",),
        cardinalities=(1,), samples=samples, seed=seed,
    )


def test_sabotaged_campaign_runs_to_completion(monkeypatch):
    sabotage_inject(monkeypatch, every=3)  # samples 3 and 6 blow up
    supervisor = Supervisor()
    result = run_campaign(tiny_config(samples=6), supervisor=supervisor)
    cell = result.cell(WORKLOAD, "regfile", 1)
    assert supervisor.incident_count == 2
    assert result.incidents == 2
    assert cell.counts.total == 4  # lost samples are not fault effects
    incident = supervisor.journal.incidents[0]
    assert incident.kind == "exception"
    assert incident.error_type == "RuntimeError"
    assert incident.workload == WORKLOAD
    assert incident.component == "regfile"
    assert incident.mask is not None  # full repro bundle
    assert "RuntimeError" in incident.traceback
    assert incident.cell_seed.endswith(f"{WORKLOAD}:regfile:1")


def test_unsupervised_campaign_still_propagates(monkeypatch):
    sabotage_inject(monkeypatch, every=1)
    with pytest.raises(RuntimeError):
        run_campaign(tiny_config(samples=2))


def test_strict_mode_escalates_first_incident(monkeypatch):
    sabotage_inject(monkeypatch, every=3)
    supervisor = Supervisor(strict=True)
    with pytest.raises(InjectionIncident, match="strict"):
        run_campaign(tiny_config(samples=6), supervisor=supervisor)
    assert len(supervisor.journal) == 1  # journalled before escalating


def test_incident_budget_aborts(monkeypatch):
    sabotage_inject(monkeypatch)  # every injection fails
    supervisor = Supervisor(max_incidents=2)
    with pytest.raises(IncidentBudgetExceeded):
        run_campaign(tiny_config(samples=6), supervisor=supervisor)
    assert supervisor.incident_count == 3  # the budget-breaking third


def test_escaped_sim_assertion_classifies_as_assert(monkeypatch):
    def assertion(system, mask):
        raise SimAssertion("synthetic invariant violation")

    monkeypatch.setattr(campaign, "inject", assertion)
    supervisor = Supervisor()
    result = run_campaign(tiny_config(samples=4), supervisor=supervisor)
    cell = result.cell(WORKLOAD, "regfile", 1)
    assert supervisor.incident_count == 0
    assert cell.counts.assertion == 4
    assert cell.counts.avf == 1.0


# -- watchdog --------------------------------------------------------------------


def test_step_watchdog_trips_on_stuck_cycle_counter():
    system = System()
    system.load(get_workload(WORKLOAD).program())
    system.core.step = lambda: None  # cycle counter frozen: infra livelock
    with pytest.raises(WatchdogTimeout, match="cycle counter"):
        system.run(max_cycles=100, max_steps=50)


def test_run_until_watchdog_trips_on_stuck_cycle_counter():
    system = System()
    system.load(get_workload(WORKLOAD).program())
    system.core.step = lambda: None
    with pytest.raises(WatchdogTimeout):
        system.run_until(10, 100, max_steps=5)


def test_watchdog_not_armed_means_cycle_budget_still_works():
    system = System()
    system.load(get_workload(WORKLOAD).program())
    result = system.run(max_cycles=50)  # no max_steps: normal path
    assert result is not None


def test_watchdog_incident_is_contained(monkeypatch):
    def livelock(*args, **kwargs):
        raise WatchdogTimeout("cycle counter stuck at 7")

    monkeypatch.setattr(supervisor_module, "run_one_injection", livelock)
    supervisor = Supervisor()
    outcome = supervisor.run_injection(
        get_workload(WORKLOAD), "regfile",
        None, 1, 100, cell_seed="s", sample_index=0,
    )
    assert outcome is None
    assert supervisor.journal.incidents[0].kind == "watchdog"


# -- journal ---------------------------------------------------------------------


def test_incident_journal_jsonl_round_trip(tmp_path):
    path = tmp_path / "incidents.jsonl"
    journal = IncidentJournal(path)
    for index in range(2):
        journal.append(Incident(
            kind="exception", workload="w", component="l1d", cardinality=2,
            cell_seed="0:w:l1d:2", sample_index=index, inject_cycle=123,
            mask={"component": "l1d", "bits": [[0, 1]],
                  "origin": [0, 0], "cluster": [3, 3]},
            error_type="ValueError", message="boom", traceback="tb",
        ))
    path.open("a").write("not json at all\n")  # torn line must be skipped
    loaded = IncidentJournal.load(path)
    assert len(loaded) == 2
    assert loaded.incidents[1].sample_index == 1
    assert loaded.incidents[0].mask["bits"] == [[0, 1]]


def test_loading_missing_journal_is_empty(tmp_path):
    assert len(IncidentJournal.load(tmp_path / "absent.jsonl")) == 0


# -- CLI -------------------------------------------------------------------------


def test_cli_contains_incidents_and_exits_zero(tmp_path, monkeypatch, capsys):
    sabotage_inject(monkeypatch, every=2)
    journal_path = tmp_path / "incidents.jsonl"
    code = main([
        "run", "--workloads", WORKLOAD, "--components", "regfile",
        "--cardinalities", "1", "--samples", "4", "--seed", "7",
        "--incident-journal", str(journal_path),
        "--out", str(tmp_path / "results.json"),
    ])
    assert code == 0
    assert "incident(s) contained" in capsys.readouterr().err
    assert len(IncidentJournal.load(journal_path)) == 2

    assert main(["incidents", "--journal", str(journal_path)]) == 0
    output = capsys.readouterr().out
    assert "2 incident(s)" in output
    assert "RuntimeError" in output

    assert main([
        "incidents", "--journal", str(journal_path), "--verbose",
    ]) == 0
    assert "sabotaged injection" in capsys.readouterr().out


def test_cli_strict_exits_nonzero(tmp_path, monkeypatch, capsys):
    sabotage_inject(monkeypatch, every=2)
    code = main([
        "run", "--workloads", WORKLOAD, "--components", "regfile",
        "--cardinalities", "1", "--samples", "4", "--seed", "7", "--strict",
        "--out", str(tmp_path / "results.json"),
    ])
    assert code == 1
    assert "campaign aborted" in capsys.readouterr().err


def test_cli_max_incidents_exits_nonzero(tmp_path, monkeypatch, capsys):
    sabotage_inject(monkeypatch)
    code = main([
        "run", "--workloads", WORKLOAD, "--components", "regfile",
        "--cardinalities", "1", "--samples", "6", "--seed", "7",
        "--max-incidents", "1",
        "--out", str(tmp_path / "results.json"),
    ])
    assert code == 1


def test_cli_incidents_on_missing_journal(tmp_path, capsys):
    assert main(["incidents", "--journal", str(tmp_path / "nope.jsonl")]) == 0
    assert "no incidents" in capsys.readouterr().out


def test_cli_store_resume_flag_round_trip(tmp_path, capsys):
    store = tmp_path / "store.json"
    argv = [
        "run", "--workloads", WORKLOAD, "--components", "regfile",
        "--cardinalities", "1", "--samples", "3", "--seed", "2",
        "--store", str(store), "--resume", "--checkpoint-every", "2",
        "--out", str(tmp_path / "results.json"),
    ]
    assert main(argv) == 0
    first = (tmp_path / "results.json").read_text()
    assert main(argv) == 0  # second run is a pure cache hit
    assert (tmp_path / "results.json").read_text() == first
