"""CampaignStore hardening: journal, compaction, quarantine, mid-cell resume."""

import json
import random

import pytest

from repro.core import campaign
from repro.core.avf import ClassCounts
from repro.core.campaign import (
    CampaignConfig,
    CampaignStore,
    CellCheckpoint,
    CellResult,
    run_campaign,
    run_cell,
)

WORKLOAD = "stringsearch"  # the fastest workload: keeps these tests quick


def make_cell(tag: str, masked: int = 5) -> CellResult:
    return CellResult(
        workload=tag, component="regfile", cardinality=1,
        counts=ClassCounts(masked=masked, sdc=1), golden_cycles=1000,
    )


def make_checkpoint(samples_done: int = 4) -> CellCheckpoint:
    rng = random.Random("checkpoint-test")
    return CellCheckpoint(
        samples_done=samples_done,
        counts=ClassCounts(masked=3, crash=1),
        cycle_rng_state=rng.getstate(),
        generator_rng_state=random.Random("other").getstate(),
        golden_cycles=1234,
    )


# -- journal + compaction --------------------------------------------------------


def test_puts_are_journal_appends_and_survive_reload(tmp_path):
    path = tmp_path / "store.json"
    store = CampaignStore(path, compact_every=1000)
    store.put("k1", make_cell("a"))
    store.put("k2", make_cell("b"))
    # No compaction yet: everything lives in the write-ahead journal.
    assert not path.exists()
    assert store.journal_path.exists()
    reloaded = CampaignStore(path)
    assert len(reloaded) == 2
    assert reloaded.get("k1").workload == "a"


def test_compaction_truncates_journal_and_snapshot_holds_all(tmp_path):
    path = tmp_path / "store.json"
    store = CampaignStore(path, compact_every=3)
    for i in range(3):
        store.put(f"k{i}", make_cell(f"w{i}"))
    assert path.exists()
    assert store.journal_path.read_text() == ""
    snapshot = json.loads(path.read_text())
    assert snapshot["schema"] == campaign.STORE_SCHEMA
    assert len(snapshot["cells"]) == 3
    assert len(CampaignStore(path)) == 3


def test_journal_handle_is_persistent_and_reset_by_compaction(tmp_path):
    path = tmp_path / "store.json"
    store = CampaignStore(path, compact_every=3)
    store.put("k0", make_cell("w0"))
    handle = store._journal_handle
    assert handle is not None and not handle.closed
    store.put("k1", make_cell("w1"))
    assert store._journal_handle is handle  # no reopen per append
    store.put("k2", make_cell("w2"))  # triggers compaction
    assert handle.closed and store._journal_handle is None
    store.put("k3", make_cell("w3"))  # lazily reopens
    assert store._journal_handle is not None
    assert len(CampaignStore(path)) == 4


def test_close_releases_handle_and_appends_reopen(tmp_path):
    path = tmp_path / "store.json"
    store = CampaignStore(path, compact_every=1000)
    store.put("k0", make_cell("w0"))
    store.close()
    assert store._journal_handle is None
    store.put("k1", make_cell("w1"))
    assert len(CampaignStore(path)) == 2


def test_compacted_snapshots_are_key_sorted_and_order_independent(tmp_path):
    """Same cells in any arrival order → identical snapshot bytes (what
    lets CI cmp a parallel store against a serial reference)."""
    forward, backward = tmp_path / "a.json", tmp_path / "b.json"
    cells = [(f"k{i}", make_cell(f"w{i}")) for i in range(4)]
    store_a = CampaignStore(forward)
    for key, cell in cells:
        store_a.put(key, cell)
    store_a.compact()
    store_b = CampaignStore(backward)
    for key, cell in reversed(cells):
        store_b.put(key, cell)
    store_b.compact()
    assert forward.read_bytes() == backward.read_bytes()


def test_legacy_schema1_snapshot_loads(tmp_path):
    path = tmp_path / "store.json"
    path.write_text(json.dumps({"oldkey": make_cell("legacy").as_dict()}))
    store = CampaignStore(path)
    assert store.get("oldkey").workload == "legacy"
    # A compaction upgrades the file to the enveloped schema.
    store.compact()
    assert json.loads(path.read_text())["schema"] == campaign.STORE_SCHEMA


def test_corrupt_snapshot_is_quarantined_and_journal_replayed(tmp_path):
    path = tmp_path / "store.json"
    store = CampaignStore(path, compact_every=1000)
    store.put("k1", make_cell("a"))
    store.compact()
    store.put("k2", make_cell("b"))  # journal-only after the compaction
    path.write_text('{"schema": 2, "cells": {truncated garbage')
    recovered = CampaignStore(path)
    assert recovered.quarantined is not None
    assert recovered.quarantined.exists()  # evidence preserved
    # k1 lived only in the corrupted snapshot; k2 replays from the journal.
    assert recovered.get("k2").workload == "b"
    assert recovered.get("k1") is None


def test_torn_final_journal_line_is_skipped(tmp_path):
    path = tmp_path / "store.json"
    store = CampaignStore(path, compact_every=1000)
    store.put("k1", make_cell("a"))
    store.put("k2", make_cell("b"))
    with store.journal_path.open("a") as journal:
        journal.write('{"op": "cell", "key": "k3", "cel')  # kill mid-append
    recovered = CampaignStore(path)
    assert len(recovered) == 2
    assert recovered.get("k2").workload == "b"


def test_partial_checkpoint_round_trip(tmp_path):
    path = tmp_path / "store.json"
    store = CampaignStore(path, compact_every=1000)
    checkpoint = make_checkpoint()
    store.put_partial("cellkey", checkpoint)
    restored = CampaignStore(path).get_partial("cellkey")
    assert restored.samples_done == checkpoint.samples_done
    assert restored.counts == checkpoint.counts
    assert restored.golden_cycles == checkpoint.golden_cycles
    # The restored RNG state must continue the exact same stream.
    rng = random.Random()
    rng.setstate(restored.cycle_rng_state)
    reference = random.Random("checkpoint-test")
    assert [rng.randrange(10**6) for _ in range(5)] == [
        reference.randrange(10**6) for _ in range(5)
    ]


def test_final_put_clears_partial(tmp_path):
    path = tmp_path / "store.json"
    store = CampaignStore(path)
    store.put_partial("k", make_checkpoint())
    assert store.partial_keys() == ["k"]
    store.put("k", make_cell("done"))
    assert store.partial_keys() == []
    assert CampaignStore(path).partial_keys() == []


def test_partials_survive_compaction(tmp_path):
    path = tmp_path / "store.json"
    store = CampaignStore(path, compact_every=1)  # compact on every mutation
    store.put_partial("k", make_checkpoint(7))
    reloaded = CampaignStore(path)
    assert reloaded.get_partial("k").samples_done == 7


# -- mid-cell kill + resume ------------------------------------------------------


def interrupt_after(monkeypatch, n_samples):
    """Let *n_samples* injections finish, then simulate a SIGINT."""
    real = campaign.run_one_injection
    calls = {"count": 0}

    def flaky(*args, **kwargs):
        calls["count"] += 1
        if calls["count"] > n_samples:
            raise KeyboardInterrupt
        return real(*args, **kwargs)

    monkeypatch.setattr(campaign, "run_one_injection", flaky)
    return calls


def test_kill_mid_cell_then_resume_is_bit_identical(tmp_path, monkeypatch):
    config = CampaignConfig(
        workloads=(WORKLOAD,), components=("regfile",),
        cardinalities=(1,), samples=10, seed=3,
    )
    uninterrupted = run_cell(WORKLOAD, "regfile", 1, config)

    path = tmp_path / "store.json"
    key = config.cell_key(WORKLOAD, "regfile", 1)
    store = CampaignStore(path)
    calls = interrupt_after(monkeypatch, 7)
    with pytest.raises(KeyboardInterrupt):
        run_cell(
            WORKLOAD, "regfile", 1, config,
            store=store, cell_key=key, checkpoint_every=3,
        )
    monkeypatch.undo()
    # The kill landed between checkpoints: samples 1-6 are checkpointed,
    # 7 is lost and must be re-run.
    resumed_store = CampaignStore(path)
    assert resumed_store.get_partial(key).samples_done == 6
    calls = {"count": 0}
    real = campaign.run_one_injection

    def counting(*args, **kwargs):
        calls["count"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(campaign, "run_one_injection", counting)
    resumed = run_cell(
        WORKLOAD, "regfile", 1, config,
        store=resumed_store, cell_key=key, checkpoint_every=3,
    )
    assert calls["count"] == 4  # resumed from sample 6, not from zero
    assert resumed.counts == uninterrupted.counts
    assert resumed.golden_cycles == uninterrupted.golden_cycles


def test_resume_false_restarts_the_cell(tmp_path, monkeypatch):
    config = CampaignConfig(
        workloads=(WORKLOAD,), components=("regfile",),
        cardinalities=(1,), samples=6, seed=5,
    )
    uninterrupted = run_cell(WORKLOAD, "regfile", 1, config)
    path = tmp_path / "store.json"
    key = config.cell_key(WORKLOAD, "regfile", 1)
    store = CampaignStore(path)
    interrupt_after(monkeypatch, 4)
    with pytest.raises(KeyboardInterrupt):
        run_cell(
            WORKLOAD, "regfile", 1, config,
            store=store, cell_key=key, checkpoint_every=2,
        )
    monkeypatch.undo()
    fresh = run_cell(
        WORKLOAD, "regfile", 1, config,
        store=CampaignStore(path), cell_key=key, checkpoint_every=2,
        resume=False,
    )
    assert fresh.counts == uninterrupted.counts


def test_campaign_killed_and_resumed_matches_uninterrupted(tmp_path, monkeypatch):
    """The acceptance criterion, at campaign level, through run_campaign."""
    config = CampaignConfig(
        workloads=(WORKLOAD,), components=("regfile", "itlb"),
        cardinalities=(1,), samples=8, seed=11,
    )
    baseline = run_campaign(config)

    path = tmp_path / "store.json"
    interrupt_after(monkeypatch, 11)  # dies inside the second cell
    with pytest.raises(KeyboardInterrupt):
        run_campaign(
            config, store=CampaignStore(path), checkpoint_every=3,
        )
    monkeypatch.undo()
    resumed = run_campaign(
        config, store=CampaignStore(path), checkpoint_every=3, resume=True,
    )
    for cell in baseline.cells:
        other = resumed.cell(cell.workload, cell.component, cell.cardinality)
        assert other.counts == cell.counts
