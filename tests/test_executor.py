"""Backend conformance and unit tests for the executor fabric.

Every registered :class:`~repro.core.executor.ExecutorBackend` must be
interchangeable under the scheduler: same campaign, same bytes, same
crash containment.  The conformance tests below run each backend through
the scheduler and hold them to the serial reference; the unit tests pin
the frame protocol and the deterministic pieces of the resilience
policy.
"""

from __future__ import annotations

import io
import struct

import pytest

from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.executor import (
    ALL_BACKEND_NAMES,
    MAX_FRAME_BYTES,
    ResiliencePolicy,
    WorkerSpec,
    create_backend,
    read_frame,
    write_frame,
)
from repro.core.parallel import run_campaign_parallel
from repro.core.supervisor import IncidentJournal, Supervisor
from repro.errors import ConfigError

GRID = CampaignConfig(
    workloads=("crc32",),
    components=("regfile", "itlb"),
    cardinalities=(1, 2),
    samples=2,
    seed=0,
)


@pytest.fixture(scope="module")
def serial_reference():
    return run_campaign(GRID)


# ---------------------------------------------------------------------------
# Conformance: every backend (multiprocessing, subprocess, socket)
# produces the serial bytes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", sorted(ALL_BACKEND_NAMES))
def test_backend_matches_serial_byte_identically(backend, serial_reference):
    result = run_campaign_parallel(GRID, jobs=2, backend=backend)
    assert result.to_json() == serial_reference.to_json()


@pytest.mark.parametrize("backend", sorted(ALL_BACKEND_NAMES))
def test_backend_contains_worker_crash(backend, serial_reference, tmp_path):
    supervisor = Supervisor(journal=IncidentJournal())
    result = run_campaign_parallel(
        GRID, jobs=2, backend=backend, supervisor=supervisor,
        _crash_spec={
            "cell": ["crc32", "itlb", 2],
            "flag": str(tmp_path / f"crashed-{backend}.flag"),
        },
    )
    assert supervisor.incident_count == 1
    kinds = [incident.kind for incident in supervisor.journal.incidents]
    # One counted crash; every cell the dead worker held becomes a
    # bookkeeping retry record (how many it held depends on timing).
    assert kinds[0] == "worker-crash"
    assert set(kinds[1:]) == {"retry"}
    assert result.to_json() == serial_reference.to_json()


def test_create_backend_rejects_unknown_name():
    spec = WorkerSpec(
        config=GRID, core_cfg=None, supervised=False, strict=False,
        watchdog=False, checkpoint_every=None, telemetry_enabled=False,
        verify=False,
    )
    with pytest.raises(ValueError, match="unknown executor backend"):
        create_backend("carrier-pigeon", spec)


# ---------------------------------------------------------------------------
# Frame protocol
# ---------------------------------------------------------------------------


def test_frame_roundtrip_preserves_messages():
    stream = io.BytesIO()
    messages = [
        ("ready", 3),
        ("heartbeat", 0, 7),
        ("cell", 1, 4, {"counts": [1, 2, 3]}, 0.25),
        ("bye", 2),
    ]
    for message in messages:
        write_frame(stream, message)
    stream.seek(0)
    assert [read_frame(stream) for _ in messages] == messages
    assert read_frame(stream) is None  # clean EOF


def test_torn_frame_reads_as_eof():
    stream = io.BytesIO()
    write_frame(stream, ("cell", 0, 0, {"x": 1}, 0.0))
    torn = stream.getvalue()[:-3]  # kill mid-payload
    assert read_frame(io.BytesIO(torn)) is None
    # Torn mid-header is EOF too, not a struct error.
    assert read_frame(io.BytesIO(torn[:2])) is None


def test_absurd_frame_length_reads_as_eof():
    header = struct.pack(">I", MAX_FRAME_BYTES + 1)
    assert read_frame(io.BytesIO(header + b"x" * 64)) is None


def test_garbage_payload_reads_as_eof():
    payload = b"not a pickle"
    stream = io.BytesIO(struct.pack(">I", len(payload)) + payload)
    assert read_frame(stream) is None


# ---------------------------------------------------------------------------
# Resilience policy units
# ---------------------------------------------------------------------------


def test_backoff_is_deterministic_per_cell_and_attempt():
    policy = ResiliencePolicy()
    first = policy.backoff("crc32/regfile/1", 1)
    assert first == policy.backoff("crc32/regfile/1", 1)
    # Different cells jitter differently (with overwhelming probability
    # over the cells used here), but stay within the jitter envelope.
    for attempt in (1, 2, 3):
        for key in ("crc32/regfile/1", "crc32/itlb/2", "stringsearch/l1d/4"):
            delay = policy.backoff(key, attempt)
            base = min(
                policy.retry_max_delay,
                policy.retry_base_delay * 2 ** (attempt - 1),
            )
            assert base <= delay <= base * (1 + policy.retry_jitter)


def test_backoff_grows_then_caps():
    policy = ResiliencePolicy(
        retry_base_delay=1.0, retry_max_delay=4.0, retry_jitter=0.0
    )
    delays = [policy.backoff("cell", attempt) for attempt in range(1, 6)]
    assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]


def test_policy_defaults_validate():
    ResiliencePolicy().validate()


@pytest.mark.parametrize("overrides,fragment", [
    ({"heartbeat_interval": 0.0}, "heartbeat_interval"),
    ({"lease_factor": -1.0}, "lease_factor"),
    ({"lease_floor": 0.0}, "lease_floor"),
    ({"max_attempts": 0}, "max_attempts"),
    ({"retry_jitter": -0.1}, "retry_jitter"),
    ({"retry_base_delay": 5.0, "retry_max_delay": 1.0}, "retry_max_delay"),
    ({"heartbeat_interval": 60.0, "hang_timeout": 1.0},
     "heartbeat_interval"),
])
def test_policy_validate_rejects_bad_knobs(overrides, fragment):
    with pytest.raises(ConfigError, match=fragment):
        ResiliencePolicy(**overrides).validate()
