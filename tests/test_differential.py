"""Differential verification: lock-step comparison against the oracle.

The load-bearing test here is the *seeded-bug* one: a deliberately broken
ALU table is monkeypatched into the out-of-order core (only — the oracle
keeps its own binding to the pristine semantics), and the differential
harness must catch the divergence.  A verification subsystem that cannot
detect a planted bug verifies nothing.
"""

import dataclasses

import pytest

import repro.cpu.core as core_module
import repro.verify.differential as differential_module
import repro.verify.reference as reference_module
from repro.core.campaign import CampaignConfig, run_campaign
from repro.cpu.config import DEFAULT_CONFIG
from repro.errors import DivergenceError, VerificationError
from repro.isa.opcodes import Op
from repro.isa.semantics import ALU_OPS
from repro.kernel.status import RunResult, RunStatus
from repro.verify import (
    check_masked_run,
    reference_run,
    run_differential,
    verify_workload,
)
from repro.workloads import get_workload

WORKLOAD = "susan_c"


def _broken_alu():
    """An ALU table whose ADD is off by one — the planted bug."""
    return {**ALU_OPS, Op.ADD: lambda a, b: (a + b + 1) & 0xFFFFFFFF}


def test_workload_passes_differential():
    workload = get_workload(WORKLOAD)
    report = run_differential(workload.program(), audit=True)
    assert report.committed > 0
    assert report.result.status is RunStatus.FINISHED
    assert report.result.output == report.reference.output


def test_seeded_pipeline_bug_is_caught(monkeypatch):
    # Break the *core's* ALU binding only: the oracle imported its own
    # reference to the pristine table at module load.
    monkeypatch.setattr(core_module, "ALU_OPS", _broken_alu())
    workload = get_workload(WORKLOAD)
    with pytest.raises(DivergenceError) as excinfo:
        run_differential(workload.program())
    # The report names the first diverging instruction with context.
    assert "0x" in str(excinfo.value)


def test_seeded_oracle_bug_is_caught(monkeypatch):
    # Symmetric check: breaking the oracle's binding must also diverge —
    # the harness has no "trusted side".
    monkeypatch.setattr(reference_module, "ALU_OPS", _broken_alu())
    workload = get_workload(WORKLOAD)
    with pytest.raises(DivergenceError):
        run_differential(workload.program())


def test_verify_workload_accepts_healthy_platform():
    workload = get_workload(WORKLOAD)
    verify_workload(workload, DEFAULT_CONFIG)  # must not raise


def test_check_masked_run_accepts_clean_result():
    workload = get_workload(WORKLOAD)
    golden = reference_run(workload, DEFAULT_CONFIG)
    check_masked_run(workload, golden, DEFAULT_CONFIG)  # must not raise


def test_check_masked_run_catches_silent_corruption():
    workload = get_workload(WORKLOAD)
    golden = reference_run(workload, DEFAULT_CONFIG)
    corrupted = bytearray(golden.output)
    corrupted[0] ^= 0x01
    fake = dataclasses.replace(golden, output=bytes(corrupted))
    with pytest.raises(DivergenceError):
        check_masked_run(workload, fake, DEFAULT_CONFIG)
    fake_exit = dataclasses.replace(golden, exit_code=golden.exit_code + 1)
    with pytest.raises(DivergenceError):
        check_masked_run(workload, fake_exit, DEFAULT_CONFIG)


def _smoke_config():
    return CampaignConfig(
        workloads=(WORKLOAD,),
        components=("l1d", "regfile"),
        cardinalities=(2,),
        samples=6,
        seed=1234,
    )


def test_verify_campaign_is_byte_identical():
    """Acceptance criterion: --verify never changes campaign results."""
    plain = run_campaign(_smoke_config())
    verify_cfg = dataclasses.replace(DEFAULT_CONFIG, check_invariants=True)
    verified = run_campaign(_smoke_config(), core_cfg=verify_cfg, verify=True)
    assert plain.to_json() == verified.to_json()


def test_run_differential_rejects_early_core_termination(monkeypatch):
    # A core that terminates before the oracle is a divergence, not a pass:
    # cap the core's cycle budget so it times out mid-program.
    workload = get_workload(WORKLOAD)
    with pytest.raises(VerificationError):
        run_differential(workload.program(), max_cycles=50)
