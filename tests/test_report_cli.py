"""Report renderers and the repro-campaign command-line interface."""

import json

import pytest

from repro.core import report
from repro.core.avf import ClassCounts
from repro.core.campaign import CampaignResult, CellResult
from repro.core.cli import main
from repro.cpu.config import DEFAULT_CONFIG

WORKLOADS = ("alpha", "beta")
COMPONENTS = ("l1d", "l1i", "l2", "regfile", "dtlb", "itlb")


def synthetic_result():
    """A hand-built campaign result with known, distinct AVFs."""
    cells = []
    for wi, workload in enumerate(WORKLOADS):
        for ci, component in enumerate(COMPONENTS):
            for cardinality in (1, 2, 3):
                vulnerable = 5 * cardinality + ci + wi
                cells.append(CellResult(
                    workload=workload,
                    component=component,
                    cardinality=cardinality,
                    counts=ClassCounts(
                        masked=100 - vulnerable,
                        sdc=vulnerable // 2,
                        crash=vulnerable - vulnerable // 2,
                    ),
                    golden_cycles=1000 * (wi + 1),
                ))
    return CampaignResult(cells)


def test_format_table_alignment():
    text = report.format_table(["A", "BB"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert lines[0].startswith("A")
    assert "---" in lines[1]
    assert len(lines) == 4


def test_render_table1_contains_config():
    text = report.render_table1(DEFAULT_CONFIG)
    assert "Reorder buffer" in text and "40" in text
    assert "2/4/4" in text


def test_render_static_tables():
    assert "250nm" in report.render_table6()
    assert "106 x 10^-8" in report.render_table7()
    assert "4,194,304" in report.render_table8()


def test_render_table3():
    text = report.render_table3({"sha": 1234}, {"sha": 99})
    assert "1,234" in text and "sha" in text


def test_render_component_figure():
    text = report.render_component_figure(synthetic_result(), "l1d", "FIG. 1")
    assert "FIG. 1" in text
    assert "alpha" in text and "beta" in text
    assert "1-bit" in text and "3-bit" in text
    assert "AVF" in text


def test_render_table4_and_5():
    result = synthetic_result()
    table4 = report.render_table4(result)
    assert "L1D Cache" in table4 and "x" in table4
    table5 = report.render_table5(result)
    assert "Register File" in table5
    assert "+" in table5  # percentage increases present


def test_render_fig7_and_8():
    result = synthetic_result()
    fig7 = report.render_fig7(result)
    assert "22nm" in fig7 and "gap" in fig7
    fig8 = report.render_fig8(result)
    assert "FIT" in fig8 and "multi-bit" in fig8


def test_weighted_avf_increases_with_cardinality_in_synthetic():
    result = synthetic_result()
    for component in COMPONENTS:
        avfs = result.weighted_avf_by_cardinality(component)
        assert avfs[1] < avfs[2] < avfs[3]


# -- CLI -------------------------------------------------------------------------


def test_cli_static_artifacts(capsys):
    for artifact in ("table1", "table6", "table7", "table8"):
        assert main(["static", "--artifact", artifact]) == 0
    output = capsys.readouterr().out
    assert "TABLE VIII" in output


def test_cli_static_unknown_artifact():
    with pytest.raises(SystemExit):
        main(["static", "--artifact", "table99"])


def test_cli_report_round_trip(tmp_path, capsys):
    results = tmp_path / "results.json"
    results.write_text(synthetic_result().to_json())
    assert main(["report", "--results", str(results),
                 "--artifact", "table5"]) == 0
    assert "TABLE V" in capsys.readouterr().out
    assert main(["report", "--results", str(results),
                 "--artifact", "fig8"]) == 0
    assert "FIT" in capsys.readouterr().out


def test_cli_run_tiny_campaign(tmp_path, capsys):
    out = tmp_path / "campaign.json"
    code = main([
        "run", "--workloads", "stringsearch", "--components", "regfile",
        "--cardinalities", "1", "--samples", "2", "--seed", "5",
        "--out", str(out),
    ])
    assert code == 0
    data = json.loads(out.read_text())
    assert len(data["cells"]) == 1
    assert data["cells"][0]["counts"]["masked"] + sum(
        data["cells"][0]["counts"][k]
        for k in ("sdc", "crash", "timeout", "assertion")
    ) == 2


def test_cli_golden_prints_table3(capsys):
    assert main(["golden", "--workloads", "stringsearch"]) == 0
    output = capsys.readouterr().out
    assert "TABLE III" in output
    assert "stringsearch" in output


def test_cli_export_csv(tmp_path, capsys):
    results = tmp_path / "results.json"
    results.write_text(synthetic_result().to_json())
    assert main(["export", "--results", str(results), "--what", "cells"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("workload,component,cardinality")
    assert "alpha" in out
    assert main(["export", "--results", str(results), "--what", "fit"]) == 0
    out = capsys.readouterr().out
    assert "250nm" in out and "multibit_share" in out
