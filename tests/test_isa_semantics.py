"""Integer semantics of the ALU and branch conditions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.opcodes import Op
from repro.isa.semantics import (
    ArithmeticFault,
    alu,
    branch_taken,
    to_signed,
    to_u32,
)

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def test_to_signed():
    assert to_signed(0) == 0
    assert to_signed(0x7FFFFFFF) == 2**31 - 1
    assert to_signed(0x80000000) == -(2**31)
    assert to_signed(0xFFFFFFFF) == -1


def test_add_sub_wraparound():
    assert alu(Op.ADD, 0xFFFFFFFF, 1) == 0
    assert alu(Op.SUB, 0, 1) == 0xFFFFFFFF
    assert alu(Op.MUL, 0x10000, 0x10000) == 0


def test_signed_division_truncates_toward_zero():
    assert alu(Op.DIV, to_u32(-7), 2) == to_u32(-3)
    assert alu(Op.DIV, 7, to_u32(-2)) == to_u32(-3)
    assert alu(Op.DIV, to_u32(-7), to_u32(-2)) == 3


def test_signed_modulo_follows_dividend_sign():
    assert alu(Op.MOD, to_u32(-7), 2) == to_u32(-1)
    assert alu(Op.MOD, 7, to_u32(-2)) == 1


def test_division_by_zero_raises():
    with pytest.raises(ArithmeticFault):
        alu(Op.DIV, 1, 0)
    with pytest.raises(ArithmeticFault):
        alu(Op.MOD, 1, 0)


def test_shifts():
    assert alu(Op.LSL, 1, 31) == 0x80000000
    assert alu(Op.LSR, 0x80000000, 31) == 1
    assert alu(Op.ASR, 0x80000000, 31) == 0xFFFFFFFF
    # Shift amounts wrap at 32.
    assert alu(Op.LSL, 1, 32) == 1
    assert alu(Op.LSL, 1, 33) == 2


def test_set_less_than():
    assert alu(Op.SLT, to_u32(-1), 0) == 1
    assert alu(Op.SLT, 0, to_u32(-1)) == 0
    assert alu(Op.SLTU, to_u32(-1), 0) == 0  # unsigned: 0xFFFFFFFF > 0
    assert alu(Op.SLTU, 0, 1) == 1


def test_branch_conditions_signed_vs_unsigned():
    minus_one = to_u32(-1)
    assert branch_taken(Op.BLT, minus_one, 0)
    assert not branch_taken(Op.BLTU, minus_one, 0)
    assert branch_taken(Op.BGEU, minus_one, 0)
    assert branch_taken(Op.BEQ, 5, 5)
    assert branch_taken(Op.BNE, 5, 6)
    assert branch_taken(Op.BEQZ, 0, 12345)
    assert branch_taken(Op.BNEZ, 1, 0)


@given(U32, U32)
def test_alu_results_are_32_bit(a, b):
    for op in (Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.ORR, Op.EOR,
               Op.LSL, Op.LSR, Op.ASR, Op.SLT, Op.SLTU):
        assert 0 <= alu(op, a, b) <= 0xFFFFFFFF


@given(U32, U32)
def test_add_matches_python_mod_2_32(a, b):
    assert alu(Op.ADD, a, b) == (a + b) % 2**32


@given(U32, st.integers(min_value=1, max_value=0xFFFFFFFF))
def test_div_mod_identity(a, b):
    q = to_signed(alu(Op.DIV, a, b))
    r = to_signed(alu(Op.MOD, a, b))
    sa, sb = to_signed(a), to_signed(b)
    if sa != -(2**31) or sb != -1:  # the overflowing corner wraps
        assert q * sb + r == sa


@given(U32, U32)
def test_slt_consistent_with_branch(a, b):
    assert bool(alu(Op.SLT, a, b)) == branch_taken(Op.BLT, a, b)
    assert bool(alu(Op.SLTU, a, b)) == branch_taken(Op.BLTU, a, b)
