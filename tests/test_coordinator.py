"""Coordinator and worker-client tests for the socket backend.

The conformance suite in ``test_executor.py`` already proves the socket
backend's autospawn mode lands on the serial bytes; the tests here pin
the distributed-specific surfaces — address parsing, the handshake's
stale-session rejection, the worker CLI's exit-code contract, and the
``--listen`` flow with externally launched ``worker --connect``
processes.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.coordinator import (
    SocketBackend,
    parse_address,
    run_worker,
)
from repro.core.executor import WorkerSpec
from repro.core.parallel import run_campaign_parallel
from repro.core.wire import HANDSHAKE_EPOCH, read_frame, write_frame

CONFIG = CampaignConfig(
    workloads=("crc32",),
    components=("regfile", "itlb"),
    cardinalities=(1,),
    samples=3,
    seed=0,
)


def _spec() -> WorkerSpec:
    return WorkerSpec(
        config=CONFIG, core_cfg=None, supervised=False, strict=False,
        watchdog=False, checkpoint_every=None, telemetry_enabled=False,
        verify=False,
    )


def _worker_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parent.parent / "src"
    ) + os.pathsep + env.get("PYTHONPATH", "")
    return env


# ---------------------------------------------------------------------------
# Address parsing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("text,expected", [
    ("127.0.0.1:9000", ("127.0.0.1", 9000)),
    ("example.org:80", ("example.org", 80)),
    (":9000", ("127.0.0.1", 9000)),
    ("9000", ("127.0.0.1", 9000)),
    ("0.0.0.0:0", ("0.0.0.0", 0)),
])
def test_parse_address_accepts(text, expected):
    assert parse_address(text) == expected


@pytest.mark.parametrize("text", [
    "", "host:", "host:notaport", "host:-1", "host:65536", "just-a-host",
])
def test_parse_address_rejects(text):
    with pytest.raises(ValueError):
        parse_address(text)


# ---------------------------------------------------------------------------
# Handshake: stale sessions die at the front door
# ---------------------------------------------------------------------------


def test_handshake_rejects_stale_epoch_and_admits_fresh_join():
    backend = SocketBackend(_spec(), autospawn=False, accept_timeout=5.0)
    try:
        host, port = backend.address

        # A worker claiming some other session's epoch is refused with a
        # reason, before it can touch the campaign's result stream.
        with socket.create_connection((host, port), timeout=5.0) as conn:
            wfile = conn.makefile("wb")
            rfile = conn.makefile("rb")
            write_frame(
                wfile,
                ("join", {"pid": 1, "host": "t", "epoch": 12345}),
                HANDSHAKE_EPOCH,
            )
            reply = read_frame(rfile)
            assert reply is not None and reply[0] == "reject"
            assert "stale" in reply[1]

        # Garbage instead of a join: the connection is simply dropped.
        with socket.create_connection((host, port), timeout=5.0) as conn:
            wfile = conn.makefile("wb")
            rfile = conn.makefile("rb")
            write_frame(wfile, ("definitely", "not", "a", "join"))
            assert read_frame(rfile) is None

        # A fresh join (epoch 0) is parked for the next spawn() to adopt.
        with socket.create_connection((host, port), timeout=5.0) as conn:
            wfile = conn.makefile("wb")
            write_frame(
                wfile,
                ("join", {"pid": 2, "host": "t", "epoch": HANDSHAKE_EPOCH}),
                HANDSHAKE_EPOCH,
            )
            deadline = time.monotonic() + 5.0
            while backend._joined.empty():
                assert time.monotonic() < deadline, "join was not parked"
                time.sleep(0.02)
    finally:
        backend.close()


def test_spawn_times_out_when_no_worker_arrives():
    backend = SocketBackend(
        _spec(), autospawn=False, accept_timeout=0.5,
    )
    try:
        with pytest.raises(TimeoutError, match="accept window"):
            backend.spawn()
    finally:
        backend.close()


# ---------------------------------------------------------------------------
# Worker client exit codes
# ---------------------------------------------------------------------------


def test_run_worker_exits_1_when_coordinator_never_appears():
    # A port nothing listens on: the retry budget drains, nothing was
    # ever served, and the orchestrator sees a deployment problem.
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    assert run_worker(
        f"127.0.0.1:{port}", retry_delay=0.01, max_retries=1,
    ) == 1


def test_run_worker_rejects_bad_address():
    with pytest.raises(ValueError, match="HOST:PORT"):
        run_worker("not-an-address")


def test_cli_rejects_listen_with_serial_jobs(tmp_path):
    # --jobs 1 runs serially: nothing would listen, remote workers
    # would wait forever. Refuse the combination up front.
    out = subprocess.run(
        [sys.executable, "-m", "repro.core.cli", "run",
         "--workloads", "crc32", "--components", "regfile",
         "--cardinalities", "1", "--samples", "1", "--seed", "0",
         "--backend", "socket", "--listen", "127.0.0.1:0",
         "--out", str(tmp_path / "x.json")],
        env=_worker_env(), capture_output=True, timeout=60,
    )
    assert out.returncode == 2
    assert "--jobs 2 or more" in out.stderr.decode()


# ---------------------------------------------------------------------------
# The --listen flow: externally launched workers, deployed before the
# coordinator even exists
# ---------------------------------------------------------------------------


def test_listen_mode_with_external_workers_matches_serial(tmp_path):
    serial = run_campaign(CONFIG)
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    env = _worker_env()
    # Workers first, coordinator second — the natural multi-host order.
    # --connect retries until the listener appears.
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.core.cli", "worker",
             "--connect", f"127.0.0.1:{port}", "--reconnect",
             "--retry-delay", "0.2", "--max-retries", "100", "--quiet"],
            env=env, stdin=subprocess.DEVNULL,
        )
        for _ in range(2)
    ]
    try:
        result = run_campaign_parallel(
            CONFIG, jobs=2, backend="socket",
            backend_options={
                "host": "127.0.0.1", "port": port,
                "autospawn": False, "accept_timeout": 30.0,
            },
        )
        assert result.to_json() == serial.to_json()
        # The shutdown handshake reached both workers: clean exits.
        for proc in workers:
            assert proc.wait(timeout=30) == 0
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
