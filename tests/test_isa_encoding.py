"""Encoding/decoding of instruction words."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.encoding import DecodedInst, decode, encode
from repro.isa.opcodes import FORMAT_OF, Format, Op, is_valid_opcode
from repro.isa.registers import LR


def test_rtype_roundtrip_fields():
    word = encode(Op.ADD, rd=3, rs1=4, rs2=5)
    inst = decode(word)
    assert inst.op is Op.ADD
    assert (inst.rd, inst.rs1, inst.rs2) == (3, 4, 5)
    assert inst.reads == (4, 5)
    assert inst.writes == 3


def test_itype_negative_imm_sign_extends():
    inst = decode(encode(Op.ADDI, rd=1, rs1=2, imm=-5))
    assert inst.imm == -5
    assert inst.reads == (2,)
    assert inst.writes == 1


def test_logical_imm_zero_extends():
    inst = decode(encode(Op.ORRI, rd=1, rs1=1, imm=0xFFFF))
    assert inst.imm == 0xFFFF
    inst = decode(encode(Op.ANDI, rd=1, rs1=1, imm=0x8000))
    assert inst.imm == 0x8000


def test_lui_imm_unsigned():
    inst = decode(encode(Op.LUI, rd=2, imm=0xABCD))
    assert inst.imm == 0xABCD
    assert inst.reads == ()


def test_store_reads_value_and_base():
    inst = decode(encode(Op.STR, rd=7, rs1=8, imm=12))
    assert inst.is_store
    assert inst.reads == (7, 8)
    assert inst.writes is None
    assert inst.mem_size == 4


def test_load_byte_size():
    inst = decode(encode(Op.LDRB, rd=1, rs1=2, imm=0))
    assert inst.is_load
    assert inst.mem_size == 1
    assert inst.writes == 1


def test_branch_compare_reads_two_registers():
    inst = decode(encode(Op.BLT, rd=3, rs1=4, imm=-16))
    assert inst.is_cond_branch
    assert inst.reads == (3, 4)
    assert inst.imm == -16


def test_branch_zero_reads_one_register():
    inst = decode(encode(Op.BEQZ, rd=9, imm=5))
    assert inst.is_cond_branch
    assert inst.reads == (9,)
    assert inst.imm == 5


def test_bl_writes_link_register():
    inst = decode(encode(Op.BL, imm=100))
    assert inst.is_direct_jump
    assert inst.writes == LR
    assert inst.imm == 100


def test_jump_offset_26bit_range():
    inst = decode(encode(Op.B, imm=-(1 << 25)))
    assert inst.imm == -(1 << 25)
    with pytest.raises(ValueError):
        encode(Op.B, imm=1 << 25)


def test_sys_reads_arg_registers_writes_r0():
    inst = decode(encode(Op.SYS, imm=3))
    assert inst.is_sys
    assert inst.reads == (0, 1, 2)
    assert inst.writes == 0
    assert inst.imm == 3


def test_zero_word_is_illegal():
    inst = decode(0)
    assert inst.illegal
    assert inst.reads == () and inst.writes is None


def test_unassigned_opcode_is_illegal():
    assert not is_valid_opcode(0x3D)
    assert decode(0x3D << 26).illegal


def test_decode_is_cached():
    assert decode(encode(Op.NOP)) is decode(encode(Op.NOP))


def test_encode_rejects_bad_registers():
    with pytest.raises(ValueError):
        encode(Op.ADD, rd=16)
    with pytest.raises(ValueError):
        encode(Op.ADD, rs1=-1)


def test_encode_rejects_out_of_range_imm16():
    with pytest.raises(ValueError):
        encode(Op.ADDI, rd=0, rs1=0, imm=1 << 16)
    with pytest.raises(ValueError):
        encode(Op.ADDI, rd=0, rs1=0, imm=-(1 << 15) - 1)


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_decode_is_total(word):
    """Every 32-bit value decodes without raising (fault-corrupted fetch)."""
    inst = DecodedInst(word)
    assert inst.illegal or inst.op is not None
    for reg in inst.reads:
        assert 0 <= reg < 16
    if inst.writes is not None:
        assert 0 <= inst.writes < 16


@given(
    st.sampled_from(sorted(Op, key=int)),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
)
def test_encode_decode_roundtrip(op, rd, rs1, rs2, imm):
    fmt = FORMAT_OF[op]
    if fmt is Format.J:
        word = encode(op, imm=imm)
    elif fmt is Format.SYS:
        word = encode(op, imm=abs(imm))
    else:
        word = encode(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
    inst = decode(word)
    assert inst.op is op
    if fmt is Format.R:
        assert (inst.rd, inst.rs1, inst.rs2) == (rd, rs1, rs2)
    elif fmt in (Format.I, Format.BC, Format.BZ):
        assert inst.rd == rd and inst.rs1 == rs1
        if op in (Op.ANDI, Op.ORRI, Op.EORI, Op.LUI):
            assert inst.imm == imm & 0xFFFF
        else:
            assert inst.imm == imm
