"""The 15 workloads: correctness against their references, metadata, scaling.

``test_golden_matches_reference`` is the heavyweight integration suite: it
runs every workload through the complete stack (MiniC compiler → assembler →
loader → TLB/caches → out-of-order core → syscalls) and compares the output
byte stream with the independently computed reference (hashlib for sha, a
forward AES for rijndael, plain Python everywhere else).
"""

import pytest

from repro.core.campaign import golden_run
from repro.kernel.status import RunStatus
from repro.cpu.system import run_program
from repro.errors import ConfigError
from repro.workloads import get_workload, load_all_workloads, workload_names

ALL_NAMES = workload_names()


def test_registry_has_the_papers_15_benchmarks():
    assert len(ALL_NAMES) == 15
    assert set(ALL_NAMES) == {
        "crc32", "fft", "adpcm_dec", "basicmath", "cjpeg", "dijkstra",
        "djpeg", "gsm_dec", "qsort", "rijndael_dec", "sha", "stringsearch",
        "susan_c", "susan_e", "susan_s",
    }


def test_unknown_workload_rejected():
    with pytest.raises(ConfigError, match="unknown workload"):
        get_workload("doom")


def test_workloads_are_cached():
    assert get_workload("sha") is get_workload("sha")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_golden_matches_reference(name):
    workload = get_workload(name)
    result = golden_run(workload)  # validates output internally
    assert result.status is RunStatus.FINISHED
    assert result.output == workload.expected_output
    assert result.exit_code == 0


@pytest.mark.parametrize("name", ALL_NAMES)
def test_metadata_is_complete(name):
    workload = get_workload(name)
    assert workload.paper_cycles > 1_000_000  # Table III magnitudes
    assert workload.description
    assert workload.paper_name
    assert workload.expected_output  # every workload produces output


def test_workloads_are_deterministic():
    import importlib
    module = importlib.import_module("repro.workloads.crc32")
    first, second = module.build(), module.build()
    assert first.source == second.source
    assert first.expected_output == second.expected_output


def test_crc32_is_the_longest_stringsearch_among_shortest():
    """Table III shape: CRC32 dominates; stringsearch is near the bottom."""
    cycles = {
        name: golden_run(get_workload(name)).cycles for name in ALL_NAMES
    }
    assert max(cycles, key=cycles.get) in ("crc32", "rijndael_dec", "fft")
    ranked = sorted(cycles, key=cycles.get)
    assert "stringsearch" in ranked[:3]
    assert "susan_c" in ranked[:3]


def test_rank_correlation_with_paper_is_positive():
    """Spearman rank correlation of measured vs paper cycle counts."""
    from scipy.stats import spearmanr

    measured = [golden_run(get_workload(n)).cycles for n in ALL_NAMES]
    paper = [get_workload(n).paper_cycles for n in ALL_NAMES]
    rho, _ = spearmanr(measured, paper)
    assert rho > 0.6


def test_programs_fit_the_scaled_platform():
    for workload in load_all_workloads():
        program = workload.program()
        assert len(program.text) < 48 * 1024
        assert len(program.data) < 120 * 1024


def test_expected_output_is_printable_stream():
    for workload in load_all_workloads():
        # putw/putd output lines are ASCII; putc may emit raw bytes.
        assert len(workload.expected_output) < 32 * 1024


def test_run_program_without_golden_cache_agrees():
    workload = get_workload("susan_c")
    result = run_program(workload.program())
    assert result.output == workload.expected_output
