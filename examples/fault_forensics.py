#!/usr/bin/env python3
"""Fault forensics: trace a fault from bit flip to corrupted output.

Combines the commit tracer with fault injection to answer the question the
aggregate AVF numbers cannot: *how exactly* did this particular flip turn
into an SDC?  The script runs the golden trace, injects one register-file
fault, diffs the traces, and prints the first architecturally divergent
instruction together with the surrounding context.

Run:  python examples/fault_forensics.py
"""

from repro.core.campaign import golden_run
from repro.core.classify import TIMEOUT_FACTOR, classify
from repro.cpu.system import System
from repro.cpu.tracing import CommitTracer
from repro.workloads import get_workload


def traced_run(workload, inject=None, max_cycles=None):
    system = System()
    system.load(workload.program())
    tracer = CommitTracer(system.core)
    if inject is not None:
        cycle, component, row, col = inject
        system.run_until(cycle, max_cycles)
        system.injectable_targets()[component].flip_bit(row, col)
    result = system.run(max_cycles)
    return tracer, result


def main() -> None:
    workload = get_workload("basicmath")
    golden = golden_run(workload)
    max_cycles = TIMEOUT_FACTOR * golden.cycles
    golden_trace, _ = traced_run(workload, max_cycles=max_cycles)
    print(f"workload: {workload.name}, golden {golden.cycles:,} cycles, "
          f"{len(golden_trace.records):,} committed instructions")

    # Hunt for an injection that produces an SDC (not a crash), then
    # dissect it.
    inject = None
    for trial in range(60):
        cycle = (trial * 997) % golden.cycles
        row = 16 + trial % 32        # a renamed physical register
        col = trial % 31
        candidate = (cycle, "regfile", row, col)
        trace, result = traced_run(workload, candidate, max_cycles)
        outcome = classify(result, golden)
        if outcome.value == "sdc":
            inject = candidate
            break
    if inject is None:
        print("no SDC found in 60 probes (try another seed) — "
              "showing a masked case instead")
        return

    cycle, component, row, col = inject
    print(f"\ninjection: flip bit ({row}, {col}) of the {component} "
          f"at cycle {cycle:,} -> SILENT DATA CORRUPTION")
    divergence = trace.first_divergence(golden_trace)
    assert divergence is not None
    print(f"first architectural divergence at committed instruction "
          f"#{divergence}:\n")
    start = max(0, divergence - 3)
    print("  golden:")
    for record in golden_trace.records[start:divergence + 2]:
        marker = "  >>" if record.index == divergence else "    "
        print(marker, record.format())
    print("  faulty:")
    for record in trace.records[start:divergence + 2]:
        marker = "  >>" if record.index == divergence else "    "
        print(marker, record.format())
    print(f"\ngolden output : {golden.output[:60]!r}")
    print(f"faulty output : {result.output[:60]!r}")


if __name__ == "__main__":
    main()
