#!/usr/bin/env python3
"""Per-field TLB sensitivity study.

The paper observes that TLBs fail differently from every other structure —
almost no SDCs, lots of crashes/timeouts, and the highest Assert rates
(corrupted frame numbers addressing outside the platform memory map).  This
example drills one level deeper than the paper's figures: it injects
single-bit faults into *specific fields* of valid DTLB entries (frame
number, virtual page number, permissions, valid bit) and shows how each
field produces a different failure-mode signature.

Run:  python examples/tlb_field_sensitivity.py [samples-per-field]
"""

import random
import sys
from collections import Counter

from repro.core.campaign import golden_run
from repro.core.classify import TIMEOUT_FACTOR, classify
from repro.mem.tlb import PPN_SHIFT, VALID_BIT, VPN_SHIFT
from repro.cpu.system import System
from repro.workloads import get_workload

#: field name -> candidate bit columns inside a packed 32-bit TLB entry.
FIELDS = {
    "frame number (ppn)": list(range(PPN_SHIFT, PPN_SHIFT + 13)),
    "virtual page (vpn)": list(range(VPN_SHIFT, VPN_SHIFT + 13)),
    "permissions (w/x/k)": [2, 3, 4],
    "valid bit": [31],
    "spare bits": [0, 1],
}


def inject_field_bit(workload, column: int, inject_cycle: int, rng):
    """Flip one bit column of a randomly chosen *valid* DTLB entry."""
    golden = golden_run(workload)
    system = System()
    system.load(workload.program())
    max_cycles = TIMEOUT_FACTOR * golden.cycles
    system.run_until(inject_cycle, max_cycles)
    valid_rows = [
        row for row, word in enumerate(system.dtlb.packed)
        if word & VALID_BIT or column == 31
    ]
    if not valid_rows:
        return None
    system.dtlb.flip_bit(rng.choice(valid_rows), column)
    return classify(system.run(max_cycles), golden)


def main() -> None:
    samples = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    workload = get_workload("dijkstra")
    golden = golden_run(workload)
    rng = random.Random(7)
    print(f"workload: {workload.name}, golden {golden.cycles:,} cycles")
    print(f"{samples} single-bit injections per DTLB field "
          f"(valid entries only)\n")
    header = f"{'field':22s} {'masked':>7} {'sdc':>5} {'crash':>6} " \
             f"{'timeout':>8} {'assert':>7}"
    print(header)
    print("-" * len(header))
    for field, columns in FIELDS.items():
        outcomes = Counter()
        for _ in range(samples):
            column = rng.choice(columns)
            cycle = rng.randrange(golden.cycles)
            result = inject_field_bit(workload, column, cycle, rng)
            if result is not None:
                outcomes[result.value] += 1
        total = sum(outcomes.values()) or 1
        print(f"{field:22s} "
              + " ".join(
                  f"{100 * outcomes[k] / total:6.1f}%"
                  for k in ("masked", "sdc", "crash", "timeout", "assert")
              ))
    print(
        "\nExpected signature: ppn flips crash or assert (wrong/unmapped"
        "\nframe), vpn flips mostly mask (entry misses and refills) with"
        "\noccasional aliasing, permission flips fault on the next access"
        "\nof the wrong kind, valid-bit flips heal via the page-table"
        "\nwalker, and spare bits are architecturally masked."
    )


if __name__ == "__main__":
    main()
