#!/usr/bin/env python3
"""Technology-node projection: AVF and FIT for a hypothetical future node.

The paper's method deliberately separates the microarchitectural
measurements (per-cardinality AVFs, technology-independent) from the
technology data (MBU rates + raw FIT per bit), so the same campaign results
project onto *any* node.  The paper's conclusion calls out exactly this:
"the presented analysis ... can be performed to post 22nm technology nodes".

This example runs a small campaign on two workloads, reproduces the per-node
aggregate AVF (Eq. 3) and whole-CPU FIT (Eq. 4) across the paper's eight
nodes, then projects a hypothetical 14nm FinFET node (higher MBU mix, lower
raw FIT, per the FinFET literature cited by the paper).

Run:  python examples/technology_projection.py [samples-per-cell]
"""

import sys

from repro.core.avf import node_avf
from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.fit import cpu_fit_by_node
from repro.core.report import COMPONENT_ORDER
from repro.core.targets import COMPONENT_LABELS, PAPER_COMPONENT_BITS
from repro.core.technology import MBU_RATES, RAW_FIT_PER_BIT, TECHNOLOGY_NODES

#: Hypothetical 14nm FinFET: MBU mix extrapolated beyond 22nm, raw FIT/bit
#: reduced ~2.5x (FinFET devices are markedly less sensitive).
FINFET_14NM_RATES = (0.48, 0.37, 0.15)
FINFET_14NM_RAW_FIT = 9e-8


def main() -> None:
    samples = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    config = CampaignConfig(
        workloads=("stringsearch", "djpeg"), samples=samples, seed=7,
    )
    print(f"running campaign: {len(config.cells())} cells x "
          f"{samples} injections ...")
    result = run_campaign(config)

    avf_tables = {
        component: result.weighted_avf_by_cardinality(component)
        for component in COMPONENT_ORDER
    }

    print("\nAggregate multi-bit AVF per node (Eq. 3):")
    print(f"{'component':14s} " + " ".join(f"{n:>7}" for n in TECHNOLOGY_NODES)
          + f" {'14nm*':>7}")
    for component in COMPONENT_ORDER:
        avfs = avf_tables[component]
        row = [node_avf(avfs, node) for node in TECHNOLOGY_NODES]
        projected = sum(
            avfs.get(card, 0.0) * FINFET_14NM_RATES[card - 1]
            for card in (1, 2, 3)
        )
        print(f"{COMPONENT_LABELS[component]:14s} "
              + " ".join(f"{100 * v:6.1f}%" for v in row)
              + f" {100 * projected:6.1f}%")

    print("\nWhole-CPU FIT per node (Eq. 4, Table VII/VIII data):")
    fits = cpu_fit_by_node(avf_tables)
    for node in TECHNOLOGY_NODES:
        fit = fits[node]
        print(f"  {node:>6s}: FIT={fit.fit_total:7.3f}"
              f"  multi-bit share={100 * fit.multibit_share:5.1f}%")

    fit14 = sum(
        sum(avf_tables[c].get(card, 0.0) * FINFET_14NM_RATES[card - 1]
            for card in (1, 2, 3)) * FINFET_14NM_RAW_FIT
        * PAPER_COMPONENT_BITS[c]
        for c in COMPONENT_ORDER
    )
    single14 = sum(
        avf_tables[c].get(1, 0.0) * FINFET_14NM_RAW_FIT
        * PAPER_COMPONENT_BITS[c]
        for c in COMPONENT_ORDER
    )
    share = (fit14 - single14) / fit14 if fit14 else 0.0
    print(f"  14nm* : FIT={fit14:7.3f}  multi-bit share={100 * share:5.1f}%"
          f"   (projected FinFET: rates={FINFET_14NM_RATES}, "
          f"rawFIT={FINFET_14NM_RAW_FIT:.0e}/bit)")
    print("\n(*) hypothetical node — illustrates applying the paper's "
          "method beyond its Table VI data.")
    print(f"paper reference points: multi-bit share 0% at 250nm rising to "
          f"~21% at 22nm; MBU rates at 22nm = {MBU_RATES['22nm']}, "
          f"raw FIT peaks at 130nm ({RAW_FIT_PER_BIT['130nm']:.2e}).")


if __name__ == "__main__":
    main()
