#!/usr/bin/env python3
"""Measure the vulnerability of *your own* program.

The library is not tied to the 15 built-in benchmarks: anything expressible
in MiniC can be characterised.  This example writes a small matrix-multiply
kernel, wraps it as a workload, and measures its per-component single- vs
triple-bit AVF — the exact experiment of the paper's Figs. 1-6, on custom
code.

Run:  python examples/custom_workload_avf.py [samples-per-cell]
"""

import random
import sys

from repro.core.campaign import golden_run, run_one_injection
from repro.core.generator import MultiBitFaultGenerator
from repro.cpu.system import COMPONENT_NAMES, run_program
from repro.workloads.base import Output, Workload, fmt_ints, rng, u32

MATMUL_SOURCE_TEMPLATE = """\
int a[{n2}] = {{{a}}};
int b[{n2}] = {{{b}}};
int c[{n2}];

void matmul(int *x, int *y, int *z, int n) {{
    for (int i = 0; i < n; i = i + 1) {{
        for (int j = 0; j < n; j = j + 1) {{
            int acc = 0;
            for (int k = 0; k < n; k = k + 1) {{
                acc = acc + x[i * n + k] * y[k * n + j];
            }}
            z[i * n + j] = acc;
        }}
    }}
}}

int main() {{
    matmul(a, b, c, {n});
    int checksum = 0;
    for (int i = 0; i < {n2}; i = i + 1) {{
        checksum = checksum * 31 + c[i];
    }}
    putw(checksum);
    exit(0);
    return 0;
}}
"""


def build_matmul(n: int = 8) -> Workload:
    """A do-it-yourself workload: source + independently computed output."""
    rand = rng(f"example-matmul-{n}")
    a = [rand.randrange(-50, 50) for _ in range(n * n)]
    b = [rand.randrange(-50, 50) for _ in range(n * n)]
    c = [
        sum(a[i * n + k] * b[k * n + j] for k in range(n))
        for i in range(n) for j in range(n)
    ]
    checksum = 0
    for value in c:
        checksum = u32(checksum * 31 + value)
    out = Output()
    out.putw(checksum)
    return Workload(
        name="matmul",
        paper_name="(custom)",
        paper_cycles=1,
        description=f"{n}x{n} integer matrix multiply",
        source=MATMUL_SOURCE_TEMPLATE.format(
            n=n, n2=n * n, a=fmt_ints(a), b=fmt_ints(b),
        ),
        expected_output=out.bytes(),
    )


def main() -> None:
    samples = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    workload = build_matmul()
    check = run_program(workload.program())
    assert check.output == workload.expected_output, "reference mismatch"
    golden = golden_run(workload)
    print(f"custom workload: {workload.description}, "
          f"golden {golden.cycles:,} cycles\n")
    print(f"{'component':10s} {'1-bit AVF':>10} {'3-bit AVF':>10}  increase")
    print("-" * 44)
    cycle_rng = random.Random(3)
    for component in COMPONENT_NAMES:
        avfs = {}
        for cardinality in (1, 3):
            generator = MultiBitFaultGenerator(
                seed=f"matmul:{component}:{cardinality}"
            )
            vulnerable = 0
            for _ in range(samples):
                fault_class, _, _ = run_one_injection(
                    workload, component, generator, cardinality,
                    inject_cycle=cycle_rng.randrange(golden.cycles),
                )
                if fault_class.value != "masked":
                    vulnerable += 1
            avfs[cardinality] = vulnerable / samples
        ratio = (avfs[3] / avfs[1]) if avfs[1] else float("nan")
        print(f"{component:10s} {100 * avfs[1]:9.1f}% {100 * avfs[3]:9.1f}%"
              f"  {ratio:5.1f}x")
    print(f"\n({samples} injections per cell; raise the sample count for "
          f"tighter error margins — see repro.core.sampling)")


if __name__ == "__main__":
    main()
