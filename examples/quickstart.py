#!/usr/bin/env python3
"""Quickstart: simulate a workload, inject one multi-bit fault, classify it.

Walks the full public API surface in ~40 lines:

1. grab a MiBench-equivalent workload and its golden (fault-free) run;
2. draw a spatial 3-bit fault mask for the L1 data cache;
3. re-run, flipping the mask at a mid-execution cycle;
4. classify the outcome against the golden run.

Run:  python examples/quickstart.py
"""

from repro.core.campaign import golden_run, run_one_injection
from repro.core.generator import MultiBitFaultGenerator
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("sha")
    golden = golden_run(workload)
    print(f"workload          : {workload.name} — {workload.description}")
    print(f"golden run        : {golden.cycles:,} cycles, "
          f"{golden.instructions:,} instructions, IPC {golden.ipc:.2f}")
    print(f"golden output     : {golden.output.decode()!r}")

    generator = MultiBitFaultGenerator(seed=2024)
    print("\ninjecting ten 3-bit clusters into the L1D data array:")
    for trial in range(10):
        inject_cycle = (trial + 1) * golden.cycles // 11
        fault_class, result, mask = run_one_injection(
            workload, "l1d", generator, cardinality=3,
            inject_cycle=inject_cycle,
        )
        bits = ", ".join(f"({r},{c})" for r, c in mask.bits)
        print(f"  cycle {inject_cycle:>6,}  bits [{bits}]  ->  "
              f"{fault_class.value.upper()}"
              + (f" ({result.crash_reason.value})"
                 if result.crash_reason else ""))

    print("\nMASKED   = output identical to the golden run")
    print("SDC      = silent data corruption (different output)")
    print("CRASH    = process abort or kernel panic")
    print("TIMEOUT  = >4x golden cycles (deadlock / livelock)")
    print("ASSERT   = simulator invariant violated "
          "(e.g. translation outside the memory map)")


if __name__ == "__main__":
    main()
