"""N-core SMP machine: per-core pipelines around one coherent shared L2.

An :class:`SMPSystem` composes N :class:`~repro.cpu.system.CoreBundle`\\ s
(private L1I/L1D/TLBs/pipeline each) over one shared L2, page table,
physical memory and kernel.  Per-core L1Ds are kept coherent by a
:class:`~repro.mem.coherence.CoherenceBus` (invalidate-on-write, dirty
owner tracking), so a flipped bit in a *shared L2 line* is observed by
every core whose miss path reads through it — the cross-thread fault
propagation mechanism this model exists to measure.

**Deterministic interleaving.**  The scheduler is conservative
time-stepping: each quantum steps, in core-index order, every running
pipeline whose local clock equals the global minimum.  A pipeline may jump
its local clock forward over provably idle cycles
(:meth:`~repro.cpu.core.OutOfOrderCore._skip_idle_cycles`); other cores
simply catch up over later quanta.  The interleaving is a pure function of
machine state, so multi-core golden runs replay bit-exactly — the property
the golden-run cache, the differential oracle and the propagation matrix
all rest on.

**Memory model.**  Sequential consistency, enforced at commit: every
pipeline runs with commit-time load revalidation
(:attr:`~repro.cpu.core.OutOfOrderCore.sc_replay_check`), so a load whose
location was remotely stored between execute and commit is squashed and
replayed.  Atomics serialize their pipeline and perform the read-modify-
write at commit through the coherent hierarchy.

**Thread model.**  Core 0 runs ``_start``; ``SPAWN`` starts a worker on an
idle core with a carved-out stack slice (see
:func:`~repro.kernel.syscalls.worker_sp`); a worker parks its core by
halting.  The program ends when core 0 ends; a worker crash ends the
program as that crash (tagged with the core id).
"""

from __future__ import annotations

from repro.errors import ConfigError, SimAssertion
from repro.isa.encoding import MASK32
from repro.isa.program import Program
from repro.kernel.loader import LoadedProcess, load_program
from repro.kernel.status import RunResult, RunStatus
from repro.kernel.syscalls import SPAWN_FAILED, Kernel, worker_sp
from repro.mem.cache import Cache
from repro.mem.coherence import CoherenceBus
from repro.mem.paging import PageTable
from repro.mem.physmem import PhysicalMemory
from repro.mem.sram import InjectableArray
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.cpu.system import CoreBundle

#: Hard cap on the configurable core count (keeps worker stack slices and
#: campaign budgets sane; the paper's platforms are 1-8 cores).
MAX_CORES = 8


class SMPSystem:
    """One simulated N-core machine instance (build, load, run — like System)."""

    def __init__(self, cfg: CoreConfig = DEFAULT_CONFIG, ncores: int = 2) -> None:
        if not 1 <= ncores <= MAX_CORES:
            raise ConfigError(f"ncores must be in 1..{MAX_CORES}, got {ncores}")
        self.cfg = cfg
        self.ncores = ncores
        layout = cfg.layout
        self.mem = PhysicalMemory(layout.phys_size, cfg.mem_latency)
        self.l2 = Cache(
            "l2", cfg.l2_size, cfg.l2_assoc, cfg.line_size,
            cfg.l2_latency, self.mem,
        )
        self.page_table = PageTable(cfg.tlb_walk_latency)
        self.kernel = Kernel()
        self.kernel.smp = self
        self.bus = CoherenceBus(self.l2)
        self.cores = [
            CoreBundle(cfg, k, f"c{k}.", self.l2, self.page_table, self.kernel)
            for k in range(ncores)
        ]
        self.invariant_checker = None
        if cfg.check_invariants:
            from repro.verify.invariants import InvariantChecker

            self.invariant_checker = InvariantChecker()
        for bundle in self.cores:
            self.bus.attach(bundle.l1d)
            bundle.pipe.sc_replay_check = True
            bundle.pipe.invariant_checker = self.invariant_checker
        #: Which cores currently execute a thread.  Core 0 is the program.
        self.running = [False] * ncores
        self.running[0] = True
        self.cycle = 0
        self.result: RunResult | None = None
        #: Core whose terminal state ended the program (None for timeouts).
        self.result_core: int | None = None
        #: Optional tap called with a core id when a worker parks (used by
        #: the SMP differential to keep the oracle's idle-core bookkeeping
        #: in lock step with the machine's).
        self.park_hook = None
        self.process: LoadedProcess | None = None

    # ------------------------------------------------------------------ setup

    def load(self, program: Program) -> LoadedProcess:
        """Load *program* and point core 0 at its entry."""
        self.process = load_program(
            program, self.mem, self.page_table, self.cfg.layout
        )
        self.cores[0].pipe.reset(self.process.entry_pc, self.process.initial_sp)
        return self.process

    def start_core(self, entry: int, arg: int) -> int:
        """SPAWN: run *entry* with r0 = *arg* on the first idle core.

        Returns the worker's core id (the thread id), or ``SPAWN_FAILED``
        when every worker core is busy.
        """
        for k in range(1, self.ncores):
            if self.running[k]:
                continue
            bundle = self.cores[k]
            pipe = bundle.fresh_pipe(self.cfg, self.kernel)
            pipe.reset(
                entry & MASK32,
                worker_sp(self.cfg.layout, k, self.ncores),
            )
            pipe.prf.values[pipe.rename_map[0]] = arg & MASK32
            # The worker's clock starts at the spawn instant, so its first
            # step lands in the very next scheduling quantum.
            pipe.cycle = self.cycle + 1
            pipe.last_commit_cycle = pipe.cycle
            self.running[k] = True
            return k
        return SPAWN_FAILED

    # -------------------------------------------------------------- injection

    def injectable_targets(self) -> dict[str, InjectableArray]:
        """Fault-injection targets by component name.

        The six standard component names alias *core 0's* private
        structures (plus the shared "l2"), so campaign cells mean the same
        thing at every core count; every core's private structures are also
        reachable under their ``c{k}.`` names for targeted experiments.
        """
        core0 = self.cores[0]
        targets: dict[str, InjectableArray] = {
            "l1d": core0.l1d,
            "l1i": core0.l1i,
            "l2": self.l2,
            "regfile": core0.pipe.prf,
            "dtlb": core0.dtlb,
            "itlb": core0.itlb,
        }
        for bundle in self.cores:
            targets[bundle.l1d.name] = bundle.l1d
            targets[bundle.l1i.name] = bundle.l1i
            targets[bundle.dtlb.name] = bundle.dtlb
            targets[bundle.itlb.name] = bundle.itlb
            targets[bundle.prefix + "regfile"] = bundle.pipe.prf
        return targets

    def publish_metrics(self, metrics, prefix: str = "sim.mem.") -> None:
        """Harvest per-core cache/TLB counters plus shared L2 and bus stats.

        Per-core cache and TLB names carry their ``c{k}.`` prefix, so the
        resulting counter keys are keyed by core id and sum deterministically
        across a campaign exactly like the single-core keys do.
        """
        self.l2.stats.publish(metrics, prefix + self.l2.name)
        for bundle in self.cores:
            for cache in (bundle.l1d, bundle.l1i):
                cache.stats.publish(metrics, prefix + cache.name)
            for tlb in (bundle.itlb, bundle.dtlb):
                tlb.publish_stats(metrics, prefix + tlb.name)
        self.bus.stats.publish(metrics, prefix + "bus")

    # --------------------------------------------------------------- stepping

    def step(self) -> None:
        """One scheduling quantum of the deterministic interleaver.

        Steps every running pipeline sitting at the global minimum cycle,
        in core-index order, then resolves any terminal pipeline states.
        """
        active = [
            bundle.pipe
            for k, bundle in enumerate(self.cores)
            if self.running[k] and bundle.pipe.result is None
        ]
        if not active:
            # Core 0's terminal state was consumed in an earlier quantum;
            # nothing left to simulate.
            return
        floor = min(pipe.cycle for pipe in active)
        self.cycle = floor
        for pipe in active:
            if pipe.cycle == floor:
                pipe.step()
        self.cycle = min(pipe.cycle for pipe in active)
        for k, bundle in enumerate(self.cores):
            if not self.running[k]:
                continue
            result = bundle.pipe.result
            if result is None:
                continue
            if k == 0:
                self.result = self._compose(
                    result.status, result.crash_reason, result.crash_pc,
                    result.detail,
                )
                self.result_core = 0
                return
            if result.status is RunStatus.FINISHED:
                # Worker ran to completion: park the core for respawn.
                self.running[k] = False
                if self.park_hook is not None:
                    self.park_hook(k)
            else:
                self.result = self._compose(
                    result.status, result.crash_reason, result.crash_pc,
                    f"core {k}: {result.detail}" if result.detail
                    else f"core {k}",
                )
                self.result_core = k
                return

    def _compose(
        self,
        status: RunStatus,
        reason=None,
        pc: int | None = None,
        detail: str = "",
    ) -> RunResult:
        stats: dict[str, int] = {}
        instructions = 0
        for bundle in self.cores:
            for key, value in bundle.pipe.stats.as_dict().items():
                stats[key] = stats.get(key, 0) + value
        instructions = stats.get("committed", 0)
        return RunResult(
            status=status,
            cycles=self.cycle,
            instructions=instructions,
            output=bytes(self.kernel.output),
            exit_code=self.kernel.exit_code or 0,
            crash_reason=reason,
            crash_pc=pc,
            detail=detail,
            stats=stats,
        )

    @property
    def finished(self) -> bool:
        return self.result is not None

    def _last_commit_cycle(self) -> int:
        return max(
            bundle.pipe.last_commit_cycle
            for k, bundle in enumerate(self.cores)
            if k == 0 or self.running[k]
        )

    # -------------------------------------------------------------------- run

    def run(self, max_cycles: int, max_steps: int | None = None) -> RunResult:
        """Run to termination, mirroring :meth:`System.run` semantics."""
        deadlock_window = self.cfg.deadlock_window
        steps = 0
        try:
            while self.result is None:
                self.step()
                steps += 1
                if max_steps is not None and steps > max_steps:
                    from repro.errors import WatchdogTimeout

                    raise WatchdogTimeout(
                        f"step watchdog: {steps} quanta executed but the "
                        f"global cycle is at {self.cycle} (budget "
                        f"{max_steps} steps / {max_cycles} cycles) — "
                        f"simulator livelock"
                    )
                if self.result is not None:
                    break
                if self.cycle >= max_cycles:
                    idle = self.cycle - self._last_commit_cycle()
                    status = (
                        RunStatus.TIMEOUT_DEADLOCK
                        if idle > deadlock_window
                        else RunStatus.TIMEOUT_LIVELOCK
                    )
                    self.result = self._compose(status)
                    break
                if self.cycle - self._last_commit_cycle() > deadlock_window:
                    self.result = self._compose(RunStatus.TIMEOUT_DEADLOCK)
                    break
        except SimAssertion as exc:
            self.result = self._compose(RunStatus.SIM_ASSERT, detail=str(exc))
        assert self.result is not None
        return self.result

    def run_until(
        self,
        target_cycle: int,
        max_cycles: int,
        max_steps: int | None = None,
    ) -> bool:
        """Advance to *target_cycle* (or termination), like System.run_until."""
        steps = 0
        try:
            while self.result is None and self.cycle < target_cycle:
                if self.cycle >= max_cycles:
                    return False
                self.step()
                steps += 1
                if max_steps is not None and steps > max_steps:
                    from repro.errors import WatchdogTimeout

                    raise WatchdogTimeout(
                        f"step watchdog: {steps} quanta executed but the "
                        f"global cycle is at {self.cycle} (target "
                        f"{target_cycle}) — simulator livelock"
                    )
        except SimAssertion as exc:
            self.result = self._compose(RunStatus.SIM_ASSERT, detail=str(exc))
            return False
        return self.result is None


def run_smp_program(
    program: Program,
    cfg: CoreConfig = DEFAULT_CONFIG,
    ncores: int = 2,
    max_cycles: int = 5_000_000,
) -> RunResult:
    """Convenience one-shot: load and run *program* on a fresh SMP machine."""
    smp = SMPSystem(cfg, ncores)
    smp.load(program)
    return smp.run(max_cycles)
