"""Core and memory-hierarchy configuration (Table I of the paper).

The default values reproduce the paper's gem5 ARM Cortex-A9 configuration:

======================================  ======================
ISA / core                              custom RISC / out-of-order
L1 data cache                           32 KB, 4-way
L1 instruction cache                    32 KB, 4-way
L2 cache                                512 KB, 8-way
Data / instruction TLB                  32 entries
Physical register file                  56 + 10 misc registers
Instruction queue                       32
Reorder buffer                          40
Fetch / execute / writeback width       2 / 4 / 4
Clock frequency                         2 GHz
======================================  ======================

The register-file *injection array* is 66 × 32 = 2,112 bits so the FIT
arithmetic matches Table VIII exactly (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.kernel.layout import MemoryLayout


@dataclass(frozen=True)
class CoreConfig:
    """Microarchitectural parameters of the simulated CPU."""

    # Pipeline widths (Table I: fetch/execute/writeback = 2/4/4).
    fetch_width: int = 2
    rename_width: int = 2
    issue_width: int = 4
    writeback_width: int = 4
    commit_width: int = 4

    # Window sizes.
    rob_entries: int = 40
    iq_entries: int = 32
    lq_entries: int = 16
    sq_entries: int = 16
    decode_buffer: int = 8

    # Register file: renameable pool + miscellaneous registers.
    phys_regs: int = 56
    misc_regs: int = 10

    # Memory hierarchy.  Default capacities are the 1:16 (caches) / 1:4
    # (TLBs) scale model matching the scaled-down workload footprints (see
    # DESIGN.md §5); organisations (ways, line size) follow Table I.  Use
    # :meth:`paper_scale` for the full-size Cortex-A9 configuration.
    line_size: int = 32
    l1i_size: int = 512
    l1i_assoc: int = 4
    l1i_latency: int = 2
    l1d_size: int = 256
    l1d_assoc: int = 4
    l1d_latency: int = 2
    l2_size: int = 2 * 1024
    l2_assoc: int = 8
    l2_latency: int = 8
    mem_latency: int = 50
    tlb_entries: int = 12
    tlb_walk_latency: int = 20

    # Control flow.
    mispredict_penalty: int = 2

    # Watchdogs (simulation guards, not microarchitecture).
    deadlock_window: int = 3000

    # Verification (not microarchitecture): attach the repro.verify
    # invariant checker to the core, running structural checks after every
    # commit stage.  Purely observational — a compliant pipeline simulates
    # bit-identically with this on or off, which is why campaign cell keys
    # canonicalise it away (see CampaignConfig.cell_key).
    check_invariants: bool = False

    # Reported only (Table I completeness); the model is cycle-based.
    clock_ghz: float = 2.0

    layout: MemoryLayout = field(default_factory=MemoryLayout)

    def validate(self) -> None:
        from repro.isa.registers import NUM_ARCH_REGS

        if self.phys_regs < NUM_ARCH_REGS + 4:
            raise ConfigError(
                "phys_regs must exceed the architectural register count "
                "with headroom for renaming"
            )
        for name in (
            "fetch_width", "rename_width", "issue_width",
            "writeback_width", "commit_width", "rob_entries",
            "iq_entries", "lq_entries", "sq_entries",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    @property
    def total_regs(self) -> int:
        return self.phys_regs + self.misc_regs

    @classmethod
    def paper_scale(cls) -> "CoreConfig":
        """The full-size Table I configuration (32KB L1s, 512KB L2, 32-entry
        TLBs).  Functionally identical; simulation of the paper's multi-
        million-cycle workloads at this scale is what gem5 was for."""
        return cls(
            l1i_size=32 * 1024,
            l1d_size=32 * 1024,
            l2_size=512 * 1024,
            tlb_entries=32,
        )

    def table1_rows(self) -> list[tuple[str, str]]:
        """Rows of the paper's Table I for this configuration."""

        def kb(size: int) -> str:
            return f"{size // 1024}KB"

        return [
            ("ISA / Core", "custom RISC / Out-of-Order"),
            ("L1 Data cache", f"{kb(self.l1d_size)} {self.l1d_assoc}-way"),
            ("Clock Frequency", f"{self.clock_ghz:g} GHz"),
            ("L1 Instruction cache", f"{kb(self.l1i_size)} {self.l1i_assoc}-way"),
            ("L2 cache", f"{kb(self.l2_size)} {self.l2_assoc}-way"),
            ("Data / Instruction TLB", f"{self.tlb_entries} entries"),
            ("Physical Register File", f"{self.phys_regs} registers"),
            ("Instruction queue", str(self.iq_entries)),
            ("Reorder buffer", str(self.rob_entries)),
            (
                "Fetch / Execute / Writeback width",
                f"{self.fetch_width}/{self.issue_width}/{self.writeback_width}",
            ),
        ]


DEFAULT_CONFIG = CoreConfig()
