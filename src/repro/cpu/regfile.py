"""Physical register file — an injectable value array.

Operand values are read from ``values`` at issue time and written at
writeback, so a bit flipped between a producer's writeback and the last
consumer's issue corrupts real dataflow — the paper's register-file AVF
mechanism.  Ready bits and the rename map are control state outside the
SRAM data array and are not injection targets (Table VIII counts 2,112
data bits).

Rows 0..phys_regs-1 are the renameable pool; the remaining rows are
miscellaneous registers (exception/syscall save state) — see
:class:`~repro.cpu.core.OutOfOrderCore`.
"""

from __future__ import annotations

MASK32 = 0xFFFFFFFF


class PhysRegFile:
    """Values + ready bits for the physical registers."""

    def __init__(self, phys_regs: int, misc_regs: int) -> None:
        self.phys_regs = phys_regs
        self.misc_regs = misc_regs
        total = phys_regs + misc_regs
        self.values = [0] * total
        self.ready = [True] * total

    # -- InjectableArray protocol -------------------------------------------

    @property
    def inject_name(self) -> str:
        return "regfile"

    @property
    def inject_rows(self) -> int:
        return self.phys_regs + self.misc_regs

    @property
    def inject_cols(self) -> int:
        return 32

    def flip_bit(self, row: int, col: int) -> None:
        self.values[row] ^= 1 << col

    def read_bit(self, row: int, col: int) -> int:
        return (self.values[row] >> col) & 1

    # -- misc register accessors ------------------------------------------------

    def read_misc(self, index: int) -> int:
        return self.values[self.phys_regs + index]

    def write_misc(self, index: int, value: int) -> None:
        self.values[self.phys_regs + index] = value & MASK32
