"""Micro-op: one in-flight dynamic instruction."""

from __future__ import annotations

from repro.isa.encoding import DecodedInst
from repro.kernel.status import CrashReason

#: uop.state values
WAITING = 0
ISSUED = 1
DONE = 2


class MicroOp:
    """One dynamic instruction traversing the out-of-order pipeline."""

    __slots__ = (
        "seq", "pc", "inst",
        "srcs", "dest", "old_dest", "arch_dest",
        "state", "result",
        "paddr", "mem_size", "store_data",
        "pred_target", "actual_target",
        "exception", "exc_detail",
        "sys_args", "squashed",
    )

    def __init__(self, seq: int, pc: int, inst: DecodedInst) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.srcs: tuple[int, ...] = ()
        self.dest = -1
        self.old_dest = -1
        self.arch_dest = -1
        self.state = WAITING
        self.result: int | None = None
        self.paddr: int | None = None
        self.mem_size = inst.mem_size
        self.store_data: int | None = None
        self.pred_target: int | None = None
        self.actual_target: int | None = None
        self.exception: CrashReason | None = None
        self.exc_detail = ""
        self.sys_args: tuple[int, int, int] | None = None
        self.squashed = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = "ILLEGAL" if self.inst.illegal else self.inst.op.name
        return f"<uop #{self.seq} pc=0x{self.pc:x} {name} state={self.state}>"
