"""Out-of-order CPU model (the gem5 / ARM Cortex-A9 substitute).

The core implements the microarchitecture of Table I of the paper: a 2-wide
fetch/rename front end, 40-entry reorder buffer, 32-entry instruction queue,
a physical register file, 4-wide issue/writeback and 4-wide commit, backed
by the cache/TLB hierarchy of :mod:`repro.mem`.

Crucially for fault injection, every architectural value flows through the
injectable structures: operand values are read from the physical register
file at issue, instruction words from the L1I data array at fetch, data from
the L1D/L2 arrays at execute, and translations from the packed ITLB/DTLB
entry words on every fetch and memory access.
"""

from repro.cpu.config import CoreConfig
from repro.cpu.core import OutOfOrderCore
from repro.cpu.regfile import PhysRegFile
from repro.cpu.system import System
from repro.cpu.tracing import CommitTracer

__all__ = [
    "CommitTracer",
    "CoreConfig",
    "OutOfOrderCore",
    "PhysRegFile",
    "System",
]
