"""Commit tracing: observe architectural execution instruction by instruction.

A :class:`CommitTracer` hooks a core and records every committed
instruction (pc, disassembly, destination value).  Two main uses:

* **debugging fault propagation** — diff a faulty run's trace against the
  golden trace to find the first architecturally visible divergence;
* **workload characterisation** — instruction-mix histograms for the
  Table III workloads.

Tracing wraps the core's commit stage non-invasively (no core changes, no
cost when not attached).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.isa.disasm import disassemble
from repro.cpu.core import OutOfOrderCore


@dataclass(frozen=True)
class CommitRecord:
    """One committed instruction."""

    index: int          # commit order
    cycle: int
    pc: int
    raw: int
    asm: str
    dest: str | None    # architectural register name, if any
    value: int | None   # value written, if any

    def format(self) -> str:
        dest = f"  {self.dest}=0x{self.value:08x}" if self.dest else ""
        return f"{self.index:>7} c{self.cycle:>8} 0x{self.pc:08x} {self.asm}{dest}"


class CommitTracer:
    """Records committed instructions from a core."""

    def __init__(self, core: OutOfOrderCore, limit: int = 1_000_000) -> None:
        self.core = core
        self.limit = limit
        self.records: list[CommitRecord] = []
        self._original_commit = core._commit
        core._commit = self._traced_commit  # type: ignore[method-assign]

    def detach(self) -> None:
        self.core._commit = self._original_commit  # type: ignore[method-assign]

    def _traced_commit(self) -> bool:
        from repro.isa.registers import reg_name

        core = self.core
        before = core.stats.committed
        # Snapshot the ROB head region; commit consumes from the front.
        pending = list(core.rob)[:core.cfg.commit_width]
        result = self._original_commit()
        committed = core.stats.committed - before
        for uop in pending[:committed]:
            if len(self.records) >= self.limit:
                break
            dest = value = None
            if uop.arch_dest >= 0:
                dest = reg_name(uop.arch_dest)
                value = core.prf.values[uop.dest] & 0xFFFFFFFF
            self.records.append(CommitRecord(
                index=len(self.records),
                cycle=core.cycle,
                pc=uop.pc,
                raw=uop.inst.raw,
                asm=disassemble(uop.inst, uop.pc),
                dest=dest,
                value=value,
            ))
        return result

    # -- analysis -------------------------------------------------------------

    def mnemonic_histogram(self) -> Counter:
        """Instruction mix of the traced execution."""
        return Counter(record.asm.split()[0] for record in self.records)

    def first_divergence(self, other: "CommitTracer") -> int | None:
        """Index of the first committed instruction differing from *other*.

        Compares (pc, raw word, written value); None when one trace is a
        prefix of the other (or they are identical).
        """
        for mine, theirs in zip(self.records, other.records):
            if (
                mine.pc != theirs.pc
                or mine.raw != theirs.raw
                or mine.value != theirs.value
            ):
                return mine.index
        return None

    def format_trace(self, start: int = 0, count: int = 50) -> str:
        return "\n".join(
            record.format() for record in self.records[start:start + count]
        )
