"""The out-of-order pipeline.

Stage order within one ``step()`` is commit → writeback → issue/execute →
rename/dispatch → fetch/decode, so information flows backwards through the
pipe with one-cycle latches between stages, like a real machine.

Fault-injection coupling (the whole point of this model):

* **fetch** reads instruction words from the live L1I line data and
  translations from the live packed ITLB words;
* **issue** reads operand values from the live physical register file;
* **execute** reads loads from the live L1D/L2 line data and translations
  from the live packed DTLB words;
* **commit** performs stores into the cache hierarchy (write-back dirty
  lines propagate corruption downwards) and services syscalls.

Architectural exceptions are precise: they are recorded on the micro-op and
acted on only when the op reaches the head of the reorder buffer, so
wrong-path faults never kill a run.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.isa.encoding import decode
from repro.isa.opcodes import Op
from repro.isa.semantics import ALU_OPS, BRANCH_CONDS, ArithmeticFault
from repro.isa.registers import NUM_ARCH_REGS
from repro.kernel.status import CrashReason, RunResult, RunStatus
from repro.kernel.syscalls import Kernel
from repro.mem.cache import Cache
from repro.mem.tlb import ACCESS_EXEC, ACCESS_LOAD, ACCESS_STORE, FAULT_PAGE, TLB
from repro.cpu.config import CoreConfig
from repro.cpu.regfile import PhysRegFile
from repro.cpu.uop import DONE, ISSUED, WAITING, MicroOp

MASK32 = 0xFFFFFFFF

#: Miscellaneous register roles (rows phys_regs+index of the register file).
MISC_SAVED_PC = 0
MISC_CAUSE = 1

_FAULT_TO_REASON = {
    "page_fault": CrashReason.PAGE_FAULT,
    "prot_fault": CrashReason.PROT_FAULT,
}


class CoreStats:
    """Aggregate pipeline event counters for one run."""

    __slots__ = (
        "fetched", "committed", "squashed", "mispredicts",
        "loads", "stores", "syscalls",
    )

    def __init__(self) -> None:
        self.fetched = 0
        self.committed = 0
        self.squashed = 0
        self.mispredicts = 0
        self.loads = 0
        self.stores = 0
        self.syscalls = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class OutOfOrderCore:
    """Cycle-level out-of-order core bound to a memory hierarchy."""

    def __init__(
        self,
        cfg: CoreConfig,
        icache: Cache,
        dcache: Cache,
        itlb: TLB,
        dtlb: TLB,
        kernel: Kernel,
        prf: PhysRegFile | None = None,
    ) -> None:
        cfg.validate()
        self.cfg = cfg
        self.icache = icache
        self.dcache = dcache
        self.itlb = itlb
        self.dtlb = dtlb
        self.kernel = kernel
        self.prf = prf if prf is not None else PhysRegFile(
            cfg.phys_regs, cfg.misc_regs
        )

        # Rename state: arch regs 0..15 map onto phys 0..15 at reset.
        self.rename_map = list(range(NUM_ARCH_REGS))
        self.free_list: deque[int] = deque(
            range(NUM_ARCH_REGS, cfg.phys_regs)
        )

        self.rob: deque[MicroOp] = deque()
        self.iq: list[MicroOp] = []
        self.lq: list[MicroOp] = []
        self.sq: list[MicroOp] = []
        self.decode_q: deque[MicroOp] = deque()
        self._completions: list[tuple[int, int, MicroOp]] = []

        self.cycle = 0
        self.seq = 0
        self.fetch_pc = 0
        self.fetch_ready_cycle = 0
        self.fetch_stall: str | None = None
        self.last_commit_cycle = 0
        self.stats = CoreStats()

        #: Which SMP core this pipeline is (0 in the single-core System);
        #: forwarded to the kernel so COREID/SPAWN know the caller.
        self.core_id = 0
        #: Commit-time load revalidation (sequential consistency).  Enabled
        #: only by the SMP system: a load whose value changed between execute
        #: and commit (a remote store won the race) is squashed and replayed,
        #: so committed loads always observe the coherent memory image.
        self.sc_replay_check = False

        #: Set when the run reaches a terminal state.
        self.result: RunResult | None = None

        #: Optional verification taps (see :mod:`repro.verify`).  Both stay
        #: ``None`` outside verification runs so the pipeline fast paths pay
        #: one attribute check, nothing more.  ``commit_hook`` is called with
        #: each retired uop after its bookkeeping completes;
        #: ``invariant_checker.check_core(self)`` runs once per step after
        #: the commit stage.
        self.commit_hook = None
        self.invariant_checker = None

    # ------------------------------------------------------------------ setup

    def reset(self, entry_pc: int, initial_sp: int) -> None:
        """Point the core at a freshly loaded process."""
        from repro.isa.registers import SP

        self.fetch_pc = entry_pc
        self.prf.values[self.rename_map[SP]] = initial_sp & MASK32

    # ------------------------------------------------------------------- run

    def run(self, max_cycles: int, max_steps: int | None = None) -> RunResult:
        """Simulate until the program terminates or *max_cycles* elapse.

        *max_steps*, when given, bounds the number of ``step()`` calls: every
        legal step advances the cycle counter, so the cycle budget normally
        dominates — the step budget only trips when an infra bug leaves the
        clock stuck, which would otherwise loop forever.  Tripping raises
        :class:`~repro.errors.WatchdogTimeout` (an incident, not a modelled
        fault effect).
        """
        deadlock_window = self.cfg.deadlock_window
        steps = 0
        while self.result is None:
            self.step()
            steps += 1
            if max_steps is not None and steps > max_steps:
                from repro.errors import WatchdogTimeout

                raise WatchdogTimeout(
                    f"step watchdog: {steps} steps executed but the cycle "
                    f"counter is at {self.cycle} (budget {max_steps} steps / "
                    f"{max_cycles} cycles) — simulator livelock"
                )
            if self.result is not None:
                break
            if self.cycle >= max_cycles:
                status = (
                    RunStatus.TIMEOUT_DEADLOCK
                    if self.cycle - self.last_commit_cycle > deadlock_window
                    else RunStatus.TIMEOUT_LIVELOCK
                )
                self._finish(status)
                break
            if self.cycle - self.last_commit_cycle > deadlock_window:
                self._finish(RunStatus.TIMEOUT_DEADLOCK)
                break
        assert self.result is not None
        return self.result

    def step(self) -> None:
        """Advance the pipeline by one cycle.

        When no stage makes progress, the clock jumps directly to the next
        scheduled event (a pending completion or the fetch-resume cycle):
        with every stage quiescent, the intervening cycles are provably
        identical no-ops, so the jump is an exact fast-forward.
        """
        active = self._commit()
        if self.invariant_checker is not None and self.result is None:
            self.invariant_checker.check_core(self)
        if self.result is not None:
            return
        active |= self._writeback()
        active |= self._issue()
        active |= self._rename_dispatch()
        active |= self._fetch()
        if not active:
            self._skip_idle_cycles()
            return
        self.cycle += 1

    def _skip_idle_cycles(self) -> None:
        events = []
        if self._completions:
            events.append(self._completions[0][0])
        if self.fetch_stall is None and self.fetch_ready_cycle > self.cycle:
            events.append(self.fetch_ready_cycle)
        if events:
            self.cycle = max(self.cycle + 1, min(events))
        else:
            # Nothing in flight and fetch cannot resume: a hard deadlock.
            # Jump far enough for the commit watchdog to classify it.
            self.cycle += self.cfg.deadlock_window + 1

    def _finish(
        self,
        status: RunStatus,
        reason: CrashReason | None = None,
        pc: int | None = None,
        detail: str = "",
    ) -> None:
        self.result = RunResult(
            status=status,
            cycles=self.cycle,
            instructions=self.stats.committed,
            output=bytes(self.kernel.output),
            exit_code=self.kernel.exit_code or 0,
            crash_reason=reason,
            crash_pc=pc,
            detail=detail,
            stats=self.stats.as_dict(),
        )

    # ----------------------------------------------------------------- commit

    def _commit(self) -> bool:
        committed = False
        for _ in range(self.cfg.commit_width):
            if not self.rob:
                return committed
            uop = self.rob[0]
            if uop.state != DONE:
                return committed
            if uop.exception is not None:
                self._finish(
                    RunStatus.CRASH_PROCESS, uop.exception, uop.pc,
                    uop.exc_detail,
                )
                return True
            inst = uop.inst
            if (
                self.sc_replay_check
                and inst.is_load
                and not self._load_value_current(uop)
            ):
                # A remote store changed the location after this load
                # executed: squash the load and everything younger, refetch.
                self._squash_younger_than(uop.seq - 1)
                self._redirect(uop.pc)
                return True
            if inst.is_store:
                if not self._commit_store(uop):
                    return True
            elif inst.is_amo:
                if not self._commit_amo(uop):
                    return True
            elif inst.is_sys:
                if not self._commit_syscall(uop):
                    return True
            elif inst.is_halt:
                self._finish(RunStatus.FINISHED)
                return True
            if uop.dest >= 0:
                self.free_list.append(uop.old_dest)
            self.rob.popleft()
            if inst.is_load:
                self.lq.pop(0)
            self.stats.committed += 1
            self.last_commit_cycle = self.cycle
            if self.commit_hook is not None:
                self.commit_hook(uop)
            committed = True
        return committed

    def _commit_store(self, uop: MicroOp) -> bool:
        """Retire a store into the cache hierarchy; False ends the run."""
        paddr = uop.paddr
        assert paddr is not None and uop.store_data is not None
        if paddr < self.cfg.layout.kernel_reserved:
            self._finish(
                RunStatus.CRASH_KERNEL, CrashReason.KERNEL_PANIC, uop.pc,
                f"store to kernel frame at phys 0x{paddr:08x}",
            )
            return False
        payload = uop.store_data.to_bytes(uop.mem_size, "little")
        self.dcache.write(paddr, payload)
        self.sq.pop(0)
        self.stats.stores += 1
        return True

    def _load_value_current(self, uop: MicroOp) -> bool:
        """Does the memory image still hold the value this load observed?"""
        paddr = uop.paddr
        if paddr is None or uop.exception is not None:
            return True
        size = uop.mem_size
        coherence = self.dcache.coherence
        if coherence is not None:
            data = coherence.peek_range(self.dcache, paddr, size)
        else:
            data = self.dcache.peek_range(paddr, size)
        return int.from_bytes(data, "little") == uop.result

    def _commit_amo(self, uop: MicroOp) -> bool:
        """Retire an atomic read-modify-write; False ends the run.

        The whole RMW happens here at the head of the ROB: fetch stalled
        behind the AMO, every older store has already committed, and the
        coherent write makes the update visible to every other core before
        any younger instruction of any core can be affected by it.
        """
        paddr = uop.paddr
        assert paddr is not None and uop.store_data is not None
        if paddr < self.cfg.layout.kernel_reserved:
            self._finish(
                RunStatus.CRASH_KERNEL, CrashReason.KERNEL_PANIC, uop.pc,
                f"store to kernel frame at phys 0x{paddr:08x}",
            )
            return False
        old, _ = self.dcache.read_word(paddr)
        operand = uop.store_data
        if uop.inst.op is Op.AMOADD:
            new = (old + operand) & MASK32
        else:  # AMOSWAP
            new = operand & MASK32
        self.dcache.write(paddr, new.to_bytes(4, "little"))
        uop.result = old
        uop.store_data = new
        if uop.dest >= 0:
            self.prf.values[uop.dest] = old
            self.prf.ready[uop.dest] = True
        self.stats.loads += 1
        self.stats.stores += 1
        # Resume fetch past the serializing atomic.
        self.fetch_pc = (uop.pc + 4) & MASK32
        self.fetch_stall = None
        self.fetch_ready_cycle = self.cycle + self.cfg.mispredict_penalty
        return True

    def _commit_syscall(self, uop: MicroOp) -> bool:
        """Service a syscall at commit; False ends the run."""
        assert uop.sys_args is not None
        self.stats.syscalls += 1
        ret, exited, crash = self.kernel.do_syscall(
            uop.inst.imm, *uop.sys_args, core=self.core_id
        )
        if crash is not None:
            self._finish(RunStatus.CRASH_PROCESS, crash, uop.pc)
            return False
        if uop.dest >= 0:
            self.prf.values[uop.dest] = ret & MASK32
            self.prf.ready[uop.dest] = True
        if exited:
            self._finish(RunStatus.FINISHED)
            return False
        # Resume fetch after the serializing syscall.  The return address
        # comes from the misc save register written at issue, mirroring an
        # exception-return register: corrupting it diverts control.
        self.fetch_pc = (self.prf.read_misc(MISC_SAVED_PC) + 4) & MASK32
        self.fetch_stall = None
        self.fetch_ready_cycle = self.cycle + self.cfg.mispredict_penalty
        return True

    # -------------------------------------------------------------- writeback

    def _writeback(self) -> bool:
        done = 0
        heap = self._completions
        while heap and heap[0][0] <= self.cycle and done < self.cfg.writeback_width:
            _, _, uop = heapq.heappop(heap)
            if uop.squashed:
                continue
            if uop.dest >= 0 and uop.result is not None:
                self.prf.values[uop.dest] = uop.result
                self.prf.ready[uop.dest] = True
            uop.state = DONE
            done += 1
        return done > 0

    # ------------------------------------------------------------------ issue

    def _issue(self) -> bool:
        issued = 0
        width = self.cfg.issue_width
        ready_bits = self.prf.ready
        for uop in list(self.iq):
            if issued >= width:
                break
            # A branch issued earlier this same cycle may have squashed
            # younger entries of the snapshot we are iterating.
            if uop.squashed or uop.state != WAITING:
                continue
            if uop.exception is None:
                blocked = False
                for src in uop.srcs:
                    if not ready_bits[src]:
                        blocked = True
                        break
                if blocked:
                    continue
            latency = self._execute(uop)
            if latency is None:
                continue  # load blocked by memory disambiguation
            self.iq.remove(uop)
            uop.state = ISSUED
            heapq.heappush(
                self._completions, (self.cycle + latency, uop.seq, uop)
            )
            issued += 1
        return issued > 0

    def _forward_from_sq(self, uop: MicroOp, paddr: int) -> tuple[bool, int | None]:
        """Check older stores for forwarding.

        Returns (blocked, value): ``blocked`` means a partial overlap forces
        the load to wait; ``value`` is the forwarded data on an exact match.
        """
        value = None
        size = uop.mem_size
        for store in self.sq:
            if store.seq >= uop.seq:
                break
            if store.paddr is None:
                return True, None
            if store.exception is not None:
                continue
            if store.paddr == paddr and store.mem_size == size:
                value = store.store_data  # youngest older store wins
            elif store.paddr < paddr + size and paddr < store.paddr + store.mem_size:
                return True, None
        return False, value

    # ---------------------------------------------------------------- execute

    def _execute(self, uop: MicroOp) -> int | None:
        """Functionally execute *uop*; returns its completion latency.

        Returns None when a load cannot issue yet (conservative memory
        disambiguation against older stores); the uop stays in the queue.
        """
        if uop.exception is not None:
            return 1
        inst = uop.inst
        op = inst.op
        values = self.prf.values
        vals = [values[src] & MASK32 for src in uop.srcs]

        if op in ALU_OPS:
            imm_form = inst.fmt.value == "i"
            a = vals[0]
            b = (inst.imm & MASK32) if imm_form else vals[1]
            try:
                uop.result = ALU_OPS[op](a, b)
            except ArithmeticFault as exc:
                uop.exception = CrashReason.DIV_ZERO
                uop.exc_detail = str(exc)
            return inst.latency
        if op is Op.MOVI:
            uop.result = inst.imm & MASK32
            return 1
        if op is Op.LUI:
            uop.result = (inst.imm & 0xFFFF) << 16
            return 1
        if inst.is_load:
            return self._execute_load(uop, vals)
        if inst.is_store:
            return self._execute_store(uop, vals)
        if inst.is_amo:
            return self._execute_amo(uop, vals)
        if inst.is_cond_branch:
            b = vals[1] if len(vals) > 1 else 0  # BEQZ/BNEZ have one source
            taken = BRANCH_CONDS[op](vals[0], b)
            target = (
                (uop.pc + 4 * inst.imm) if taken else (uop.pc + 4)
            ) & MASK32
            uop.actual_target = target
            if target != uop.pred_target:
                self._mispredict(uop, target)
            return 1
        if op is Op.B:
            return 1
        if op is Op.BL:
            uop.result = (uop.pc + 4) & MASK32
            return 1
        if op in (Op.JR, Op.JALR):
            target = vals[0]
            if target & 3:
                uop.exception = CrashReason.MISALIGNED
                uop.exc_detail = f"jump target 0x{target:08x}"
                return 1
            uop.actual_target = target
            if op is Op.JALR:
                uop.result = (uop.pc + 4) & MASK32
            self._redirect(target)
            return 1
        if inst.is_sys:
            uop.sys_args = (vals[0], vals[1], vals[2])
            self.prf.write_misc(MISC_SAVED_PC, uop.pc)
            return 1
        # NOP / HALT
        return 1

    def _execute_load(self, uop: MicroOp, vals: list[int]) -> int | None:
        vaddr = (vals[0] + uop.inst.imm) & MASK32
        size = uop.mem_size
        if size == 4 and vaddr & 3:
            uop.exception = CrashReason.MISALIGNED
            uop.exc_detail = f"load at 0x{vaddr:08x}"
            return 1
        paddr, lat, fault = self.dtlb.translate(vaddr, ACCESS_LOAD)
        if fault is not None:
            uop.exception = _FAULT_TO_REASON[fault]
            uop.exc_detail = f"load at 0x{vaddr:08x}"
            return lat
        blocked, forwarded = self._forward_from_sq(uop, paddr)
        if blocked:
            # Stay WAITING in the queue; the blocking store will commit (or
            # be squashed) and a later issue attempt will succeed.
            return None
        uop.paddr = paddr
        if forwarded is not None:
            uop.result = forwarded & MASK32
            self.stats.loads += 1
            return 1
        if size == 4:
            uop.result, access_lat = self.dcache.read_word(paddr)
        else:
            data, access_lat = self.dcache.read(paddr, 1)
            uop.result = data[0]
        self.stats.loads += 1
        return lat - self.dtlb.hit_latency + access_lat

    def _execute_store(self, uop: MicroOp, vals: list[int]) -> int:
        vaddr = (vals[1] + uop.inst.imm) & MASK32
        size = uop.mem_size
        if size == 4 and vaddr & 3:
            uop.exception = CrashReason.MISALIGNED
            uop.exc_detail = f"store at 0x{vaddr:08x}"
            return 1
        paddr, lat, fault = self.dtlb.translate(vaddr, ACCESS_STORE)
        if fault is not None:
            uop.exception = _FAULT_TO_REASON[fault]
            uop.exc_detail = f"store at 0x{vaddr:08x}"
            return lat
        uop.paddr = paddr
        mask = MASK32 if size == 4 else 0xFF
        uop.store_data = vals[0] & mask
        return lat

    def _execute_amo(self, uop: MicroOp, vals: list[int]) -> int:
        """Translate an AMO's address; the RMW itself happens at commit."""
        vaddr = vals[0]
        if vaddr & 3:
            uop.exception = CrashReason.MISALIGNED
            uop.exc_detail = f"amo at 0x{vaddr:08x}"
            return 1
        paddr, lat, fault = self.dtlb.translate(vaddr, ACCESS_STORE)
        if fault is not None:
            uop.exception = _FAULT_TO_REASON[fault]
            uop.exc_detail = f"amo at 0x{vaddr:08x}"
            return lat
        uop.paddr = paddr
        # Stash the operand; _commit_amo replaces it with the stored value.
        uop.store_data = vals[1]
        return lat

    # ------------------------------------------------------ control flow fixes

    def _mispredict(self, branch: MicroOp, target: int) -> None:
        self.stats.mispredicts += 1
        self._squash_younger_than(branch.seq)
        self._redirect(target)

    def _redirect(self, target: int) -> None:
        self.fetch_pc = target & MASK32
        self.fetch_stall = None
        self.fetch_ready_cycle = self.cycle + self.cfg.mispredict_penalty

    def _squash_younger_than(self, seq: int) -> None:
        rob = self.rob
        while rob and rob[-1].seq > seq:
            uop = rob.pop()
            uop.squashed = True
            self.stats.squashed += 1
            if uop.dest >= 0:
                self.rename_map[uop.arch_dest] = uop.old_dest
                self.free_list.appendleft(uop.dest)
        for uop in self.decode_q:
            uop.squashed = True
            self.stats.squashed += 1
        self.decode_q.clear()
        self.iq = [u for u in self.iq if not u.squashed]
        self.lq = [u for u in self.lq if not u.squashed]
        self.sq = [u for u in self.sq if not u.squashed]

    # ------------------------------------------------------------------ rename

    def _rename_dispatch(self) -> bool:
        cfg = self.cfg
        dispatched = False
        for _ in range(cfg.rename_width):
            if not self.decode_q:
                return dispatched
            if len(self.rob) >= cfg.rob_entries or len(self.iq) >= cfg.iq_entries:
                return dispatched
            uop = self.decode_q[0]
            inst = uop.inst
            if inst.is_load and len(self.lq) >= cfg.lq_entries:
                return dispatched
            if inst.is_store and len(self.sq) >= cfg.sq_entries:
                return dispatched
            if inst.writes is not None and not self.free_list:
                return dispatched
            uop.srcs = tuple(self.rename_map[a] for a in inst.reads)
            if inst.writes is not None:
                phys = self.free_list.popleft()
                uop.arch_dest = inst.writes
                uop.old_dest = self.rename_map[inst.writes]
                uop.dest = phys
                self.rename_map[inst.writes] = phys
                self.prf.ready[phys] = False
            self.decode_q.popleft()
            self.rob.append(uop)
            self.iq.append(uop)
            if inst.is_load:
                self.lq.append(uop)
            elif inst.is_store:
                self.sq.append(uop)
            dispatched = True
        return dispatched

    # ------------------------------------------------------------------- fetch

    def _fetch(self) -> bool:
        if self.fetch_stall is not None or self.cycle < self.fetch_ready_cycle:
            return False
        cfg = self.cfg
        fetched = False
        for _ in range(cfg.fetch_width):
            if len(self.decode_q) >= cfg.decode_buffer:
                return fetched
            pc = self.fetch_pc
            if pc & 3:
                self._push_fetch_fault(pc, CrashReason.MISALIGNED)
                return True
            paddr, lat, fault = self.itlb.translate(pc, ACCESS_EXEC)
            if fault is not None:
                reason = _FAULT_TO_REASON[fault]
                self._push_fetch_fault(pc, reason)
                return True
            if lat > self.itlb.hit_latency:
                # TLB walk: the entry is resident now; retry after the walk.
                self.fetch_ready_cycle = self.cycle + lat
                return True
            raw, access_lat = self.icache.read_word(paddr)
            if access_lat > self.icache.hit_latency:
                self.fetch_ready_cycle = self.cycle + access_lat
                return True
            inst = decode(raw)
            uop = MicroOp(self.seq, pc, inst)
            self.seq += 1
            self.stats.fetched += 1
            fetched = True
            if inst.illegal:
                uop.exception = CrashReason.ILLEGAL_INSTRUCTION
                uop.exc_detail = f"word 0x{raw:08x}"
                self.decode_q.append(uop)
                self.fetch_stall = "fault"
                return True
            self.decode_q.append(uop)
            if inst.is_cond_branch:
                taken_pred = inst.imm < 0  # backward-taken static predictor
                uop.pred_target = (
                    (pc + 4 * inst.imm) if taken_pred else (pc + 4)
                ) & MASK32
                self.fetch_pc = uop.pred_target
            elif inst.is_direct_jump:
                uop.pred_target = (pc + 4 * inst.imm) & MASK32
                self.fetch_pc = uop.pred_target
            elif inst.is_indirect_jump:
                self.fetch_stall = "indirect"
                return True
            elif inst.is_sys:
                self.fetch_stall = "sys"
                return True
            elif inst.is_amo:
                # Atomics serialize the pipeline: the RMW at commit resumes
                # fetch at pc+4, so no younger op is in flight around it.
                self.fetch_stall = "amo"
                return True
            elif inst.is_halt:
                self.fetch_stall = "halt"
                return True
            else:
                self.fetch_pc = (pc + 4) & MASK32
        return fetched

    def _push_fetch_fault(self, pc: int, reason: CrashReason) -> None:
        uop = MicroOp(self.seq, pc, decode(0))
        self.seq += 1
        uop.exception = reason
        uop.exc_detail = f"instruction fetch at 0x{pc:08x}"
        self.decode_q.append(uop)
        self.fetch_stall = "fault"
