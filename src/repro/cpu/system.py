"""Full-system composition: core + caches + TLBs + paging + kernel.

A :class:`System` owns one simulated machine and one loaded process.  It is
single-use: build, load, run.  The fault injector reaches the live hardware
structures through :meth:`System.injectable_targets`.
"""

from __future__ import annotations

from repro.errors import SimAssertion
from repro.isa.program import Program
from repro.kernel.loader import LoadedProcess, load_program
from repro.kernel.status import RunResult, RunStatus
from repro.kernel.syscalls import Kernel
from repro.mem.cache import Cache
from repro.mem.paging import PageTable
from repro.mem.physmem import PhysicalMemory
from repro.mem.sram import InjectableArray
from repro.mem.tlb import TLB
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.cpu.core import OutOfOrderCore

#: Stable component names used across injection, analysis and reporting.
COMPONENT_NAMES = ("l1d", "l1i", "l2", "regfile", "dtlb", "itlb")


class CoreBundle:
    """One core's private state: L1 caches, TLBs, and the pipeline.

    The single-core :class:`System` builds exactly one bundle with an empty
    name *prefix*, so its component names ("l1d", "itlb", ...) — and hence
    every campaign cell key and telemetry counter — are unchanged.  The SMP
    system builds one bundle per core with a ``c{k}.`` prefix around one
    shared L2, which is what keys per-core cache/TLB telemetry by core id.
    """

    def __init__(
        self,
        cfg: CoreConfig,
        core_id: int,
        prefix: str,
        l2: Cache,
        page_table: PageTable,
        kernel: Kernel,
    ) -> None:
        self.core_id = core_id
        self.prefix = prefix
        self.l1i = Cache(
            prefix + "l1i", cfg.l1i_size, cfg.l1i_assoc, cfg.line_size,
            cfg.l1i_latency, l2,
        )
        self.l1d = Cache(
            prefix + "l1d", cfg.l1d_size, cfg.l1d_assoc, cfg.line_size,
            cfg.l1d_latency, l2,
        )
        self.itlb = TLB(prefix + "itlb", page_table, cfg.tlb_entries)
        self.dtlb = TLB(prefix + "dtlb", page_table, cfg.tlb_entries)
        self.pipe = OutOfOrderCore(
            cfg, self.l1i, self.l1d, self.itlb, self.dtlb, kernel
        )
        self.pipe.core_id = core_id

    def fresh_pipe(self, cfg: CoreConfig, kernel: Kernel) -> OutOfOrderCore:
        """Replace the pipeline for a (re)spawned worker, keeping the caches.

        Verification taps and the SMP load-replay mode carry over so a
        respawned core stays under the same harness as the original.
        """
        pipe = OutOfOrderCore(
            cfg, self.l1i, self.l1d, self.itlb, self.dtlb, kernel
        )
        pipe.core_id = self.core_id
        pipe.sc_replay_check = self.pipe.sc_replay_check
        pipe.commit_hook = self.pipe.commit_hook
        pipe.invariant_checker = self.pipe.invariant_checker
        # Hardware counters belong to the core, not the thread: accumulate
        # across every thread that ever ran here.
        pipe.stats = self.pipe.stats
        self.pipe = pipe
        return pipe


class System:
    """One simulated machine instance."""

    def __init__(self, cfg: CoreConfig = DEFAULT_CONFIG) -> None:
        self.cfg = cfg
        layout = cfg.layout
        self.mem = PhysicalMemory(layout.phys_size, cfg.mem_latency)
        self.l2 = Cache(
            "l2", cfg.l2_size, cfg.l2_assoc, cfg.line_size,
            cfg.l2_latency, self.mem,
        )
        self.page_table = PageTable(cfg.tlb_walk_latency)
        self.kernel = Kernel()
        bundle = CoreBundle(cfg, 0, "", self.l2, self.page_table, self.kernel)
        self.l1i = bundle.l1i
        self.l1d = bundle.l1d
        self.itlb = bundle.itlb
        self.dtlb = bundle.dtlb
        self.core = bundle.pipe
        if cfg.check_invariants:
            from repro.verify.invariants import InvariantChecker

            self.core.invariant_checker = InvariantChecker()
        self.process: LoadedProcess | None = None

    def load(self, program: Program) -> LoadedProcess:
        """Load *program* and point the core at its entry."""
        self.process = load_program(
            program, self.mem, self.page_table, self.cfg.layout
        )
        self.core.reset(self.process.entry_pc, self.process.initial_sp)
        return self.process

    def injectable_targets(self) -> dict[str, InjectableArray]:
        """The six fault-injection targets of the paper, by component name."""
        return {
            "l1d": self.l1d,
            "l1i": self.l1i,
            "l2": self.l2,
            "regfile": self.core.prf,
            "dtlb": self.dtlb,
            "itlb": self.itlb,
        }

    def publish_metrics(self, metrics, prefix: str = "sim.mem.") -> None:
        """Harvest cache/TLB hit-miss counters into an ``obs`` registry.

        Called at most once per finished run; the totals are a pure
        function of the executed instruction stream, so sums over a
        campaign's injections are deterministic (``sim.*`` namespace).
        """
        for cache in (self.l1d, self.l1i, self.l2):
            cache.stats.publish(metrics, prefix + cache.name)
        for tlb in (self.itlb, self.dtlb):
            tlb.publish_stats(metrics, prefix + tlb.name)

    def step(self) -> None:
        self.core.step()

    @property
    def cycle(self) -> int:
        return self.core.cycle

    @property
    def finished(self) -> bool:
        return self.core.result is not None

    def run(self, max_cycles: int, max_steps: int | None = None) -> RunResult:
        """Run to termination, converting simulator assertions to results.

        *max_steps* is the per-injection step-count watchdog (see
        :meth:`repro.cpu.core.OutOfOrderCore.run`); leave it ``None`` for
        trusted fault-free runs.
        """
        try:
            return self.core.run(max_cycles, max_steps=max_steps)
        except SimAssertion as exc:
            result = RunResult(
                status=RunStatus.SIM_ASSERT,
                cycles=self.core.cycle,
                instructions=self.core.stats.committed,
                output=bytes(self.kernel.output),
                detail=str(exc),
                stats=self.core.stats.as_dict(),
            )
            self.core.result = result
            return result

    def run_until(
        self,
        target_cycle: int,
        max_cycles: int,
        max_steps: int | None = None,
    ) -> bool:
        """Advance to *target_cycle* (or termination).

        Returns True when the target cycle was reached with the program
        still running — i.e. an injection at this point is meaningful.
        *max_steps* bounds the number of pipeline steps like
        :meth:`run` does; a stuck cycle counter would otherwise keep this
        loop spinning forever since ``cycle < target_cycle`` never resolves.
        """
        steps = 0
        try:
            while self.core.result is None and self.core.cycle < target_cycle:
                if self.core.cycle >= max_cycles:
                    return False
                self.core.step()
                steps += 1
                if max_steps is not None and steps > max_steps:
                    from repro.errors import WatchdogTimeout

                    raise WatchdogTimeout(
                        f"step watchdog: {steps} steps executed but the "
                        f"cycle counter is at {self.core.cycle} (target "
                        f"{target_cycle}) — simulator livelock"
                    )
        except SimAssertion as exc:
            self.core.result = RunResult(
                status=RunStatus.SIM_ASSERT,
                cycles=self.core.cycle,
                instructions=self.core.stats.committed,
                output=bytes(self.kernel.output),
                detail=str(exc),
                stats=self.core.stats.as_dict(),
            )
            return False
        return self.core.result is None


def run_program(
    program: Program,
    cfg: CoreConfig = DEFAULT_CONFIG,
    max_cycles: int = 5_000_000,
) -> RunResult:
    """Convenience one-shot: load and run *program* on a fresh system."""
    system = System(cfg)
    system.load(program)
    return system.run(max_cycles)
