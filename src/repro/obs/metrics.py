"""Low-overhead metrics: counters, gauges, histograms, deterministic merge.

The registry is the bookkeeping half of the observability subsystem
(see DESIGN.md §8).  Three invariants shape everything here:

* **Process-local and picklable.**  A registry is a plain object graph of
  ints and lists — it crosses the multiprocessing result queue of the
  parallel executor as ordinary JSON-able dicts (:meth:`MetricsRegistry.
  as_dict` / :meth:`MetricsRegistry.merge_dict`), no shared memory, no
  locks.
* **Deterministically mergeable.**  Counter merge is integer addition,
  histogram merge is per-bucket integer addition, gauge merge is ``max``
  — all commutative and associative, so per-worker deltas merged in
  canonical cell order produce the same registry as the serial run
  produced directly, for every metric whose underlying events are
  deterministic.
* **Namespaced determinism contract.**  Metric names are dot-paths and
  the first segment states the guarantee: ``sim.*`` counters depend only
  on the campaign configuration (equal across serial and ``--jobs N``
  runs by construction), ``exec.*`` depends on the execution schedule
  (cache warmth, worker count, restarts), ``time.*`` is wall-clock.
  :func:`deterministic_counters` extracts the comparable slice.

Floats appear only in histogram sums and gauges; every cross-run
comparison in the tests runs over the integer ``sim.*`` counters, so
float associativity never undermines the determinism story.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default histogram bounds for phase durations, in seconds.  Upper bucket
#: edges use Prometheus ``le`` semantics: an observation lands in the first
#: bucket whose bound is >= the value; values above the last bound land in
#: the implicit overflow bucket.
DEFAULT_TIME_BOUNDS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Name prefix of metrics that must be equal between a serial run and a
#: ``--jobs N`` run of the same campaign (fresh stores, no incidents).
DETERMINISTIC_PREFIX = "sim."


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last/peak-value float; merge keeps the maximum seen anywhere."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bound histogram: bucket counts plus exact sum and count.

    ``counts[i]`` holds observations ``x`` with
    ``bounds[i-1] < x <= bounds[i]``; ``counts[len(bounds)]`` is the
    overflow bucket.  Bounds are fixed at creation so two histograms of
    the same name always merge bucket-by-bucket.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_TIME_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- access --------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        return gauge

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_TIME_BOUNDS
    ) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds)
        return histogram

    # -- serialisation / merge ----------------------------------------------

    def as_dict(self) -> dict:
        """JSON-able snapshot (sorted keys, so equal registries dump equal)."""
        return {
            "counters": {
                name: self.counters[name].value
                for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name].value for name in sorted(self.gauges)
            },
            "histograms": {
                name: self.histograms[name].as_dict()
                for name in sorted(self.histograms)
            },
        }

    def merge_dict(self, data: dict) -> None:
        """Fold a snapshot/delta produced by :meth:`as_dict` into this
        registry: counters add, gauges take the max, histograms add
        bucket-wise (creating any metric not yet present)."""
        for name, value in data.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in data.get("gauges", {}).items():
            self.gauge(name).set_max(float(value))
        for name, blob in data.get("histograms", {}).items():
            histogram = self.histogram(name, tuple(blob["bounds"]))
            if list(histogram.bounds) != list(blob["bounds"]):
                raise ValueError(
                    f"histogram {name!r}: merge with mismatched bounds"
                )
            for index, bucket in enumerate(blob["counts"]):
                histogram.counts[index] += int(bucket)
            histogram.sum += float(blob["sum"])
            histogram.count += int(blob["count"])


def subtract_snapshot(after: dict, before: dict) -> dict:
    """The delta between two :meth:`MetricsRegistry.as_dict` snapshots.

    ``merge_dict(subtract_snapshot(after, before))`` applied to a registry
    in state *before* reproduces state *after* exactly (gauges carry the
    later value; max-merge keeps that exact for monotone gauges).  This is
    how workers ship per-cell metric deltas over the result queue.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    gauges = dict(after.get("gauges", {}))
    histograms = {}
    for name, blob in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(name)
        if prior is None:
            histograms[name] = blob
            continue
        delta_counts = [
            bucket - prior["counts"][index]
            for index, bucket in enumerate(blob["counts"])
        ]
        if any(delta_counts):
            histograms[name] = {
                "bounds": blob["bounds"],
                "counts": delta_counts,
                "sum": blob["sum"] - prior["sum"],
                "count": blob["count"] - prior["count"],
            }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def deterministic_counters(snapshot: dict) -> dict[str, int]:
    """The ``sim.*`` counters of a snapshot — the slice that must be equal
    between serial and parallel runs of the same campaign."""
    return {
        name: value
        for name, value in snapshot.get("counters", {}).items()
        if name.startswith(DETERMINISTIC_PREFIX)
    }
