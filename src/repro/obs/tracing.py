"""Span tracing: begin/end + attributes, exportable as Chrome trace JSON.

A :class:`Tracer` records *complete* events (Chrome ``ph: "X"``) via the
:meth:`Tracer.span` context manager and *instant* events (``ph: "i"``) via
:meth:`Tracer.instant`.  Timestamps come from ``time.perf_counter`` —
``CLOCK_MONOTONIC`` on Linux, so events recorded in forked worker
processes share the parent's timeline and interleave correctly in the
exported trace.

Events are stored as plain dicts (queue- and JSON-safe); workers
:meth:`~Tracer.drain` their buffer after every cell and ship it to the
parent, which :meth:`~Tracer.adopt`\\ s the events under the worker's
thread id.  :func:`chrome_trace` turns any event list into a JSON object
loadable by ``about:tracing`` and Perfetto.
"""

from __future__ import annotations

import time

#: Hard cap on buffered events: a runaway per-sample span cannot eat the
#: campaign's memory.  Drops are counted and surfaced in the summary.
MAX_EVENTS = 200_000

#: Thread id of events recorded by the process that owns the tracer (the
#: serial path, or the parent of a parallel run).  Workers are 1..N.
MAIN_TID = 0


class _Span:
    """One open span; appends a complete event to its tracer on exit."""

    __slots__ = ("_tracer", "name", "args", "_begin")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._begin = 0.0

    def __enter__(self) -> "_Span":
        self._begin = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        self._tracer.record(self.name, self._begin, end, self.args)
        return False


class NullSpan:
    """Shared no-op stand-in for a span when telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = NullSpan()


class Tracer:
    """Buffer of trace events plus the span factory."""

    def __init__(self, max_events: int = MAX_EVENTS) -> None:
        self.events: list[dict] = []
        self.max_events = max_events
        self.dropped = 0

    def span(self, name: str, **args) -> _Span:
        """Context manager timing one named operation."""
        return _Span(self, name, args)

    def record(self, name: str, begin: float, end: float, args: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append({
            "name": name,
            "ph": "X",
            "ts": int(begin * 1e6),
            "dur": int((end - begin) * 1e6),
            "tid": MAIN_TID,
            "args": args,
        })

    def instant(self, name: str, **args) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append({
            "name": name,
            "ph": "i",
            "ts": int(time.perf_counter() * 1e6),
            "tid": MAIN_TID,
            "args": args,
        })

    def drain(self) -> list[dict]:
        """Hand over (and forget) everything buffered so far."""
        events, self.events = self.events, []
        return events

    def adopt(self, events: list[dict], tid: int) -> None:
        """Append events shipped by another process under thread id *tid*."""
        for event in events:
            if len(self.events) >= self.max_events:
                self.dropped += 1
                continue
            event["tid"] = tid
            self.events.append(event)


def chrome_trace(events: list[dict], *, dropped: int = 0) -> dict:
    """Event list → Chrome ``trace_event`` JSON object.

    Timestamps are rebased to the earliest event so the trace starts near
    zero; every event gets ``pid`` 0 and a ``cat`` so track grouping and
    filtering work in Perfetto.  Thread-name metadata events label the
    serial/parent track and each worker track.
    """
    base = min((event["ts"] for event in events), default=0)
    out: list[dict] = []
    tids = sorted({event.get("tid", MAIN_TID) for event in events})
    for tid in tids:
        out.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {
                "name": "main" if tid == MAIN_TID else f"worker-{tid - 1}"
            },
        })
    for event in events:
        entry = {
            "name": event["name"],
            "cat": "repro",
            "ph": event["ph"],
            "ts": event["ts"] - base,
            "pid": 0,
            "tid": event.get("tid", MAIN_TID),
            "args": event.get("args", {}),
        }
        if event["ph"] == "X":
            entry["dur"] = event["dur"]
        elif event["ph"] == "i":
            entry["s"] = "t"
        out.append(entry)
    trace = {"traceEvents": out, "displayTimeUnit": "ms"}
    if dropped:
        trace["metadata"] = {"dropped_events": dropped}
    return trace
