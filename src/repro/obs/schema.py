"""Hand-rolled validators for telemetry.json and Chrome trace JSON.

No ``jsonschema`` dependency: the container's toolchain is fixed, and the
two shapes are small enough that explicit checks double as documentation.
Each validator returns a list of human-readable problems (empty = valid),
so CI can print every violation at once instead of dying on the first.
"""

from __future__ import annotations

_NUMBER = (int, float)


def _check(errors: list[str], ok: bool, message: str) -> None:
    if not ok:
        errors.append(message)


def validate_histogram(name: str, blob, errors: list[str]) -> None:
    if not isinstance(blob, dict):
        errors.append(f"histogram {name!r}: not an object")
        return
    bounds = blob.get("bounds")
    counts = blob.get("counts")
    _check(
        errors,
        isinstance(bounds, list)
        and bounds
        and all(isinstance(b, _NUMBER) for b in bounds)
        and bounds == sorted(bounds),
        f"histogram {name!r}: bounds must be a sorted non-empty number list",
    )
    _check(
        errors,
        isinstance(counts, list)
        and all(isinstance(c, int) and c >= 0 for c in counts),
        f"histogram {name!r}: counts must be non-negative ints",
    )
    if isinstance(bounds, list) and isinstance(counts, list):
        _check(
            errors,
            len(counts) == len(bounds) + 1,
            f"histogram {name!r}: need len(bounds)+1 buckets "
            f"(got {len(counts)} for {len(bounds)} bounds)",
        )
        _check(
            errors,
            blob.get("count") == sum(counts),
            f"histogram {name!r}: count {blob.get('count')} != bucket sum "
            f"{sum(counts)}",
        )
    _check(
        errors,
        isinstance(blob.get("sum"), _NUMBER),
        f"histogram {name!r}: sum must be a number",
    )


def validate_telemetry(data) -> list[str]:
    """Problems with a ``telemetry.json`` object (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return ["telemetry: not a JSON object"]
    _check(errors, data.get("kind") == "repro-telemetry",
           "telemetry: kind must be 'repro-telemetry'")
    _check(errors, isinstance(data.get("schema"), int),
           "telemetry: schema must be an int")
    wall = data.get("wall_seconds")
    _check(errors, isinstance(wall, _NUMBER) and wall >= 0,
           "telemetry: wall_seconds must be a non-negative number")
    counters = data.get("counters")
    if not isinstance(counters, dict):
        errors.append("telemetry: counters must be an object")
    else:
        for name, value in counters.items():
            _check(errors, isinstance(value, int),
                   f"counter {name!r}: value must be an int")
    gauges = data.get("gauges")
    if not isinstance(gauges, dict):
        errors.append("telemetry: gauges must be an object")
    else:
        for name, value in gauges.items():
            _check(errors, isinstance(value, _NUMBER),
                   f"gauge {name!r}: value must be a number")
    histograms = data.get("histograms")
    if not isinstance(histograms, dict):
        errors.append("telemetry: histograms must be an object")
    else:
        for name, blob in histograms.items():
            validate_histogram(name, blob, errors)
    _check(errors, isinstance(data.get("derived"), dict),
           "telemetry: derived must be an object")
    det = data.get("deterministic_counters")
    if not isinstance(det, dict):
        errors.append("telemetry: deterministic_counters must be an object")
    elif isinstance(counters, dict):
        for name in det:
            _check(errors, name.startswith("sim."),
                   f"deterministic counter {name!r}: must be sim.*")
            _check(errors, counters.get(name) == det[name],
                   f"deterministic counter {name!r}: disagrees with counters")
    if "trace_events" in data:
        events = data["trace_events"]
        if not isinstance(events, list):
            errors.append("telemetry: trace_events must be a list")
        else:
            for index, event in enumerate(events):
                _validate_raw_event(index, event, errors)
    return errors


def _validate_raw_event(index: int, event, errors: list[str]) -> None:
    if not isinstance(event, dict):
        errors.append(f"trace event {index}: not an object")
        return
    _check(errors, isinstance(event.get("name"), str),
           f"trace event {index}: name must be a string")
    _check(errors, event.get("ph") in ("X", "i"),
           f"trace event {index}: ph must be 'X' or 'i'")
    _check(errors, isinstance(event.get("ts"), int),
           f"trace event {index}: ts must be an int (microseconds)")
    if event.get("ph") == "X":
        _check(errors, isinstance(event.get("dur"), int),
               f"trace event {index}: complete event needs int dur")


def validate_chrome_trace(data) -> list[str]:
    """Problems with an exported Chrome ``trace_event`` JSON object."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return ["trace: not a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["trace: traceEvents must be a list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"trace event {index}: not an object")
            continue
        _check(errors, isinstance(event.get("name"), str),
               f"trace event {index}: name must be a string")
        ph = event.get("ph")
        _check(errors, ph in ("X", "i", "M"),
               f"trace event {index}: unsupported ph {ph!r}")
        _check(errors, isinstance(event.get("pid"), int),
               f"trace event {index}: pid must be an int")
        _check(errors, isinstance(event.get("tid"), int),
               f"trace event {index}: tid must be an int")
        if ph == "M":
            continue
        ts = event.get("ts")
        _check(errors, isinstance(ts, int) and ts >= 0,
               f"trace event {index}: ts must be a non-negative int")
        if ph == "X":
            dur = event.get("dur")
            _check(errors, isinstance(dur, int) and dur >= 0,
                   f"trace event {index}: dur must be a non-negative int")
        elif ph == "i":
            _check(errors, event.get("s") in ("t", "p", "g"),
                   f"trace event {index}: instant needs scope s")
    return errors
