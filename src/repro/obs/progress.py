"""Live progress estimation: samples/sec over a sliding window, ETA.

The campaign progress callback fires once per completed cell, in
canonical order in both the serial and the parallel path (the parallel
parent buffers out-of-order completions), so one tracker serves both.
Rates are computed over a sliding window of recent completions rather
than since-start, so the estimate recovers quickly after a cold start
(checkpoint builds) or a burst of store-cached cells.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

#: Completions the sliding window holds.  Big enough to smooth per-cell
#: variance (workloads differ ~10x in golden cycles), small enough to
#: track a campaign that speeds up as caches warm.
DEFAULT_WINDOW = 12

#: Shortest window span the rate is trusted over.  The parallel parent
#: reports buffered out-of-order completions in a burst, so two events
#: microseconds apart would extrapolate an absurd rate; below this span
#: the tracker falls back to the since-start average.
MIN_SPAN_SECONDS = 1.0


def format_duration(seconds: float) -> str:
    """``3725.4 -> '1:02:05'``, ``95.0 -> '1:35'``, ``4.2 -> '0:04'``."""
    total = max(0, int(seconds))
    hours, rest = divmod(total, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class EtaTracker:
    """Sliding-window rate + ETA over per-cell progress events."""

    def __init__(
        self,
        samples_per_cell: int,
        window: int = DEFAULT_WINDOW,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.samples_per_cell = max(1, samples_per_cell)
        self._clock = clock
        self._start = clock()
        self._events: deque[tuple[float, int]] = deque(maxlen=max(2, window))
        self._total = 0
        self._done = 0

    def update(self, done: int, total: int) -> "EtaTracker":
        """Record that *done* of *total* cells are complete."""
        self._events.append((self._clock(), done))
        self._done = done
        self._total = total
        return self

    @property
    def cells_remaining(self) -> int:
        return max(0, self._total - self._done)

    @property
    def cells_per_sec(self) -> float | None:
        if len(self._events) < 2:
            return None
        (t0, d0), (t1, d1) = self._events[0], self._events[-1]
        if t1 - t0 < MIN_SPAN_SECONDS:
            # Burst of buffered completions — the window alone would
            # extrapolate wildly, so average since tracker creation.
            t0, d0 = self._start, 0
        if t1 - t0 < MIN_SPAN_SECONDS:
            # Still too little history (e.g. a fully store-cached replay
            # finishing in milliseconds): no rate beats a silly one.
            return None
        if d1 <= d0:
            return None
        return (d1 - d0) / (t1 - t0)

    @property
    def samples_per_sec(self) -> float | None:
        rate = self.cells_per_sec
        return rate * self.samples_per_cell if rate is not None else None

    @property
    def eta_seconds(self) -> float | None:
        rate = self.cells_per_sec
        if rate is None or not self.cells_remaining:
            return None
        return self.cells_remaining / rate

    def render(self) -> str:
        """One-line live status, empty until two completions have landed."""
        rate = self.samples_per_sec
        if rate is None:
            return ""
        eta = self.eta_seconds
        text = f"{rate:.1f} samp/s"
        if eta is not None:
            text += f" · ETA {format_duration(eta)}"
        return text
