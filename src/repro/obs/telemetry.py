"""The telemetry facade: one metrics registry + one tracer + the summary.

A :class:`Telemetry` object is everything one campaign run observes about
itself.  :meth:`Telemetry.summary` folds it into the ``telemetry.json``
shape (schema below, validated by :mod:`repro.obs.schema`): raw counters,
gauges and histograms, plus the derived figures operators actually look
at — samples/sec, worker utilization, LRU and memory-hierarchy hit rates
— plus, optionally, the raw trace events so ``repro-campaign trace`` can
export a Chrome trace later without having kept the process alive.

Spans recorded through :meth:`Telemetry.span` are double-booked by
design: a trace event for the timeline *and* an observation in the
``time.<name>`` histogram for the aggregate view, one clock read each.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, deterministic_counters
from repro.obs.tracing import Tracer, _Span, chrome_trace

#: Version stamp of the ``telemetry.json`` shape.
TELEMETRY_SCHEMA = 1


class _HistogramSpan(_Span):
    """A span that also feeds the ``time.<name>`` histogram on exit."""

    __slots__ = ("_metrics",)

    def __init__(self, tracer, name, args, metrics: MetricsRegistry) -> None:
        super().__init__(tracer, name, args)
        self._metrics = metrics

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        self._tracer.record(self.name, self._begin, end, self.args)
        self._metrics.histogram("time." + self.name).observe(end - self._begin)
        return False


class Telemetry:
    """Metrics + tracing for one campaign run (or one worker process)."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self._started = time.perf_counter()

    def span(self, name: str, **args) -> _HistogramSpan:
        """Trace span that also lands in the ``time.<name>`` histogram."""
        return _HistogramSpan(self.tracer, name, args, self.metrics)

    def wall_seconds(self) -> float:
        return time.perf_counter() - self._started

    # -- summary -------------------------------------------------------------

    def _derived(self, wall: float) -> dict:
        counters = {k: c.value for k, c in self.metrics.counters.items()}
        histograms = self.metrics.histograms

        def rate(hits_name: str, misses_name: str) -> float | None:
            hits = counters.get(hits_name, 0)
            misses = counters.get(misses_name, 0)
            total = hits + misses
            return round(hits / total, 6) if total else None

        samples = counters.get("sim.samples", 0)
        workers = counters.get("exec.workers_spawned", 0)
        busy = histograms.get("time.worker-batch")
        utilization = None
        if workers and busy is not None and wall > 0:
            utilization = round(min(1.0, busy.sum / (wall * workers)), 4)
        mem_rates = {}
        for component in ("l1d", "l1i", "l2", "itlb", "dtlb"):
            mem_rates[component] = rate(
                f"sim.mem.{component}.hits", f"sim.mem.{component}.misses"
            )
        # Pruning hit rate is pruned/samples (not pruned/(pruned+undecided)):
        # the fraction of the campaign's samples that skipped simulation.
        pruned = counters.get("sim.pruned.total", 0)
        undecided = counters.get("sim.undecided.total", 0)
        pruning_rate = None
        if (pruned + undecided) and samples:
            pruning_rate = round(pruned / samples, 6)
        # Distributed-fabric health (socket coordinator + leases): absent
        # entirely for runs that never touched that machinery.
        fabric_keys = {
            "joins": "exec.fabric.joins",
            "rejoins": "exec.fabric.rejoins",
            "stale_joins": "exec.fabric.stale_joins",
            "corrupt_frames": "exec.fabric.corrupt_frames",
            "stale_frames": "exec.fabric.stale_frames",
            "lease_expired": "exec.lease_expired",
        }
        fabric = None
        if any(counter in counters for counter in fabric_keys.values()):
            fabric = {
                name: counters.get(counter, 0)
                for name, counter in fabric_keys.items()
            }
        return {
            "samples_per_sec": (
                round(samples / wall, 3) if samples and wall > 0 else None
            ),
            "worker_utilization": utilization,
            "pruning_hit_rate": pruning_rate,
            "lru_hit_rates": {
                "golden": rate(
                    "exec.lru.golden.hits", "exec.lru.golden.misses"
                ),
                "checkpoint": rate(
                    "exec.lru.checkpoint.hits", "exec.lru.checkpoint.misses"
                ),
                "liveness": rate(
                    "exec.lru.liveness.hits", "exec.lru.liveness.misses"
                ),
            },
            "mem_hit_rates": mem_rates,
            "fabric": fabric,
        }

    def summary(self, include_trace: bool = True) -> dict:
        wall = self.wall_seconds()
        data = {
            "schema": TELEMETRY_SCHEMA,
            "kind": "repro-telemetry",
            "wall_seconds": round(wall, 6),
            **self.metrics.as_dict(),
            "derived": self._derived(wall),
            "deterministic_counters": deterministic_counters(
                self.metrics.as_dict()
            ),
            "dropped_trace_events": self.tracer.dropped,
        }
        if include_trace:
            data["trace_events"] = list(self.tracer.events)
        return data

    def write(self, path: str | Path, include_trace: bool = True) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.summary(include_trace), sort_keys=True, indent=1)
            + "\n"
        )
        return path


def load_summary(path: str | Path) -> dict:
    """Read a ``telemetry.json`` back (no validation — see obs.schema)."""
    return json.loads(Path(path).read_text())


def summary_chrome_trace(summary: dict) -> dict:
    """The Chrome trace embedded in a telemetry summary (may be empty)."""
    return chrome_trace(
        summary.get("trace_events", []),
        dropped=int(summary.get("dropped_trace_events", 0)),
    )
