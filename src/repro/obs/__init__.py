"""Campaign observability: metrics, span tracing, live telemetry.

Off by default, and off-by-default-cheap: the whole subsystem hangs off
one module-global :class:`~repro.obs.telemetry.Telemetry` that is
``None`` until :func:`enable` is called, so every instrumentation site
in the hot paths reduces to one attribute load and an ``is None`` branch
(the guard cost is what tests/test_obs_campaign.py's overhead guard
bounds).  Instrumented code never changes simulation state — RNG draws,
fault masks and classifications are identical with telemetry on or off,
which is why the telemetry-on smoke campaign's results and store stay
byte-identical to the telemetry-off reference.

The state is process-local on purpose.  Parallel campaign workers enable
a *fresh* Telemetry of their own (whatever they inherited over ``fork``
is discarded) and ship per-cell metric deltas plus drained trace events
to the parent over the existing result queue; the parent merges the
deltas in canonical cell order.  See DESIGN.md §8.

Typical library use::

    from repro import obs

    telemetry = obs.enable()
    result = run_campaign(config, jobs=4)
    telemetry.write("telemetry.json")
    obs.disable()
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_TIME_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    deterministic_counters,
    subtract_snapshot,
)
from repro.obs.progress import EtaTracker, format_duration
from repro.obs.schema import validate_chrome_trace, validate_telemetry
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    Telemetry,
    load_summary,
    summary_chrome_trace,
)
from repro.obs.tracing import NULL_SPAN, NullSpan, Tracer, chrome_trace

__all__ = [
    "DEFAULT_TIME_BOUNDS",
    "TELEMETRY_SCHEMA",
    "Counter",
    "EtaTracker",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "Telemetry",
    "Tracer",
    "active",
    "chrome_trace",
    "deterministic_counters",
    "disable",
    "enable",
    "format_duration",
    "load_summary",
    "span",
    "subtract_snapshot",
    "summary_chrome_trace",
    "validate_chrome_trace",
    "validate_telemetry",
]

_ACTIVE: Telemetry | None = None


def enable(telemetry: Telemetry | None = None) -> Telemetry:
    """Install (and return) the process-wide telemetry instance.

    Enabling twice replaces the old instance with a fresh one — exactly
    what a forked worker wants, and what keeps test runs independent.
    """
    global _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else Telemetry()
    return _ACTIVE


def disable() -> None:
    """Drop the process-wide telemetry; instrumentation reverts to no-ops."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Telemetry | None:
    """The enabled telemetry, or ``None`` — THE hot-path guard.

    Hot code hoists this once per operation::

        tel = obs.active()
        ...
        if tel is not None:
            tel.metrics.counter("sim.samples").inc()
    """
    return _ACTIVE


def span(name: str, **args):
    """A timed span on the active telemetry, or a shared no-op."""
    telemetry = _ACTIVE
    if telemetry is None:
        return NULL_SPAN
    return telemetry.span(name, **args)
