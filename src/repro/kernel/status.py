"""Run outcome types: what one simulation of one workload produced.

These are *simulator* outcomes; the mapping onto the paper's five
fault-effect classes (Masked / SDC / Crash / Timeout / Assert) happens in
:mod:`repro.core.classify`, because SDC-vs-Masked needs the golden run's
output for comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RunStatus(enum.Enum):
    """Terminal state of one simulated execution."""

    FINISHED = "finished"            # program called exit / halted cleanly
    CRASH_PROCESS = "crash_process"  # architectural exception reached commit
    CRASH_KERNEL = "crash_kernel"    # kernel panic (wild store into kernel frames)
    TIMEOUT_DEADLOCK = "deadlock"    # commit stalled for the watchdog window
    TIMEOUT_LIVELOCK = "livelock"    # still committing at the cycle budget
    SIM_ASSERT = "sim_assert"        # simulator invariant violated


class CrashReason(enum.Enum):
    """Why a process crash (or panic) happened."""

    ILLEGAL_INSTRUCTION = "illegal_instruction"
    PAGE_FAULT = "page_fault"
    PROT_FAULT = "prot_fault"
    MISALIGNED = "misaligned"
    DIV_ZERO = "div_zero"
    BAD_SYSCALL = "bad_syscall"
    KERNEL_PANIC = "kernel_panic"


@dataclass
class RunResult:
    """Everything observable about one finished simulation."""

    status: RunStatus
    cycles: int
    instructions: int
    output: bytes = b""
    exit_code: int = 0
    crash_reason: CrashReason | None = None
    crash_pc: int | None = None
    detail: str = ""
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def finished_ok(self) -> bool:
        return self.status is RunStatus.FINISHED

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0
