"""Minimal full-system software layer: loader, syscalls, crash semantics.

The paper runs its workloads on a full system stack (gem5 full-system mode
with an OS).  This package is the equivalent substrate: it builds a virtual
address space with page tables, loads the program image, services syscalls
(program output and exit), and defines the crash taxonomy — *process crash*
(architectural exception reaches commit) versus *kernel panic* (a corrupted
store lands in kernel-reserved physical frames).
"""

from repro.kernel.layout import MemoryLayout
from repro.kernel.loader import LoadedProcess, load_program
from repro.kernel.status import CrashReason, RunResult, RunStatus
from repro.kernel.syscalls import Kernel, Syscall

__all__ = [
    "CrashReason",
    "Kernel",
    "LoadedProcess",
    "MemoryLayout",
    "RunResult",
    "RunStatus",
    "Syscall",
    "load_program",
]
