"""Syscall layer and program output capture.

Workloads communicate results exclusively through syscalls; the kernel
collects the emitted bytes in an output buffer that the fault-effect
classifier later compares byte-for-byte against the golden run (the paper's
SDC definition: "the final output of the program that is written to an
output file is corrupted").

Output is rendered as text (hex / decimal / raw characters), so a single
corrupted value reliably changes the byte stream.
"""

from __future__ import annotations

import enum

from repro.isa.semantics import to_signed
from repro.kernel.status import CrashReason


class Syscall(enum.IntEnum):
    """Architected syscall numbers (the SYS immediate field)."""

    EXIT = 0
    PUTW = 1   # write r0 as 8 hex digits + newline
    PUTC = 2   # write low byte of r0 verbatim
    PUTD = 3   # write r0 as signed decimal + newline


class Kernel:
    """Holds per-process OS state: the output stream and exit status."""

    def __init__(self, output_limit: int = 1 << 20) -> None:
        self.output = bytearray()
        self.output_limit = output_limit
        self.exit_code: int | None = None
        self.syscall_count = 0

    def do_syscall(
        self, number: int, r0: int, r1: int, r2: int
    ) -> tuple[int, bool, CrashReason | None]:
        """Service a syscall.

        Returns ``(return_value, program_exited, crash_reason)``.  An
        unknown syscall number — typically the product of a corrupted
        instruction word — is a process crash, like an unimplemented
        syscall aborting a real process.
        """
        self.syscall_count += 1
        if number == Syscall.EXIT:
            self.exit_code = r0 & 0xFF
            return 0, True, None
        if number == Syscall.PUTW:
            self._emit(f"{r0:08x}\n".encode("ascii"))
            return 0, False, None
        if number == Syscall.PUTC:
            self._emit(bytes([r0 & 0xFF]))
            return 0, False, None
        if number == Syscall.PUTD:
            self._emit(f"{to_signed(r0)}\n".encode("ascii"))
            return 0, False, None
        return 0, False, CrashReason.BAD_SYSCALL

    def _emit(self, payload: bytes) -> None:
        # A fault can redirect control into an output loop; the cap keeps a
        # livelocked run from accumulating unbounded output before the cycle
        # watchdog fires.
        if len(self.output) < self.output_limit:
            self.output += payload
