"""Syscall layer and program output capture.

Workloads communicate results exclusively through syscalls; the kernel
collects the emitted bytes in an output buffer that the fault-effect
classifier later compares byte-for-byte against the golden run (the paper's
SDC definition: "the final output of the program that is written to an
output file is corrupted").

Output is rendered as text (hex / decimal / raw characters), so a single
corrupted value reliably changes the byte stream.

The SMP extension adds a minimal thread story: ``SPAWN`` starts a worker on
an idle core (returning its core id as the thread id), and ``COREID`` /
``NCORES`` let a worker find its slice of the work.  On the single-core
:class:`~repro.cpu.system.System` there is no SMP attached, so ``SPAWN``
deterministically fails with ``SPAWN_FAILED`` — programs must be written to
fall back to doing the work inline (which is exactly what makes a parallel
workload's output identical at every core count).
"""

from __future__ import annotations

import enum

from repro.isa.semantics import to_signed
from repro.kernel.layout import MemoryLayout
from repro.kernel.status import CrashReason


class Syscall(enum.IntEnum):
    """Architected syscall numbers (the SYS immediate field)."""

    EXIT = 0
    PUTW = 1   # write r0 as 8 hex digits + newline
    PUTC = 2   # write low byte of r0 verbatim
    PUTD = 3   # write r0 as signed decimal + newline
    SPAWN = 4  # start r0 (entry pc) with argument r1 on an idle core
    COREID = 5   # id of the core executing the syscall
    NCORES = 6   # number of cores in the machine

#: SPAWN's failure return value (no idle core, or no SMP at all).
SPAWN_FAILED = 0xFFFFFFFF


def worker_sp(layout: MemoryLayout, core_id: int, ncores: int) -> int:
    """Initial stack pointer for a spawned worker on *core_id*.

    The single mapped stack region is carved into *ncores* equal slices,
    core 0 keeping the top one, so no new pages need mapping and the layout
    (hence the golden memory image) is a pure function of the core count.
    """
    region = layout.stack_top - layout.stack_base
    slice_size = (region // ncores) & ~0x7  # keep 8-byte alignment
    return layout.stack_top - 16 - core_id * slice_size


class Kernel:
    """Holds per-process OS state: the output stream and exit status."""

    def __init__(self, output_limit: int = 1 << 20) -> None:
        self.output = bytearray()
        self.output_limit = output_limit
        self.exit_code: int | None = None
        self.syscall_count = 0
        #: Back-reference to the SMP machine (set by SMPSystem); ``None``
        #: on the single-core System, where SPAWN deterministically fails.
        self.smp = None

    def do_syscall(
        self, number: int, r0: int, r1: int, r2: int, core: int = 0
    ) -> tuple[int, bool, CrashReason | None]:
        """Service a syscall issued by *core*.

        Returns ``(return_value, program_exited, crash_reason)``.  An
        unknown syscall number — typically the product of a corrupted
        instruction word — is a process crash, like an unimplemented
        syscall aborting a real process.
        """
        self.syscall_count += 1
        if number == Syscall.EXIT:
            self.exit_code = r0 & 0xFF
            return 0, True, None
        if number == Syscall.PUTW:
            self._emit(f"{r0:08x}\n".encode("ascii"))
            return 0, False, None
        if number == Syscall.PUTC:
            self._emit(bytes([r0 & 0xFF]))
            return 0, False, None
        if number == Syscall.PUTD:
            self._emit(f"{to_signed(r0)}\n".encode("ascii"))
            return 0, False, None
        if number == Syscall.SPAWN:
            if self.smp is None:
                return SPAWN_FAILED, False, None
            return self.smp.start_core(r0, r1), False, None
        if number == Syscall.COREID:
            return core, False, None
        if number == Syscall.NCORES:
            if self.smp is None:
                return 1, False, None
            return self.smp.ncores, False, None
        return 0, False, CrashReason.BAD_SYSCALL

    def _emit(self, payload: bytes) -> None:
        # A fault can redirect control into an output loop; the cap keeps a
        # livelocked run from accumulating unbounded output before the cycle
        # watchdog fires.
        if len(self.output) < self.output_limit:
            self.output += payload
