"""Platform memory map.

Virtual layout (user process, 64-byte pages)::

    0x0001_0000  .text   (read + execute)
    0x0004_0000  .data   (read + write)
    stack        (read + write, grows down from 0x0008_0000)

Physical layout::

    0x0000_0000 .. KERNEL_RESERVED   kernel frames (panic on user store)
    KERNEL_RESERVED .. PHYS_SIZE     user frames, allocated by the loader

The physical memory is deliberately much smaller than the 13-bit frame
space a TLB entry can name (32 MiB), so corrupted translations frequently
point outside the map and raise the paper's *Assert* condition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.paging import PAGE_SIZE
from repro.mem.physmem import DEFAULT_PHYS_SIZE


@dataclass(frozen=True)
class MemoryLayout:
    """Address-space constants shared by the loader, kernel and compiler."""

    text_base: int = 0x0001_0000
    data_base: int = 0x0004_0000
    stack_top: int = 0x0008_0000
    stack_pages: int = 48
    phys_size: int = DEFAULT_PHYS_SIZE
    kernel_reserved: int = 32 * 1024

    @property
    def stack_base(self) -> int:
        return self.stack_top - self.stack_pages * PAGE_SIZE

    @property
    def initial_sp(self) -> int:
        # Leave a small red zone below the top; keep 8-byte alignment.
        return self.stack_top - 16

    @property
    def first_user_frame(self) -> int:
        return self.kernel_reserved // PAGE_SIZE

    @property
    def num_frames(self) -> int:
        return self.phys_size // PAGE_SIZE

    def validate(self) -> None:
        for name in ("text_base", "data_base", "stack_top", "kernel_reserved"):
            value = getattr(self, name)
            if value % PAGE_SIZE:
                raise ValueError(f"{name} must be page aligned: 0x{value:x}")
        if not self.text_base < self.data_base < self.stack_base:
            raise ValueError("sections overlap")


DEFAULT_LAYOUT = MemoryLayout()
