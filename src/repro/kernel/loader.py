"""Program loader: builds an address space and places the program image.

The loader plays the role of the OS exec path: it allocates physical frames,
fills in the page table (text pages executable and read-only, data and stack
pages writable), and copies the section bytes into physical memory.  Caches
start cold, exactly like the paper's post-boot checkpoint runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.isa.program import Program
from repro.kernel.layout import MemoryLayout
from repro.mem.paging import PAGE_SHIFT, PAGE_SIZE, PageTable
from repro.mem.physmem import PhysicalMemory


@dataclass(frozen=True)
class LoadedProcess:
    """Result of loading a program: where execution starts."""

    entry_pc: int
    initial_sp: int
    text_pages: int
    data_pages: int
    stack_pages: int


class _FrameAllocator:
    """Hands out user physical frames sequentially."""

    def __init__(self, layout: MemoryLayout) -> None:
        self._next = layout.first_user_frame
        self._limit = layout.num_frames

    def alloc(self) -> int:
        if self._next >= self._limit:
            raise ConfigError("out of physical frames while loading program")
        frame = self._next
        self._next += 1
        return frame


def _map_and_copy(
    mem: PhysicalMemory,
    table: PageTable,
    alloc: _FrameAllocator,
    vbase: int,
    payload: bytes,
    writable: bool,
    executable: bool,
) -> int:
    """Map enough pages at *vbase* for *payload* and copy it in.

    Returns the number of pages mapped.
    """
    num_pages = max(1, (len(payload) + PAGE_SIZE - 1) // PAGE_SIZE)
    for page in range(num_pages):
        frame = alloc.alloc()
        table.map_page(
            (vbase >> PAGE_SHIFT) + page, frame,
            writable=writable, executable=executable,
        )
        chunk = payload[page * PAGE_SIZE:(page + 1) * PAGE_SIZE]
        if chunk:
            mem.write(frame * PAGE_SIZE, bytes(chunk))
    return num_pages


def load_program(
    program: Program,
    mem: PhysicalMemory,
    table: PageTable,
    layout: MemoryLayout,
) -> LoadedProcess:
    """Load *program* into *mem*/*table* per *layout*; returns entry state."""
    layout.validate()
    if program.text_base != layout.text_base:
        raise ConfigError(
            f"program text base 0x{program.text_base:x} does not match "
            f"layout 0x{layout.text_base:x}"
        )
    if program.data_base != layout.data_base:
        raise ConfigError(
            f"program data base 0x{program.data_base:x} does not match "
            f"layout 0x{layout.data_base:x}"
        )
    if not program.text:
        raise ConfigError("program has an empty .text section")

    alloc = _FrameAllocator(layout)
    text_pages = _map_and_copy(
        mem, table, alloc, layout.text_base, program.text,
        writable=False, executable=True,
    )
    data_pages = _map_and_copy(
        mem, table, alloc, layout.data_base, program.data,
        writable=True, executable=False,
    )
    stack_pages = 0
    for page in range(layout.stack_pages):
        frame = alloc.alloc()
        table.map_page(
            (layout.stack_base >> PAGE_SHIFT) + page, frame,
            writable=True, executable=False,
        )
        stack_pages += 1

    return LoadedProcess(
        entry_pc=program.entry,
        initial_sp=layout.initial_sp,
        text_pages=text_pages,
        data_pages=data_pages,
        stack_pages=stack_pages,
    )
