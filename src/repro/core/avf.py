"""AVF arithmetic: per-cell AVF, Eq. 2 weighting, Eq. 3 node aggregation.

Terminology follows Mukherjee et al.: the AVF of a structure is the
probability that a fault in it affects correct execution — estimated here
as ``1 - masked fraction`` of a statistical injection campaign, with the
non-masked probability decomposed into the SDC / Crash / Timeout / Assert
classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classify import FaultClass
from repro.core.technology import mbu_rates

#: Non-masked classes in reporting order.
VULNERABLE_CLASSES = (
    FaultClass.SDC, FaultClass.CRASH, FaultClass.TIMEOUT, FaultClass.ASSERT,
)


@dataclass
class ClassCounts:
    """Outcome histogram of one campaign cell."""

    masked: int = 0
    sdc: int = 0
    crash: int = 0
    timeout: int = 0
    assertion: int = 0

    @property
    def total(self) -> int:
        return self.masked + self.sdc + self.crash + self.timeout + self.assertion

    def add(self, fault_class: FaultClass, count: int = 1) -> None:
        name = _FIELD_OF[fault_class]
        setattr(self, name, getattr(self, name) + count)

    def count(self, fault_class: FaultClass) -> int:
        return getattr(self, _FIELD_OF[fault_class])

    def fraction(self, fault_class: FaultClass) -> float:
        total = self.total
        return self.count(fault_class) / total if total else 0.0

    @property
    def avf(self) -> float:
        """1 − masked fraction: the architectural vulnerability factor."""
        total = self.total
        return 1.0 - self.masked / total if total else 0.0

    def merged(self, other: "ClassCounts") -> "ClassCounts":
        return ClassCounts(
            masked=self.masked + other.masked,
            sdc=self.sdc + other.sdc,
            crash=self.crash + other.crash,
            timeout=self.timeout + other.timeout,
            assertion=self.assertion + other.assertion,
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "masked": self.masked,
            "sdc": self.sdc,
            "crash": self.crash,
            "timeout": self.timeout,
            "assertion": self.assertion,
        }

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "ClassCounts":
        return cls(**{k: int(v) for k, v in data.items()})


_FIELD_OF = {
    FaultClass.MASKED: "masked",
    FaultClass.SDC: "sdc",
    FaultClass.CRASH: "crash",
    FaultClass.TIMEOUT: "timeout",
    FaultClass.ASSERT: "assertion",
}


def weighted_avf(
    avf_by_workload: dict[str, float],
    cycles_by_workload: dict[str, int],
) -> float:
    """Eq. 2: execution-time-weighted AVF across workloads."""
    missing = set(avf_by_workload) - set(cycles_by_workload)
    if missing:
        raise ValueError(f"no execution time for workloads: {sorted(missing)}")
    total_time = sum(cycles_by_workload[k] for k in avf_by_workload)
    if total_time == 0:
        return 0.0
    return (
        sum(
            avf * cycles_by_workload[name]
            for name, avf in avf_by_workload.items()
        )
        / total_time
    )


def weighted_fraction(
    counts_by_workload: dict[str, ClassCounts],
    cycles_by_workload: dict[str, int],
    fault_class: FaultClass,
) -> float:
    """Execution-time-weighted fraction of one fault-effect class."""
    fractions = {
        name: counts.fraction(fault_class)
        for name, counts in counts_by_workload.items()
    }
    return weighted_avf(fractions, cycles_by_workload)


def node_avf(avf_by_cardinality: dict[int, float], node: str) -> float:
    """Eq. 3: aggregate AVF for a technology node.

    Combines the per-cardinality AVFs with the node's MBU rates (Table VI).
    """
    rates = mbu_rates(node)
    return sum(
        avf_by_cardinality.get(card, 0.0) * rates[card - 1]
        for card in (1, 2, 3)
    )


def assessment_gap(avf_by_cardinality: dict[int, float], node: str) -> float:
    """Relative AVF a single-bit-only analysis misses at *node* (Fig. 7).

    ``(Node_AVF − AVF_1) / AVF_1`` — e.g. the paper's 33% for L1I at 22nm.
    """
    single = avf_by_cardinality.get(1, 0.0)
    if single == 0.0:
        return 0.0
    return (node_avf(avf_by_cardinality, node) - single) / single


def max_increase(
    per_workload_single: dict[str, float],
    per_workload_multi: dict[str, float],
) -> float:
    """Table IV: the largest per-workload AVF ratio multi/single.

    The paper's headline "3.2x (220%)" numbers are the worst-case workload
    ratios, not the weighted-average ratios (those appear in Table V).
    Workloads with a zero single-bit AVF are skipped.
    """
    best = 0.0
    for name, single in per_workload_single.items():
        if single <= 0.0:
            continue
        multi = per_workload_multi.get(name, 0.0)
        best = max(best, multi / single)
    return best


@dataclass
class ComponentAvf:
    """Weighted AVF summary for one component (one column of Table V)."""

    component: str
    weighted: dict[int, float] = field(default_factory=dict)  # cardinality->AVF

    def percentage_increase(self, cardinality: int) -> float:
        """Table V "Percentage Increase" column (vs the previous class)."""
        if cardinality <= 1:
            return 0.0
        prev = self.weighted.get(cardinality - 1, 0.0)
        if prev == 0.0:
            return 0.0
        return (self.weighted[cardinality] - prev) / prev * 100.0
