"""Statistical fault-injection campaigns.

A campaign sweeps the (workload × component × cardinality) grid; each cell
runs ``samples`` independent injections:

1. simulate the workload fault-free once (the *golden run*, cached);
2. per injection: re-simulate to a uniformly random cycle of the golden
   execution window, flip a freshly drawn fault mask in the live target
   structure, and run to termination with a 4× golden-cycles budget;
3. classify against the golden output (Masked / SDC / Crash / Timeout /
   Assert) and accumulate the cell's :class:`~repro.core.avf.ClassCounts`.

Everything is deterministic given the campaign seed.  Results serialise to
JSON; :class:`CampaignStore` provides an incremental disk cache keyed by
the exact cell parameters so interrupted campaigns resume and all benchmark
harnesses share one set of simulations.
"""

from __future__ import annotations

import copy
import hashlib
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.core.avf import ClassCounts, weighted_avf
from repro.core.classify import TIMEOUT_FACTOR, FaultClass, classify
from repro.core.faults import FaultMask
from repro.core.generator import CLUSTERED, ClusterShape, MultiBitFaultGenerator
from repro.core.injector import inject
from repro.errors import ConfigError
from repro.kernel.status import RunResult, RunStatus
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.cpu.system import COMPONENT_NAMES, System
from repro.workloads import get_workload, workload_names
from repro.workloads.base import Workload

DEFAULT_CARDINALITIES = (1, 2, 3)

_GOLDEN_CACHE: dict[tuple[str, str], RunResult] = {}


def golden_run(workload: Workload, core_cfg: CoreConfig = DEFAULT_CONFIG) -> RunResult:
    """Fault-free execution of *workload* (cached per workload + platform).

    The result is validated against the workload's independent reference
    output: a mismatch means the toolchain itself is broken, and no
    injection campaign on top of it would mean anything.
    """
    cache_key = (workload.name, repr(core_cfg))
    cached = _GOLDEN_CACHE.get(cache_key)
    if cached is not None:
        return cached
    system = System(core_cfg)
    system.load(workload.program())
    result = system.run(max_cycles=50_000_000)
    if result.status is not RunStatus.FINISHED:
        raise ConfigError(
            f"golden run of {workload.name} did not finish: {result.status}"
        )
    if result.output != workload.expected_output:
        raise ConfigError(
            f"golden run of {workload.name} does not match its reference "
            f"output — toolchain bug"
        )
    _GOLDEN_CACHE[cache_key] = result
    return result


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one campaign (defaults follow the paper's setup)."""

    workloads: tuple[str, ...] = ()
    components: tuple[str, ...] = COMPONENT_NAMES
    cardinalities: tuple[int, ...] = DEFAULT_CARDINALITIES
    samples: int = 100
    seed: int = 0
    cluster: ClusterShape = field(default_factory=ClusterShape)
    placement: str = CLUSTERED

    def resolved_workloads(self) -> tuple[str, ...]:
        return self.workloads or tuple(workload_names())

    def cells(self) -> list[tuple[str, str, int]]:
        return [
            (w, c, k)
            for w in self.resolved_workloads()
            for c in self.components
            for k in self.cardinalities
        ]

    def cell_key(
        self,
        workload: str,
        component: str,
        cardinality: int,
        core_cfg: CoreConfig = DEFAULT_CONFIG,
    ) -> str:
        """Stable identity of one cell's simulation set (for caching).

        Includes a fingerprint of the simulated platform (the core config
        and the page size) so cached results are invalidated whenever the
        machine being injected changes.
        """
        from repro.mem.paging import PAGE_SHIFT

        blob = json.dumps(
            {
                "workload": workload,
                "component": component,
                "cardinality": cardinality,
                "samples": self.samples,
                "seed": self.seed,
                "cluster": [self.cluster.rows, self.cluster.cols],
                "placement": self.placement,
                "platform": repr(core_cfg) + f"/page{PAGE_SHIFT}",
                "version": 1,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:24]


@dataclass
class CellResult:
    """Outcome histogram of one (workload, component, cardinality) cell."""

    workload: str
    component: str
    cardinality: int
    counts: ClassCounts
    golden_cycles: int

    @property
    def avf(self) -> float:
        return self.counts.avf

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "component": self.component,
            "cardinality": self.cardinality,
            "counts": self.counts.as_dict(),
            "golden_cycles": self.golden_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        return cls(
            workload=data["workload"],
            component=data["component"],
            cardinality=int(data["cardinality"]),
            counts=ClassCounts.from_dict(data["counts"]),
            golden_cycles=int(data["golden_cycles"]),
        )


class CampaignResult:
    """All cells of a campaign plus the analysis entry points."""

    def __init__(self, cells: Iterable[CellResult]) -> None:
        self._cells: dict[tuple[str, str, int], CellResult] = {}
        for cell in cells:
            self._cells[(cell.workload, cell.component, cell.cardinality)] = cell

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cells(self) -> list[CellResult]:
        return list(self._cells.values())

    def cell(self, workload: str, component: str, cardinality: int) -> CellResult:
        return self._cells[(workload, component, cardinality)]

    def workloads(self) -> list[str]:
        return sorted({c.workload for c in self.cells})

    def components(self) -> list[str]:
        return sorted({c.component for c in self.cells})

    def cardinalities(self) -> list[int]:
        return sorted({c.cardinality for c in self.cells})

    def golden_cycles(self) -> dict[str, int]:
        return {c.workload: c.golden_cycles for c in self.cells}

    # -- analysis ------------------------------------------------------------

    def counts_by_workload(
        self, component: str, cardinality: int
    ) -> dict[str, ClassCounts]:
        return {
            c.workload: c.counts
            for c in self.cells
            if c.component == component and c.cardinality == cardinality
        }

    def avf_by_workload(
        self, component: str, cardinality: int
    ) -> dict[str, float]:
        return {
            name: counts.avf
            for name, counts in self.counts_by_workload(
                component, cardinality
            ).items()
        }

    def weighted_avf(self, component: str, cardinality: int) -> float:
        """Eq. 2 for one component and fault cardinality (Table V)."""
        return weighted_avf(
            self.avf_by_workload(component, cardinality), self.golden_cycles()
        )

    def weighted_avf_by_cardinality(self, component: str) -> dict[int, float]:
        return {
            card: self.weighted_avf(component, card)
            for card in self.cardinalities()
        }

    # -- serialisation ------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"cells": [c.as_dict() for c in self.cells]}, indent=1
        )

    @classmethod
    def from_json(cls, blob: str) -> "CampaignResult":
        data = json.loads(blob)
        return cls(CellResult.from_dict(c) for c in data["cells"])


class CheckpointedWorkload:
    """Snapshots of one workload's fault-free execution.

    Because the simulator is deterministic and a :class:`System` is a pure
    object graph, a ``copy.deepcopy`` taken at cycle *c* behaves exactly
    like a fresh system simulated to cycle *c*.  Campaigns exploit this to
    skip re-simulating the golden prefix of every injection: cloning a
    snapshot costs milliseconds, simulating tens of thousands of cycles
    costs seconds.  Results are bit-identical to the unoptimised path.
    """

    def __init__(
        self,
        workload: Workload,
        core_cfg: CoreConfig = DEFAULT_CONFIG,
        snapshots: int = 24,
    ) -> None:
        self.workload = workload
        self.core_cfg = core_cfg
        golden = golden_run(workload, core_cfg)
        self.golden = golden
        system = System(core_cfg)
        system.load(workload.program())
        step = max(1, golden.cycles // snapshots)
        self._checkpoints: list[tuple[int, System]] = []
        for target in range(0, golden.cycles, step):
            if not system.run_until(target, golden.cycles + 1):
                break  # pragma: no cover - golden run is deterministic
            self._checkpoints.append((system.cycle, copy.deepcopy(system)))

    def system_at(self, cycle: int) -> System:
        """A fresh system advanced to the latest checkpoint <= *cycle*."""
        best = None
        for snap_cycle, snapshot in self._checkpoints:
            if snap_cycle <= cycle:
                best = snapshot
            else:
                break
        if best is None:
            system = System(self.core_cfg)
            system.load(self.workload.program())
            return system
        return copy.deepcopy(best)


_CHECKPOINT_CACHE: dict[str, CheckpointedWorkload] = {}


def _checkpoints_for(
    workload: Workload, core_cfg: CoreConfig
) -> CheckpointedWorkload:
    # Keep only the most recent workload's snapshots: campaigns iterate
    # workload-major, and snapshots are tens of MB across all 15.
    cached = _CHECKPOINT_CACHE.get(workload.name)
    if cached is None or cached.core_cfg is not core_cfg:
        _CHECKPOINT_CACHE.clear()
        cached = CheckpointedWorkload(workload, core_cfg)
        _CHECKPOINT_CACHE[workload.name] = cached
    return cached


def run_one_injection(
    workload: Workload,
    component: str,
    generator: MultiBitFaultGenerator,
    cardinality: int,
    inject_cycle: int,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
    checkpoints: CheckpointedWorkload | None = None,
) -> tuple[FaultClass, RunResult, FaultMask]:
    """One complete injection experiment; see the module docstring.

    Pass *checkpoints* (see :class:`CheckpointedWorkload`) to skip
    re-simulating the fault-free prefix; the outcome is identical.
    """
    golden = golden_run(workload, core_cfg)
    max_cycles = TIMEOUT_FACTOR * golden.cycles
    if checkpoints is not None:
        system = checkpoints.system_at(inject_cycle)
    else:
        system = System(core_cfg)
        system.load(workload.program())
    mask = generator.generate(
        system.injectable_targets()[component], cardinality
    )
    reached = system.run_until(inject_cycle, max_cycles)
    if not reached:  # pragma: no cover - golden prefix is deterministic
        raise ConfigError(
            f"injection cycle {inject_cycle} not reachable in "
            f"{workload.name} (golden={golden.cycles})"
        )
    inject(system, mask)
    result = system.run(max_cycles)
    return classify(result, golden), result, mask


def run_cell(
    workload_name: str,
    component: str,
    cardinality: int,
    config: CampaignConfig,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
) -> CellResult:
    """Run all of one cell's injections."""
    workload = get_workload(workload_name)
    golden = golden_run(workload, core_cfg)
    cell_seed = f"{config.seed}:{workload_name}:{component}:{cardinality}"
    generator = MultiBitFaultGenerator(
        cluster=config.cluster, mode=config.placement, seed=cell_seed
    )
    cycle_rng = random.Random(f"repro-cycles:{cell_seed}")
    checkpoints = _checkpoints_for(workload, core_cfg)
    counts = ClassCounts()
    for _ in range(config.samples):
        inject_cycle = cycle_rng.randrange(golden.cycles)
        fault_class, _, _ = run_one_injection(
            workload, component, generator, cardinality, inject_cycle,
            core_cfg, checkpoints=checkpoints,
        )
        counts.add(fault_class)
    return CellResult(
        workload=workload_name,
        component=component,
        cardinality=cardinality,
        counts=counts,
        golden_cycles=golden.cycles,
    )


ProgressFn = Callable[[int, int, CellResult], None]


def run_campaign(
    config: CampaignConfig,
    progress: ProgressFn | None = None,
    store: "CampaignStore | None" = None,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
) -> CampaignResult:
    """Run (or resume, via *store*) a full campaign."""
    cells = config.cells()
    results: list[CellResult] = []
    for index, (workload, component, cardinality) in enumerate(cells):
        key = config.cell_key(workload, component, cardinality, core_cfg)
        cached = store.get(key) if store is not None else None
        if cached is None:
            cached = run_cell(workload, component, cardinality, config, core_cfg)
            if store is not None:
                store.put(key, cached)
        results.append(cached)
        if progress is not None:
            progress(index + 1, len(cells), cached)
    return CampaignResult(results)


class CampaignStore:
    """Incremental per-cell JSON cache on disk."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._data: dict[str, dict] = {}
        if self.path.exists():
            self._data = json.loads(self.path.read_text())

    def get(self, key: str) -> CellResult | None:
        raw = self._data.get(key)
        return CellResult.from_dict(raw) if raw is not None else None

    def put(self, key: str, cell: CellResult) -> None:
        self._data[key] = cell.as_dict()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self._data))
        tmp.replace(self.path)

    def __len__(self) -> int:
        return len(self._data)
