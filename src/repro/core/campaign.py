"""Statistical fault-injection campaigns.

A campaign sweeps the (workload × component × cardinality) grid; each cell
runs ``samples`` independent injections:

1. simulate the workload fault-free once (the *golden run*, cached);
2. per injection: re-simulate to a uniformly random cycle of the golden
   execution window, flip a freshly drawn fault mask in the live target
   structure, and run to termination with a 4× golden-cycles budget;
3. classify against the golden output (Masked / SDC / Crash / Timeout /
   Assert) and accumulate the cell's :class:`~repro.core.avf.ClassCounts`.

Everything is deterministic given the campaign seed.  Results serialise to
JSON; :class:`CampaignStore` provides an incremental disk cache keyed by
the exact cell parameters so interrupted campaigns resume and all benchmark
harnesses share one set of simulations.
"""

from __future__ import annotations

import copy
import hashlib
import json
import random
import time
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.core.avf import ClassCounts, weighted_avf
from repro.core.classify import TIMEOUT_FACTOR, FaultClass, classify
from repro.core.faults import FaultMask
from repro.core.generator import CLUSTERED, ClusterShape, MultiBitFaultGenerator
from repro.core.injector import inject
from repro.errors import CampaignInterrupted, ConfigError
from repro import obs
from repro.kernel.status import RunResult, RunStatus
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.cpu.system import COMPONENT_NAMES, System
from repro.workloads import get_workload, workload_names
from repro.workloads.base import Workload

DEFAULT_CARDINALITIES = (1, 2, 3)

#: Cycle budget for fault-free golden runs.  Every workload in the suite
#: finishes within a few hundred thousand cycles; this bound only exists so
#: a broken toolchain cannot hang the campaign before it starts.
GOLDEN_MAX_CYCLES = 50_000_000


class _BoundedCache:
    """A tiny LRU mapping: both campaign caches are instances of this.

    ``CoreConfig`` is a frozen dataclass (as is its ``MemoryLayout``
    field), so it hashes by value — two equal configs share one cache
    entry, where the old ``repr``-keyed golden cache and the
    equality-scanning checkpoint cache each had their own notion of
    platform identity.  The bound keeps long multi-config sessions (e.g.
    the protection-scheme ablations) from accumulating entries forever.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


#: Golden results are small (cycle counts + output bytes); checkpoint sets
#: hold tens of MB of deepcopied systems per workload, so that cache stays
#: near the working set of one campaign pass (current + previous workload).
GOLDEN_CACHE_SIZE = 64
CHECKPOINT_CACHE_SIZE = 2

_GOLDEN_CACHE: _BoundedCache = _BoundedCache(GOLDEN_CACHE_SIZE)


def build_system(
    workload: Workload, core_cfg: CoreConfig, cores: int = 1
):
    """A fresh machine with *workload* loaded: ``System`` or ``SMPSystem``.

    Parallel workloads carry one program image for every core count (the
    spawn fallback makes placement architecture-invisible), so the same
    call works for serial workloads at ``cores=1`` and parallel ones at
    any count.  Both system classes expose the identical run / run_until /
    injectable_targets / publish_metrics surface the campaign needs.
    """
    if cores == 1:
        system = System(core_cfg)
        system.load(workload.program())
        return system
    from repro.cpu.smp import SMPSystem

    system = SMPSystem(core_cfg, cores)
    system.load(workload.program_for(cores))
    return system


def golden_run(
    workload: Workload,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
    max_cycles: int = GOLDEN_MAX_CYCLES,
    cores: int = 1,
) -> RunResult:
    """Fault-free execution of *workload* (cached per workload + platform).

    The result is validated against the workload's independent reference
    output: a mismatch means the toolchain itself is broken, and no
    injection campaign on top of it would mean anything.  *cores* selects
    the SMP machine; parallel workloads produce the same architectural
    output at every core count, so the reference check is unchanged.  The
    single-core cache key is exactly the historical one, keeping every
    existing caller's hits (and bytes) identical.
    """
    tel = obs.active()
    if cores == 1:
        cache_key = (workload.name, core_cfg)
    else:
        cache_key = (workload.name, core_cfg, cores)
    cached = _GOLDEN_CACHE.get(cache_key)
    if cached is not None:
        if tel is not None:
            tel.metrics.counter("exec.lru.golden.hits").inc()
        return cached
    if tel is not None:
        tel.metrics.counter("exec.lru.golden.misses").inc()
    with obs.span("golden-run", workload=workload.name):
        system = build_system(workload, core_cfg, cores)
        result = system.run(max_cycles=max_cycles)
    if result.status is not RunStatus.FINISHED:
        raise ConfigError(
            f"golden run of {workload.name} did not finish within its "
            f"{max_cycles:,}-cycle budget: {result.status}"
        )
    if result.output != workload.expected_output:
        raise ConfigError(
            f"golden run of {workload.name} does not match its reference "
            f"output — toolchain bug"
        )
    _GOLDEN_CACHE.put(cache_key, result)
    return result


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one campaign (defaults follow the paper's setup)."""

    workloads: tuple[str, ...] = ()
    components: tuple[str, ...] = COMPONENT_NAMES
    cardinalities: tuple[int, ...] = DEFAULT_CARDINALITIES
    samples: int = 100
    seed: int = 0
    cluster: ClusterShape = field(default_factory=ClusterShape)
    placement: str = CLUSTERED
    #: Core count of the simulated machine.  1 (the default) is the
    #: paper's single-core setup and leaves every cell key, seed and
    #: result byte-identical to a config without the field.
    cores: int = 1

    def resolved_workloads(self) -> tuple[str, ...]:
        return self.workloads or tuple(workload_names())

    def cells(self) -> list[tuple[str, str, int]]:
        return [
            (w, c, k)
            for w in self.resolved_workloads()
            for c in self.components
            for k in self.cardinalities
        ]

    def cell_key(
        self,
        workload: str,
        component: str,
        cardinality: int,
        core_cfg: CoreConfig = DEFAULT_CONFIG,
    ) -> str:
        """Stable identity of one cell's simulation set (for caching).

        Includes a fingerprint of the simulated platform (the core config
        and the page size) so cached results are invalidated whenever the
        machine being injected changes.  Purely observational knobs
        (``check_invariants``) are canonicalised away first: a --verify
        campaign simulates the identical machine, so its results must
        share cache entries with — and stay byte-identical to — a plain
        run.
        """
        import dataclasses

        from repro.mem.paging import PAGE_SHIFT

        platform_cfg = dataclasses.replace(core_cfg, check_invariants=False)
        payload = {
            "workload": workload,
            "component": component,
            "cardinality": cardinality,
            "samples": self.samples,
            "seed": self.seed,
            "cluster": [self.cluster.rows, self.cluster.cols],
            "placement": self.placement,
            "platform": repr(platform_cfg) + f"/page{PAGE_SHIFT}",
            "version": 2,
        }
        if self.cores != 1:
            # The key blob gains a "cores" entry only off the single-core
            # default, so every pre-SMP store keeps its keys and a
            # --cores 1 campaign stays byte-identical to one predating
            # the flag.
            payload["cores"] = self.cores
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:24]


@dataclass
class CellResult:
    """Outcome histogram of one (workload, component, cardinality) cell."""

    workload: str
    component: str
    cardinality: int
    counts: ClassCounts
    golden_cycles: int

    @property
    def avf(self) -> float:
        return self.counts.avf

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "component": self.component,
            "cardinality": self.cardinality,
            "counts": self.counts.as_dict(),
            "golden_cycles": self.golden_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        return cls(
            workload=data["workload"],
            component=data["component"],
            cardinality=int(data["cardinality"]),
            counts=ClassCounts.from_dict(data["counts"]),
            golden_cycles=int(data["golden_cycles"]),
        )


#: Version stamp written into result blobs and store snapshots.  Bump when
#: the serialised shape changes; loaders accept every older version.
RESULT_SCHEMA = 2


class CampaignResult:
    """All cells of a campaign plus the analysis entry points.

    ``incidents`` counts the infra failures the supervisor contained while
    producing these cells (0 for unsupervised or incident-free runs); it
    travels with the serialised result so downstream consumers can judge
    how many samples each cell is missing.
    """

    def __init__(
        self,
        cells: Iterable[CellResult],
        incidents: int = 0,
        schema: int = RESULT_SCHEMA,
    ) -> None:
        self._cells: dict[tuple[str, str, int], CellResult] = {}
        self.incidents = incidents
        self.schema = schema
        for cell in cells:
            self._cells[(cell.workload, cell.component, cell.cardinality)] = cell

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cells(self) -> list[CellResult]:
        return list(self._cells.values())

    def cell(self, workload: str, component: str, cardinality: int) -> CellResult:
        return self._cells[(workload, component, cardinality)]

    def workloads(self) -> list[str]:
        return sorted({c.workload for c in self.cells})

    def components(self) -> list[str]:
        return sorted({c.component for c in self.cells})

    def cardinalities(self) -> list[int]:
        return sorted({c.cardinality for c in self.cells})

    def golden_cycles(self) -> dict[str, int]:
        return {c.workload: c.golden_cycles for c in self.cells}

    # -- analysis ------------------------------------------------------------

    def counts_by_workload(
        self, component: str, cardinality: int
    ) -> dict[str, ClassCounts]:
        return {
            c.workload: c.counts
            for c in self.cells
            if c.component == component and c.cardinality == cardinality
        }

    def avf_by_workload(
        self, component: str, cardinality: int
    ) -> dict[str, float]:
        return {
            name: counts.avf
            for name, counts in self.counts_by_workload(
                component, cardinality
            ).items()
        }

    def weighted_avf(self, component: str, cardinality: int) -> float:
        """Eq. 2 for one component and fault cardinality (Table V)."""
        return weighted_avf(
            self.avf_by_workload(component, cardinality), self.golden_cycles()
        )

    def weighted_avf_by_cardinality(self, component: str) -> dict[int, float]:
        return {
            card: self.weighted_avf(component, card)
            for card in self.cardinalities()
        }

    # -- serialisation ------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": RESULT_SCHEMA,
                "incidents": self.incidents,
                "cells": [c.as_dict() for c in self.cells],
            },
            indent=1,
        )

    @classmethod
    def from_json(cls, blob: str) -> "CampaignResult":
        # Schema 1 blobs carry only "cells"; default the newer fields.
        data = json.loads(blob)
        return cls(
            (CellResult.from_dict(c) for c in data["cells"]),
            incidents=int(data.get("incidents", 0)),
            schema=int(data.get("schema", 1)),
        )


class CheckpointedWorkload:
    """Snapshots of one workload's fault-free execution.

    Because the simulator is deterministic and a :class:`System` is a pure
    object graph, a ``copy.deepcopy`` taken at cycle *c* behaves exactly
    like a fresh system simulated to cycle *c*.  Campaigns exploit this to
    skip re-simulating the golden prefix of every injection: cloning a
    snapshot costs milliseconds, simulating tens of thousands of cycles
    costs seconds.  Results are bit-identical to the unoptimised path.
    """

    def __init__(
        self,
        workload: Workload,
        core_cfg: CoreConfig = DEFAULT_CONFIG,
        snapshots: int = 24,
    ) -> None:
        self.workload = workload
        self.core_cfg = core_cfg
        golden = golden_run(workload, core_cfg)
        self.golden = golden
        system = System(core_cfg)
        system.load(workload.program())
        step = max(1, golden.cycles // snapshots)
        self._checkpoints: list[tuple[int, System]] = []
        for target in range(0, golden.cycles, step):
            if not system.run_until(target, golden.cycles + 1):
                break  # pragma: no cover - golden run is deterministic
            self._checkpoints.append((system.cycle, copy.deepcopy(system)))
        self._cycles = [snap_cycle for snap_cycle, _ in self._checkpoints]

    def system_at(self, cycle: int) -> System:
        """A fresh system advanced to the latest checkpoint <= *cycle*."""
        index = bisect_right(self._cycles, cycle) - 1
        if index < 0:
            system = System(self.core_cfg)
            system.load(self.workload.program())
            return system
        return copy.deepcopy(self._checkpoints[index][1])


_CHECKPOINT_CACHE: _BoundedCache = _BoundedCache(CHECKPOINT_CACHE_SIZE)


def _checkpoints_for(
    workload: Workload, core_cfg: CoreConfig
) -> CheckpointedWorkload:
    # Keyed by (workload, platform) value, like the golden cache, and
    # LRU-bounded: campaigns iterate workload-major, and snapshot sets are
    # tens of MB each across all 15 workloads.
    tel = obs.active()
    key = (workload.name, core_cfg)
    cached = _CHECKPOINT_CACHE.get(key)
    if cached is None:
        if tel is not None:
            tel.metrics.counter("exec.lru.checkpoint.misses").inc()
        with obs.span("checkpoint-build", workload=workload.name):
            cached = CheckpointedWorkload(workload, core_cfg)
        _CHECKPOINT_CACHE.put(key, cached)
    elif tel is not None:
        tel.metrics.counter("exec.lru.checkpoint.hits").inc()
    return cached


#: One in this many pruned-Masked verdicts is cross-checked end-to-end by
#: full simulation under ``--verify`` (deterministically selected by mask
#: hash, so the audited subset is stable across runs and job counts).
PRUNE_AUDIT_ONE_IN = 8


def _prune_audit_selected(workload_name: str, mask: FaultMask,
                          inject_cycle: int) -> bool:
    blob = f"{workload_name}:{mask.component}:{mask.bits}:{inject_cycle}"
    digest = hashlib.sha256(blob.encode()).digest()
    return digest[0] % PRUNE_AUDIT_ONE_IN == 0


def _audit_pruned_sample(
    workload: Workload,
    component: str,
    mask: FaultMask,
    inject_cycle: int,
    golden: RunResult,
    core_cfg: CoreConfig,
    checkpoints: "CheckpointedWorkload | None",
    max_steps: int | None,
) -> None:
    """Fully simulate a fault the pruner declared Masked; raise if not.

    The differential backstop of ``--verify`` campaigns: any unsound prune
    decision becomes a :class:`~repro.errors.VerificationError` (contained
    as an incident by the supervisor, fatal in --strict/CI).
    """
    from repro.errors import VerificationError

    max_cycles = TIMEOUT_FACTOR * golden.cycles
    if checkpoints is not None:
        system = checkpoints.system_at(inject_cycle)
    else:
        system = System(core_cfg)
        system.load(workload.program())
    system.run_until(inject_cycle, max_cycles, max_steps=max_steps)
    inject(system, mask)
    result = system.run(max_cycles, max_steps=max_steps)
    verdict = classify(result, golden)
    if verdict is not FaultClass.MASKED:
        raise VerificationError(
            f"liveness pruner misclassified {workload.name}/{component} "
            f"mask {mask.bits} @ cycle {inject_cycle} as Masked; full "
            f"simulation says {verdict.value}"
        )


def run_one_injection(
    workload: Workload,
    component: str,
    generator: MultiBitFaultGenerator,
    cardinality: int,
    inject_cycle: int,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
    checkpoints: CheckpointedWorkload | None = None,
    max_steps: int | None = None,
    trace: dict | None = None,
    verify: bool = False,
    liveness=None,
    cores: int = 1,
) -> tuple[FaultClass, RunResult, FaultMask]:
    """One complete injection experiment; see the module docstring.

    *cores* > 1 runs the experiment on an N-core SMP machine (the six
    standard component names alias core 0's private structures plus the
    shared L2, so a cell means the same thing at every core count);
    checkpoint restore and liveness pruning are single-core services, so
    SMP injections always resimulate their golden prefix.

    Pass *checkpoints* (see :class:`CheckpointedWorkload`) to skip
    re-simulating the fault-free prefix; the outcome is identical.
    *max_steps* arms the step-count watchdog on the faulty run; *trace*,
    when a dict, receives intermediate artifacts (currently ``"mask"``) so
    a supervisor can build a repro bundle even when the run blows up later.
    *verify* adds oracle cross-checks (mask-application accounting, and
    Masked outcomes compared against the ISA-level reference); the checks
    consume no randomness and never touch simulation state, so the
    returned verdict/result/mask are bit-identical either way.
    *liveness* (a :class:`~repro.core.liveness.LivenessTrace`) enables
    mask pruning: a fault whose flipped bits are all provably dead during
    the golden run is classified Masked without simulating anything —
    the faulty run would be bit-identical to the golden run — and only
    undecided faults fall through to full simulation.  The mask is drawn
    from the same RNG stream against the recorded geometry, so pruned
    results are byte-identical to unpruned ones.
    """
    if cores != 1 and (checkpoints is not None or liveness is not None):
        raise ConfigError(
            "checkpoint restore and liveness pruning are single-core "
            f"services (cores={cores})"
        )
    golden = golden_run(workload, core_cfg, cores=cores)
    max_cycles = TIMEOUT_FACTOR * golden.cycles
    # Phase timing is guarded per site so the telemetry-off path costs one
    # attribute check; none of it touches RNGs or simulation state, so the
    # outcome is bit-identical with telemetry on or off.
    tel = obs.active()
    clock = time.perf_counter
    mask = None
    if liveness is not None:
        begin = clock() if tel is not None else 0.0
        mask = generator.generate(
            liveness.target_geometry(component), cardinality
        )
        if trace is not None:
            trace["mask"] = mask
        if liveness.classify(mask, inject_cycle):
            if tel is not None:
                tel.metrics.counter("sim.pruned." + component).inc()
                tel.metrics.counter("sim.pruned.total").inc()
                tel.metrics.histogram("time.phase.prune").observe(
                    clock() - begin
                )
                tel.metrics.counter("sim.injections").inc()
            if verify and _prune_audit_selected(
                workload.name, mask, inject_cycle
            ):
                _audit_pruned_sample(
                    workload, component, mask, inject_cycle, golden,
                    core_cfg, checkpoints, max_steps,
                )
            return FaultClass.MASKED, golden, mask
        if tel is not None:
            tel.metrics.counter("sim.undecided." + component).inc()
            tel.metrics.counter("sim.undecided.total").inc()
    begin = clock() if tel is not None else 0.0
    if checkpoints is not None:
        system = checkpoints.system_at(inject_cycle)
    else:
        system = build_system(workload, core_cfg, cores)
    if tel is not None:
        restored = clock()
        tel.metrics.histogram("time.phase.restore").observe(restored - begin)
    if mask is None:
        mask = generator.generate(
            system.injectable_targets()[component], cardinality
        )
        if trace is not None:
            trace["mask"] = mask
    reached = system.run_until(inject_cycle, max_cycles, max_steps=max_steps)
    if not reached:  # pragma: no cover - golden prefix is deterministic
        raise ConfigError(
            f"injection cycle {inject_cycle} not reachable in "
            f"{workload.name} (golden={golden.cycles})"
        )
    if tel is not None:
        prefixed = clock()
        tel.metrics.histogram("time.phase.prefix").observe(prefixed - restored)
    if verify:
        from repro.verify.invariants import (
            check_mask_applied, snapshot_mask_bits,
        )

        target = system.injectable_targets()[component]
        before = snapshot_mask_bits(target, mask)
        inject(system, mask)
        check_mask_applied(target, mask, before)
    else:
        inject(system, mask)
    result = system.run(max_cycles, max_steps=max_steps)
    if tel is not None:
        ran = clock()
        tel.metrics.histogram("time.phase.faulty").observe(ran - prefixed)
    verdict = classify(result, golden)
    if verify and verdict is FaultClass.MASKED:
        from repro.verify.differential import check_masked_run

        check_masked_run(workload, result, core_cfg, cores=cores)
    if tel is not None:
        tel.metrics.histogram("time.phase.classify").observe(clock() - ran)
        tel.metrics.counter("sim.injections").inc()
        system.publish_metrics(tel.metrics)
    return verdict, result, mask


def _rng_state_to_json(state: tuple) -> list:
    """``random.Random.getstate()`` → JSON-serialisable form."""
    version, internal, gauss = state
    return [version, list(internal), gauss]


def _rng_state_from_json(data: list) -> tuple:
    version, internal, gauss = data
    return (version, tuple(internal), gauss)


@dataclass
class CellCheckpoint:
    """Mid-cell progress: everything needed to resume sample *samples_done*.

    Both RNG states are captured *after* the last counted sample, so a
    resumed cell draws exactly the injection cycles and fault masks the
    uninterrupted run would have drawn — the resumed `ClassCounts` is
    bit-identical, not merely statistically equivalent.
    """

    samples_done: int
    counts: ClassCounts
    cycle_rng_state: tuple
    generator_rng_state: tuple
    golden_cycles: int

    def as_dict(self) -> dict:
        return {
            "samples_done": self.samples_done,
            "counts": self.counts.as_dict(),
            "cycle_rng": _rng_state_to_json(self.cycle_rng_state),
            "generator_rng": _rng_state_to_json(self.generator_rng_state),
            "golden_cycles": self.golden_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellCheckpoint":
        return cls(
            samples_done=int(data["samples_done"]),
            counts=ClassCounts.from_dict(data["counts"]),
            cycle_rng_state=_rng_state_from_json(data["cycle_rng"]),
            generator_rng_state=_rng_state_from_json(data["generator_rng"]),
            golden_cycles=int(data["golden_cycles"]),
        )


#: Persist a mid-cell checkpoint every this many samples when a store is
#: attached.  At the paper's 2,000 samples/cell this bounds lost work after
#: a kill to ~12% of one cell.
DEFAULT_CHECKPOINT_EVERY = 250


def run_cell(
    workload_name: str,
    component: str,
    cardinality: int,
    config: CampaignConfig,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
    *,
    supervisor: "SupervisorLike | None" = None,
    store: "CampaignStore | None" = None,
    cell_key: str | None = None,
    checkpoint_every: int | None = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = True,
    stop: Callable[[], bool] | None = None,
    verify: bool = False,
    prune: bool = False,
) -> CellResult:
    """Run all of one cell's injections.

    With *verify*, the workload's fault-free run is first cross-checked in
    lock step against the ISA-level reference oracle (cached per workload +
    config), and every sample adds the oracle checks described under
    :func:`run_one_injection`.  Verification consumes no randomness, so a
    verified cell's counts are byte-identical to an unverified one's.

    With *prune*, a liveness trace of the golden run (cached per workload +
    platform, see :mod:`repro.core.liveness`) classifies provably-dead
    fault masks as Masked without simulating them; undecided masks take
    the ordinary path.  Pruning is conservative by construction, so the
    cell's counts are byte-identical to an unpruned run's — only faster.

    With *store* and *cell_key*, mid-cell progress is checkpointed every
    *checkpoint_every* samples and (when *resume* is true) picked up again
    on the next call, reproducing the uninterrupted result bit-for-bit.
    With *supervisor*, each injection runs inside its isolation boundary:
    infra failures become journalled incidents instead of aborting the cell
    (such samples are dropped from the histogram — they are not fault
    effects, so ``counts.total`` may be less than ``config.samples``).
    *stop* is probed between samples; when it returns true the cell flushes
    one final checkpoint (so a later resume is bit-identical) and raises
    :class:`~repro.errors.CampaignInterrupted` — the graceful-drain hook of
    the parallel executor and of Ctrl-C handling.
    """
    tel = obs.active()
    cores = config.cores
    if cores != 1 and prune:
        raise ConfigError(
            "liveness pruning traces a single-core golden run; "
            f"it cannot prune an SMP campaign (cores={cores})"
        )
    workload = get_workload(workload_name)
    golden = golden_run(workload, core_cfg, cores=cores)
    if verify:
        from repro.verify.differential import verify_workload

        verify_workload(workload, core_cfg, cores=cores)
    cell_seed = f"{config.seed}:{workload_name}:{component}:{cardinality}"
    generator = MultiBitFaultGenerator(
        cluster=config.cluster, mode=config.placement, seed=cell_seed
    )
    cycle_rng = random.Random(f"repro-cycles:{cell_seed}")
    # Golden-prefix checkpoints deepcopy a single-core System; SMP cells
    # resimulate the prefix instead (correct, just slower).
    checkpoints = (
        _checkpoints_for(workload, core_cfg) if cores == 1 else None
    )
    liveness = None
    if prune:
        from repro.core.liveness import liveness_for

        liveness = liveness_for(workload, core_cfg)
    cell_span = obs.span(
        "cell", workload=workload_name, component=component,
        cardinality=cardinality,
    )
    counts = ClassCounts()
    start = 0
    if store is not None and cell_key is not None and resume:
        partial = store.get_partial(cell_key)
        if partial is not None and partial.samples_done <= config.samples:
            counts = partial.counts
            start = partial.samples_done
            cycle_rng.setstate(partial.cycle_rng_state)
            generator.set_rng_state(partial.generator_rng_state)
    with cell_span:
        for index in range(start, config.samples):
            if stop is not None and stop():
                if store is not None and cell_key is not None and index > start:
                    store.put_partial(cell_key, CellCheckpoint(
                        samples_done=index,
                        counts=counts,
                        cycle_rng_state=cycle_rng.getstate(),
                        generator_rng_state=generator.rng_state(),
                        golden_cycles=golden.cycles,
                    ))
                raise CampaignInterrupted(
                    f"stopped {workload_name}/{component}/{cardinality}-bit at "
                    f"sample {index}/{config.samples}"
                )
            inject_cycle = cycle_rng.randrange(golden.cycles)
            if supervisor is not None:
                fault_class = supervisor.run_injection(
                    workload, component, generator, cardinality, inject_cycle,
                    core_cfg, checkpoints=checkpoints,
                    cell_seed=cell_seed, sample_index=index,
                    verify=verify, liveness=liveness, cores=cores,
                )
            else:
                fault_class, _, _ = run_one_injection(
                    workload, component, generator, cardinality, inject_cycle,
                    core_cfg, checkpoints=checkpoints, verify=verify,
                    liveness=liveness, cores=cores,
                )
            if fault_class is not None:
                counts.add(fault_class)
                if tel is not None:
                    tel.metrics.counter("sim.class." + fault_class.value).inc()
            elif tel is not None:
                # Sample lost to a contained incident — schedule-dependent,
                # so it counts under exec.*, not sim.*.
                tel.metrics.counter("exec.samples_lost").inc()
            if tel is not None:
                tel.metrics.counter("sim.samples").inc()
            done = index + 1
            if (
                store is not None
                and cell_key is not None
                and checkpoint_every
                and done % checkpoint_every == 0
                and done < config.samples
            ):
                store.put_partial(cell_key, CellCheckpoint(
                    samples_done=done,
                    counts=counts,
                    cycle_rng_state=cycle_rng.getstate(),
                    generator_rng_state=generator.rng_state(),
                    golden_cycles=golden.cycles,
                ))
                if tel is not None:
                    tel.metrics.counter("exec.checkpoints_written").inc()
    if tel is not None:
        tel.metrics.counter("sim.cells").inc()
    return CellResult(
        workload=workload_name,
        component=component,
        cardinality=cardinality,
        counts=counts,
        golden_cycles=golden.cycles,
    )


ProgressFn = Callable[[int, int, CellResult], None]


class SupervisorLike:
    """Interface :func:`run_cell` expects of a supervisor (duck-typed).

    The real implementation lives in :mod:`repro.core.supervisor`; this
    stub only documents the contract and keeps campaign.py import-free of
    the supervisor layer.
    """

    def run_injection(self, *args, **kwargs) -> FaultClass | None:
        raise NotImplementedError  # pragma: no cover


def run_campaign(
    config: CampaignConfig,
    progress: ProgressFn | None = None,
    store: "CampaignStore | None" = None,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
    *,
    supervisor: "SupervisorLike | None" = None,
    checkpoint_every: int | None = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = True,
    jobs: int = 1,
    verify: bool = False,
    prune: bool = False,
    backend: str = "multiprocessing",
    backend_options: dict | None = None,
    policy=None,
) -> CampaignResult:
    """Run (or resume, via *store*) a full campaign.

    ``jobs > 1`` shards the cell grid across an executor backend
    (see :mod:`repro.core.parallel`); cells are independently seeded, so
    the merged result is byte-identical to the serial run.  *backend*
    selects the worker transport (*backend_options* are forwarded to its
    constructor — e.g. the socket coordinator's listen address) and
    *policy* (a :class:`~repro.core.executor.ResiliencePolicy`) tunes the
    fabric's failure handling; all three are ignored for serial runs.  *verify* turns
    on the oracle cross-checks of :func:`run_cell` for every cell; results
    stay byte-identical to a non-verify run.  *prune* turns on liveness
    mask pruning (see :func:`run_cell`); results again stay byte-identical,
    which is why neither flag enters the cell cache key.
    """
    if jobs > 1:
        from repro.core.parallel import run_campaign_parallel

        return run_campaign_parallel(
            config, jobs=jobs, progress=progress, store=store,
            core_cfg=core_cfg, supervisor=supervisor,
            checkpoint_every=checkpoint_every, resume=resume,
            verify=verify, prune=prune, backend=backend,
            backend_options=backend_options, policy=policy,
        )
    cells = config.cells()
    results: list[CellResult] = []
    for index, (workload, component, cardinality) in enumerate(cells):
        key = config.cell_key(workload, component, cardinality, core_cfg)
        cached = store.get(key) if store is not None else None
        if cached is None:
            cached = run_cell(
                workload, component, cardinality, config, core_cfg,
                supervisor=supervisor, store=store, cell_key=key,
                checkpoint_every=checkpoint_every, resume=resume,
                verify=verify, prune=prune,
            )
            if store is not None:
                store.put(key, cached)
        results.append(cached)
        if progress is not None:
            progress(index + 1, len(cells), cached)
    incidents = supervisor.incident_count if supervisor is not None else 0
    return CampaignResult(results, incidents=incidents)


#: On-disk store schema.  Version 1 was a bare ``{key: cell}`` mapping
#: rewritten wholesale on every put; version 2 adds the envelope with
#: partial checkpoints and the write-ahead journal.
STORE_SCHEMA = 2


class CampaignStore:
    """Crash-safe incremental per-cell cache on disk.

    Layout: a compacted JSON snapshot at *path* plus a write-ahead JSONL
    journal at ``<path>.journal``.  Every mutation appends one line to the
    journal (O(1), flushed immediately); every *compact_every* puts the
    snapshot is rewritten atomically (tmp + rename) and the journal
    truncated, so the journal stays short and loads stay fast.  A corrupt
    or half-written snapshot is quarantined (renamed to
    ``<path>.corrupt-N``) and the store rebuilt from whatever the journal
    still holds; a torn final journal line (the signature of a kill mid
    append) is skipped.  Version-1 snapshots (plain ``{key: cell}``) load
    transparently.
    """

    def __init__(self, path: str | Path, compact_every: int = 64) -> None:
        self.path = Path(path)
        self.journal_path = Path(str(path) + ".journal")
        self.compact_every = compact_every
        self._data: dict[str, dict] = {}
        self._partials: dict[str, dict] = {}
        self._mutations_since_compact = 0
        self._journal_handle = None
        self.quarantined: Path | None = None
        self._load()

    # -- loading -----------------------------------------------------------

    def _load(self) -> None:
        if self.path.exists():
            try:
                raw = json.loads(self.path.read_text())
                if not isinstance(raw, dict):
                    raise ValueError("snapshot is not a JSON object")
            except (ValueError, OSError):
                self.quarantined = self._quarantine()
            else:
                if "schema" in raw and isinstance(raw.get("cells"), dict):
                    self._data = dict(raw["cells"])
                    self._partials = dict(raw.get("partials", {}))
                else:  # schema 1: bare key -> cell mapping
                    self._data = raw
        self._replay_journal()

    def _quarantine(self) -> Path:
        """Move a corrupt snapshot aside; never destroy evidence."""
        for attempt in range(1000):
            target = Path(f"{self.path}.corrupt-{attempt}")
            if not target.exists():
                self.path.replace(target)
                return target
        raise OSError(  # pragma: no cover - 1000 corruptions is operator error
            f"too many quarantined snapshots next to {self.path}"
        )

    def _replay_journal(self) -> None:
        if not self.journal_path.exists():
            return
        try:
            lines = self.journal_path.read_text().splitlines()
        except OSError:  # pragma: no cover - unreadable journal
            return
        replayed: list[str] = []
        torn = False
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                op = record["op"]
            except (ValueError, KeyError, TypeError):
                # Torn write: a kill landed mid-append.  Everything before
                # this line is intact; nothing after it can be trusted.
                torn = True
                break
            if op == "cell":
                self._data[record["key"]] = record["cell"]
                self._partials.pop(record["key"], None)
            elif op == "partial":
                self._partials[record["key"]] = record["state"]
            elif op == "clear_partial":
                self._partials.pop(record["key"], None)
            # Unknown ops from a future schema are ignored, not fatal.
            replayed.append(line)
        if torn:
            # Drop the untrusted tail NOW (atomically), or the next append
            # would be glued onto the torn fragment — one missing newline
            # silently eating every record written after the restart.
            tmp = self.journal_path.with_suffix(
                self.journal_path.suffix + ".tmp"
            )
            tmp.write_text("".join(line + "\n" for line in replayed))
            tmp.replace(self.journal_path)

    # -- mutation ----------------------------------------------------------

    def _append(self, record: dict) -> None:
        # One persistent append handle instead of an open/close per record:
        # the journal is the hot path of a 540-cell campaign (every cell
        # result and every mid-cell checkpoint lands here).  O_APPEND keeps
        # concurrent stores on the same path line-atomic, as before.
        if self._journal_handle is None or self._journal_handle.closed:
            self.journal_path.parent.mkdir(parents=True, exist_ok=True)
            self._journal_handle = self.journal_path.open("a")
        self._journal_handle.write(json.dumps(record) + "\n")
        self._journal_handle.flush()
        self._mutations_since_compact += 1
        if self._mutations_since_compact >= self.compact_every:
            self.compact()

    def put(self, key: str, cell: CellResult) -> None:
        self._data[key] = cell.as_dict()
        self._partials.pop(key, None)
        self._append({"op": "cell", "key": key, "cell": self._data[key]})

    def put_partial(self, key: str, checkpoint: CellCheckpoint) -> None:
        self._partials[key] = checkpoint.as_dict()
        self._append({"op": "partial", "key": key, "state": self._partials[key]})

    def clear_partial(self, key: str) -> None:
        if key in self._partials:
            del self._partials[key]
            self._append({"op": "clear_partial", "key": key})

    def compact(self) -> None:
        """Fold the journal into an atomically-replaced snapshot.

        Snapshots are key-sorted, so two stores holding the same cells are
        byte-identical regardless of arrival order — this is what lets CI
        compare a parallel run's store against a serial reference with
        ``cmp`` after compaction.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps({
            "schema": STORE_SCHEMA,
            "cells": self._data,
            "partials": self._partials,
        }, sort_keys=True))
        tmp.replace(self.path)
        if self._journal_handle is not None and not self._journal_handle.closed:
            self._journal_handle.close()
        self._journal_handle = None
        self.journal_path.write_text("")
        self._mutations_since_compact = 0

    def close(self) -> None:
        """Release the journal handle (appends reopen it on demand)."""
        if self._journal_handle is not None and not self._journal_handle.closed:
            self._journal_handle.close()
        self._journal_handle = None

    # -- access ------------------------------------------------------------

    def get(self, key: str) -> CellResult | None:
        raw = self._data.get(key)
        return CellResult.from_dict(raw) if raw is not None else None

    def get_partial(self, key: str) -> CellCheckpoint | None:
        raw = self._partials.get(key)
        if raw is None:
            return None
        try:
            return CellCheckpoint.from_dict(raw)
        except (KeyError, ValueError, TypeError):
            # A checkpoint we cannot parse is worth less than a redo.
            return None

    def partial_keys(self) -> list[str]:
        return sorted(self._partials)

    def __len__(self) -> int:
        return len(self._data)
