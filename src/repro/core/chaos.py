"""Deterministic chaos harness for the parallel executor fabric.

The resilience protocol of :mod:`repro.core.parallel` (heartbeats, hang
escalation, retry with backoff, poison-cell quarantine, degradation to a
shrinking pool) is only trustworthy if it is *exercised* — a recovery
path that never runs is a recovery path that does not work.  This module
injects seeded faults into the fabric itself and asserts that the
campaign's headline guarantee survives every one of them: results and
the compacted :class:`~repro.core.campaign.CampaignStore` stay
**byte-identical to a serial run**.

Fault classes (one scenario each, composable):

* ``kill``  — a worker dies unannounced (``os._exit``) mid-cell, like a
  segfault or OOM kill; the cell must be rescheduled from its last
  streamed checkpoint.
* ``stall`` — a worker stops making progress mid-cell (sleeps through
  its heartbeat); the scheduler must soft-cancel, then kill, then
  reschedule.
* ``drop``  — queue messages (checkpoints, telemetry, even completed
  cell results) vanish in flight; lost results must be detected and
  re-executed.
* ``dup``   — queue messages are delivered twice; duplicates must be
  discarded before the merge.
* ``torn``  — a mid-cell checkpoint append is torn halfway and the
  process "dies" at that exact point (:class:`~repro.errors.ChaosAbort`);
  a restart + ``--resume`` must recover bit-identically.
* ``poison`` — one cell kills every worker that touches it; after
  ``max_attempts`` tries it must be quarantined as an incident instead
  of sinking the campaign (and must abort it under ``--strict`` or a
  tight ``--max-incidents``).

Network fault classes (:data:`NET_SCENARIOS`, socket backend only —
they sever or corrupt a TCP transport that the in-process backends do
not have):

* ``disconnect``   — a worker drops its connection mid-cell; the parent
  must reschedule from the last acked checkpoint while the worker
  rejoins.
* ``partition``    — the connection is severed *during* the checkpoint
  stream (after at least one mid-cell checkpoint was acked), so the
  resume provably continues from a mid-cell state.
* ``corrupt-frame`` — a worker emits a frame whose CRC lies; the codec
  must diagnose it, the parent must treat the stream as dead, and the
  campaign must still converge.
* ``stale-epoch``  — a disconnected worker rejoins claiming a bogus
  session epoch; the coordinator must reject it, and the worker's clean
  retry must be accepted.
* ``dup-deliver``  — result/checkpoint messages are delivered twice
  (the healed-partition double-send); duplicates must be suppressed by
  first-canonical-result-wins.

Worker-side network events fire through a transport hook the socket
worker registers around :func:`~repro.core.executor.worker_loop`
(:func:`set_transport_hook`); in non-socket runs the hook is absent and
the events are inert rather than vacuously "passed" — their flag is only
marked once a hook actually fired.

Worker-side events fire **once** across reschedules (flag files — the
same mechanism a real heisenbug's nondeterminism provides, made
deterministic), so every scenario converges.  Event placement is drawn
from a seeded RNG over the campaign grid: same seed, same chaos.

``repro-campaign chaos`` runs the full matrix; tests/test_chaos.py runs
it in-process.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ChaosAbort

#: Scenario names in canonical run order.
SCENARIOS = ("kill", "stall", "drop", "dup", "torn", "poison")

#: Network scenarios: require ``backend="socket"`` (there is no
#: transport to sever inside the in-process backends).
NET_SCENARIOS = (
    "disconnect", "partition", "corrupt-frame", "stale-epoch", "dup-deliver",
)

#: Exit code chaos kills die with — distinctive in incident journals.
CHAOS_EXIT_CODE = 64

#: The socket worker's registered transport saboteur (or ``None``).
#: Takes one argument, the event kind: ``"disconnect"`` severs the
#: connection, ``"corrupt"`` emits a bad-CRC frame.  Process-local by
#: design: each worker process registers its own.
_TRANSPORT_HOOK = {"fn": None}


def set_transport_hook(fn) -> None:
    """Register (or with ``None`` clear) the transport chaos hook."""
    _TRANSPORT_HOOK["fn"] = fn


@dataclass(frozen=True)
class ChaosEvent:
    """One worker-side fault: fires when a worker's stop probe reaches
    *ordinal* (the per-cell sample-probe counter) inside the given cell.

    ``kind`` is ``"kill"`` (hard ``os._exit``, no cleanup, no goodbye —
    exactly what a segfault looks like from the parent), ``"stall"``
    (sleep through the heartbeat interval, exactly what a livelock looks
    like), ``"disconnect"`` (sever the socket transport mid-cell) or
    ``"corrupt"`` (emit a frame whose CRC lies) — the last two act
    through the registered transport hook and are inert without one.
    *flag* (optional explicit path) marks the event as fired so the
    rescheduled cell does not re-trigger it.
    """

    kind: str
    workload: str
    component: str
    cardinality: int
    ordinal: int = 0
    duration: float = 0.0
    exit_code: int = CHAOS_EXIT_CODE
    flag: str | None = None


@dataclass(frozen=True)
class ChaosSpec:
    """A complete seeded chaos plan, picklable so workers can carry it.

    Worker-side: *events* (kills and stalls).  Parent-side:
    *drop_ordinals* / *dup_ordinals* index into the scheduler's stream of
    droppable (``partial``/``telemetry``/``cell``) and duplicable
    (``cell``/``partial``) queue messages; *torn_ordinals* index into the
    stream of parent-side checkpoint writes (see :class:`TornWriteStore`).
    *stale_rejoin* makes the socket worker's first reconnect claim a
    bogus session epoch (once, flag-file guarded), exercising the
    coordinator's stale-session rejection.
    """

    flag_dir: str = ""
    events: tuple[ChaosEvent, ...] = ()
    drop_ordinals: tuple[int, ...] = ()
    dup_ordinals: tuple[int, ...] = ()
    torn_ordinals: tuple[int, ...] = ()
    stale_rejoin: bool = False

    def _flag_path(self, index: int, event: ChaosEvent) -> Path:
        if event.flag is not None:
            return Path(event.flag)
        return Path(self.flag_dir) / f"chaos-event-{index}.fired"

    def worker_event(
        self, workload: str, component: str, cardinality: int, ordinal: int
    ) -> None:
        """Probe hook run by workers once per sample; may not return."""
        for index, event in enumerate(self.events):
            if (
                event.workload == workload
                and event.component == component
                and event.cardinality == cardinality
                and event.ordinal == ordinal
            ):
                flag = self._flag_path(index, event)
                if flag.exists():
                    continue
                if event.kind in ("disconnect", "corrupt"):
                    hook = _TRANSPORT_HOOK["fn"]
                    if hook is None:
                        # No transport to sabotage (not a socket worker):
                        # leave the flag unmarked so the event is armed,
                        # not silently "passed".
                        continue
                    try:
                        flag.parent.mkdir(parents=True, exist_ok=True)
                        flag.touch()
                    except OSError:  # pragma: no cover - flag dir vanished
                        continue
                    hook(event.kind)
                    continue
                try:
                    flag.parent.mkdir(parents=True, exist_ok=True)
                    flag.touch()
                except OSError:  # pragma: no cover - flag dir vanished
                    continue
                if event.kind == "kill":
                    os._exit(event.exit_code)
                elif event.kind == "stall":
                    time.sleep(event.duration)


class TornWriteStore:
    """Store proxy that tears a checkpoint append and "dies" on the spot.

    The *n*-th ``put_partial`` (for *n* in ``torn_ordinals``) writes the
    first half of its journal line — no newline, no trailing state — and
    raises :class:`~repro.errors.ChaosAbort`, simulating a process killed
    mid-``write``.  Everything after the torn line never happens, exactly
    like a real crash; the store's journal replay skips the torn final
    line on reload.  Flag files keep each tear one-shot across the
    restart, so the resumed run completes.
    """

    def __init__(self, store, spec: ChaosSpec) -> None:
        self._store = store
        self._spec = spec
        self._count = 0

    def __getattr__(self, name: str):
        return getattr(self._store, name)

    def __len__(self) -> int:
        return len(self._store)

    def put_partial(self, key: str, checkpoint) -> None:
        ordinal = self._count
        self._count += 1
        if ordinal in self._spec.torn_ordinals:
            flag = Path(self._spec.flag_dir) / f"chaos-torn-{ordinal}.fired"
            if not flag.exists():
                flag.parent.mkdir(parents=True, exist_ok=True)
                flag.touch()
                line = json.dumps(
                    {"op": "partial", "key": key,
                     "state": checkpoint.as_dict()}
                )
                # Close the store's own journal handle first so the torn
                # fragment lands after everything it already flushed.
                self._store.close()
                with self._store.journal_path.open("a") as journal:
                    journal.write(line[: max(1, len(line) // 2)])
                    journal.flush()
                raise ChaosAbort(
                    f"torn checkpoint append for cell {key} "
                    f"(write #{ordinal}) — simulated death mid-write"
                )
        self._store.put_partial(key, checkpoint)


def build_spec(
    scenario: str,
    config,
    seed: int,
    flag_dir: str | Path,
    *,
    max_attempts: int = 3,
    stall_duration: float = 20.0,
) -> ChaosSpec:
    """Seeded chaos plan for one scenario over *config*'s cell grid.

    Same (scenario, config, seed) → same plan.  *stall_duration* should
    comfortably exceed the resilience policy's hang timeout plus grace
    period, so the stalled worker is killed rather than outwaited.
    """
    if scenario not in SCENARIOS + NET_SCENARIOS:
        raise ValueError(
            f"unknown chaos scenario {scenario!r} "
            f"(choose from {SCENARIOS + NET_SCENARIOS})"
        )
    rng = random.Random(f"chaos:{scenario}:{seed}")
    cells = config.cells()
    flag_dir = str(flag_dir)

    def pick_cell() -> tuple[str, str, int]:
        return cells[rng.randrange(len(cells))]

    def pick_ordinal() -> int:
        # Ordinal 0 fires before the first sample; later ordinals fire
        # mid-cell, after checkpoints may have been streamed.
        return rng.randrange(max(1, config.samples))

    events: list[ChaosEvent] = []
    drops: tuple[int, ...] = ()
    dups: tuple[int, ...] = ()
    torn: tuple[int, ...] = ()
    stale = False
    if scenario == "kill":
        for _ in range(2):
            workload, component, cardinality = pick_cell()
            events.append(ChaosEvent(
                "kill", workload, component, cardinality,
                ordinal=pick_ordinal(),
            ))
    elif scenario == "stall":
        workload, component, cardinality = pick_cell()
        events.append(ChaosEvent(
            "stall", workload, component, cardinality,
            ordinal=pick_ordinal(), duration=stall_duration,
        ))
    elif scenario == "drop":
        drops = tuple(sorted(rng.sample(range(16), k=3)))
    elif scenario == "dup":
        dups = tuple(sorted(rng.sample(range(16), k=3)))
    elif scenario == "torn":
        torn = (rng.randrange(3),)
    elif scenario == "poison":
        workload, component, cardinality = pick_cell()
        # Enough kills that every allowed attempt dies at sample zero:
        # the scheduler must quarantine, not converge.
        events.extend(
            ChaosEvent("kill", workload, component, cardinality, ordinal=0)
            for _ in range(max_attempts + 1)
        )
    elif scenario == "disconnect":
        workload, component, cardinality = pick_cell()
        events.append(ChaosEvent(
            "disconnect", workload, component, cardinality,
            ordinal=pick_ordinal(),
        ))
    elif scenario == "partition":
        # Sever *during* the checkpoint stream: ordinal ≥ 1 guarantees at
        # least one mid-cell checkpoint was acked before the cut, so the
        # reschedule provably resumes from a mid-cell state.
        workload, component, cardinality = pick_cell()
        ordinal = 1 + rng.randrange(max(1, config.samples - 1))
        events.append(ChaosEvent(
            "disconnect", workload, component, cardinality, ordinal=ordinal,
        ))
    elif scenario == "corrupt-frame":
        workload, component, cardinality = pick_cell()
        events.append(ChaosEvent(
            "corrupt", workload, component, cardinality,
            ordinal=pick_ordinal(),
        ))
    elif scenario == "stale-epoch":
        # Disconnect, then have the rejoin claim a bogus session epoch:
        # the coordinator must reject the stale join and accept the
        # clean retry.
        workload, component, cardinality = pick_cell()
        events.append(ChaosEvent(
            "disconnect", workload, component, cardinality,
            ordinal=pick_ordinal(),
        ))
        stale = True
    elif scenario == "dup-deliver":
        # Healed-partition double-send, injected parent-side so the
        # whole dedup path (not just the transport) is exercised.
        dups = tuple(sorted(rng.sample(range(16), k=3)))
    return ChaosSpec(
        flag_dir=flag_dir,
        events=tuple(events),
        drop_ordinals=drops,
        dup_ordinals=dups,
        torn_ordinals=torn,
        stale_rejoin=stale,
    )


def poison_cell_of(spec: ChaosSpec) -> tuple[str, str, int] | None:
    """The (workload, component, cardinality) a poison spec targets."""
    if not spec.events:
        return None
    event = spec.events[0]
    return (event.workload, event.component, event.cardinality)


@dataclass
class ScenarioOutcome:
    """What one chaos scenario did and whether the guarantee held."""

    scenario: str
    ok: bool
    detail: str
    incidents: list = field(default_factory=list)
    restarts: int = 0

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "detail": self.detail,
            "restarts": self.restarts,
            "incidents": [incident.as_dict() for incident in self.incidents],
        }


@dataclass
class ChaosReport:
    """The full matrix: per-scenario outcomes plus the reference bytes."""

    outcomes: list[ScenarioOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
        }


def _run_with_restarts(
    config,
    jobs: int,
    store_path: Path,
    spec: ChaosSpec,
    *,
    backend: str,
    policy,
    core_cfg,
    supervisor_factory,
    max_restarts: int = 8,
    checkpoint_every: int = 1,
):
    """Run a chaos campaign, restarting after every simulated death.

    Each :class:`~repro.errors.ChaosAbort` drops the in-memory store and
    reopens it from disk — journal replay, torn-line recovery and all —
    exactly as a freshly started process would, then resumes.  Returns
    ``(result, supervisor, restarts)``.  *checkpoint_every* defaults to
    every sample so chaos campaigns actually stream mid-cell checkpoints
    (the torn scenario tears one of those writes; kills and hangs resume
    from them).
    """
    from repro.core.campaign import CampaignStore
    from repro.core.parallel import run_campaign_parallel

    restarts = 0
    supervisor = supervisor_factory()
    while True:
        store = CampaignStore(store_path)
        wrapped = TornWriteStore(store, spec) if spec.torn_ordinals else store
        try:
            result = run_campaign_parallel(
                config, jobs=jobs, store=wrapped, core_cfg=core_cfg,
                supervisor=supervisor, resume=True,
                checkpoint_every=checkpoint_every,
                backend=backend, policy=policy, chaos=spec,
            )
            return result, supervisor, restarts
        except ChaosAbort:
            store.close()
            restarts += 1
            if restarts > max_restarts:  # pragma: no cover - plan is finite
                raise


def run_chaos(
    config,
    *,
    scenarios=SCENARIOS,
    jobs: int = 2,
    seed: int = 0,
    workdir: str | Path,
    backend: str = "multiprocessing",
    core_cfg=None,
    policy=None,
    progress=None,
) -> ChaosReport:
    """Run the chaos matrix and verify the byte-identity guarantee.

    For every scenario: run *config* under injected faults, then compare
    the result JSON and the compacted store byte-for-byte against a
    serial reference.  The ``poison`` scenario instead asserts the
    quarantine contract: the campaign completes (with a ``poison-cell``
    incident and a short cell) by default, and aborts under ``--strict``.
    Incident journals for each scenario are written under *workdir*.
    """
    from repro.core.campaign import (
        CampaignStore, run_campaign,
    )
    from repro.core.executor import ResiliencePolicy
    from repro.core.supervisor import IncidentJournal, Supervisor
    from repro.cpu.config import DEFAULT_CONFIG

    core_cfg = core_cfg if core_cfg is not None else DEFAULT_CONFIG
    for scenario in scenarios:
        if scenario in NET_SCENARIOS and backend != "socket":
            raise ValueError(
                f"chaos scenario {scenario!r} needs backend='socket' "
                f"(got {backend!r}): only a TCP transport can be severed"
            )
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    if policy is None:
        # Tight timeouts: chaos campaigns are small, and the stall
        # scenario should escalate in seconds, not minutes.  Speculation
        # is off so a stalled worker is *escalated* (soft-cancel → kill →
        # reschedule) rather than quietly out-raced by a speculative
        # re-execution — the harness must exercise the recovery path.
        policy = ResiliencePolicy(
            heartbeat_interval=0.1,
            hang_timeout=2.0,
            grace_period=1.0,
            retry_base_delay=0.05,
            retry_max_delay=0.5,
            speculate=False,
        )

    # Serial reference: the bytes every scenario must reproduce.
    ref_store_path = workdir / "reference-store.json"
    ref_store = CampaignStore(ref_store_path)
    reference = run_campaign(config, store=ref_store, core_cfg=core_cfg)
    ref_store.compact()
    ref_store.close()
    reference_bytes = reference.to_json().encode()
    reference_store_bytes = ref_store_path.read_bytes()

    report = ChaosReport()
    for scenario in scenarios:
        if progress is not None:
            progress(scenario)
        scenario_dir = workdir / scenario
        scenario_dir.mkdir(parents=True, exist_ok=True)
        flag_dir = scenario_dir / "flags"
        flag_dir.mkdir(exist_ok=True)
        journal_path = scenario_dir / "incidents.jsonl"
        spec = build_spec(
            scenario, config, seed, flag_dir,
            max_attempts=policy.max_attempts,
            stall_duration=(policy.hang_timeout + policy.grace_period) * 8,
        )
        store_path = scenario_dir / "store.json"

        def make_supervisor(strict: bool = False) -> Supervisor:
            return Supervisor(
                journal=IncidentJournal(journal_path), strict=strict,
            )

        if scenario == "poison":
            outcome = _poison_outcome(
                config, jobs, store_path, spec, backend=backend,
                policy=policy, core_cfg=core_cfg,
                make_supervisor=make_supervisor, flag_dir=flag_dir,
                reference_bytes=reference_bytes,
            )
        else:
            result, supervisor, restarts = _run_with_restarts(
                config, jobs, store_path, spec, backend=backend,
                policy=policy, core_cfg=core_cfg,
                supervisor_factory=make_supervisor,
            )
            chaos_store = CampaignStore(store_path)
            chaos_store.compact()
            chaos_store.close()
            failures = []
            if result.to_json().encode() != reference_bytes:
                failures.append("result JSON diverged from serial")
            if store_path.read_bytes() != reference_store_bytes:
                failures.append("compacted store diverged from serial")
            outcome = ScenarioOutcome(
                scenario=scenario,
                ok=not failures,
                detail="; ".join(failures) if failures else (
                    f"byte-identical to serial "
                    f"({len(supervisor.journal.incidents)} incident(s) "
                    f"journalled, {restarts} simulated restart(s))"
                ),
                incidents=list(supervisor.journal.incidents),
                restarts=restarts,
            )
        report.outcomes.append(outcome)
    return report


def _poison_outcome(
    config,
    jobs: int,
    store_path: Path,
    spec: ChaosSpec,
    *,
    backend: str,
    policy,
    core_cfg,
    make_supervisor,
    flag_dir: Path,
    reference_bytes: bytes,
) -> ScenarioOutcome:
    """The poison scenario: quarantine by default, abort under strict."""
    from repro.core.parallel import run_campaign_parallel
    from repro.errors import InjectionIncident

    failures = []
    supervisor = make_supervisor()
    result = run_campaign_parallel(
        config, jobs=jobs, store=None, core_cfg=core_cfg,
        supervisor=supervisor, backend=backend, policy=policy, chaos=spec,
    )
    kinds = [incident.kind for incident in supervisor.journal.incidents]
    if "poison-cell" not in kinds:
        failures.append(f"no poison-cell incident journalled (got {kinds})")
    target = poison_cell_of(spec)
    poisoned = result.cell(*target) if target is not None else None
    if poisoned is not None and poisoned.counts.total >= config.samples:
        failures.append(
            "quarantined cell unexpectedly holds a full sample set"
        )
    if result.to_json().encode() == reference_bytes:
        failures.append(
            "poisoned campaign matched the serial bytes — chaos never fired"
        )
    # Strict mode must abort on the first worker death instead.  Fresh
    # flags so the kills fire again.
    for flag in flag_dir.glob("chaos-event-*.fired"):
        flag.unlink()
    try:
        run_campaign_parallel(
            config, jobs=jobs, store=None, core_cfg=core_cfg,
            supervisor=make_supervisor(strict=True),
            backend=backend, policy=policy, chaos=spec,
        )
        failures.append("strict run completed despite a poison cell")
    except InjectionIncident:
        pass
    return ScenarioOutcome(
        scenario="poison",
        ok=not failures,
        detail="; ".join(failures) if failures else (
            "cell quarantined, campaign completed; strict run aborted"
        ),
        incidents=list(supervisor.journal.incidents),
    )
