"""Text renderers for every table and figure of the paper.

Each ``render_*`` function returns a string; the benchmark harnesses print
them so that running a bench regenerates the corresponding artifact.  Bars
are rendered in ASCII — the point is the numbers and their shape, not
typesetting.
"""

from __future__ import annotations

from repro.core.avf import (
    ClassCounts,
    FaultClass,
    max_increase,
    node_avf,
    weighted_fraction,
)
from repro.core.campaign import CampaignResult
from repro.core.fit import cpu_fit_by_node
from repro.core.targets import COMPONENT_LABELS, PAPER_COMPONENT_BITS
from repro.core.technology import (
    MBU_RATES,
    RAW_FIT_PER_BIT,
    TECHNOLOGY_NODES,
)
from repro.cpu.config import CoreConfig

#: Reporting order for components, matching the paper's section order.
COMPONENT_ORDER = ("l1d", "l1i", "l2", "regfile", "dtlb", "itlb")


def format_table(
    headers: list[str], rows: list[list[str]], title: str = ""
) -> str:
    """Plain-text aligned table."""
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)


def _bar(fraction: float, width: int = 40, char: str = "#") -> str:
    filled = round(max(0.0, min(1.0, fraction)) * width)
    return char * filled


def _pct(value: float) -> str:
    return f"{100 * value:6.2f}%"


# -- Tables I, III, VI, VII, VIII ------------------------------------------------


def render_table1(cfg: CoreConfig) -> str:
    rows = [[attr, value] for attr, value in cfg.table1_rows()]
    return format_table(
        ["Microarchitectural attribute", "Value"], rows,
        "TABLE I. SUMMARY OF SETUP ATTRIBUTES",
    )


def render_table3(measured_cycles: dict[str, int],
                  paper_cycles: dict[str, int]) -> str:
    rows = [
        [name, f"{measured_cycles[name]:,}", f"{paper_cycles[name]:,}"]
        for name in measured_cycles
    ]
    return format_table(
        ["Benchmark", "Execution time (cycles, this repo)",
         "Execution time (cycles, paper)"],
        rows,
        "TABLE III. BENCHMARK EXECUTION TIME",
    )


def render_table6() -> str:
    rows = [
        [node, _pct(rates[0]), _pct(rates[1]), _pct(rates[2])]
        for node, rates in MBU_RATES.items()
    ]
    return format_table(
        ["Technology node", "Single-bit", "Double-bit", "Triple-bit"],
        rows,
        "TABLE VI. MULTI-BIT RATES PER NODE",
    )


def render_table7() -> str:
    rows = [
        [node, f"{fit / 1e-8:.0f} x 10^-8"]
        for node, fit in RAW_FIT_PER_BIT.items()
    ]
    return format_table(
        ["Node", "Raw FIT per bit"], rows,
        "TABLE VII. RAW FIT FOR 250NM TO 22NM NODES",
    )


def render_table8() -> str:
    rows = [
        [COMPONENT_LABELS[c], f"{PAPER_COMPONENT_BITS[c]:,}"]
        for c in COMPONENT_ORDER
    ]
    return format_table(
        ["Component", "Size (in bits)"], rows,
        "TABLE VIII. COMPONENT SIZES IN BITS",
    )


# -- Figures 1-6: per-component AVF breakdowns ---------------------------------------


_CLASS_ORDER = (
    FaultClass.MASKED, FaultClass.SDC, FaultClass.CRASH,
    FaultClass.TIMEOUT, FaultClass.ASSERT,
)


def render_component_figure(
    result: CampaignResult, component: str, figure_name: str
) -> str:
    """Figs. 1-6: stacked fault-effect breakdown per workload × cardinality."""
    lines = [
        f"{figure_name}: AVF breakdown for "
        f"{COMPONENT_LABELS.get(component, component)} "
        f"(single/double/triple-bit faults)",
        "",
    ]
    headers = ["Workload", "Faults", "Masked", "SDC", "Crash",
               "Timeout", "Assert", "AVF"]
    rows = []
    for workload in result.workloads():
        for cardinality in result.cardinalities():
            counts = result.cell(workload, component, cardinality).counts
            rows.append([
                workload if cardinality == result.cardinalities()[0] else "",
                f"{cardinality}-bit",
                _pct(counts.fraction(FaultClass.MASKED)),
                _pct(counts.fraction(FaultClass.SDC)),
                _pct(counts.fraction(FaultClass.CRASH)),
                _pct(counts.fraction(FaultClass.TIMEOUT)),
                _pct(counts.fraction(FaultClass.ASSERT)),
                _pct(counts.avf),
            ])
    lines.append(format_table(headers, rows))
    lines.append("")
    lines.append("AVF bars (execution-time-weighted across workloads):")
    cycles = result.golden_cycles()
    for cardinality in result.cardinalities():
        counts_by_wl = result.counts_by_workload(component, cardinality)
        avf = result.weighted_avf(component, cardinality)
        segments = []
        for cls in _CLASS_ORDER[1:]:
            frac = weighted_fraction(counts_by_wl, cycles, cls)
            segments.append(f"{cls.value}={_pct(frac).strip()}")
        lines.append(
            f"  {cardinality}-bit |{_bar(avf):40s}| AVF={_pct(avf).strip()} "
            f"({', '.join(segments)})"
        )
    return "\n".join(lines)


# -- Table IV / V -----------------------------------------------------------------------


def render_table4(result: CampaignResult) -> str:
    rows = []
    for component in COMPONENT_ORDER:
        single = result.avf_by_workload(component, 1)
        double = result.avf_by_workload(component, 2)
        triple = result.avf_by_workload(component, 3)
        rows.append([
            COMPONENT_LABELS[component],
            f"{max_increase(single, double):.1f}x",
            f"{max_increase(single, triple):.1f}x",
        ])
    return format_table(
        ["Component", "2-bit increase", "3-bit increase"], rows,
        "TABLE IV. VULNERABILITY INCREASE PER COMPONENT "
        "(worst-case workload ratio vs single-bit)",
    )


def render_table5(result: CampaignResult) -> str:
    rows = []
    for component in COMPONENT_ORDER:
        weighted = result.weighted_avf_by_cardinality(component)
        previous = None
        for cardinality in sorted(weighted):
            avf = weighted[cardinality]
            if previous is None or previous == 0.0:
                increase = "-"
            else:
                increase = f"{100 * (avf - previous) / previous:+.2f}%"
            rows.append([
                COMPONENT_LABELS[component] if cardinality == 1 else "",
                str(cardinality),
                _pct(avf),
                increase,
            ])
            previous = avf
    return format_table(
        ["Component", "Injected faults", "AVF", "Percentage increase"],
        rows,
        "TABLE V. WEIGHTED AVF PER COMPONENT FOR 1, 2, AND 3 FAULTS",
    )


# -- Figures 7 and 8 ------------------------------------------------------------------------


def _avf_tables(result: CampaignResult) -> dict[str, dict[int, float]]:
    return {
        component: result.weighted_avf_by_cardinality(component)
        for component in COMPONENT_ORDER
    }


def render_fig7(result: CampaignResult) -> str:
    """Fig. 7: aggregate multi-bit AVF per component per technology node."""
    tables = _avf_tables(result)
    lines = [
        "FIG. 7: Multi-bit weighted AVF per component per technology node",
        "  green (#) = single-bit-only AVF, red (+) = added by multi-bit "
        "upsets; gap% = relative assessment gap",
        "",
    ]
    for component in COMPONENT_ORDER:
        avfs = tables[component]
        single = avfs.get(1, 0.0)
        lines.append(f"{COMPONENT_LABELS[component]}:")
        for node in TECHNOLOGY_NODES:
            aggregate = node_avf(avfs, node)
            gap = (aggregate - single) / single if single else 0.0
            green = _bar(single, 50, "#")
            red = _bar(aggregate - single, 50, "+")
            lines.append(
                f"  {node:>6s} |{green}{red}  "
                f"AVF={_pct(aggregate).strip()} "
                f"(single-bit-only {_pct(single).strip()}, "
                f"gap {100 * gap:.1f}%)"
            )
        lines.append("")
    return "\n".join(lines)


def render_fig8(result: CampaignResult) -> str:
    """Fig. 8: whole-CPU FIT per node with the multi-bit share."""
    fits = cpu_fit_by_node(_avf_tables(result))
    peak = max(fit.fit_total for fit in fits.values()) or 1.0
    lines = [
        "FIG. 8: CPU FIT per technology node "
        "(Eq. 4 with Table VII raw FIT and Table VIII bit counts)",
        "  green (#) = single-bit FIT, red (+) = multi-bit contribution",
        "",
    ]
    for node in TECHNOLOGY_NODES:
        fit = fits[node]
        green = _bar(fit.fit_single_only / peak, 50, "#")
        red = _bar(fit.fit_multibit / peak, 50, "+")
        lines.append(
            f"  {node:>6s} |{green}{red}  "
            f"FIT={fit.fit_total:.3f} "
            f"(multi-bit {100 * fit.multibit_share:.1f}%)"
        )
    return "\n".join(lines)


# -- Incident journal ------------------------------------------------------------


def render_incidents(
    incidents: list,
    verbose: bool = False,
    *,
    total: int | None = None,
    selected: list | None = None,
) -> str:
    """Human-readable view of an incident journal.

    *incidents* is a list of :class:`repro.core.supervisor.Incident`.  The
    summary line counts every incident by kind; *verbose* appends every
    stored traceback (the repro bundle's human half — the machine half is
    the JSONL record itself).  When *incidents* is a type-filtered view
    (``incidents --type ...``), pass the journal's *total* and the
    *selected* kinds so the summary says what was filtered out.
    """
    filter_note = (
        f" (showing types {','.join(selected)} of {total} total)"
        if selected is not None and total is not None else ""
    )
    if not incidents:
        return (
            f"no incidents recorded{filter_note}" if filter_note
            else "no incidents recorded"
        )
    by_kind: dict[str, int] = {}
    by_error: dict[str, int] = {}
    for incident in incidents:
        by_kind[incident.kind] = by_kind.get(incident.kind, 0) + 1
        by_error[incident.error_type] = by_error.get(incident.error_type, 0) + 1
    lines = [
        f"{len(incidents)} incident(s): "
        + ", ".join(f"{n} {kind}" for kind, n in sorted(by_kind.items()))
        + filter_note,
        "error types: "
        + ", ".join(f"{n}x {err}" for err, n in sorted(by_error.items())),
        "",
    ]
    rows = []
    for index, incident in enumerate(incidents):
        message = incident.message
        if len(message) > 48:
            message = message[:45] + "..."
        rows.append([
            str(index), incident.kind, incident.cell_label(),
            str(incident.sample_index), str(incident.inject_cycle),
            incident.error_type, message,
        ])
    lines.append(format_table(
        ["#", "kind", "cell", "sample", "cycle", "error", "message"], rows
    ))
    if verbose:
        for index, incident in enumerate(incidents):
            lines.append("")
            lines.append(f"--- incident {index}: {incident.cell_label()} "
                         f"sample {incident.sample_index} "
                         f"(cell seed {incident.cell_seed!r}) ---")
            lines.append(incident.traceback.rstrip())
    return "\n".join(lines)


def _format_seconds(seconds: float) -> str:
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def render_telemetry(summary: dict) -> str:
    """Human-readable view of a ``telemetry.json`` summary.

    Input is the dict shape produced by
    :meth:`repro.obs.telemetry.Telemetry.summary` (see DESIGN.md §8):
    counters, gauges, duration histograms, and the derived figures.
    """
    derived = summary.get("derived", {})
    wall = summary.get("wall_seconds", 0.0)
    header = f"wall {wall:.2f}s"
    rate = derived.get("samples_per_sec")
    if rate is not None:
        header += f" · {rate:.1f} samples/s"
    utilization = derived.get("worker_utilization")
    if utilization is not None:
        header += f" · worker utilization {utilization * 100:.0f}%"
    pruning = derived.get("pruning_hit_rate")
    if pruning is not None:
        header += f" · {pruning * 100:.1f}% pruned"
    fabric = derived.get("fabric")
    if fabric:
        header += (
            f" · fabric: {fabric.get('joins', 0)} join(s), "
            f"{fabric.get('lease_expired', 0)} lease(s) expired"
        )
    lines = [header, ""]
    counters = summary.get("counters", {})
    if counters:
        lines.append(format_table(
            ["counter", "value"],
            [[name, f"{counters[name]:,}"] for name in sorted(counters)],
        ))
        lines.append("")
    gauges = summary.get("gauges", {})
    # Adaptive per-cell gauges pair up (ci + samples per cell); render them
    # as one table instead of interleaving them into the generic list.
    adaptive_ci = {
        name[len("adaptive.ci."):]: value
        for name, value in gauges.items() if name.startswith("adaptive.ci.")
    }
    adaptive_samples = {
        name[len("adaptive.samples."):]: value
        for name, value in gauges.items()
        if name.startswith("adaptive.samples.")
    }
    generic_gauges = {
        name: value for name, value in gauges.items()
        if not name.startswith("adaptive.")
    }
    if generic_gauges:
        lines.append(format_table(
            ["gauge", "value"],
            [[name, f"{generic_gauges[name]:g}"]
             for name in sorted(generic_gauges)],
        ))
        lines.append("")
    if adaptive_ci:
        lines.append(format_table(
            ["adaptive cell", "samples", "ci half-width"],
            [[cell, f"{adaptive_samples.get(cell, 0):g}",
              f"±{adaptive_ci[cell]:.4f}"]
             for cell in sorted(adaptive_ci)],
        ))
        lines.append("")
    histograms = summary.get("histograms", {})
    if histograms:
        rows = []
        for name in sorted(histograms):
            blob = histograms[name]
            count = blob["count"]
            mean = blob["sum"] / count if count else 0.0
            rows.append([
                name, str(count), _format_seconds(blob["sum"]),
                _format_seconds(mean),
            ])
        lines.append(format_table(
            ["histogram", "count", "total", "mean"], rows
        ))
        lines.append("")
    rates = []
    for group, label in (("lru_hit_rates", "lru"), ("mem_hit_rates", "mem")):
        for name, value in sorted(derived.get(group, {}).items()):
            if value is not None:
                rates.append([f"{label}.{name}", f"{value * 100:.2f}%"])
    if rates:
        lines.append(format_table(["hit rate", "value"], rates))
    dropped = summary.get("dropped_trace_events", 0)
    if dropped:
        lines.append("")
        lines.append(f"warning: {dropped} trace event(s) dropped at the "
                     f"buffer cap")
    return "\n".join(lines).rstrip()
