"""The paper's contribution: multi-bit fault injection + AVF/FIT analysis.

This package is the GeFIN-equivalent layer of the reproduction:

* :mod:`repro.core.faults` / :mod:`repro.core.generator` — spatial multi-bit
  fault masks: N bit flips inside an X×Y cluster placed uniformly at random
  in a structure's bit array (§III.B of the paper);
* :mod:`repro.core.injector` — applies masks to the live structures of a
  running :class:`~repro.cpu.system.System`;
* :mod:`repro.core.classify` — the five fault-effect classes
  (Masked / SDC / Crash / Timeout / Assert, §III.C);
* :mod:`repro.core.campaign` — statistical fault-injection campaigns over
  (workload × component × cardinality) cells, with golden-run caching and
  disk-cacheable results;
* :mod:`repro.core.parallel` — the multi-core campaign executor: cell
  sharding with workload affinity, single-writer store, worker-crash
  containment, byte-identical to the serial path;
* :mod:`repro.core.sampling` — Leveugle et al. sample-size / error-margin
  statistics (§III.A);
* :mod:`repro.core.avf` — AVF math: per-cell AVF, execution-time-weighted
  AVF (Eq. 2), per-node aggregate AVF (Eq. 3), vulnerability increases
  (Tables IV/V);
* :mod:`repro.core.technology` — Tables VI (MBU rates per node) and VII
  (raw FIT/bit per node);
* :mod:`repro.core.fit` — FIT rates (Eq. 4) and the multi-bit FIT share
  (Figs. 7/8);
* :mod:`repro.core.report` — text renderers for every table and figure.
"""

from repro.core.avf import ClassCounts, weighted_avf
from repro.core.campaign import (
    CampaignConfig,
    CampaignResult,
    CellResult,
    run_campaign,
    run_one_injection,
)
from repro.core.classify import FaultClass, classify
from repro.core.faults import FaultMask
from repro.core.generator import ClusterShape, MultiBitFaultGenerator
from repro.core.injector import inject
from repro.core.occupancy import profile_occupancy, snapshot_occupancy
from repro.core.protection import (
    SECDED,
    ProtectionOutcome,
    ProtectionScheme,
    evaluate_scheme,
    secded_interleaved,
)
from repro.core.sampling import error_margin, sample_size
from repro.core.technology import MBU_RATES, RAW_FIT_PER_BIT, TECHNOLOGY_NODES

__all__ = [
    "MBU_RATES",
    "RAW_FIT_PER_BIT",
    "TECHNOLOGY_NODES",
    "CampaignConfig",
    "CampaignResult",
    "CellResult",
    "ClassCounts",
    "ClusterShape",
    "FaultClass",
    "FaultMask",
    "SECDED",
    "ProtectionOutcome",
    "ProtectionScheme",
    "MultiBitFaultGenerator",
    "classify",
    "error_margin",
    "evaluate_scheme",
    "secded_interleaved",
    "inject",
    "profile_occupancy",
    "run_campaign",
    "run_one_injection",
    "sample_size",
    "snapshot_occupancy",
    "weighted_avf",
]
