"""Error-protection modelling: what ECC would do with each fault mask.

The paper's stated purpose is steering protection decisions ("based on the
findings of our analysis informed multi-bit error protection can be
implemented"), and its related work covers the classic responses to
spatial MBUs: SECDED codes and physical bit interleaving (George et al.,
Maniatakos et al.).  This module models those schemes on the fault masks
the generator produces:

* a structure row is divided into *protection words* (default 32 data
  bits each, SECDED implied check bits not stored);
* with interleaving factor *k*, physically adjacent columns belong to
  *k* different protection words (bit ``c`` maps to word ``c % k`` within
  its row group), so a horizontal cluster of flips spreads across words;
* per word, the code's outcome depends only on the number of flipped bits
  it covers: SECDED corrects 1, detects 2, and is blind to the error
  pattern beyond that (modelled pessimistically as silent escape).

The headline effect this reproduces: SECDED alone is defeated by adjacent
double-bit upsets (every double in the same word is only *detected*, and
triples can escape), while interleaving ≥ the cluster width restores
single-bit-per-word patterns that SECDED corrects — which is exactly why
interleaving is the canonical MBU countermeasure.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.core.faults import FaultMask
from repro.core.generator import MultiBitFaultGenerator
from repro.mem.sram import InjectableArray


class ProtectionOutcome(enum.Enum):
    """What the protection scheme makes of one fault mask."""

    CORRECTED = "corrected"   # all words correctable: fault fully masked
    DETECTED = "detected"     # >=1 word detected-uncorrectable (DUE)
    ESCAPED = "escaped"       # >=1 word silently miscorrected / missed


@dataclass(frozen=True)
class ProtectionScheme:
    """A per-word code plus a physical interleaving factor.

    ``correct_up_to`` / ``detect_up_to`` describe the code: SECDED is
    (1, 2); simple parity is (0, 1); no code is (0, 0).
    """

    name: str
    word_bits: int = 32
    correct_up_to: int = 1
    detect_up_to: int = 2
    interleave: int = 1

    def __post_init__(self) -> None:
        if self.word_bits <= 0 or self.interleave <= 0:
            raise ValueError("word_bits and interleave must be positive")
        if self.detect_up_to < self.correct_up_to:
            raise ValueError("detect_up_to must be >= correct_up_to")

    def word_of(self, row: int, col: int) -> tuple[int, int]:
        """Protection word covering physical bit (row, col).

        With interleaving *k*, each group of ``word_bits * k`` adjacent
        columns holds *k* words; column ``c`` belongs to word ``c % k`` of
        its group.
        """
        group_width = self.word_bits * self.interleave
        group = col // group_width
        return (row, group * self.interleave + (col % self.interleave))

    def classify(self, mask: FaultMask) -> ProtectionOutcome:
        """Outcome of the scheme against one fault mask."""
        per_word = Counter(self.word_of(row, col) for row, col in mask.bits)
        worst = ProtectionOutcome.CORRECTED
        for flipped in per_word.values():
            if flipped <= self.correct_up_to:
                continue
            if flipped <= self.detect_up_to:
                if worst is ProtectionOutcome.CORRECTED:
                    worst = ProtectionOutcome.DETECTED
            else:
                return ProtectionOutcome.ESCAPED
        return worst


#: Ready-made schemes.
NO_PROTECTION = ProtectionScheme("none", correct_up_to=0, detect_up_to=0)
PARITY = ProtectionScheme("parity", correct_up_to=0, detect_up_to=1)
SECDED = ProtectionScheme("secded")


def secded_interleaved(factor: int) -> ProtectionScheme:
    """SECDED with *factor*-way physical bit interleaving."""
    return ProtectionScheme(f"secded-x{factor}", interleave=factor)


@dataclass
class ProtectionStats:
    """Monte-Carlo outcome fractions of a scheme against a fault model."""

    scheme: ProtectionScheme
    cardinality: int
    trials: int
    corrected: int = 0
    detected: int = 0
    escaped: int = 0

    def record(self, outcome: ProtectionOutcome) -> None:
        if outcome is ProtectionOutcome.CORRECTED:
            self.corrected += 1
        elif outcome is ProtectionOutcome.DETECTED:
            self.detected += 1
        else:
            self.escaped += 1

    @property
    def correct_fraction(self) -> float:
        return self.corrected / self.trials if self.trials else 0.0

    @property
    def detect_fraction(self) -> float:
        return self.detected / self.trials if self.trials else 0.0

    @property
    def escape_fraction(self) -> float:
        return self.escaped / self.trials if self.trials else 0.0


def evaluate_scheme(
    scheme: ProtectionScheme,
    target: InjectableArray,
    cardinality: int,
    trials: int = 1000,
    seed: int | str = 0,
    generator: MultiBitFaultGenerator | None = None,
) -> ProtectionStats:
    """Monte-Carlo a scheme against the spatial-MBU fault model.

    Draws *trials* masks of the given cardinality for *target*'s geometry
    and classifies each — no simulation needed, since the code's response
    depends only on the bit pattern.
    """
    gen = generator or MultiBitFaultGenerator(seed=f"protection:{seed}")
    stats = ProtectionStats(scheme, cardinality, trials)
    for _ in range(trials):
        stats.record(scheme.classify(gen.generate(target, cardinality)))
    return stats


def residual_avf(avf: float, stats: ProtectionStats) -> float:
    """AVF remaining after protection, counting only silent escapes.

    Corrected faults are masked by construction; detected faults become
    DUEs (a different, *detected* failure class, excluded from AVF like
    the paper's protected-structure convention); only escapes can still
    corrupt execution, at the unprotected structure's conditional rate.
    """
    return avf * stats.escape_fraction
