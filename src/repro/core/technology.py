"""Technology-node data: Tables VI and VII of the paper.

Both tables originate in Ibe et al. (IEEE TED 2010) — neutron-induced MBU
cardinality rates and raw per-bit FIT rates for 250 nm through 22 nm SRAM
design rules.  The paper folds 4-bit-and-larger upsets (whose rates are
near zero) into the triple-bit class; these numbers already include that.
"""

from __future__ import annotations

from repro.errors import ConfigError

#: Fabrication nodes, oldest first.
TECHNOLOGY_NODES = (
    "250nm", "180nm", "130nm", "90nm", "65nm", "45nm", "32nm", "22nm",
)

#: Table VI — probability that a particle-induced upset is a single-,
#: double- or triple-bit fault, per node.  Rows sum to 1.
MBU_RATES: dict[str, tuple[float, float, float]] = {
    "250nm": (1.000, 0.000, 0.000),
    "180nm": (0.964, 0.036, 0.000),
    "130nm": (0.934, 0.044, 0.022),
    "90nm": (0.878, 0.096, 0.026),
    "65nm": (0.816, 0.161, 0.023),
    "45nm": (0.722, 0.230, 0.048),
    "32nm": (0.653, 0.291, 0.056),
    "22nm": (0.553, 0.344, 0.103),
}

#: Table VII — raw soft-error FIT rate per bit, per node.
RAW_FIT_PER_BIT: dict[str, float] = {
    "250nm": 47e-8,
    "180nm": 85e-8,
    "130nm": 106e-8,
    "90nm": 100e-8,
    "65nm": 85e-8,
    "45nm": 58e-8,
    "32nm": 38e-8,
    "22nm": 23e-8,
}


def mbu_rates(node: str) -> tuple[float, float, float]:
    """(single, double, triple) upset probabilities for *node*."""
    try:
        return MBU_RATES[node]
    except KeyError:
        raise ConfigError(
            f"unknown technology node {node!r}; "
            f"known: {', '.join(TECHNOLOGY_NODES)}"
        ) from None


def raw_fit_per_bit(node: str) -> float:
    """Raw FIT/bit for *node* (Table VII)."""
    try:
        return RAW_FIT_PER_BIT[node]
    except KeyError:
        raise ConfigError(
            f"unknown technology node {node!r}; "
            f"known: {', '.join(TECHNOLOGY_NODES)}"
        ) from None
