"""Parallel campaign execution: multi-core cell scheduler, deterministic merge.

The campaign grid (15 workloads × 6 components × 3 cardinalities in the
paper's setup) is embarrassingly parallel at cell granularity: every cell
seeds its own fault generator and injection-cycle RNG from
``f"{seed}:{workload}:{component}:{cardinality}"``, so no cell's outcome
depends on any other cell's execution, and a parallel run is bit-identical
to the serial one *by construction* — the scheduler only has to merge
results back into the canonical ``config.cells()`` order.

Architecture (one parent, N workers):

* **Sharding with workload affinity.**  Cells are grouped by workload and
  groups are handed to workers whole, so a worker builds the expensive
  :class:`~repro.core.campaign.CheckpointedWorkload` snapshot set once per
  workload instead of once per cell.  When there are fewer workloads than
  workers, the largest groups are split (the halves still share a
  workload, and each worker's golden/checkpoint caches stay warm).
* **Single-writer store.**  Workers never touch the
  :class:`~repro.core.campaign.CampaignStore`; they stream ``CellResult``s
  and mid-cell checkpoints over a result queue to the parent, which is the
  only process appending to the store journal and the incident journal —
  the crash-safety invariants of the store (one writer, line-atomic
  appends, atomic compaction) survive parallelism untouched.
* **Incident forwarding.**  Each worker wraps injections in its own
  :class:`~repro.core.supervisor.Supervisor` whose journal is a queue
  proxy; the parent appends forwarded incidents to the real journal and
  enforces the *global* ``max_incidents`` budget and ``--strict``.
* **Worker-crash containment.**  A worker that dies outright (segfault,
  OOM-kill, ...) becomes a journalled incident of kind ``worker-crash``;
  its unfinished cells are rescheduled (resuming from the last streamed
  checkpoint, so no samples are lost and the result is still
  bit-identical) and a replacement worker is spawned.  Crash incidents
  count against ``max_incidents``/``strict`` but not against the
  result's lost-sample ``incidents`` field — a rescheduled cell completes
  with every sample intact.
* **Telemetry streaming.**  When the parent has :mod:`repro.obs`
  telemetry enabled, each worker runs a fresh process-local registry and
  tracer, ships a per-cell metric delta plus drained trace events after
  every completed cell (and worker-scoped deltas at batch boundaries),
  and the parent merges the deltas in canonical cell order — the merged
  ``sim.*`` counters equal the serial run's exactly.
* **Graceful Ctrl-C.**  On ``KeyboardInterrupt`` the parent sets a stop
  event; workers finish their current sample, flush one final mid-cell
  checkpoint through the queue, and exit.  The parent drains the queue,
  persists every checkpoint, compacts the store and re-raises — rerunning
  with ``--resume`` continues bit-identically.

Ordering: the progress callback fires in canonical cell order (the parent
buffers out-of-order completions), so ``--jobs N`` produces the same
progress sequence — and the same ``CampaignResult.to_json()`` bytes — as
the serial path.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import signal
import time
import traceback as traceback_module
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro import obs
from repro.obs.metrics import subtract_snapshot

from repro.core.campaign import (
    DEFAULT_CHECKPOINT_EVERY,
    CampaignConfig,
    CampaignResult,
    CampaignStore,
    CellCheckpoint,
    CellResult,
    ProgressFn,
    run_cell,
)
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.errors import (
    CampaignInterrupted,
    IncidentBudgetExceeded,
    InjectionIncident,
    WorkerCrash,
)

#: How long the parent waits on the result queue before polling worker
#: liveness.  Small enough that a crashed worker is noticed promptly,
#: large enough not to busy-wait.
_POLL_INTERVAL = 0.1

#: Replacement workers spawned after crashes, per original worker slot.
#: A deterministic crash (same cell kills every worker that touches it)
#: must converge to an error instead of respawning forever.
_RESTARTS_PER_WORKER = 2


def _context() -> multiprocessing.context.BaseContext:
    """Fork when the platform offers it (cheap, inherits warm caches);
    spawn otherwise.  Determinism is identical either way — workers
    re-derive everything from the cell seed."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass(frozen=True)
class _CellTask:
    """One cell's marching orders, parent → worker."""

    index: int  # position in config.cells() — the merge key
    workload: str
    component: str
    cardinality: int
    cell_key: str
    partial: dict | None  # serialised CellCheckpoint to resume from


class _QueueJournal:
    """Worker-side incident journal: forwards every record to the parent."""

    def __init__(self, result_queue, worker_id: int) -> None:
        self._queue = result_queue
        self._worker_id = worker_id
        self.incidents: list = []  # Supervisor reads len() nowhere, kept for shape

    def append(self, incident) -> None:
        self._queue.put(("incident", self._worker_id, incident.as_dict()))


class _QueueStore:
    """Worker-side store proxy: resume data in, checkpoints out.

    Duck-types the two methods :func:`run_cell` uses.  ``get_partial``
    serves the checkpoint the parent attached to the task; ``put_partial``
    streams new checkpoints to the parent, the single real-store writer.
    """

    def __init__(self, result_queue, worker_id: int, task: _CellTask) -> None:
        self._queue = result_queue
        self._worker_id = worker_id
        self._task = task

    def get_partial(self, key: str) -> CellCheckpoint | None:
        if self._task.partial is None or key != self._task.cell_key:
            return None
        try:
            return CellCheckpoint.from_dict(self._task.partial)
        except (KeyError, ValueError, TypeError):  # pragma: no cover
            return None

    def put_partial(self, key: str, checkpoint: CellCheckpoint) -> None:
        self._queue.put(
            ("partial", self._worker_id, self._task.index, key,
             checkpoint.as_dict())
        )


class _TelemetryShipper:
    """Worker-side telemetry outbox: per-cell metric deltas + trace events.

    After every finished cell the worker snapshots its local registry,
    ships the delta since the previous snapshot (tagged with the cell's
    canonical index, so the parent can merge in canonical cell order) and
    drains its trace buffer into the same queue message.  Worker-scoped
    activity between cells (task-queue waits, batch spans) ships with
    ``index=None`` at batch boundaries and shutdown.
    """

    def __init__(self, result_queue, worker_id: int, telemetry) -> None:
        self._queue = result_queue
        self._worker_id = worker_id
        self._telemetry = telemetry
        self._base = (
            telemetry.metrics.as_dict() if telemetry is not None else None
        )

    def ship(self, index: int | None = None) -> None:
        if self._telemetry is None:
            return
        snapshot = self._telemetry.metrics.as_dict()
        delta = subtract_snapshot(snapshot, self._base)
        self._base = snapshot
        events = self._telemetry.tracer.drain()
        if index is None and not events and not any(
            delta[kind] for kind in ("counters", "histograms")
        ):
            return
        self._queue.put(
            ("telemetry", self._worker_id, index, delta, events)
        )


def _worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    config: CampaignConfig,
    core_cfg: CoreConfig,
    supervised: bool,
    strict: bool,
    watchdog: bool,
    checkpoint_every: int | None,
    telemetry_enabled: bool,
    stop_event,
    crash_spec: dict | None,
    verify: bool = False,
) -> None:
    """Worker loop: request a task batch, run its cells, stream results.

    SIGINT is ignored here — shutdown is the parent's job, delivered via
    *stop_event* and probed between samples so the final checkpoint of an
    interrupted cell still reaches the parent.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    # Fresh per-worker telemetry: anything inherited over fork belongs to
    # the parent and must not be double-reported from here.
    obs.disable()
    tel = obs.enable() if telemetry_enabled else None
    shipper = _TelemetryShipper(result_queue, worker_id, tel)
    supervisor = None
    if supervised:
        from repro.core.supervisor import Supervisor

        supervisor = Supervisor(
            journal=_QueueJournal(result_queue, worker_id),
            max_incidents=None,  # the parent enforces the global budget
            strict=strict,
            watchdog=watchdog,
        )
    result_queue.put(("ready", worker_id))
    while True:
        wait_begin = time.perf_counter() if tel is not None else 0.0
        try:
            batch = task_queue.get(timeout=60.0)
        except queue_module.Empty:
            if stop_event.is_set():  # pragma: no cover - parent gave up
                return
            continue  # pragma: no cover - parent merely busy
        if tel is not None:
            tel.metrics.histogram("time.worker.task_wait").observe(
                time.perf_counter() - wait_begin
            )
        if batch is None:
            shipper.ship()
            result_queue.put(("bye", worker_id))
            return
        with obs.span("worker-batch", worker=worker_id, cells=len(batch)):
            for task in batch:
                if stop_event.is_set():
                    shipper.ship()
                    result_queue.put(("stopped", worker_id))
                    return
                if crash_spec is not None and crash_spec["cell"] == [
                    task.workload, task.component, task.cardinality
                ]:
                    # Test hook: die hard (no cleanup, no queue message) the
                    # first time any worker reaches this cell, exactly like a
                    # segfault would.  The flag file keeps the rescheduled
                    # cell from killing its next worker too.
                    flag = Path(crash_spec["flag"])
                    if not flag.exists():
                        flag.touch()
                        os._exit(crash_spec.get("exit_code", 64))
                result_queue.put(("start", worker_id, task.index))
                store_proxy = _QueueStore(result_queue, worker_id, task)
                try:
                    cell = run_cell(
                        task.workload, task.component, task.cardinality,
                        config, core_cfg,
                        supervisor=supervisor,
                        store=store_proxy, cell_key=task.cell_key,
                        checkpoint_every=checkpoint_every, resume=True,
                        stop=stop_event.is_set,
                        verify=verify,
                    )
                except CampaignInterrupted:
                    shipper.ship()
                    result_queue.put(("stopped", worker_id))
                    return
                except InjectionIncident as exc:
                    # --strict escalation: the incident itself was already
                    # forwarded by the queue journal; tell the parent to
                    # abort.
                    shipper.ship()
                    result_queue.put(
                        ("fatal", worker_id, task.index,
                         type(exc).__name__, str(exc))
                    )
                    return
                except Exception as exc:  # noqa: BLE001 - must not hang the pool
                    shipper.ship()
                    result_queue.put(
                        ("fatal", worker_id, task.index, type(exc).__name__,
                         f"{exc}\n{traceback_module.format_exc()}")
                    )
                    return
                # Telemetry first, completion second: queue order from one
                # worker is FIFO, so the parent still holds the cell in
                # pending_done when its metric delta arrives.
                shipper.ship(task.index)
                result_queue.put(
                    ("cell", worker_id, task.index, cell.as_dict())
                )
        shipper.ship()
        result_queue.put(("ready", worker_id))


def _affinity_batches(tasks: list[_CellTask], jobs: int) -> list[list[_CellTask]]:
    """Group tasks by workload, splitting large groups to feed all workers.

    Whole-workload batches maximise checkpoint-cache reuse; splitting only
    kicks in when there are fewer workloads than workers, and the split
    halves still share a workload.
    """
    by_workload: dict[str, list[_CellTask]] = {}
    for task in tasks:
        by_workload.setdefault(task.workload, []).append(task)
    batches = list(by_workload.values())
    while len(batches) < min(jobs, len(tasks)):
        largest = max(range(len(batches)), key=lambda i: len(batches[i]))
        if len(batches[largest]) < 2:
            break
        group = batches.pop(largest)
        half = len(group) // 2
        batches.insert(largest, group[half:])
        batches.insert(largest, group[:half])
    # Longest batches first: better tail latency under dynamic dispatch.
    batches.sort(key=len, reverse=True)
    return batches


class _Pool:
    """The worker processes plus everything needed to replace one."""

    def __init__(
        self,
        ctx,
        jobs: int,
        worker_args: tuple,
    ) -> None:
        self.ctx = ctx
        self.worker_args = worker_args
        self.result_queue = worker_args[0]
        self.workers: dict[int, object] = {}
        self.task_queues: dict[int, object] = {}
        self.assigned: dict[int, list[_CellTask]] = {}
        self.finished: set[int] = set()
        self._next_id = 0
        self.restarts = 0
        self.max_restarts = jobs * _RESTARTS_PER_WORKER
        for _ in range(jobs):
            self.spawn()

    def spawn(self) -> int:
        worker_id = self._next_id
        self._next_id += 1
        task_queue = self.ctx.Queue()
        result_queue, config, core_cfg, supervised, strict, watchdog, \
            checkpoint_every, telemetry_enabled, stop_event, \
            crash_spec, verify = self.worker_args
        proc = self.ctx.Process(
            target=_worker_main,
            args=(worker_id, task_queue, result_queue, config, core_cfg,
                  supervised, strict, watchdog, checkpoint_every,
                  telemetry_enabled, stop_event, crash_spec, verify),
            daemon=True,
        )
        proc.start()
        tel = obs.active()
        if tel is not None:
            tel.metrics.counter("exec.workers_spawned").inc()
        self.workers[worker_id] = proc
        self.task_queues[worker_id] = task_queue
        self.assigned[worker_id] = []
        return worker_id

    def live_ids(self) -> list[int]:
        return [wid for wid in self.workers if wid not in self.finished]

    def dead_ids(self) -> list[int]:
        return [
            wid for wid, proc in self.workers.items()
            if wid not in self.finished and not proc.is_alive()
        ]

    def retire(self, worker_id: int) -> None:
        self.finished.add(worker_id)

    def shutdown(self, timeout: float = 5.0) -> None:
        for worker_id in self.live_ids():
            try:
                self.task_queues[worker_id].put_nowait(None)
            except Exception:  # pragma: no cover - full/broken queue
                pass
        for proc in self.workers.values():
            proc.join(timeout=timeout)
        for proc in self.workers.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)


def run_campaign_parallel(
    config: CampaignConfig,
    jobs: int,
    progress: ProgressFn | None = None,
    store: CampaignStore | None = None,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
    *,
    supervisor=None,
    checkpoint_every: int | None = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = True,
    verify: bool = False,
    _crash_spec: dict | None = None,
) -> CampaignResult:
    """Run a campaign across *jobs* worker processes.

    Drop-in equivalent of the serial :func:`~repro.core.campaign.run_campaign`
    body: same store semantics (cached cells are served without
    simulation, new cells are persisted as they finish), same supervisor
    contract (*supervisor*'s journal receives every incident and its
    ``incident_count`` grows), same result — byte-identical JSON.

    *_crash_spec* is a test hook: ``{"cell": [w, c, k], "flag": path}``
    makes the first worker that reaches that cell die unannounced, which
    exercises crash containment and rescheduling deterministically.
    """
    cells = config.cells()
    total = len(cells)
    results: dict[int, CellResult] = {}
    tasks: list[_CellTask] = []
    keys: dict[int, str] = {}
    for index, (workload, component, cardinality) in enumerate(cells):
        key = config.cell_key(workload, component, cardinality, core_cfg)
        keys[index] = key
        cached = store.get(key) if store is not None else None
        if cached is not None:
            results[index] = cached
            continue
        partial = None
        if store is not None and resume:
            checkpoint = store.get_partial(key)
            if checkpoint is not None:
                partial = checkpoint.as_dict()
        tasks.append(_CellTask(
            index=index, workload=workload, component=component,
            cardinality=cardinality, cell_key=key, partial=partial,
        ))

    emitted = 0

    def emit_progress() -> int:
        nonlocal emitted
        while emitted in results:
            if progress is not None:
                progress(emitted + 1, total, results[emitted])
            emitted += 1
        return emitted

    emit_progress()
    lost_sample_incidents = 0
    if not tasks:
        return CampaignResult(
            [results[i] for i in range(total)],
            incidents=lost_sample_incidents,
        )

    from repro.core.supervisor import Incident

    strict = bool(getattr(supervisor, "strict", False))
    watchdog = bool(getattr(supervisor, "watchdog", True))
    max_incidents = getattr(supervisor, "max_incidents", None)
    journal = getattr(supervisor, "journal", None)

    def record_incident(incident: Incident) -> None:
        if journal is not None:
            journal.append(incident)
        if supervisor is not None:
            supervisor.incident_count += 1

    parent_tel = obs.active()
    #: Per-cell metric deltas (by canonical index) and worker-scoped
    #: deltas, merged into the parent registry once the grid completes —
    #: cells in canonical order, then workers in spawn order.
    cell_deltas: dict[int, dict] = {}
    worker_deltas: list[dict] = []

    ctx = _context()
    stop_event = ctx.Event()
    result_queue = ctx.Queue()
    jobs = max(1, min(jobs, len(tasks)))
    batches = _affinity_batches(tasks, jobs)
    pool = _Pool(ctx, min(jobs, len(batches)), (
        result_queue, config, core_cfg, supervisor is not None, strict,
        watchdog, checkpoint_every, parent_tel is not None, stop_event,
        _crash_spec, verify,
    ))
    if parent_tel is not None:
        parent_tel.metrics.gauge("exec.scheduler.batches").set_max(
            len(batches)
        )
        parent_tel.metrics.counter("exec.scheduler.cells_cached").inc(
            len(results)
        )
    # Parent-held copies of the freshest checkpoint per in-flight cell:
    # what a rescheduled cell resumes from when its worker died between
    # store writes and completion.
    live_partials: dict[int, dict] = {task.index: task.partial for task in tasks}
    pending_done = {task.index for task in tasks}
    total_incidents = 0
    abort_exc: Exception | None = None

    def handle_crash(worker_id: int) -> None:
        nonlocal total_incidents, abort_exc
        proc = pool.workers[worker_id]
        pool.retire(worker_id)
        remaining = [
            task for task in pool.assigned[worker_id]
            if task.index in pending_done
        ]
        pool.assigned[worker_id] = []
        label = (
            f"{remaining[0].workload}/{remaining[0].component}/"
            f"{remaining[0].cardinality}-bit" if remaining else "idle"
        )
        first = remaining[0] if remaining else None
        incident = Incident(
            kind="worker-crash",
            workload=first.workload if first else "-",
            component=first.component if first else "-",
            cardinality=first.cardinality if first else 0,
            cell_seed=(
                f"{config.seed}:{first.workload}:{first.component}:"
                f"{first.cardinality}" if first else ""
            ),
            sample_index=-1,
            inject_cycle=-1,
            mask=None,
            error_type="WorkerCrash",
            message=(
                f"worker {worker_id} (pid {proc.pid}) died with exit code "
                f"{proc.exitcode} while running {label}; "
                f"{len(remaining)} cell(s) rescheduled"
            ),
            traceback="",
        )
        record_incident(incident)
        total_incidents += 1
        if parent_tel is not None:
            # Worker crashes are contained in the parent, so they are
            # counted here — never by a worker-side supervisor.
            parent_tel.metrics.counter("exec.incidents").inc()
            parent_tel.metrics.counter("exec.incidents.worker-crash").inc()
            parent_tel.tracer.instant(
                "worker-crash", worker=worker_id, exitcode=proc.exitcode,
                rescheduled=len(remaining),
            )
        if strict:
            abort_exc = InjectionIncident(
                f"[strict] {incident.message}"
            )
            return
        if max_incidents is not None and total_incidents > max_incidents:
            abort_exc = IncidentBudgetExceeded(
                f"{total_incidents} incidents exceed the budget of "
                f"{max_incidents} (last: {incident.message})"
            )
            return
        if pool.restarts >= pool.max_restarts:
            abort_exc = WorkerCrash(
                f"workers crashed {pool.restarts + 1} times (budget "
                f"{pool.max_restarts}); the crash appears deterministic — "
                f"last: {incident.message}"
            )
            return
        if remaining:
            refreshed = [
                _CellTask(
                    index=task.index, workload=task.workload,
                    component=task.component, cardinality=task.cardinality,
                    cell_key=task.cell_key,
                    partial=live_partials.get(task.index),
                )
                for task in remaining
            ]
            batches.append(refreshed)
        pool.restarts += 1
        pool.spawn()

    try:
        while pending_done and abort_exc is None:
            try:
                message = result_queue.get(timeout=_POLL_INTERVAL)
            except queue_module.Empty:
                for worker_id in pool.dead_ids():
                    handle_crash(worker_id)
                    if abort_exc is not None:
                        break
                continue
            kind = message[0]
            if kind == "ready":
                worker_id = message[1]
                if worker_id in pool.finished:
                    continue
                if batches:
                    batch = batches.pop(0)
                    pool.assigned[worker_id] = batch
                    pool.task_queues[worker_id].put(batch)
                else:
                    pool.assigned[worker_id] = []
                    pool.task_queues[worker_id].put(None)
            elif kind == "start":
                pass  # liveness breadcrumb only
            elif kind == "partial":
                _, _, index, key, state = message
                live_partials[index] = state
                if store is not None and index in pending_done:
                    store.put_partial(key, CellCheckpoint.from_dict(state))
            elif kind == "cell":
                _, _, index, data = message
                if index not in pending_done:
                    continue  # duplicate from a raced reschedule
                cell = CellResult.from_dict(data)
                results[index] = cell
                pending_done.discard(index)
                live_partials.pop(index, None)
                if store is not None:
                    store.put(keys[index], cell)
                done = emit_progress()
                if parent_tel is not None:
                    # Completed cells buffered waiting for an earlier cell
                    # to land — how far ahead of canonical order the
                    # schedule ran.
                    parent_tel.metrics.gauge(
                        "exec.scheduler.reorder_depth"
                    ).set_max(float(len(results) - done))
            elif kind == "telemetry":
                _, worker_id, index, delta, events = message
                if parent_tel is not None:
                    if index is None:
                        worker_deltas.append(delta)
                    elif index in pending_done:
                        # Keep the first completion's telemetry, like the
                        # first "cell" message; a raced duplicate from a
                        # reschedule is dropped with its cell.
                        cell_deltas[index] = delta
                    parent_tel.tracer.adopt(events, tid=worker_id + 1)
            elif kind == "incident":
                _, _, data = message
                record_incident(Incident.from_dict(data))
                total_incidents += 1
                lost_sample_incidents += 1
                if (
                    max_incidents is not None
                    and total_incidents > max_incidents
                ):
                    abort_exc = IncidentBudgetExceeded(
                        f"{total_incidents} incidents exceed the budget of "
                        f"{max_incidents}; campaign statistics are no "
                        f"longer trustworthy"
                    )
            elif kind == "fatal":
                _, worker_id, index, error_type, detail = message
                pool.retire(worker_id)
                abort_exc = InjectionIncident(
                    f"worker {worker_id} aborted on cell "
                    f"{cells[index][0]}/{cells[index][1]}/{cells[index][2]}"
                    f"-bit: {error_type}: {detail}"
                )
            elif kind == "bye" or kind == "stopped":
                pool.retire(message[1])
    except KeyboardInterrupt:
        # Graceful drain: let every worker finish its current sample,
        # flush its final mid-cell checkpoint, and exit; persist whatever
        # arrives so --resume continues bit-identically.
        stop_event.set()
        _drain_for_checkpoints(result_queue, pool, store, keys,
                               live_partials, pending_done,
                               telemetry=(parent_tel, cell_deltas,
                                          worker_deltas))
        if store is not None:
            store.compact()
        raise
    finally:
        stop_event.set()
        pool.shutdown()
        if parent_tel is not None:
            # Workers flush their remaining telemetry (batch spans, queue
            # waits) on the shutdown "None" before exiting; shutdown() has
            # joined them, so everything is in the queue by now.
            _collect_leftover_telemetry(
                result_queue, parent_tel, cell_deltas, worker_deltas,
                pending_done,
            )
            # Canonical-order merge: same input order every run, and the
            # merge operators themselves are order-independent — either
            # property alone makes merged counters deterministic.
            for index in sorted(cell_deltas):
                parent_tel.metrics.merge_dict(cell_deltas[index])
            for delta in worker_deltas:
                parent_tel.metrics.merge_dict(delta)

    if abort_exc is not None:
        if store is not None:
            store.compact()
        raise abort_exc
    return CampaignResult(
        [results[i] for i in range(total)],
        incidents=lost_sample_incidents,
    )


def _collect_leftover_telemetry(
    result_queue,
    parent_tel,
    cell_deltas: dict[int, dict],
    worker_deltas: list[dict],
    pending_done: set[int],
) -> None:
    """Absorb telemetry still queued after every worker has exited.

    Only telemetry is kept: any other message type surviving to this
    point belongs to work that was already merged, rescheduled, or
    abandoned.  One Empty is conclusive — the senders are gone.
    """
    while True:
        try:
            message = result_queue.get(timeout=0.2)
        except queue_module.Empty:
            return
        if message[0] != "telemetry":
            continue
        _, worker_id, index, delta, events = message
        if index is None:
            worker_deltas.append(delta)
        elif index in pending_done:
            cell_deltas[index] = delta
        parent_tel.tracer.adopt(events, tid=worker_id + 1)


def _drain_for_checkpoints(
    result_queue,
    pool: _Pool,
    store: CampaignStore | None,
    keys: dict[int, str],
    live_partials: dict[int, dict],
    pending_done: set[int],
    timeout: float = 10.0,
    telemetry: tuple | None = None,
) -> None:
    """Absorb in-flight messages while stopping workers wind down.

    Everything durable that arrives during the drain — final mid-cell
    checkpoints, cells that completed in the shutdown window — is written
    to the store, so an interrupted ``--jobs N`` run loses at most the
    unsampled remainder of each worker's current injection.  *telemetry*
    (when given: ``(parent_tel, cell_deltas, worker_deltas)``) collects
    workers' final telemetry flushes, so the interrupted run's summary
    still covers the work actually done.
    """
    deadline = time.monotonic() + timeout
    while pool.live_ids() and time.monotonic() < deadline:
        try:
            message = result_queue.get(timeout=_POLL_INTERVAL)
        except queue_module.Empty:
            for worker_id in pool.dead_ids():
                pool.retire(worker_id)
            continue
        kind = message[0]
        if kind == "partial":
            _, _, index, key, state = message
            live_partials[index] = state
            if store is not None and index in pending_done:
                store.put_partial(key, CellCheckpoint.from_dict(state))
        elif kind == "cell":
            _, _, index, data = message
            if store is not None and index in pending_done:
                store.put(keys[index], CellResult.from_dict(data))
            pending_done.discard(index)
        elif kind == "telemetry" and telemetry is not None:
            _, worker_id, index, delta, events = message
            parent_tel, cell_deltas, worker_deltas = telemetry
            if parent_tel is not None:
                if index is None:
                    worker_deltas.append(delta)
                elif index in pending_done:
                    cell_deltas[index] = delta
                parent_tel.tracer.adopt(events, tid=worker_id + 1)
        elif kind == "ready":
            # A worker idling between batches: release it immediately.
            worker_id = message[1]
            if worker_id not in pool.finished:
                pool.task_queues[worker_id].put(None)
        elif kind in ("stopped", "bye"):
            pool.retire(message[1])
