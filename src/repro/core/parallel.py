"""Parallel campaign execution: resilient cell scheduler, deterministic merge.

The campaign grid (15 workloads × 6 components × 3 cardinalities in the
paper's setup) is embarrassingly parallel at cell granularity: every cell
seeds its own fault generator and injection-cycle RNG from
``f"{seed}:{workload}:{component}:{cardinality}"``, so no cell's outcome
depends on any other cell's execution, and a parallel run is bit-identical
to the serial one *by construction* — the scheduler only has to merge
results back into the canonical ``config.cells()`` order.

Architecture (one parent, N workers behind a pluggable backend):

* **Pluggable execution backends.**  The scheduler speaks to workers only
  through the :class:`~repro.core.executor.ExecutorBackend` seam — the
  in-process multiprocessing pool and the spawned-subprocess backend
  (length-prefixed frames over pipes) are interchangeable, and a
  multi-host backend plugs into the same two methods (``spawn``/``recv``).
* **Sharding with workload affinity.**  Cells are grouped by workload and
  groups are handed to workers whole, so a worker builds the expensive
  :class:`~repro.core.campaign.CheckpointedWorkload` snapshot set once per
  workload instead of once per cell.
* **Single-writer store.**  Workers never touch the
  :class:`~repro.core.campaign.CampaignStore`; they stream ``CellResult``s
  and mid-cell checkpoints to the parent, which is the only process
  appending to the store journal and the incident journal.
* **Heartbeats and derived deadlines.**  Workers heartbeat from the
  per-sample stop probe; a worker with in-flight cells that goes silent
  past the policy's hang timeout — or blows through a per-cell wall-clock
  deadline derived from golden-run cycle counts — is escalated:
  soft-cancel (stop at the next sample, flush a final checkpoint), then
  kill after a grace period of continued silence, then reschedule from
  the last streamed checkpoint.
* **Lease-based cell ownership.**  Every started cell is leased to its
  worker for a duration calibrated from golden-run cycles
  (``lease_factor`` × predicted wall, floored); any message from the
  owner renews its leases.  An expired lease — a partitioned or
  half-open connection whose heartbeats stopped arriving — forfeits
  ownership: the cell is reclaimed, journalled as a ``lease-expired``
  incident, and rescheduled from its last acked checkpoint, while a
  late duplicate result from the old owner is suppressed by the
  first-canonical-result-wins rule.  See DESIGN.md §12.
* **Bounded retry with backoff.**  Every reschedule (crash, hang, lost
  result) is journalled as a structured ``retry`` incident — attempt
  number, backoff delay, cause — and re-dispatched after an exponential
  backoff with deterministic jitter.  A cell that fails
  ``max_attempts`` times is **quarantined** as a ``poison-cell``
  incident: its last streamed checkpoint becomes its (short) result, the
  missing samples count as lost, and the campaign survives — aborting
  only under ``--strict``/``--max-incidents``.
* **Straggler speculation.**  When workers idle and one in-flight cell
  exceeds a multiple of the observed mean cell time, an idle worker
  re-executes it from the same checkpoint; the first completion wins and
  duplicates are discarded before the merge (cells are deterministic, so
  either copy carries the same bytes).
* **Graceful degradation.**  Worker deaths beyond the restart budget stop
  the respawning: the pool shrinks, and when it reaches zero the parent
  finishes the remaining (non-quarantined) cells serially in-process —
  a failing backend degrades a campaign's speed, never its answer.
* **Incident forwarding, telemetry streaming, ordered progress, graceful
  Ctrl-C/SIGTERM** — unchanged from the original engine: the parent
  enforces the global ``--max-incidents``/``--strict`` budget, merges
  per-cell metric deltas in canonical order, fires the progress callback
  in canonical order, and on SIGINT/SIGTERM drains final checkpoints so
  ``--resume`` continues bit-identically.

The deterministic chaos harness (:mod:`repro.core.chaos`,
``repro-campaign chaos``) injects worker kills, stalls, dropped and
duplicated queue messages and torn checkpoint writes into this fabric
and asserts the byte-identical-to-serial guarantee survives all of it.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from pathlib import Path

from repro import obs

from repro.core.campaign import (
    DEFAULT_CHECKPOINT_EVERY,
    CampaignConfig,
    CampaignResult,
    CampaignStore,
    CellCheckpoint,
    CellResult,
    ProgressFn,
    golden_run,
    run_cell,
)
from repro.core.avf import ClassCounts
from repro.core.chaos import ChaosEvent, ChaosSpec
from repro.core.executor import (
    CellTask,
    ExecutorBackend,
    ResiliencePolicy,
    WorkerHandle,
    WorkerSpec,
    create_backend,
)
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.errors import (
    CampaignInterrupted,
    IncidentBudgetExceeded,
    InjectionIncident,
    WorkerCrash,
)
from repro.workloads import get_workload

#: How long the parent waits on the backend before running its liveness /
#: escalation / retry tick.  Small enough that a crashed worker is noticed
#: promptly, large enough not to busy-wait.
_POLL_INTERVAL = 0.1

#: Kept for backward compatibility: tests and callers imported the task
#: type under its old private name.
_CellTask = CellTask

#: Replacement workers spawned after deaths, per original worker slot
#: (see :class:`~repro.core.executor.ResiliencePolicy.restarts_per_worker`).
_RESTARTS_PER_WORKER = ResiliencePolicy().restarts_per_worker


def _affinity_batches(tasks: list[CellTask], jobs: int) -> list[list[CellTask]]:
    """Group tasks by workload, splitting large groups to feed all workers.

    Whole-workload batches maximise checkpoint-cache reuse; splitting only
    kicks in when there are fewer workloads than workers, and the split
    halves still share a workload.
    """
    by_workload: dict[str, list[CellTask]] = {}
    for task in tasks:
        by_workload.setdefault(task.workload, []).append(task)
    batches = list(by_workload.values())
    while len(batches) < min(jobs, len(tasks)):
        largest = max(range(len(batches)), key=lambda i: len(batches[i]))
        if len(batches[largest]) < 2:
            break
        group = batches.pop(largest)
        half = len(group) // 2
        batches.insert(largest, group[half:])
        batches.insert(largest, group[:half])
    # Longest batches first: better tail latency under dynamic dispatch.
    batches.sort(key=len, reverse=True)
    return batches


class _DeadlineModel:
    """Wall-clock deadlines derived from golden-run cycle counts.

    The scheduler cannot know cycles-per-second a priori, so it
    calibrates from completed cells: a cell's simulation budget is
    proportional to ``golden_cycles × samples``, and the observed
    units-per-second rate turns the budget of an in-flight cell into a
    predicted wall time.  The deadline is ``deadline_factor`` times that
    prediction (floored) — generous enough for cache-cold workers, tight
    enough to catch a livelocked cell that keeps heartbeating.
    """

    def __init__(self, policy: ResiliencePolicy, samples: int) -> None:
        self._policy = policy
        self._samples = max(1, samples)
        self._units = 0.0
        self._wall = 0.0
        self._count = 0

    def record(self, golden_cycles: int | None, wall: float) -> None:
        if golden_cycles is None or wall <= 0:
            return
        self._units += float(golden_cycles) * self._samples
        self._wall += wall
        self._count += 1

    def predict_wall(self, golden_cycles: int) -> float | None:
        """Predicted wall seconds for a cell, or ``None`` (uncalibrated)."""
        if self._wall <= 0 or self._units <= 0:
            return None
        rate = self._units / self._wall
        return float(golden_cycles) * self._samples / rate

    def predict(self, golden_cycles: int) -> float | None:
        """Allowed wall seconds for a cell, or ``None`` (uncalibrated)."""
        predicted = self.predict_wall(golden_cycles)
        if predicted is None:
            return None
        return max(
            self._policy.deadline_floor,
            self._policy.deadline_factor * predicted,
        )

    def mean_wall(self) -> float | None:
        if self._count == 0:
            return None
        return self._wall / self._count


class _Scheduler:
    """One campaign's resilient parent loop over an executor backend."""

    def __init__(
        self,
        config: CampaignConfig,
        jobs: int,
        progress: ProgressFn | None,
        store,
        core_cfg: CoreConfig,
        supervisor,
        checkpoint_every: int | None,
        resume: bool,
        verify: bool,
        prune: bool,
        backend_name: str,
        policy: ResiliencePolicy,
        chaos: ChaosSpec | None,
        backend_options: dict | None = None,
    ) -> None:
        self.config = config
        self.jobs = jobs
        self.progress = progress
        self.store = store
        self.core_cfg = core_cfg
        self.supervisor = supervisor
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self.verify = verify
        self.prune = prune
        self.backend_name = backend_name
        self.backend_options = backend_options
        self.policy = policy
        self.chaos = chaos

        self.cells = config.cells()
        self.total = len(self.cells)
        self.results: dict[int, CellResult] = {}
        self.keys: dict[int, str] = {}
        self.tasks: list[CellTask] = []
        for index, (workload, component, cardinality) in enumerate(self.cells):
            key = config.cell_key(workload, component, cardinality, core_cfg)
            self.keys[index] = key
            cached = store.get(key) if store is not None else None
            if cached is not None:
                self.results[index] = cached
                continue
            partial = None
            if store is not None and resume:
                checkpoint = store.get_partial(key)
                if checkpoint is not None:
                    partial = checkpoint.as_dict()
            self.tasks.append(CellTask(
                index=index, workload=workload, component=component,
                cardinality=cardinality, cell_key=key, partial=partial,
            ))

        # Supervisor-derived knobs (duck-typed, like the serial path).
        self.strict = bool(getattr(supervisor, "strict", False))
        self.watchdog = bool(getattr(supervisor, "watchdog", True))
        self.max_incidents = getattr(supervisor, "max_incidents", None)
        self.journal = getattr(supervisor, "journal", None)

        # Pool / dispatch state.
        self.backend: ExecutorBackend | None = None
        self.handles: dict[int, WorkerHandle] = {}
        self.assigned: dict[int, list[CellTask]] = {}
        self.retired: set[int] = set()
        self.cancelled: dict[int, float] = {}
        self.idle: set[int] = set()
        self.last_seen: dict[int, float] = {}
        self.batches: deque[list[CellTask]] = deque()
        self.retry_heap: list[tuple[float, int, list[CellTask]]] = []
        self._retry_seq = 0
        self.attempts: dict[int, int] = {}
        self.speculated: set[int] = set()
        self.restarts = 0
        self.max_restarts = jobs * policy.restarts_per_worker
        self.degraded = False
        self.global_stop = False

        # Per-cell progress state.
        self.pending_done = {task.index for task in self.tasks}
        self.live_partials: dict[int, dict | None] = {
            task.index: task.partial for task in self.tasks
        }
        self.cell_golden: dict[int, int] = {}
        self.start_times: dict[int, float] = {}
        self.deadlines: dict[int, float | None] = {}
        self.running: dict[int, int] = {}
        # Lease-based cell ownership (the distributed-fabric invariant):
        # a started cell is *leased* to its worker, the lease renewed by
        # every message from that worker.  An expired lease — a worker
        # on the wrong side of a partition, or one whose heartbeats stopped
        # reaching us — forfeits ownership: the cell is reclaimed and
        # rescheduled from its last acked checkpoint, and any late result
        # from the old owner is dropped by first-canonical-result-wins.
        self.leases: dict[int, float] = {}
        self.lease_durations: dict[int, float] = {}
        self.model = _DeadlineModel(policy, config.samples)

        # Accounting.
        self.emitted = 0
        self.total_incidents = 0
        self.lost_sample_incidents = 0
        self.abort_exc: Exception | None = None

        # Telemetry.
        self.parent_tel = obs.active()
        self.cell_deltas: dict[int, dict] = {}
        self.worker_deltas: list[dict] = []

        # Chaos (parent side): counters over droppable / duplicable
        # message streams.
        self._chaos_droppable = 0
        self._chaos_dupable = 0

    # -- small helpers -----------------------------------------------------

    def _counter(self, name: str, amount: int = 1) -> None:
        if self.parent_tel is not None and amount:
            self.parent_tel.metrics.counter(name).inc(amount)

    def _instant(self, name: str, **args) -> None:
        if self.parent_tel is not None:
            self.parent_tel.tracer.instant(name, **args)

    def _cell_label(self, index: int) -> str:
        workload, component, cardinality = self.cells[index]
        return f"{workload}/{component}/{cardinality}-bit"

    def _record_incident(self, incident) -> None:
        if self.journal is not None:
            self.journal.append(incident)
        if self.supervisor is not None:
            self.supervisor.incident_count += 1

    def _journal_only(self, incident) -> None:
        """Bookkeeping incidents (retries, degradation notes): journalled
        for the audit trail, never counted against the incident budget —
        the originating failure already was."""
        if self.journal is not None:
            self.journal.append(incident)

    def _fabric_incident(self, kind, index, error_type, message, details):
        from repro.core.supervisor import Incident

        workload, component, cardinality = (
            self.cells[index] if index is not None else ("-", "-", 0)
        )
        return Incident(
            kind=kind,
            workload=workload,
            component=component,
            cardinality=cardinality,
            cell_seed=(
                f"{self.config.seed}:{workload}:{component}:{cardinality}"
                if index is not None else ""
            ),
            sample_index=-1,
            inject_cycle=-1,
            mask=None,
            error_type=error_type,
            message=message,
            traceback="",
            details=details,
        )

    def _emit_progress(self) -> int:
        while self.emitted in self.results:
            if self.progress is not None:
                self.progress(
                    self.emitted + 1, self.total, self.results[self.emitted]
                )
            self.emitted += 1
        return self.emitted

    def _alive_ids(self) -> list[int]:
        return [
            wid for wid, handle in self.handles.items()
            if wid not in self.retired and handle.alive()
        ]

    def _budget_abort(self, last_message: str) -> None:
        if (
            self.max_incidents is not None
            and self.total_incidents > self.max_incidents
        ):
            self.abort_exc = IncidentBudgetExceeded(
                f"{self.total_incidents} incidents exceed the budget of "
                f"{self.max_incidents} (last: {last_message})"
            )

    # -- pool management ---------------------------------------------------

    def _spawn(self) -> None:
        try:
            handle = self.backend.spawn()
        except Exception as exc:  # noqa: BLE001 - backend failure → degrade
            self._mark_degraded(f"backend spawn failed: {exc}")
            return
        self.handles[handle.worker_id] = handle
        self.assigned[handle.worker_id] = []
        self.last_seen[handle.worker_id] = time.monotonic()
        self._counter("exec.workers_spawned")

    def _mark_degraded(self, reason: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        self._journal_only(self._fabric_incident(
            "degraded", None, "WorkerCrash",
            f"worker pool degraded — no further replacements will be "
            f"spawned ({reason}); remaining cells finish on the shrinking "
            f"pool, serially in-process if it empties",
            {"restarts": self.restarts, "reason": reason},
        ))
        if self.parent_tel is not None:
            self.parent_tel.metrics.gauge("exec.degraded").set_max(1.0)
        self._instant("degraded", reason=reason)

    def _replace_worker(self) -> None:
        if self.degraded or self.global_stop:
            return
        if self.restarts >= self.max_restarts:
            self._mark_degraded(
                f"restart budget of {self.max_restarts} exhausted"
            )
            return
        self.restarts += 1
        self._spawn()

    def _retire(self, worker_id: int) -> None:
        self.retired.add(worker_id)
        self.idle.discard(worker_id)
        self.cancelled.pop(worker_id, None)

    # -- failure handling --------------------------------------------------

    def _worker_death(self, worker_id: int, kind: str, cause: str) -> None:
        """A worker died (or was killed after hanging): journal, count,
        reschedule its in-flight cells, and replace it within budget."""
        handle = self.handles[worker_id]
        handle.kill()
        handle.join(timeout=1.0)  # reap, so exitcode is real in the record
        self._retire(worker_id)
        remaining = [
            task for task in self.assigned[worker_id]
            if task.index in self.pending_done
        ]
        self.assigned[worker_id] = []
        for task in remaining:
            self.running.pop(task.index, None)
            self._drop_lease(task.index)
        label = self._cell_label(remaining[0].index) if remaining else "idle"
        # The telemetry a worker accumulated since its last per-cell ship
        # dies with it — count the loss instead of silently absorbing it.
        lost_deltas = len(remaining)
        self._counter("exec.lost_deltas", lost_deltas)
        verb = (
            f"died with exit code {handle.exitcode()}" if kind == "worker-crash"
            else "hung (no heartbeat) and was killed"
        )
        incident = self._fabric_incident(
            kind,
            remaining[0].index if remaining else None,
            "WorkerCrash" if kind == "worker-crash" else "WorkerHang",
            f"worker {worker_id} (pid {handle.pid()}) {verb} while running "
            f"{label}; {len(remaining)} cell(s) rescheduled"
            + (f"; {lost_deltas} telemetry delta(s) lost" if lost_deltas
               else ""),
            {"worker": worker_id, "exitcode": handle.exitcode(),
             "cause": cause, "lost_deltas": lost_deltas,
             "rescheduled": [task.index for task in remaining]},
        )
        self._record_incident(incident)
        self.total_incidents += 1
        self._counter("exec.incidents")
        self._counter("exec.incidents." + kind)
        self._instant(
            kind, worker=worker_id, exitcode=handle.exitcode(),
            rescheduled=len(remaining),
        )
        if self.strict:
            self.abort_exc = InjectionIncident(f"[strict] {incident.message}")
            return
        self._budget_abort(incident.message)
        if self.abort_exc is not None:
            return
        self._reschedule(remaining, cause=kind, worker=worker_id)
        self._replace_worker()

    def _reschedule(
        self, tasks: list[CellTask], cause: str, worker: int | None
    ) -> None:
        """Queue failed cells for retry with backoff; quarantine cells
        that exhausted their attempt budget.  Never silent: every retry
        is a journalled ``retry`` incident."""
        now = time.monotonic()
        for task in tasks:
            if self.abort_exc is not None:
                return
            index = task.index
            attempt = self.attempts.get(index, 0) + 1
            self.attempts[index] = attempt
            if attempt >= self.policy.max_attempts:
                self._quarantine(task, cause)
                continue
            delay = self.policy.backoff(task.cell_key, attempt)
            refreshed = CellTask(
                index=index, workload=task.workload,
                component=task.component, cardinality=task.cardinality,
                cell_key=task.cell_key,
                partial=self.live_partials.get(index),
                attempt=attempt,
            )
            heapq.heappush(
                self.retry_heap, (now + delay, self._retry_seq, [refreshed])
            )
            self._retry_seq += 1
            self._journal_only(self._fabric_incident(
                "retry", index, "Reschedule",
                f"attempt {attempt + 1} of {self._cell_label(index)} "
                f"scheduled after {delay:.3f}s backoff (cause: {cause})",
                {"attempt": attempt, "backoff": round(delay, 4),
                 "cause": cause, "worker": worker},
            ))
            self._counter("exec.retries")
            self._instant(
                "retry", cell=self._cell_label(index), attempt=attempt,
                backoff=round(delay, 4), cause=cause,
            )

    def _quarantine(self, task: CellTask, cause: str) -> None:
        """A poison cell: salvage its last checkpoint as a short result,
        count the missing samples as lost, and move on."""
        index = task.index
        counts = ClassCounts()
        done = 0
        golden = self.cell_golden.get(index)
        state = self.live_partials.get(index)
        if state is not None:
            try:
                checkpoint = CellCheckpoint.from_dict(state)
            except (KeyError, ValueError, TypeError):  # pragma: no cover
                checkpoint = None
            if checkpoint is not None:
                counts = checkpoint.counts
                done = checkpoint.samples_done
                golden = checkpoint.golden_cycles
        if golden is None:
            # Fault-free golden run in the parent: safe (the poison is in
            # the cell's *injections*) and cached.
            golden = golden_run(
                get_workload(task.workload), self.core_cfg
            ).cycles
        self.results[index] = CellResult(
            workload=task.workload, component=task.component,
            cardinality=task.cardinality, counts=counts,
            golden_cycles=golden,
        )
        lost = max(0, self.config.samples - done)
        self.lost_sample_incidents += lost
        attempts = self.attempts.get(index, 0)
        incident = self._fabric_incident(
            "poison-cell", index, "PoisonCell",
            f"cell {self._cell_label(index)} failed {attempts} "
            f"attempt(s) (last cause: {cause}) and was quarantined; "
            f"{done} sample(s) salvaged from its last checkpoint, "
            f"{lost} lost",
            {"attempts": attempts, "cause": cause,
             "samples_kept": done, "samples_lost": lost},
        )
        self._record_incident(incident)
        self.total_incidents += 1
        self._counter("exec.incidents")
        self._counter("exec.incidents.poison-cell")
        self._counter("exec.quarantined")
        self._instant(
            "poison-cell", cell=self._cell_label(index), attempts=attempts,
            lost=lost,
        )
        self.pending_done.discard(index)
        self.deadlines.pop(index, None)
        self.running.pop(index, None)
        self._drop_lease(index)
        self._emit_progress()
        if self.strict:
            self.abort_exc = InjectionIncident(f"[strict] {incident.message}")
            return
        self._budget_abort(incident.message)

    # -- lease-based cell ownership ----------------------------------------

    def _lease_duration(self, golden_cycles: int | None) -> float:
        """How long a worker may own a cell without the parent hearing
        from it, calibrated (like deadlines) from golden-run cycles.

        ``lease_factor`` is deliberately generous next to
        ``deadline_factor``: a lease expiry accuses the *transport*
        (partition, half-open connection), not the cell, so it should
        fire only when heartbeats that would have renewed it stopped
        arriving for many predicted cell-lifetimes.
        """
        predicted = (
            self.model.predict_wall(golden_cycles)
            if golden_cycles is not None else None
        )
        if predicted is None:
            return self.policy.lease_floor
        return max(
            self.policy.lease_floor, self.policy.lease_factor * predicted
        )

    def _grant_lease(self, index: int, now: float) -> None:
        duration = self._lease_duration(self.cell_golden.get(index))
        self.lease_durations[index] = duration
        self.leases[index] = now + duration

    def _renew_leases(self, worker_id: int, now: float) -> None:
        """Any message from a worker renews the leases it holds — a
        heartbeating owner keeps its cells no matter how slow they are
        (the deadline machinery, not the lease, polices slowness)."""
        for index, owner in self.running.items():
            if owner == worker_id and index in self.leases:
                self.leases[index] = now + self.lease_durations.get(
                    index, self.policy.lease_floor
                )

    def _drop_lease(self, index: int) -> None:
        self.leases.pop(index, None)
        self.lease_durations.pop(index, None)

    def _reclaim_expired_leases(self, now: float) -> None:
        for index in [
            index for index, expiry in self.leases.items() if now > expiry
        ]:
            if self.abort_exc is not None:
                return
            if index not in self.pending_done:
                self._drop_lease(index)
                continue
            self._reclaim_lease(index, now)

    def _reclaim_lease(self, index: int, now: float) -> None:
        """An expired lease: take the cell back from its unreachable
        owner and reschedule it from the last acked checkpoint.

        The old owner is soft-cancelled (escalating to a kill if it
        stays silent through the grace period); a duplicate result from
        it racing the retry is suppressed because the first canonical
        result already cleared ``pending_done``.
        """
        owner = self.running.get(index)
        duration = self.lease_durations.get(index, self.policy.lease_floor)
        age = now - self.start_times.get(index, now)
        self._drop_lease(index)
        self.running.pop(index, None)
        self.deadlines.pop(index, None)
        task = CellTask(
            index=index, workload=self.cells[index][0],
            component=self.cells[index][1],
            cardinality=self.cells[index][2], cell_key=self.keys[index],
            partial=self.live_partials.get(index),
            attempt=self.attempts.get(index, 0),
        )
        if owner is not None:
            # Strip the cell from the owner's assignment so its eventual
            # death (or next "ready") cannot reschedule it a second time.
            self.assigned[owner] = [
                t for t in self.assigned.get(owner, []) if t.index != index
            ]
            handle = self.handles.get(owner)
            if handle is not None and owner not in self.retired:
                handle.soft_cancel()
                self.cancelled.setdefault(owner, now)
        self._journal_only(self._fabric_incident(
            "lease-expired", index, "LeaseExpired",
            f"lease on {self._cell_label(index)} expired after "
            f"{age:.1f}s (duration {duration:.1f}s; owner "
            f"{'worker %d' % owner if owner is not None else 'unknown'} "
            f"unreachable); ownership reclaimed and the cell rescheduled "
            f"from its last acked checkpoint",
            {"worker": owner, "age": round(age, 3),
             "lease": round(duration, 3)},
        ))
        self._counter("exec.lease_expired")
        self._instant(
            "lease-expired", cell=self._cell_label(index), worker=owner,
            age=round(age, 3),
        )
        self._reschedule([task], cause="lease-expired", worker=owner)

    # -- dispatch ----------------------------------------------------------

    def _next_batch(self, now: float) -> list[CellTask] | None:
        if self.batches:
            return self.batches.popleft()
        if self.retry_heap and self.retry_heap[0][0] <= now:
            return heapq.heappop(self.retry_heap)[2]
        return None

    def _dispatch(self, worker_id: int) -> None:
        if self.global_stop or worker_id in self.retired:
            return
        batch = self._next_batch(time.monotonic())
        if batch is None:
            self.idle.add(worker_id)
            return
        batch = [
            task for task in batch if task.index in self.pending_done
        ]
        if not batch:
            self._dispatch(worker_id)
            return
        self.assigned[worker_id] = batch
        self.idle.discard(worker_id)
        self.handles[worker_id].send(batch)

    def _speculate(self, now: float) -> None:
        """Re-execute the worst straggler on an idle worker."""
        if not (self.policy.speculate and self.idle):
            return
        if self.batches or self.retry_heap:
            return
        mean = self.model.mean_wall()
        if mean is None:
            return
        threshold = self.policy.straggler_factor * mean
        candidates = [
            (now - started, index)
            for index, started in self.start_times.items()
            if index in self.pending_done
            and index not in self.speculated
            and now - started > threshold
        ]
        if not candidates:
            return
        _, index = max(candidates)
        worker_id = min(self.idle)
        workload, component, cardinality = self.cells[index]
        task = CellTask(
            index=index, workload=workload, component=component,
            cardinality=cardinality, cell_key=self.keys[index],
            partial=self.live_partials.get(index),
            attempt=self.attempts.get(index, 0),
        )
        self.speculated.add(index)
        self.idle.discard(worker_id)
        self.assigned[worker_id] = [task]
        self.handles[worker_id].send([task])
        self._counter("exec.speculative")
        self._instant(
            "speculate", cell=self._cell_label(index), worker=worker_id,
        )

    # -- escalation & liveness ---------------------------------------------

    def _reap_dead(self) -> None:
        for worker_id in list(self.handles):
            if worker_id in self.retired:
                continue
            if not self.handles[worker_id].alive():
                self._worker_death(
                    worker_id,
                    "worker-hang" if worker_id in self.cancelled
                    else "worker-crash",
                    "exit",
                )
                if self.abort_exc is not None:
                    return

    def _tick(self, now: float) -> None:
        self._reclaim_expired_leases(now)
        if self.abort_exc is not None:
            return
        # Hang / deadline escalation: only workers with in-flight cells
        # owe us heartbeats; idle workers are silent by design.
        for worker_id in list(self.handles):
            if worker_id in self.retired:
                continue
            handle = self.handles[worker_id]
            in_flight = [
                task.index for task in self.assigned[worker_id]
                if task.index in self.pending_done
            ]
            if worker_id in self.cancelled:
                if now - self.cancelled[worker_id] > self.policy.grace_period:
                    self._worker_death(worker_id, "worker-hang", "grace")
                    if self.abort_exc is not None:
                        return
                continue
            if not in_flight:
                continue
            silent = now - self.last_seen.get(worker_id, now)
            over_deadline = any(
                self.deadlines.get(index) is not None
                and now > self.deadlines[index]
                and self.running.get(index) == worker_id
                for index in in_flight
            )
            if silent > self.policy.hang_timeout or over_deadline:
                handle.soft_cancel()
                self.cancelled[worker_id] = now
                self._counter("exec.soft_cancels")
                self._instant(
                    "soft-cancel", worker=worker_id,
                    silent=round(silent, 3), deadline=over_deadline,
                )
        # Due retries → idle workers.
        while (
            self.idle and self.retry_heap and self.retry_heap[0][0] <= now
        ):
            self._dispatch(self.idle.pop())
        self._speculate(now)

    # -- message handling --------------------------------------------------

    def _recv_with_chaos(self, timeout: float) -> list[tuple]:
        message = self.backend.recv(timeout)
        if message is None:
            return []
        if self.chaos is None:
            return [message]
        kind = message[0]
        copies = 1
        if kind in ("partial", "telemetry", "cell"):
            if self._chaos_droppable in self.chaos.drop_ordinals:
                self._chaos_droppable += 1
                self._counter("exec.chaos.dropped")
                return []
            self._chaos_droppable += 1
        if kind in ("cell", "partial"):
            if self._chaos_dupable in self.chaos.dup_ordinals:
                copies = 2
                self._counter("exec.chaos.duplicated")
            self._chaos_dupable += 1
        return [message] * copies

    def _handle(self, message: tuple) -> None:
        kind = message[0]
        worker_id = message[1]
        self.last_seen[worker_id] = time.monotonic()
        self._renew_leases(worker_id, self.last_seen[worker_id])
        if worker_id in self.cancelled:
            # Still responsive: postpone the kill — a cancelled worker
            # that keeps talking will stop at its next sample boundary.
            self.cancelled[worker_id] = self.last_seen[worker_id]
        if kind == "ready":
            if worker_id in self.retired:
                return
            # Per-worker FIFO means every result of the finished batch
            # already arrived — anything still pending was lost in flight
            # (dropped message, torn transport) and must be re-executed.
            lost = [
                task for task in self.assigned[worker_id]
                if task.index in self.pending_done
                and not self.global_stop
            ]
            self.assigned[worker_id] = []
            for task in lost:
                self.running.pop(task.index, None)
                self._drop_lease(task.index)
            if lost:
                self._counter("exec.lost_results", len(lost))
                self._reschedule(
                    lost, cause="lost-result", worker=worker_id
                )
                if self.abort_exc is not None:
                    return
            if worker_id in self.cancelled:
                return  # it is about to stop; don't race a new batch
            self._dispatch(worker_id)
        elif kind == "start":
            _, _, index, golden_cycles = message
            self.cell_golden[index] = golden_cycles
            now = time.monotonic()
            self.start_times[index] = now
            self.running[index] = worker_id
            predicted = self.model.predict(golden_cycles)
            self.deadlines[index] = (
                now + predicted if predicted is not None else None
            )
            self._grant_lease(index, now)
        elif kind == "heartbeat":
            self._counter("exec.heartbeats")
        elif kind == "partial":
            _, _, index, key, state = message
            self.live_partials[index] = state
            if self.store is not None and index in self.pending_done:
                self.store.put_partial(key, CellCheckpoint.from_dict(state))
        elif kind == "cell":
            _, _, index, data = message
            if index not in self.pending_done:
                return  # duplicate from a reschedule or speculation
            cell = CellResult.from_dict(data)
            self.results[index] = cell
            self.pending_done.discard(index)
            self.live_partials.pop(index, None)
            started = self.start_times.pop(index, None)
            if started is not None:
                self.model.record(
                    self.cell_golden.get(index),
                    time.monotonic() - started,
                )
            self.deadlines.pop(index, None)
            self.running.pop(index, None)
            self._drop_lease(index)
            if self.store is not None:
                self.store.put(self.keys[index], cell)
            done = self._emit_progress()
            if self.parent_tel is not None:
                # Completed cells buffered waiting for an earlier cell —
                # how far ahead of canonical order the schedule ran.
                self.parent_tel.metrics.gauge(
                    "exec.scheduler.reorder_depth"
                ).set_max(float(len(self.results) - done))
        elif kind == "telemetry":
            _, _, index, delta, events = message
            if self.parent_tel is not None:
                if index is None:
                    self.worker_deltas.append(delta)
                elif index in self.pending_done:
                    # Keep the first completion's telemetry, like the
                    # first "cell" message; a raced duplicate is dropped
                    # with its cell.
                    self.cell_deltas[index] = delta
                self.parent_tel.tracer.adopt(events, tid=worker_id + 1)
        elif kind == "incident":
            _, _, data = message
            from repro.core.supervisor import Incident

            self._record_incident(Incident.from_dict(data))
            self.total_incidents += 1
            self.lost_sample_incidents += 1
            self._budget_abort("worker-contained incident")
        elif kind == "fatal":
            _, _, index, error_type, detail = message
            self._retire(worker_id)
            self.abort_exc = InjectionIncident(
                f"worker {worker_id} aborted on cell "
                f"{self._cell_label(index)}: {error_type}: {detail}"
            )
        elif kind == "stopped":
            was_cancelled = worker_id in self.cancelled
            self._retire(worker_id)
            if self.global_stop:
                return
            remaining = [
                task for task in self.assigned[worker_id]
                if task.index in self.pending_done
            ]
            self.assigned[worker_id] = []
            for task in remaining:
                self.running.pop(task.index, None)
                self._drop_lease(task.index)
            if remaining:
                self._reschedule(
                    remaining,
                    cause="cancelled" if was_cancelled else "stopped",
                    worker=worker_id,
                )
            if was_cancelled and self.abort_exc is None:
                self._replace_worker()
        elif kind == "bye":
            self._retire(worker_id)

    # -- degradation -------------------------------------------------------

    def _serial_fallback(self) -> None:
        """The pool is gone: finish the remaining cells in-process.

        Cells that already exhausted their attempt budget are quarantined
        first — a cell that killed every worker it touched must not take
        the parent down with it.
        """
        self._mark_degraded("no live workers remain")
        remaining = sorted(self.pending_done)
        self._instant("serial-fallback", cells=len(remaining))
        self._counter("exec.serial_fallback_cells", len(remaining))
        for index in remaining:
            if self.abort_exc is not None:
                return
            workload, component, cardinality = self.cells[index]
            task = CellTask(
                index=index, workload=workload, component=component,
                cardinality=cardinality, cell_key=self.keys[index],
                partial=self.live_partials.get(index),
                attempt=self.attempts.get(index, 0),
            )
            if self.attempts.get(index, 0) >= self.policy.max_attempts:
                self._quarantine(task, "degraded")
                continue
            before = (
                self.supervisor.incident_count
                if self.supervisor is not None else 0
            )
            # The store still holds the freshest streamed checkpoint, so
            # resume=True continues exactly where the dead worker left
            # off; live_partials may be newer only if a store-less run.
            if (
                self.store is None
                and task.partial is not None
            ):
                store_arg = _MemoryPartial(task.cell_key, task.partial)
            else:
                store_arg = self.store
            try:
                cell = run_cell(
                    workload, component, cardinality,
                    self.config, self.core_cfg,
                    supervisor=self.supervisor,
                    store=store_arg, cell_key=self.keys[index],
                    checkpoint_every=self.checkpoint_every, resume=True,
                    verify=self.verify, prune=self.prune,
                )
            except CampaignInterrupted:  # pragma: no cover - no stop hook
                return
            except InjectionIncident as exc:
                self.abort_exc = exc
                return
            if self.supervisor is not None:
                contained = self.supervisor.incident_count - before
                self.total_incidents += contained
                self.lost_sample_incidents += contained
            self.results[index] = cell
            self.pending_done.discard(index)
            self.live_partials.pop(index, None)
            if self.store is not None:
                self.store.put(self.keys[index], cell)
            self._emit_progress()

    # -- shutdown paths ----------------------------------------------------

    def _drain_for_checkpoints(self, timeout: float = 10.0) -> None:
        """Absorb in-flight messages while stopping workers wind down.

        Everything durable that arrives during the drain — final mid-cell
        checkpoints, cells that completed in the shutdown window — is
        written to the store, so an interrupted run loses at most the
        unsampled remainder of each worker's current injection.
        """
        deadline = time.monotonic() + timeout
        while self._alive_ids() and time.monotonic() < deadline:
            message = self.backend.recv(_POLL_INTERVAL)
            if message is None:
                continue
            kind = message[0]
            if kind == "partial":
                _, _, index, key, state = message
                self.live_partials[index] = state
                if self.store is not None and index in self.pending_done:
                    self.store.put_partial(
                        key, CellCheckpoint.from_dict(state)
                    )
            elif kind == "cell":
                _, _, index, data = message
                if self.store is not None and index in self.pending_done:
                    self.store.put(
                        self.keys[index], CellResult.from_dict(data)
                    )
                self.pending_done.discard(index)
            elif kind == "telemetry":
                _, worker_id, index, delta, events = message
                if self.parent_tel is not None:
                    if index is None:
                        self.worker_deltas.append(delta)
                    elif index in self.pending_done:
                        self.cell_deltas[index] = delta
                    self.parent_tel.tracer.adopt(events, tid=worker_id + 1)
            elif kind == "ready":
                worker_id = message[1]
                if worker_id not in self.retired:
                    self.handles[worker_id].send(None)
            elif kind in ("stopped", "bye"):
                self._retire(message[1])

    def _collect_leftover_telemetry(self) -> None:
        """Absorb telemetry still queued after every worker has exited.

        Deltas for cells that were already merged (raced duplicates from
        reschedules or speculation) are counted as ``exec.lost_deltas``
        rather than silently dropped — the serial/parallel ``sim.*``
        equality contract only holds for incident-free runs, and the
        counter is how an operator sees why.
        """
        while True:
            message = self.backend.recv(0.2)
            if message is None:
                return
            if message[0] != "telemetry":
                continue
            _, worker_id, index, delta, events = message
            if index is None:
                self.worker_deltas.append(delta)
            elif index in self.pending_done:
                self.cell_deltas[index] = delta
            else:
                self._counter("exec.lost_deltas")
            self.parent_tel.tracer.adopt(events, tid=worker_id + 1)

    def _shutdown(self) -> None:
        for worker_id, handle in self.handles.items():
            if worker_id in self.retired:
                continue
            handle.soft_cancel()
            handle.send(None)
        for handle in self.handles.values():
            handle.join(timeout=5.0)
        for handle in self.handles.values():
            if handle.alive():
                handle.kill()
                handle.join(timeout=1.0)
        if self.parent_tel is not None:
            self._collect_leftover_telemetry()
            # Canonical-order merge: same input order every run, and the
            # merge operators themselves are order-independent — either
            # property alone makes merged counters deterministic.
            for index in sorted(self.cell_deltas):
                self.parent_tel.metrics.merge_dict(self.cell_deltas[index])
            for delta in self.worker_deltas:
                self.parent_tel.metrics.merge_dict(delta)
        self.backend.close()

    # -- the main loop -----------------------------------------------------

    def run(self) -> CampaignResult:
        self._emit_progress()
        if not self.tasks:
            return CampaignResult(
                [self.results[i] for i in range(self.total)],
                incidents=self.lost_sample_incidents,
            )
        jobs = max(1, min(self.jobs, len(self.tasks)))
        batches = _affinity_batches(self.tasks, jobs)
        self.batches = deque(batches)
        self.max_restarts = jobs * self.policy.restarts_per_worker
        spec = WorkerSpec(
            config=self.config, core_cfg=self.core_cfg,
            supervised=self.supervisor is not None, strict=self.strict,
            watchdog=self.watchdog, checkpoint_every=self.checkpoint_every,
            telemetry_enabled=self.parent_tel is not None,
            verify=self.verify,
            prune=self.prune,
            heartbeat_interval=self.policy.heartbeat_interval,
            chaos=self.chaos,
        )
        self.backend = create_backend(
            self.backend_name, spec, self.backend_options
        )
        if self.parent_tel is not None:
            self.parent_tel.metrics.gauge("exec.scheduler.batches").set_max(
                len(batches)
            )
            self.parent_tel.metrics.counter(
                "exec.scheduler.cells_cached"
            ).inc(len(self.results))
        for _ in range(min(jobs, len(batches))):
            self._spawn()
        try:
            while self.pending_done and self.abort_exc is None:
                self._reap_dead()
                if self.abort_exc is not None:
                    break
                if not self._alive_ids():
                    if self.policy.degrade_to_serial and not self.global_stop:
                        self._serial_fallback()
                    elif self.abort_exc is None:
                        self.abort_exc = WorkerCrash(
                            f"all workers died ({self.restarts} restart(s) "
                            f"used of {self.max_restarts}) and serial "
                            f"degradation is disabled"
                        )
                    break
                for message in self._recv_with_chaos(_POLL_INTERVAL):
                    self._handle(message)
                    if self.abort_exc is not None:
                        break
                if self.abort_exc is None:
                    self._tick(time.monotonic())
        except KeyboardInterrupt:
            # Graceful drain (SIGINT and SIGTERM both land here): let
            # every worker finish its current sample, flush its final
            # mid-cell checkpoint, and exit; persist whatever arrives so
            # --resume continues bit-identically.
            self.global_stop = True
            for worker_id, handle in self.handles.items():
                if worker_id not in self.retired:
                    handle.soft_cancel()
            self._drain_for_checkpoints()
            if self.store is not None:
                self.store.compact()
            raise
        finally:
            self.global_stop = True
            self._shutdown()

        if self.abort_exc is not None:
            if self.store is not None:
                self.store.compact()
            raise self.abort_exc
        return CampaignResult(
            [self.results[i] for i in range(self.total)],
            incidents=self.lost_sample_incidents,
        )


class _MemoryPartial:
    """Minimal store stand-in for store-less serial fallback: serves the
    freshest streamed checkpoint so the fallback resumes instead of
    redoing the dead worker's samples."""

    def __init__(self, key: str, state: dict) -> None:
        self._key = key
        self._state = state

    def get_partial(self, key: str) -> CellCheckpoint | None:
        if key != self._key:
            return None
        try:
            return CellCheckpoint.from_dict(self._state)
        except (KeyError, ValueError, TypeError):  # pragma: no cover
            return None

    def put_partial(self, key: str, checkpoint: CellCheckpoint) -> None:
        self._state = checkpoint.as_dict()


def run_campaign_parallel(
    config: CampaignConfig,
    jobs: int,
    progress: ProgressFn | None = None,
    store: CampaignStore | None = None,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
    *,
    supervisor=None,
    checkpoint_every: int | None = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = True,
    verify: bool = False,
    prune: bool = False,
    backend: str = "multiprocessing",
    backend_options: dict | None = None,
    policy: ResiliencePolicy | None = None,
    chaos: ChaosSpec | None = None,
    _crash_spec: dict | None = None,
) -> CampaignResult:
    """Run a campaign across *jobs* workers behind an executor backend.

    Drop-in equivalent of the serial :func:`~repro.core.campaign.run_campaign`
    body: same store semantics (cached cells are served without
    simulation, new cells are persisted as they finish), same supervisor
    contract (*supervisor*'s journal receives every incident and its
    ``incident_count`` grows), same result — byte-identical JSON.

    *backend* selects the executor backend (see
    :data:`repro.core.executor.BACKENDS`) and *backend_options* are
    passed to its constructor (e.g. ``{"host": ..., "port": ...,
    "autospawn": False}`` for a listening socket coordinator); *policy*
    tunes the resilience protocol; *chaos* injects deterministic faults
    into the fabric (see
    :mod:`repro.core.chaos`).  *_crash_spec* is the legacy test hook:
    ``{"cell": [w, c, k], "flag": path}`` makes the first worker that
    reaches that cell die unannounced (now sugar for a one-kill chaos
    spec).
    """
    if _crash_spec is not None and chaos is None:
        workload, component, cardinality = _crash_spec["cell"]
        chaos = ChaosSpec(events=(ChaosEvent(
            "kill", workload, component, cardinality, ordinal=0,
            exit_code=_crash_spec.get("exit_code", 64),
            flag=_crash_spec["flag"],
        ),))
    scheduler = _Scheduler(
        config, jobs, progress, store, core_cfg, supervisor,
        checkpoint_every, resume, verify, prune, backend,
        policy if policy is not None else ResiliencePolicy(), chaos,
        backend_options,
    )
    return scheduler.run()
