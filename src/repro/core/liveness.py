"""Liveness-based fault-mask pruning (golden-run dead-bit analysis).

A fault is Masked iff no flipped bit is *consumed* (read) before it is
overwritten, evicted or invalidated — a dataflow fact provable from the
golden run alone, the dead-data reasoning of Qureshi et al.'s "Memory
Vulnerability: A Case for Delaying Error Reporting".  This module records,
during one dedicated instrumented replay of the (cached) golden run,
per-component bit-granular lifetime traces:

* **caches** (``l1d``/``l1i``/``l2``): per (line, byte) timelines.  Reads
  consume the accessed byte range, line fills from below consume the whole
  source line and kill the whole destination line, dirty-victim writebacks
  consume the victim line, stores kill the written range.  Flips live in
  the data array only (tags/valid/dirty are not injectable), so the
  hit/miss stream of a faulty run is identical to the golden one and byte
  timelines decide everything.
* **TLBs** (``itlb``/``dtlb``): per-entry timelines (hit = consume,
  refill = kill) plus each entry's birth cycle.  Decidability is
  field-sensitive — see :meth:`LivenessTrace.classify`.
* **register file**: per-register timelines; operand/misc reads consume,
  writebacks and misc writes kill the whole 32-bit word.

:meth:`LivenessTrace.classify` then decides an (mask, inject-cycle) fault
in O(log n) per flipped bit: if every bit is provably dead, the faulty run
is bit-identical to the golden run and the sample is Masked without
simulating anything.  The classifier is *conservative*: any bit it cannot
prove dead falls back to full simulation, so pruned campaign results are
byte-identical to unpruned ones — the invariant CI enforces with ``cmp``.

Traces are built once per (workload, platform) on a fresh system with
instance-level instrumentation hooks (the trace system is never deep-copied
and never injected into), sanity-checked against the golden run, and kept
in a small LRU like the checkpoint cache.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_left
from dataclasses import dataclass

from repro import obs
from repro.core.campaign import GOLDEN_MAX_CYCLES, _BoundedCache, golden_run
from repro.core.faults import FaultMask
from repro.errors import ConfigError
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.cpu.system import System
from repro.mem.tlb import VPN_SHIFT
from repro.workloads.base import Workload

#: Timeline event kinds.  READ = the bit was consumed (its value reached
#: the program or a lower memory level); KILL = the bit was overwritten
#: wholesale (refill, writeback target, store, register write).
READ = 0
KILL = 1

#: TLB entry layout (see mem/tlb.py): bits [1:0] are unarchitected spares,
#: [17:2] hold permissions + ppn (payload consumed only on translation
#: hits), [30:18] the vpn and [31] the valid bit (both consulted by match
#: and replacement logic, so never provably dead while the entry lives).
_TLB_SPARE_COLS = 2
_TLB_VALID_COL = 31

LIVENESS_CACHE_SIZE = 2


class _Timeline:
    """Program-ordered, run-compressed event timelines keyed by cell.

    Per key two parallel lists: non-decreasing event cycles and the event
    kinds.  Consecutive same-kind events collapse to the last of the run —
    verdict-preserving, because the first event at-or-after any cycle has
    the same kind either way.  Kinds are *not* folded into a sortable
    (cycle, kind) integer on purpose: a fill-then-read executes KILL and
    READ at the same cycle in that order, and program order is the order
    that matters.
    """

    __slots__ = ("cycles", "kinds", "first")

    def __init__(self) -> None:
        self.cycles: dict[int, list[int]] = {}
        self.kinds: dict[int, bytearray] = {}
        self.first: dict[int, int] = {}

    def record(self, key: int, cycle: int, kind: int) -> None:
        kinds = self.kinds.get(key)
        if kinds is None:
            self.cycles[key] = [cycle]
            self.kinds[key] = bytearray((kind,))
            self.first[key] = cycle
            return
        if kinds[-1] == kind:
            self.cycles[key][-1] = cycle
        else:
            self.cycles[key].append(cycle)
            kinds.append(kind)

    def verdict(self, key: int, cycle: int) -> int | None:
        """Kind of the first event at-or-after *cycle*, or None."""
        cycles = self.cycles.get(key)
        if cycles is None:
            return None
        index = bisect_left(cycles, cycle)
        if index == len(cycles):
            return None
        return self.kinds[key][index]

    def born_before(self, key: int, cycle: int) -> bool:
        """True iff *key* saw any event strictly before *cycle*."""
        first = self.first.get(key)
        return first is not None and first < cycle

    def event_count(self) -> int:
        return sum(len(kinds) for kinds in self.kinds.values())


@dataclass(frozen=True)
class _Geometry:
    """Injection geometry stand-in: lets the mask generator draw against a
    recorded trace without materialising a live system, preserving the
    exact RNG stream of the unpruned path."""

    inject_name: str
    inject_rows: int
    inject_cols: int


class LivenessTrace:
    """Lifetime timelines of one (workload, platform) golden run."""

    def __init__(self, workload_name: str, golden_cycles: int) -> None:
        self.workload = workload_name
        self.golden_cycles = golden_cycles
        self.timelines: dict[str, _Timeline] = {}
        self.geometry: dict[str, _Geometry] = {}
        self.line_size: dict[str, int] = {}
        self.live_bits: dict[str, int] = {}

    def target_geometry(self, component: str) -> _Geometry:
        return self.geometry[component]

    def classify(self, mask: FaultMask, inject_cycle: int) -> bool:
        """True iff every flipped bit is provably dead at *inject_cycle*.

        False means "undecided", never "vulnerable": the caller must fall
        back to full simulation, which keeps pruned results byte-identical
        to unpruned ones.
        """
        component = mask.component
        timeline = self.timelines.get(component)
        if timeline is None:  # unknown component: never prune
            return False
        if component in ("l1d", "l1i", "l2"):
            return self._classify_cache(timeline, component, mask, inject_cycle)
        if component in ("itlb", "dtlb"):
            return self._classify_tlb(timeline, mask, inject_cycle)
        if component == "regfile":
            return self._classify_regfile(timeline, mask, inject_cycle)
        return False

    def _classify_cache(
        self, timeline: _Timeline, component: str,
        mask: FaultMask, inject_cycle: int,
    ) -> bool:
        # Byte granularity: flips never touch tags/valid/dirty, so the
        # hit/miss stream is unchanged and a byte is dead unless its next
        # event is a read.
        line_size = self.line_size[component]
        for row, col in mask.bits:
            kind = timeline.verdict(row * line_size + (col >> 3), inject_cycle)
            if kind == READ:
                return False
        return True

    def _classify_tlb(
        self, timeline: _Timeline, mask: FaultMask, inject_cycle: int
    ) -> bool:
        for row, col in mask.bits:
            if col < _TLB_SPARE_COLS:
                continue  # spare bits back no architected state
            if not timeline.born_before(row, inject_cycle):
                # Entry invalid at injection time.  Setting its valid bit
                # could fabricate a match from garbage — undecided; every
                # other bit is unreachable until the refill overwrites it.
                if col == _TLB_VALID_COL:
                    return False
                continue
            if col >= VPN_SHIFT:
                # vpn/valid of a live entry feed the match/replacement
                # logic on every lookup — not provably dead.
                return False
            kind = timeline.verdict(row, inject_cycle)
            if kind == READ:
                return False  # next event consumes the payload (hit)
        return True

    def _classify_regfile(
        self, timeline: _Timeline, mask: FaultMask, inject_cycle: int
    ) -> bool:
        # Register writes replace the whole 32-bit word, so a register is
        # dead unless its next event is an operand/misc read.
        for row, _col in mask.bits:
            if timeline.verdict(row, inject_cycle) == READ:
                return False
        return True

    def stats(self) -> dict[str, int]:
        """Recorded (compressed) event counts per component."""
        return {
            name: timeline.event_count()
            for name, timeline in sorted(self.timelines.items())
        }


# ---------------------------------------------------------------------------
# Instrumentation hooks (instance attributes shadow the bound methods; the
# trace system is private to the builder, so nothing else observes them)
# ---------------------------------------------------------------------------


def _hook_cache(cache, core, timeline: _Timeline) -> None:
    line_size = cache.line_size
    assoc = cache.assoc

    def record(idx: int, lo: int, hi: int, kind: int) -> None:
        cycle = core.cycle
        base = idx * line_size
        for byte in range(lo, hi):
            timeline.record(base + byte, cycle, kind)

    orig_fill = cache._fill

    def fill(set_idx, tag, line_addr):
        # Victim identity and dirtiness must be read before the overwrite.
        victim = set_idx * assoc + cache._lru[set_idx][0]
        writeback = cache._valid[victim] and cache._dirty[victim]
        if writeback:
            record(victim, 0, line_size, READ)  # data escapes to below
        idx, latency = orig_fill(set_idx, tag, line_addr)
        record(idx, 0, line_size, KILL)  # whole line overwritten
        return idx, latency

    cache._fill = fill

    orig_read = cache.read

    def read(paddr, length):
        data, latency = orig_read(paddr, length)
        idx, offset = cache.probe(paddr)
        record(idx, offset, offset + length, READ)
        return data, latency

    cache.read = read

    orig_read_word = cache.read_word

    def read_word(paddr):
        value, latency = orig_read_word(paddr)
        idx, offset = cache.probe(paddr)
        record(idx, offset, offset + 4, READ)
        return value, latency

    cache.read_word = read_word

    orig_write = cache.write

    def write(paddr, payload):
        latency = orig_write(paddr, payload)
        idx, offset = cache.probe(paddr)
        record(idx, offset, offset + len(payload), KILL)
        return latency

    cache.write = write

    orig_read_line = cache.read_line

    def read_line(line_addr):
        data, latency = orig_read_line(line_addr)
        idx, _ = cache.probe(line_addr)
        record(idx, 0, line_size, READ)
        return data, latency

    cache.read_line = read_line

    orig_write_line = cache.write_line

    def write_line(line_addr, payload):
        latency = orig_write_line(line_addr, payload)
        idx, _ = cache.probe(line_addr)
        record(idx, 0, line_size, KILL)
        return latency

    cache.write_line = write_line


def _hook_tlb(tlb, core, timeline: _Timeline) -> None:
    orig_translate = tlb.translate

    def translate(vaddr, access):
        clock_before = tlb._clock
        misses_before = tlb.misses
        result = orig_translate(vaddr, access)
        if tlb._clock != clock_before:
            # Exactly one entry was touched: the one holding the new clock.
            # A grown miss counter means a refill overwrote it (page-fault
            # refills bump misses but not the clock and touch no entry).
            row = tlb._last_use.index(tlb._clock)
            kind = KILL if tlb.misses != misses_before else READ
            timeline.record(row, core.cycle, kind)
        return result

    tlb.translate = translate


class _RecordingValues(list):
    """Drop-in ``PhysRegFile.values`` that logs every indexed access.

    All simulator reads/writes go through integer indexing (operand fetch,
    writeback, syscall return, misc save/restore), so ``__getitem__`` /
    ``__setitem__`` cover every consumption and kill.
    """

    def __init__(self, values, core, timeline: _Timeline) -> None:
        super().__init__(values)
        self._core = core
        self._timeline = timeline

    def __getitem__(self, index):
        if type(index) is int:
            key = index if index >= 0 else index + len(self)
            self._timeline.record(key, self._core.cycle, READ)
        return list.__getitem__(self, index)

    def __setitem__(self, index, value):
        if type(index) is int:
            key = index if index >= 0 else index + len(self)
            self._timeline.record(key, self._core.cycle, KILL)
        list.__setitem__(self, index, value)


# ---------------------------------------------------------------------------
# Trace construction + cache
# ---------------------------------------------------------------------------


def build_liveness_trace(
    workload: Workload, core_cfg: CoreConfig = DEFAULT_CONFIG
) -> LivenessTrace:
    """Replay *workload*'s golden run once with lifetime instrumentation.

    The instrumented replay is sanity-checked against the cached golden
    result: any divergence (a hook perturbing simulation) aborts rather
    than silently mispruning.
    """
    from repro.core.occupancy import snapshot_bits

    golden = golden_run(workload, core_cfg)
    # Observation-only knobs are canonicalised away like cell_key does:
    # the traced machine must be the plain platform.
    platform = dataclasses.replace(core_cfg, check_invariants=False)
    system = System(platform)
    system.load(workload.program())
    trace = LivenessTrace(workload.name, golden.cycles)
    core = system.core
    for name, cache in (
        ("l1d", system.l1d), ("l1i", system.l1i), ("l2", system.l2),
    ):
        timeline = _Timeline()
        trace.timelines[name] = timeline
        trace.geometry[name] = _Geometry(
            cache.inject_name, cache.inject_rows, cache.inject_cols
        )
        trace.line_size[name] = cache.line_size
        _hook_cache(cache, core, timeline)
    for name, tlb in (("itlb", system.itlb), ("dtlb", system.dtlb)):
        timeline = _Timeline()
        trace.timelines[name] = timeline
        trace.geometry[name] = _Geometry(
            tlb.inject_name, tlb.inject_rows, tlb.inject_cols
        )
        _hook_tlb(tlb, core, timeline)
    regfile_timeline = _Timeline()
    trace.timelines["regfile"] = regfile_timeline
    trace.geometry["regfile"] = _Geometry(
        core.prf.inject_name, core.prf.inject_rows, core.prf.inject_cols
    )
    core.prf.values = _RecordingValues(core.prf.values, core, regfile_timeline)
    result = system.run(max_cycles=GOLDEN_MAX_CYCLES)
    if (
        result.status != golden.status
        or result.cycles != golden.cycles
        or result.output != golden.output
        or result.exit_code != golden.exit_code
    ):
        raise ConfigError(
            f"liveness instrumentation perturbed the golden run of "
            f"{workload.name}: {result.status}/{result.cycles} cycles vs "
            f"{golden.status}/{golden.cycles}"
        )
    trace.live_bits = snapshot_bits(system)
    return trace


_LIVENESS_CACHE: _BoundedCache = _BoundedCache(LIVENESS_CACHE_SIZE)


def liveness_for(
    workload: Workload, core_cfg: CoreConfig = DEFAULT_CONFIG
) -> LivenessTrace:
    """Cached :func:`build_liveness_trace` (keyed like the golden cache)."""
    tel = obs.active()
    platform = dataclasses.replace(core_cfg, check_invariants=False)
    key = (workload.name, platform)
    cached = _LIVENESS_CACHE.get(key)
    if cached is not None:
        if tel is not None:
            tel.metrics.counter("exec.lru.liveness.hits").inc()
        return cached
    if tel is not None:
        tel.metrics.counter("exec.lru.liveness.misses").inc()
    with obs.span("liveness-build", workload=workload.name):
        cached = build_liveness_trace(workload, core_cfg)
    _LIVENESS_CACHE.put(key, cached)
    return cached
