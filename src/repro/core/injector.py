"""Applies fault masks to a live simulated system."""

from __future__ import annotations

from repro.core.faults import FaultMask
from repro.cpu.system import System
from repro.errors import ConfigError
from repro.mem.sram import flip_bits


def inject(system: System, mask: FaultMask) -> None:
    """Flip the mask's bits in the named component of *system*.

    This is the moment the particle strikes: it mutates the live structure
    mid-simulation.  Whether anything observable happens depends entirely on
    whether the corrupted bits are subsequently consumed — that is what the
    campaign measures.
    """
    targets = system.injectable_targets()
    target = targets.get(mask.component)
    if target is None:
        raise ConfigError(
            f"unknown component {mask.component!r}; "
            f"available: {', '.join(targets)}"
        )
    rows, cols = target.inject_rows, target.inject_cols
    for row, col in mask.bits:
        if not (0 <= row < rows and 0 <= col < cols):
            raise ConfigError(
                f"fault bit ({row}, {col}) outside the {mask.component} "
                f"geometry {rows}x{cols} — mask was drawn for a different "
                f"platform"
            )
    flip_bits(target, mask.bits)
