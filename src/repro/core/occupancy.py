"""Structure-occupancy analysis: the hardware side of AVF (HVF-style).

Sridharan & Kaeli's Hardware Vulnerability Factor (cited in the paper's
introduction) decomposes AVF into the fraction of time structure bits hold
*live microarchitectural state* and the program-level consequence of
corrupting it.  This module measures the first factor directly: it samples
a running system at intervals and records, per injectable component, the
fraction of bits currently backing live state —

* caches: valid lines / total lines;
* TLBs: valid entries / total entries;
* register file: physical registers that are architecturally mapped or
  allocated to in-flight producers / total registers.

Occupancy is an *upper bound* on AVF (a fault in a dead bit is masked by
definition), which makes these profiles the first diagnostic to read when
a measured AVF looks surprising — and they are what justified this
reproduction's structure scaling (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.system import System


@dataclass
class OccupancySample:
    """Live-state fractions of the six components at one cycle."""

    cycle: int
    fractions: dict[str, float]


@dataclass
class OccupancyProfile:
    """Samples over one run plus summary statistics."""

    samples: list[OccupancySample] = field(default_factory=list)

    def mean(self, component: str) -> float:
        # A component may be absent from some samples (e.g. a profiler
        # that starts watching a structure mid-run); average over the
        # samples that actually observed it.
        observed = [
            s.fractions[component]
            for s in self.samples
            if component in s.fractions
        ]
        if not observed:
            return 0.0
        return sum(observed) / len(observed)

    def peak(self, component: str) -> float:
        observed = [
            s.fractions[component]
            for s in self.samples
            if component in s.fractions
        ]
        return max(observed) if observed else 0.0

    def components(self) -> list[str]:
        names: set[str] = set()
        for sample in self.samples:
            names.update(sample.fractions)
        return sorted(names)

    def summary(self) -> dict[str, tuple[float, float]]:
        """component -> (mean, peak) occupancy."""
        return {c: (self.mean(c), self.peak(c)) for c in self.components()}


def snapshot_bits(system: System) -> dict[str, int]:
    """Absolute live-bit count per injectable component, right now.

    The pruner's accounting unit: each component's occupancy fraction
    times its injection geometry, expressed in bits (a cache line holds
    ``line_size * 8``, a TLB entry 32, a register 32).
    """
    bits: dict[str, int] = {}
    for name, cache in (
        ("l1d", system.l1d), ("l1i", system.l1i), ("l2", system.l2),
    ):
        bits[name] = sum(cache._valid) * cache.line_size * 8
    for name, tlb in (("itlb", system.itlb), ("dtlb", system.dtlb)):
        valid = sum(1 for word in tlb.packed if word >> 31)
        bits[name] = valid * tlb.inject_cols
    core = system.core
    live_regs = set(core.rename_map)
    live_regs.update(
        uop.dest for uop in core.rob if uop.dest >= 0 and not uop.squashed
    )
    bits["regfile"] = len(live_regs) * core.prf.inject_cols
    return bits


def snapshot_occupancy(system: System) -> dict[str, float]:
    """Live-state fraction per injectable component, right now."""
    fractions: dict[str, float] = {}
    for name, cache in (
        ("l1d", system.l1d), ("l1i", system.l1i), ("l2", system.l2),
    ):
        fractions[name] = sum(cache._valid) / cache.num_lines
    for name, tlb in (("itlb", system.itlb), ("dtlb", system.dtlb)):
        valid = sum(1 for word in tlb.packed if word >> 31)
        fractions[name] = valid / tlb.num_entries
    core = system.core
    live_regs = set(core.rename_map)
    live_regs.update(
        uop.dest for uop in core.rob if uop.dest >= 0 and not uop.squashed
    )
    fractions["regfile"] = len(live_regs) / core.cfg.total_regs
    return fractions


def profile_occupancy(
    system: System,
    max_cycles: int,
    interval: int = 500,
) -> OccupancyProfile:
    """Run *system* to completion, sampling occupancy every *interval* cycles.

    The sampling is read-only: the simulated execution is unchanged.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    profile = OccupancyProfile()
    next_sample = 0
    while system.core.result is None and system.cycle < max_cycles:
        if system.cycle >= next_sample:
            profile.samples.append(
                OccupancySample(system.cycle, snapshot_occupancy(system))
            )
            next_sample = system.cycle + interval
        target = min(next_sample, max_cycles)
        if not system.run_until(target, max_cycles):
            break
    return profile
