"""Fault mask: the exact set of bits one injection flips."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultMask:
    """A spatial multi-bit fault targeting one hardware structure.

    ``bits`` are absolute (row, column) coordinates in the target's
    injection geometry; they were drawn inside an X×Y cluster whose top-left
    corner is ``origin`` (paper §III.B).  ``cardinality`` is the number of
    simultaneous flips (1 = SBU, 2/3 = spatial MBU).
    """

    component: str
    bits: tuple[tuple[int, int], ...]
    origin: tuple[int, int]
    cluster: tuple[int, int]

    @property
    def cardinality(self) -> int:
        return len(self.bits)

    def __post_init__(self) -> None:
        if not self.bits:
            raise ValueError("a fault mask needs at least one bit")
        if len(set(self.bits)) != len(self.bits):
            raise ValueError(f"duplicate bits in fault mask: {self.bits}")
        rows, cols = self.cluster
        r0, c0 = self.origin
        for row, col in self.bits:
            if not (r0 <= row < r0 + rows and c0 <= col < c0 + cols):
                raise ValueError(
                    f"bit ({row}, {col}) outside the {rows}x{cols} cluster "
                    f"at {self.origin}"
                )

    def bounding_box(self) -> tuple[int, int]:
        """(height, width) of the smallest box containing all flips.

        The paper notes (§III.B) that, unlike Ibe's MBU coding, its
        generator also produces patterns whose bounding box is smaller than
        the nominal cluster — this accessor lets analyses measure that.
        """
        rows = [r for r, _ in self.bits]
        cols = [c for _, c in self.bits]
        return max(rows) - min(rows) + 1, max(cols) - min(cols) + 1
