"""CI-driven adaptive sampling: the Wilson interval as a stopping rule.

Fixed-budget campaigns (the paper's 2,000 samples/cell) spend the same
effort on a cell whose AVF is pinned down after 200 samples as on one
that genuinely needs every draw.  This driver turns the Wilson-interval
helper of :mod:`repro.core.sampling` from a reporting tool into the
campaign loop's stopping rule:

* **Phase A** runs every cell toward ``config.samples`` in waves of
  :data:`ADAPTIVE_BATCH` injections.  After each wave, any cell whose
  AVF confidence-interval half-width has dropped to ``ci_target`` stops
  early; its unspent budget is freed into a shared pool.
* **Phase B** reallocates the pool to the cells that finished their full
  budget still *above* the target — widest interval first, sized by
  :func:`~repro.core.sampling.required_additional_samples` — until the
  pool is exhausted or every cell meets the target.

Determinism is preserved exactly as in :func:`~repro.core.campaign.run_cell`:
each cell owns an independently seeded mask generator and cycle RNG whose
states are carried across waves, so the first *n* samples of a cell are
identical to the first *n* samples of an exact-replay campaign no matter
how the waves were scheduled.  Allocation decisions depend only on merged
per-cell counts, never on timing or worker count, so ``--jobs N`` results
equal serial results byte-for-byte.  With ``ci_target=0`` the half-width
(strictly positive for any finite sample) never reaches the target: no
cell stops early, no budget moves, and the result is byte-identical to
the exact-replay campaign — the degeneracy the tests pin.

Adaptive cells intentionally have *no* fixed sample count, so they do not
fit the exact-parameter cache key of :class:`~repro.core.campaign.
CampaignStore`; the driver therefore runs storeless (the CLI rejects
``--store``/``--resume`` with ``--adaptive``) and unsupervised.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.core.avf import ClassCounts
from repro.core.campaign import (
    CampaignConfig,
    CampaignResult,
    CellResult,
    ProgressFn,
    _checkpoints_for,
    golden_run,
    run_one_injection,
)
from repro.core.generator import MultiBitFaultGenerator
from repro.core.sampling import required_additional_samples, wilson_half_width
from repro.errors import ConfigError
from repro import obs
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.workloads import get_workload

#: Samples per cell per wave.  Small enough that early stopping reacts
#: within a few percent of the paper's 2,000-sample budget, large enough
#: that the per-wave overhead (state shipping, pool scheduling) stays
#: negligible against the simulations themselves.
ADAPTIVE_BATCH = 25


@dataclass(frozen=True)
class _BatchSpec:
    """One picklable unit of work: *count* more samples of one cell."""

    workload: str
    component: str
    cardinality: int
    count: int
    config: CampaignConfig
    core_cfg: CoreConfig
    generator_state: tuple | None
    cycle_state: tuple | None
    verify: bool
    prune: bool
    telemetry: bool


def _run_batch(spec: _BatchSpec) -> dict:
    """Run one batch against the ambient telemetry (if any).

    Replicates :func:`~repro.core.campaign.run_cell`'s RNG protocol and
    ``sim.*`` accounting exactly: seeded generator + cycle RNG per cell,
    states restored when the batch continues an earlier wave and shipped
    back for the next one.
    """
    workload = get_workload(spec.workload)
    golden = golden_run(workload, spec.core_cfg)
    cell_seed = (
        f"{spec.config.seed}:{spec.workload}:{spec.component}:"
        f"{spec.cardinality}"
    )
    generator = MultiBitFaultGenerator(
        cluster=spec.config.cluster, mode=spec.config.placement,
        seed=cell_seed,
    )
    cycle_rng = random.Random(f"repro-cycles:{cell_seed}")
    if spec.generator_state is not None:
        generator.set_rng_state(spec.generator_state)
    if spec.cycle_state is not None:
        cycle_rng.setstate(spec.cycle_state)
    checkpoints = _checkpoints_for(workload, spec.core_cfg)
    liveness = None
    if spec.prune:
        from repro.core.liveness import liveness_for

        liveness = liveness_for(workload, spec.core_cfg)
    tel = obs.active()
    counts = ClassCounts()
    for _ in range(spec.count):
        inject_cycle = cycle_rng.randrange(golden.cycles)
        fault_class, _, _ = run_one_injection(
            workload, spec.component, generator, spec.cardinality,
            inject_cycle, spec.core_cfg, checkpoints=checkpoints,
            verify=spec.verify, liveness=liveness,
        )
        counts.add(fault_class)
        if tel is not None:
            tel.metrics.counter("sim.class." + fault_class.value).inc()
            tel.metrics.counter("sim.samples").inc()
    return {
        "counts": counts.as_dict(),
        "generator_state": generator.rng_state(),
        "cycle_state": cycle_rng.getstate(),
        "golden_cycles": golden.cycles,
    }


def _run_batch_worker(spec: _BatchSpec) -> dict:
    """Process-pool entry point: fresh telemetry, delta shipped back.

    Whatever telemetry the worker inherited over ``fork`` belongs to the
    parent's registry copy and must not double-count, so it is dropped
    and (when the parent has telemetry) replaced by a fresh instance
    whose full snapshot *is* the batch's delta.
    """
    obs.disable()
    tel = obs.enable() if spec.telemetry else None
    try:
        out = _run_batch(spec)
        if tel is not None:
            out["metrics"] = tel.metrics.as_dict()
        return out
    finally:
        obs.disable()


@dataclass
class _CellState:
    workload: str
    component: str
    cardinality: int
    counts: ClassCounts = field(default_factory=ClassCounts)
    samples_done: int = 0
    golden_cycles: int = 0
    generator_state: tuple | None = None
    cycle_state: tuple | None = None
    early_stopped: bool = False
    extra_granted: int = 0

    def label(self) -> str:
        return f"{self.workload}/{self.component}/{self.cardinality}-bit"

    def half_width(self, confidence: float) -> float:
        # Successes = non-masked outcomes, so the interval brackets the
        # AVF itself (1 − masked fraction) — the paper's reported number.
        return wilson_half_width(
            self.counts.total - self.counts.masked, self.counts.total,
            confidence,
        )

    def result(self) -> CellResult:
        return CellResult(
            workload=self.workload,
            component=self.component,
            cardinality=self.cardinality,
            counts=self.counts,
            golden_cycles=self.golden_cycles,
        )


@dataclass
class AdaptiveCellReport:
    """Per-cell accounting of one adaptive campaign."""

    workload: str
    component: str
    cardinality: int
    samples: int
    half_width: float
    early_stopped: bool
    extra_granted: int

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "component": self.component,
            "cardinality": self.cardinality,
            "samples": self.samples,
            "half_width": self.half_width,
            "early_stopped": self.early_stopped,
            "extra_granted": self.extra_granted,
        }


@dataclass
class AdaptiveReport:
    """An adaptive campaign's result plus its budget ledger."""

    result: CampaignResult
    cells: list[AdaptiveCellReport]
    baseline_samples: int
    spent_samples: int

    @property
    def saved_fraction(self) -> float:
        if self.baseline_samples == 0:
            return 0.0
        return 1.0 - self.spent_samples / self.baseline_samples


def run_campaign_adaptive(
    config: CampaignConfig,
    ci_target: float,
    confidence: float = 0.99,
    *,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    events=None,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
    verify: bool = False,
    prune: bool = False,
) -> AdaptiveReport:
    """Run a campaign with CI-driven early stopping and reallocation.

    *ci_target* is the AVF confidence-interval half-width at which a cell
    may stop (0 disables both early stopping and reallocation, making the
    run byte-identical to :func:`~repro.core.campaign.run_campaign`).
    *events*, when given, receives human-readable one-liners about
    early stops and budget grants.  *jobs* > 1 fans waves out over a
    process pool; allocation depends only on merged counts, so the result
    is identical for every job count.
    """
    if ci_target < 0:
        raise ConfigError(f"ci_target must be >= 0: {ci_target}")
    if config.cores != 1:
        # Waves restore from single-core golden-prefix checkpoints, which
        # have no SMP counterpart; run SMP campaigns with exact replay.
        raise ConfigError(
            "adaptive sampling supports single-core campaigns only "
            f"(cores={config.cores})"
        )
    tel = obs.active()
    cells = [
        _CellState(workload=w, component=c, cardinality=k)
        for (w, c, k) in config.cells()
    ]
    total = len(cells)
    pool_budget = 0
    done = 0
    executor = ProcessPoolExecutor(max_workers=jobs) if jobs > 1 else None

    def execute_wave(grants: list[tuple[_CellState, int]]) -> None:
        specs = [
            _BatchSpec(
                workload=cell.workload, component=cell.component,
                cardinality=cell.cardinality, count=count, config=config,
                core_cfg=core_cfg,
                generator_state=cell.generator_state,
                cycle_state=cell.cycle_state,
                verify=verify, prune=prune,
                telemetry=tel is not None,
            )
            for cell, count in grants
        ]
        if executor is None:
            outs = [_run_batch(spec) for spec in specs]
        else:
            outs = list(executor.map(_run_batch_worker, specs))
        # Merge in grant order — grants are built in canonical cell order,
        # so the merged registry is independent of worker scheduling.
        for (cell, count), out in zip(grants, outs):
            cell.counts = cell.counts.merged(
                ClassCounts.from_dict(out["counts"])
            )
            cell.samples_done += count
            cell.golden_cycles = out["golden_cycles"]
            cell.generator_state = out["generator_state"]
            cell.cycle_state = out["cycle_state"]
            if executor is not None and tel is not None:
                tel.metrics.merge_dict(out.get("metrics", {}))

    def close(cell: _CellState) -> None:
        nonlocal done
        done += 1
        if tel is not None:
            tel.metrics.counter("sim.cells").inc()
        if progress is not None:
            progress(done, total, cell.result())

    try:
        # -- Phase A: run toward the configured budget, stop early at the
        # target, free the unspent remainder into the pool.
        while True:
            grants = [
                (cell, min(ADAPTIVE_BATCH, config.samples - cell.samples_done))
                for cell in cells
                if not cell.early_stopped
                and cell.samples_done < config.samples
            ]
            if not grants:
                break
            execute_wave(grants)
            for cell, _ in grants:
                if (
                    ci_target > 0
                    and cell.samples_done < config.samples
                    and cell.half_width(confidence) <= ci_target
                ):
                    freed = config.samples - cell.samples_done
                    pool_budget += freed
                    cell.early_stopped = True
                    if events is not None:
                        events(
                            f"[adaptive] {cell.label()} reached "
                            f"±{ci_target:g} after {cell.samples_done}/"
                            f"{config.samples} samples; {freed} freed"
                        )
                    close(cell)

        # -- Phase B: grant the freed pool to the widest intervals.
        while ci_target > 0 and pool_budget > 0:
            unmet = [
                cell for cell in cells
                if not cell.early_stopped
                and cell.half_width(confidence) > ci_target
            ]
            if not unmet:
                break
            # Widest interval first; ties resolve by canonical cell order
            # (Python's sort is stable), keeping allocation deterministic.
            unmet.sort(key=lambda cell: -cell.half_width(confidence))
            grants = []
            for cell in unmet:
                if pool_budget <= 0:
                    break
                need = required_additional_samples(
                    cell.counts.total - cell.counts.masked,
                    cell.counts.total, ci_target, confidence,
                )
                grant = min(need, ADAPTIVE_BATCH, pool_budget)
                if grant > 0:
                    grants.append((cell, grant))
                    pool_budget -= grant
                    cell.extra_granted += grant
            if not grants:
                break
            if events is not None:
                granted = ", ".join(
                    f"{cell.label()}+{count}" for cell, count in grants
                )
                events(f"[adaptive] reallocating: {granted}")
            execute_wave(grants)
    finally:
        if executor is not None:
            executor.shutdown()

    for cell in cells:
        if not cell.early_stopped:
            close(cell)
    reports = []
    for cell in cells:
        half = cell.half_width(confidence)
        reports.append(AdaptiveCellReport(
            workload=cell.workload, component=cell.component,
            cardinality=cell.cardinality, samples=cell.samples_done,
            half_width=half, early_stopped=cell.early_stopped,
            extra_granted=cell.extra_granted,
        ))
        if tel is not None:
            tel.metrics.gauge("adaptive.ci." + cell.label()).set(half)
            tel.metrics.gauge(
                "adaptive.samples." + cell.label()
            ).set(cell.samples_done)
    result = CampaignResult(cell.result() for cell in cells)
    spent = sum(cell.samples_done for cell in cells)
    return AdaptiveReport(
        result=result,
        cells=reports,
        baseline_samples=total * config.samples,
        spent_samples=spent,
    )
