"""Statistical fault sampling (Leveugle et al., DATE 2009 — paper §III.A).

For a fault population of size N, confidence level ``conf`` and initial
failure-probability estimate ``p`` (0.5 maximises the required sample), the
number of injections needed for error margin ``e`` is::

    n = N / (1 + e^2 * (N - 1) / (t^2 * p * (1 - p)))

where ``t`` is the two-sided normal quantile for ``conf``.  The paper's
choice — 2,000 samples at 99% confidence with p = 0.5 — yields a 2.88%
error margin for the (astronomically large) fault population of a cache
array, and the post-campaign re-estimate with the measured AVF tightens
that to 2.4-2.88%; both numbers fall out of these formulas.
"""

from __future__ import annotations

import math

from scipy.stats import norm


def _t_value(confidence: float) -> float:
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1): {confidence}")
    return float(norm.ppf(0.5 + confidence / 2))


def sample_size(
    population: int,
    error_margin: float,
    confidence: float = 0.99,
    p: float = 0.5,
) -> int:
    """Required injections for the target *error_margin* (rounded up)."""
    if population <= 0:
        raise ValueError("population must be positive")
    if not 0 < error_margin < 1:
        raise ValueError("error margin must be in (0, 1)")
    t = _t_value(confidence)
    n = population / (
        1 + error_margin ** 2 * (population - 1) / (t ** 2 * p * (1 - p))
    )
    return math.ceil(n)


def error_margin(
    population: int,
    samples: int,
    confidence: float = 0.99,
    p: float = 0.5,
) -> float:
    """Error margin achieved by *samples* injections (inverse formula)."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    if samples > population:
        raise ValueError("cannot sample more faults than the population")
    if population == 1:
        return 0.0
    t = _t_value(confidence)
    return t * math.sqrt(
        p * (1 - p) * (population - samples) / (samples * (population - 1))
    )


def binomial_confidence_interval(
    successes: int,
    trials: int,
    confidence: float = 0.99,
    method: str = "wilson",
) -> tuple[float, float]:
    """Two-sided confidence interval for a binomial proportion.

    Campaign cells report class fractions out of *trials* injections
    (2,000 per cell in the paper); this puts error bars on them.  The
    default is the Wilson score interval, which stays inside [0, 1] and
    behaves at the p→0/p→1 extremes typical of Masked/Assert fractions;
    ``method="wald"`` gives the textbook normal approximation
    ``p ± t·sqrt(p(1-p)/n)`` — with the paper's n = 2,000, conf = 99%,
    p = 0.5 its half-width is the familiar 2.88%.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must be in [0, trials]: {successes}/{trials}"
        )
    t = _t_value(confidence)
    p = successes / trials
    if method == "wald":
        half = t * math.sqrt(p * (1 - p) / trials)
        return max(0.0, p - half), min(1.0, p + half)
    if method == "wilson":
        denom = 1 + t ** 2 / trials
        centre = (p + t ** 2 / (2 * trials)) / denom
        half = t * math.sqrt(
            p * (1 - p) / trials + t ** 2 / (4 * trials ** 2)
        ) / denom
        return max(0.0, centre - half), min(1.0, centre + half)
    raise ValueError(f"unknown method {method!r} (use 'wilson' or 'wald')")


def fault_population(bits: int, cycles: int, cardinality: int = 1) -> int:
    """Size of the fault space for one campaign cell.

    Every (bit-set, injection-cycle) pair is a distinct fault.  For
    multi-bit clusters the bit-set count is approximated by the number of
    cluster placements times in-cluster patterns; for the error-margin
    formulas only the order of magnitude matters (N >> n makes the
    finite-population correction vanish).
    """
    patterns = math.comb(9, cardinality)  # 3x3 cluster positions
    return max(1, bits * cycles * patterns // 9)
