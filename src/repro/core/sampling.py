"""Statistical fault sampling (Leveugle et al., DATE 2009 — paper §III.A).

For a fault population of size N, confidence level ``conf`` and initial
failure-probability estimate ``p`` (0.5 maximises the required sample), the
number of injections needed for error margin ``e`` is::

    n = N / (1 + e^2 * (N - 1) / (t^2 * p * (1 - p)))

where ``t`` is the two-sided normal quantile for ``conf``.  The paper's
choice — 2,000 samples at 99% confidence with p = 0.5 — yields a 2.88%
error margin for the (astronomically large) fault population of a cache
array, and the post-campaign re-estimate with the measured AVF tightens
that to 2.4-2.88%; both numbers fall out of these formulas.
"""

from __future__ import annotations

import math

from scipy.stats import norm


def _t_value(confidence: float) -> float:
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1): {confidence}")
    return float(norm.ppf(0.5 + confidence / 2))


def sample_size(
    population: int,
    error_margin: float,
    confidence: float = 0.99,
    p: float = 0.5,
) -> int:
    """Required injections for the target *error_margin* (rounded up)."""
    if population <= 0:
        raise ValueError("population must be positive")
    if not 0 < error_margin < 1:
        raise ValueError("error margin must be in (0, 1)")
    t = _t_value(confidence)
    n = population / (
        1 + error_margin ** 2 * (population - 1) / (t ** 2 * p * (1 - p))
    )
    return math.ceil(n)


def error_margin(
    population: int,
    samples: int,
    confidence: float = 0.99,
    p: float = 0.5,
) -> float:
    """Error margin achieved by *samples* injections (inverse formula)."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    if samples > population:
        raise ValueError("cannot sample more faults than the population")
    if population == 1:
        return 0.0
    t = _t_value(confidence)
    return t * math.sqrt(
        p * (1 - p) * (population - samples) / (samples * (population - 1))
    )


def binomial_confidence_interval(
    successes: int,
    trials: int,
    confidence: float = 0.99,
    method: str = "wilson",
) -> tuple[float, float]:
    """Two-sided confidence interval for a binomial proportion.

    Campaign cells report class fractions out of *trials* injections
    (2,000 per cell in the paper); this puts error bars on them.  The
    default is the Wilson score interval, which stays inside [0, 1] and
    behaves at the p→0/p→1 extremes typical of Masked/Assert fractions;
    ``method="wald"`` gives the textbook normal approximation
    ``p ± t·sqrt(p(1-p)/n)`` — with the paper's n = 2,000, conf = 99%,
    p = 0.5 its half-width is the familiar 2.88%.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must be in [0, trials]: {successes}/{trials}"
        )
    t = _t_value(confidence)
    p = successes / trials
    if method == "wald":
        half = t * math.sqrt(p * (1 - p) / trials)
        return max(0.0, p - half), min(1.0, p + half)
    if method == "wilson":
        denom = 1 + t ** 2 / trials
        centre = (p + t ** 2 / (2 * trials)) / denom
        half = _wilson_half(p, trials, t)
        return max(0.0, centre - half), min(1.0, centre + half)
    raise ValueError(f"unknown method {method!r} (use 'wilson' or 'wald')")


def _wilson_half(p: float, trials: float, t: float) -> float:
    """Wilson score half-width for proportion *p* over *trials* samples."""
    return t * math.sqrt(
        p * (1 - p) / trials + t ** 2 / (4 * trials ** 2)
    ) / (1 + t ** 2 / trials)


def wilson_half_width(
    successes: int, trials: int, confidence: float = 0.99
) -> float:
    """Half-width of the Wilson interval around ``successes/trials``.

    The adaptive campaign driver's stopping metric: one number instead of
    the (clamped) interval endpoints of
    :func:`binomial_confidence_interval`, computed from the identical
    formula so reports and the stopping rule can never disagree.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must be in [0, trials]: {successes}/{trials}"
        )
    return _wilson_half(successes / trials, trials, _t_value(confidence))


def required_additional_samples(
    successes: int,
    trials: int,
    ci_target: float,
    confidence: float = 0.99,
) -> int:
    """Extra trials needed before the Wilson half-width reaches *ci_target*.

    Inverse of :func:`wilson_half_width` holding the observed proportion
    ``successes/trials`` fixed (the standard plug-in assumption): the
    smallest ``m >= 0`` such that ``trials + m`` samples at that proportion
    yield a half-width of at most *ci_target*.  Returns 0 when the target
    is already met.  The half-width is strictly positive for any finite
    sample, so ``ci_target <= 0`` is unreachable and rejected.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must be in [0, trials]: {successes}/{trials}"
        )
    if ci_target <= 0:
        raise ValueError("ci_target must be positive (the half-width of "
                         "any finite sample is nonzero)")
    t = _t_value(confidence)
    p = successes / trials
    if _wilson_half(p, trials, t) <= ci_target:
        return 0
    # The half-width decreases monotonically in the trial count (for fixed
    # p), so galloping + bisection find the minimal count exactly.
    lo, hi = trials, trials * 2
    while _wilson_half(p, hi, t) > ci_target:
        lo, hi = hi, hi * 2
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if _wilson_half(p, mid, t) <= ci_target:
            hi = mid
        else:
            lo = mid
    return hi - trials


def fault_population(bits: int, cycles: int, cardinality: int = 1) -> int:
    """Size of the fault space for one campaign cell.

    Every (bit-set, injection-cycle) pair is a distinct fault.  For
    multi-bit clusters the bit-set count is approximated by the number of
    cluster placements times in-cluster patterns; for the error-margin
    formulas only the order of magnitude matters (N >> n makes the
    finite-population correction vanish).
    """
    patterns = math.comb(9, cardinality)  # 3x3 cluster positions
    return max(1, bits * cycles * patterns // 9)
