"""Shared frame codec for the executor fabric's byte-stream transports.

Both the subprocess backend (frames over pipes) and the socket backend
(frames over TCP, see :mod:`repro.core.coordinator`) speak the same wire
format, defined here once so a frame written by either side of either
transport is readable by the other:

    +--------+--------+--------+------------------+
    | length | crc32  | epoch  | pickled payload  |
    | 4 B BE | 4 B BE | 8 B BE | *length* bytes   |
    +--------+--------+--------+------------------+

* **length** bounds the payload; anything above :data:`MAX_FRAME_BYTES`
  means the stream desynchronised and is treated as EOF rather than an
  allocation request.
* **crc32** is over the payload bytes.  Pipes rarely corrupt data, but a
  TCP stream crossing real networks, proxies and half-open connections
  can — and "Memory Vulnerability: A Case for Delaying Error Reporting"
  is a standing reminder that a reliability layer without end-to-end
  error detection under it is a story, not a guarantee.  A mismatch is
  EOF, never a crash.
* **epoch** names the coordinator session the frame belongs to.  A fresh
  handshake happens in :data:`HANDSHAKE_EPOCH` (0); the coordinator's
  welcome assigns the live epoch and every later frame carries it.  A
  frame from another epoch — a worker that outlived the campaign it was
  serving, a stale duplicate riding a reused port — reads as EOF, so an
  entire stale session is rejected at its first byte.

The decoder never raises on hostile input: torn header, torn payload,
oversized length, bad CRC, unpicklable bytes and stale epochs all come
back as ``None`` (or a diagnosed :class:`FrameError` status from
:func:`read_frame_ex`, for transports that want to count *why* streams
died).  A codec that can crash its reader is itself an injection target.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass

#: Header: payload length, payload CRC32, session epoch.
_HEADER = struct.Struct(">IIQ")

#: Refuse absurd frame lengths: a desynchronised stream would otherwise
#: ask for gigabytes.  Checkpoints and telemetry deltas are << 16 MB.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: The epoch handshake frames travel in, before a session epoch exists.
HANDSHAKE_EPOCH = 0

#: Why a read produced no message (see :func:`read_frame_ex`).
FRAME_OK = "ok"
FRAME_EOF = "eof"          # clean end of stream
FRAME_TORN = "torn"        # header or payload cut short
FRAME_OVERSIZE = "oversize"  # length field beyond MAX_FRAME_BYTES
FRAME_CORRUPT = "corrupt"  # CRC mismatch or unpicklable payload
FRAME_STALE = "stale"      # valid frame from a different session epoch


@dataclass(frozen=True)
class Frame:
    """One decoded frame: the message plus the epoch it travelled in."""

    message: object
    epoch: int


def _read_exact(stream, count: int) -> bytes:
    """Read up to *count* bytes; a short result means the stream ended."""
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(stream, message: object, epoch: int = HANDSHAKE_EPOCH) -> None:
    """Write one frame; flushes so the peer sees it immediately."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(
        _HEADER.pack(len(payload), zlib.crc32(payload), epoch) + payload
    )
    stream.flush()


def write_corrupt_frame(
    stream, epoch: int = HANDSHAKE_EPOCH, payload: bytes = b"\x00bitrot\x00"
) -> None:
    """Write a frame whose CRC deliberately lies (chaos harness only).

    The length is honest, so the reader consumes exactly this frame and
    diagnoses ``corrupt`` instead of desynchronising — the worst case a
    single flipped-CRC frame is allowed to cause.
    """
    stream.write(
        _HEADER.pack(len(payload), zlib.crc32(payload) ^ 0xFFFFFFFF, epoch)
        + payload
    )
    stream.flush()


def read_frame_ex(
    stream, epoch: int | None = None
) -> tuple[Frame | None, str]:
    """Read one frame; returns ``(frame, status)``.

    *epoch* of ``None`` accepts any session (the handshake reader);
    otherwise a well-formed frame from a different epoch is refused with
    status :data:`FRAME_STALE` — its payload is **not** unpickled, so a
    stale session cannot even exercise the pickle layer.  Every non-OK
    status means the caller should treat the stream as dead.
    """
    header = _read_exact(stream, _HEADER.size)
    if not header:
        return None, FRAME_EOF
    if len(header) < _HEADER.size:
        return None, FRAME_TORN
    length, crc, frame_epoch = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        return None, FRAME_OVERSIZE
    payload = _read_exact(stream, length)
    if len(payload) < length:
        return None, FRAME_TORN
    if epoch is not None and frame_epoch != epoch:
        return None, FRAME_STALE
    if zlib.crc32(payload) != crc:
        return None, FRAME_CORRUPT
    try:
        message = pickle.loads(payload)
    except Exception:  # noqa: BLE001 - hostile bytes are EOF, not a crash
        return None, FRAME_CORRUPT
    return Frame(message, frame_epoch), FRAME_OK


def read_frame(stream, epoch: int | None = None) -> object | None:
    """One frame's message, or ``None`` for *any* kind of dead stream."""
    frame, _ = read_frame_ex(stream, epoch)
    return frame.message if frame is not None else None
