"""Fault-contained campaign execution: the supervisor layer.

A fault injector deliberately corrupts machine state, so it tickles code
paths no test suite ever visited — and a single unexpected Python exception
must not abort a 540k-simulation campaign.  Following the monitor design of
production injectors (DAVOS's SBFI tool runs every injection as an
untrusted job under a retry/quarantine monitor), every injection here runs
inside an isolation boundary:

* a deliberate :class:`~repro.errors.SimAssertion` is the paper's *Assert*
  fault-effect class and is classified normally;
* any other exception is an **incident**: an infra failure whose full repro
  bundle (workload, component, cardinality, cell seed, sample index,
  injection cycle, fault mask, traceback) is appended to a JSONL incident
  journal, after which the campaign continues without that sample;
* a step-count watchdog bounds every faulty run, so an infra livelock with
  a stuck cycle counter surfaces as a :class:`~repro.errors.WatchdogTimeout`
  incident instead of hanging the campaign;
* a ``--max-incidents`` budget aborts the campaign once too many samples
  have been lost for its statistics to mean anything, and ``--strict``
  escalates the first incident immediately (for CI and debugging).

Incidents are *not* fault effects: they never enter a cell's
:class:`~repro.core.avf.ClassCounts`.  See DESIGN.md §6 for the containment
model.
"""

from __future__ import annotations

import json
import traceback as traceback_module
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.campaign import (
    CheckpointedWorkload,
    golden_run,
    run_one_injection,
)
from repro.core.classify import TIMEOUT_FACTOR, FaultClass
from repro.core.faults import FaultMask
from repro.errors import (
    IncidentBudgetExceeded,
    InjectionIncident,
    SimAssertion,
)
from repro import obs
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.workloads.base import Workload

#: Extra steps granted beyond the cycle budget before the watchdog trips.
#: Every legal pipeline step advances the cycle counter by at least one, so
#: steps can never legitimately exceed cycles; the slack absorbs the
#: bookkeeping steps around termination.
WATCHDOG_SLACK_STEPS = 10_000

#: Every incident kind any layer journals — the supervisor's contained
#: injection failures plus the executor fabric's (see
#: :class:`Incident` and ``repro-campaign incidents --type``).
INCIDENT_KINDS = (
    "exception",
    "watchdog",
    "worker-crash",
    "worker-hang",
    "retry",
    "lease-expired",
    "poison-cell",
    "degraded",
)


@dataclass
class Incident:
    """One contained infra failure, with everything needed to reproduce it.

    ``kind`` is ``"exception"`` for an unexpected Python error,
    ``"watchdog"`` for a step-budget trip (simulator livelock), and for
    the parallel executor fabric (see :mod:`repro.core.parallel`):
    ``"worker-crash"`` (a worker process died outright),
    ``"worker-hang"`` (a silent or over-deadline worker was killed after
    ignoring a soft cancel), ``"retry"`` (a cell was rescheduled — pure
    bookkeeping, never counted against the incident budget),
    ``"lease-expired"`` (a cell's ownership lease ran out because its
    worker — typically on the wrong side of a network partition — went
    unreachable; the cell was reclaimed and rescheduled, also pure
    bookkeeping), ``"poison-cell"`` (a cell exhausted its attempt budget and was
    quarantined) and ``"degraded"`` (the worker pool shrank to nothing
    and the scheduler fell back to in-process serial execution).
    Fabric incidents carry ``sample_index``/``inject_cycle`` of ``-1``
    and machine-readable context in ``details`` (attempt number, backoff
    delay, cause, lost telemetry deltas...).  ``mask`` is the serialised
    :class:`~repro.core.faults.FaultMask` when the failure happened after
    mask generation, else ``None`` (the cell seed + sample index still
    reproduce it deterministically).
    """

    kind: str
    workload: str
    component: str
    cardinality: int
    cell_seed: str
    sample_index: int
    inject_cycle: int
    mask: dict | None
    error_type: str
    message: str
    traceback: str
    details: dict | None = None

    def as_dict(self) -> dict:
        data = {
            "kind": self.kind,
            "workload": self.workload,
            "component": self.component,
            "cardinality": self.cardinality,
            "cell_seed": self.cell_seed,
            "sample_index": self.sample_index,
            "inject_cycle": self.inject_cycle,
            "mask": self.mask,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }
        if self.details is not None:
            data["details"] = self.details
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Incident":
        return cls(
            kind=data["kind"],
            workload=data["workload"],
            component=data["component"],
            cardinality=int(data["cardinality"]),
            cell_seed=data["cell_seed"],
            sample_index=int(data["sample_index"]),
            inject_cycle=int(data["inject_cycle"]),
            mask=data.get("mask"),
            error_type=data["error_type"],
            message=data["message"],
            traceback=data.get("traceback", ""),
            details=data.get("details"),
        )

    def cell_label(self) -> str:
        return f"{self.workload}/{self.component}/{self.cardinality}-bit"


def _mask_as_dict(mask: FaultMask | None) -> dict | None:
    if mask is None:
        return None
    return {
        "component": mask.component,
        "bits": [list(bit) for bit in mask.bits],
        "origin": list(mask.origin),
        "cluster": list(mask.cluster),
    }


class IncidentJournal:
    """Append-only JSONL journal of incidents.

    With a *path*, every append lands on disk immediately (one flushed
    line), so the journal survives the very crash it is documenting.  With
    ``path=None`` it is memory-only — useful for library callers and tests.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.incidents: list[Incident] = []

    def append(self, incident: Incident) -> None:
        self.incidents.append(incident)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as journal:
                journal.write(json.dumps(incident.as_dict()) + "\n")
                journal.flush()

    def __len__(self) -> int:
        return len(self.incidents)

    @classmethod
    def load(cls, path: str | Path) -> "IncidentJournal":
        """Read a journal back; torn or corrupt lines are skipped.

        The returned journal keeps *path* attached, so appending to a
        loaded journal continues the same file.
        """
        journal = cls(path)
        journal_path = Path(path)
        if not journal_path.exists():
            return journal
        for line in journal_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                journal.incidents.append(Incident.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                continue
        return journal


@dataclass
class Supervisor:
    """Isolation boundary around individual injections.

    ``max_incidents=None`` means unlimited containment; ``strict=True``
    re-raises the first incident as :class:`InjectionIncident` (after
    journalling it).  ``incident_count`` counts this run only — a resumed
    campaign's journal may hold more from earlier runs.
    """

    journal: IncidentJournal = field(default_factory=IncidentJournal)
    max_incidents: int | None = None
    strict: bool = False
    watchdog: bool = True
    incident_count: int = 0

    def run_injection(
        self,
        workload: Workload,
        component: str,
        generator,
        cardinality: int,
        inject_cycle: int,
        core_cfg: CoreConfig = DEFAULT_CONFIG,
        checkpoints: CheckpointedWorkload | None = None,
        *,
        cell_seed: str = "",
        sample_index: int = 0,
        verify: bool = False,
        liveness=None,
        cores: int = 1,
    ) -> FaultClass | None:
        """One injection inside the containment boundary.

        Returns the fault class, or ``None`` when the sample was lost to a
        contained incident.  A failed *verify* cross-check (a
        :class:`~repro.errors.VerificationError`) is contained like any
        other platform bug — journalled with a full repro bundle, and
        escalated in ``--strict`` mode.  *liveness* is forwarded to
        :func:`~repro.core.campaign.run_one_injection` for mask pruning;
        a pruner audit failure is a verification incident like any other.
        *cores* selects the SMP machine; the watchdog budget derives from
        that machine's own golden run, so a slower multi-core schedule
        never trips the step budget spuriously.
        """
        trace: dict = {}
        max_steps = None
        if self.watchdog:
            golden = golden_run(workload, core_cfg, cores=cores)
            max_steps = TIMEOUT_FACTOR * golden.cycles + WATCHDOG_SLACK_STEPS
        try:
            fault_class, _, _ = run_one_injection(
                workload, component, generator, cardinality, inject_cycle,
                core_cfg, checkpoints=checkpoints, max_steps=max_steps,
                trace=trace, verify=verify, liveness=liveness, cores=cores,
            )
            return fault_class
        except SimAssertion:
            # A simulator assertion that escapes the run loop (e.g. raised
            # while applying the mask) is still the deliberate Assert class.
            return FaultClass.ASSERT
        except Exception as exc:  # noqa: BLE001 - containment is the point
            self._contain(
                exc, workload, component, cardinality, cell_seed,
                sample_index, inject_cycle, trace.get("mask"),
            )
            return None

    def _contain(
        self,
        exc: Exception,
        workload: Workload,
        component: str,
        cardinality: int,
        cell_seed: str,
        sample_index: int,
        inject_cycle: int,
        mask: FaultMask | None,
    ) -> None:
        from repro.errors import WatchdogTimeout

        incident = Incident(
            kind="watchdog" if isinstance(exc, WatchdogTimeout) else "exception",
            workload=workload.name,
            component=component,
            cardinality=cardinality,
            cell_seed=cell_seed,
            sample_index=sample_index,
            inject_cycle=inject_cycle,
            mask=_mask_as_dict(mask),
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )
        self.journal.append(incident)
        self.incident_count += 1
        tel = obs.active()
        if tel is not None:
            # Incidents are rare by definition; each one is worth a point
            # on the trace timeline next to its counters.
            tel.metrics.counter("exec.incidents").inc()
            tel.metrics.counter("exec.incidents." + incident.kind).inc()
            tel.tracer.instant(
                "incident",
                kind=incident.kind,
                cell=incident.cell_label(),
                sample=sample_index,
                error=type(exc).__name__,
            )
        if self.strict:
            raise InjectionIncident(
                f"[strict] incident in {incident.cell_label()} sample "
                f"{sample_index}: {type(exc).__name__}: {exc}"
            ) from exc
        if (
            self.max_incidents is not None
            and self.incident_count > self.max_incidents
        ):
            raise IncidentBudgetExceeded(
                f"{self.incident_count} incidents exceed the budget of "
                f"{self.max_incidents}; campaign statistics are no longer "
                f"trustworthy (last: {type(exc).__name__} in "
                f"{incident.cell_label()})"
            ) from exc
