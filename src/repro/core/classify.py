"""Fault-effect classification (§III.C of the paper).

Five classes:

* **Masked** — execution indistinguishable from the golden run (identical
  program output and exit status);
* **SDC** — program ran to completion but its output differs silently;
* **Crash** — process abort (architectural exception at commit) or kernel
  panic;
* **Timeout** — did not finish within 4× the fault-free execution time
  (deadlock: commit permanently stalled; livelock: executing garbage
  forever);
* **Assert** — the simulator itself hit an unrepresentable state (e.g. a
  corrupted translation addressing outside the platform memory map).
"""

from __future__ import annotations

import enum

from repro.kernel.status import RunResult, RunStatus

#: Timeout bound relative to the golden run, per the paper.
TIMEOUT_FACTOR = 4


class FaultClass(enum.Enum):
    MASKED = "masked"
    SDC = "sdc"
    CRASH = "crash"
    TIMEOUT = "timeout"
    ASSERT = "assert"


_STATUS_CLASS = {
    RunStatus.CRASH_PROCESS: FaultClass.CRASH,
    RunStatus.CRASH_KERNEL: FaultClass.CRASH,
    RunStatus.TIMEOUT_DEADLOCK: FaultClass.TIMEOUT,
    RunStatus.TIMEOUT_LIVELOCK: FaultClass.TIMEOUT,
    RunStatus.SIM_ASSERT: FaultClass.ASSERT,
}


def classify(result: RunResult, golden: RunResult) -> FaultClass:
    """Classify one faulty run against the golden (fault-free) run."""
    if result.status is RunStatus.FINISHED:
        same = (
            result.output == golden.output
            and result.exit_code == golden.exit_code
        )
        return FaultClass.MASKED if same else FaultClass.SDC
    return _STATUS_CLASS[result.status]
