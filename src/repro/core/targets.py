"""Injection-target metadata: component sizes (Table VIII of the paper).

Two bit counts exist per component:

* the **paper sizes** (Table VIII) — used for the FIT arithmetic of Eq. 4 /
  Fig. 8, because FIT is linear in the number of bits and the paper's
  numbers are what the reproduction must regenerate;
* the **simulated sizes** — the scale-model structures actually injected
  (see DESIGN.md §5); available for ablations via
  :func:`simulated_component_bits`.
"""

from __future__ import annotations

from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.cpu.system import COMPONENT_NAMES, System

#: Table VIII — component sizes in bits on the paper's Cortex-A9.
PAPER_COMPONENT_BITS: dict[str, int] = {
    "l1d": 262_144,
    "l1i": 262_144,
    "l2": 4_194_304,
    "regfile": 2_112,
    "itlb": 1_024,
    "dtlb": 1_024,
}

#: Human-readable component labels used in tables/figures.
COMPONENT_LABELS: dict[str, str] = {
    "l1d": "L1D Cache",
    "l1i": "L1I Cache",
    "l2": "L2 Cache",
    "regfile": "Register File",
    "dtlb": "DTLB",
    "itlb": "ITLB",
}


def simulated_component_bits(cfg: CoreConfig = DEFAULT_CONFIG) -> dict[str, int]:
    """Bit counts of the structures the simulator actually injects."""
    system = System(cfg)
    return {
        name: target.inject_rows * target.inject_cols
        for name, target in system.injectable_targets().items()
    }


def check_component_names() -> None:
    """Invariant: the registry and the simulator agree on component names."""
    missing = set(COMPONENT_NAMES) ^ set(PAPER_COMPONENT_BITS)
    if missing:  # pragma: no cover - construction-time sanity
        raise AssertionError(f"component name mismatch: {missing}")


check_component_names()
