"""Machine-readable exports of campaign results and derived analyses.

The text renderers in :mod:`repro.core.report` regenerate the paper's
artifacts for humans; this module produces CSV for downstream tooling
(plotting, regression tracking, spreadsheets).  Every row carries the raw
counts, so any derived statistic can be recomputed from the export alone.
"""

from __future__ import annotations

import csv
import io

from repro.core.avf import node_avf
from repro.core.campaign import CampaignResult
from repro.core.fit import cpu_fit_by_node
from repro.core.technology import TECHNOLOGY_NODES


def summary_to_csv(result: CampaignResult) -> str:
    """Campaign-level metadata: schema version, incident count, coverage.

    ``total_injections`` sums the per-cell histograms; with contained
    incidents it is smaller than cells x samples, and the gap is exactly
    ``incidents`` — so a consumer can check campaign completeness from the
    export alone.  Results serialised before schema 2 load with
    ``schema=1`` and ``incidents=0``.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["schema", "cells", "total_injections", "incidents"])
    writer.writerow([
        result.schema,
        len(result),
        sum(cell.counts.total for cell in result.cells),
        result.incidents,
    ])
    return buffer.getvalue()


def cells_to_csv(result: CampaignResult) -> str:
    """One row per campaign cell with the full outcome histogram."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "workload", "component", "cardinality", "golden_cycles",
        "masked", "sdc", "crash", "timeout", "assertion", "avf",
    ])
    for cell in sorted(
        result.cells,
        key=lambda c: (c.workload, c.component, c.cardinality),
    ):
        counts = cell.counts
        writer.writerow([
            cell.workload, cell.component, cell.cardinality,
            cell.golden_cycles, counts.masked, counts.sdc, counts.crash,
            counts.timeout, counts.assertion, f"{counts.avf:.6f}",
        ])
    return buffer.getvalue()


def weighted_avf_to_csv(result: CampaignResult) -> str:
    """Table V as CSV: component x cardinality weighted AVFs."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["component", "cardinality", "weighted_avf"])
    for component in result.components():
        for cardinality, avf in sorted(
            result.weighted_avf_by_cardinality(component).items()
        ):
            writer.writerow([component, cardinality, f"{avf:.6f}"])
    return buffer.getvalue()


def node_avf_to_csv(result: CampaignResult) -> str:
    """Fig. 7 as CSV: aggregate AVF per component per technology node."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["component", "node", "single_bit_avf", "aggregate_avf"])
    for component in result.components():
        avfs = result.weighted_avf_by_cardinality(component)
        for node in TECHNOLOGY_NODES:
            writer.writerow([
                component, node,
                f"{avfs.get(1, 0.0):.6f}",
                f"{node_avf(avfs, node):.6f}",
            ])
    return buffer.getvalue()


def fit_to_csv(result: CampaignResult) -> str:
    """Fig. 8 as CSV: per-node CPU FIT decomposition."""
    avf_tables = {
        component: result.weighted_avf_by_cardinality(component)
        for component in result.components()
    }
    fits = cpu_fit_by_node(avf_tables)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "node", "fit_total", "fit_single_only", "fit_multibit",
        "multibit_share",
    ])
    for node in TECHNOLOGY_NODES:
        fit = fits[node]
        writer.writerow([
            node, f"{fit.fit_total:.6f}", f"{fit.fit_single_only:.6f}",
            f"{fit.fit_multibit:.6f}", f"{fit.multibit_share:.6f}",
        ])
    return buffer.getvalue()
