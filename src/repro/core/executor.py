"""Pluggable executor backends for the parallel campaign scheduler.

:mod:`repro.core.parallel` used to hard-wire one multiprocessing pool;
this module extracts the seam between *scheduling* (which cell runs
where, retries, quarantine — the parent's job) and *execution* (how a
worker process is spawned and spoken to — the backend's job), the same
dispatch abstraction DAVOS uses to run one campaign on either a
multicore PC or an SGE grid.

Two backends ship today:

* :class:`MultiprocessingBackend` — the original in-process
  ``multiprocessing`` pool (fork when available, spawn otherwise),
  talking over context queues.  Cheapest start-up, shares the parent's
  warm caches over fork.
* :class:`SubprocessBackend` — fully spawned ``subprocess`` workers
  speaking **length-prefixed messages over pipes** (4-byte big-endian
  length + pickled tuple).  Nothing is shared with the parent but the
  byte stream, which is exactly the discipline a future multi-host
  (SSH/container/socket) backend needs — this backend exists to prove
  that seam and to keep it honest via the backend-conformance tests.

Both backends run the same :func:`worker_loop`; a worker is defined by
the messages it exchanges, not by how its process was made:

parent → worker   ``batch`` (list of :class:`CellTask`), ``None``
                  (shutdown), soft-cancel (per-worker stop flag)
worker → parent   ``("ready", wid)`` · ``("start", wid, index, golden)``
                  · ``("heartbeat", wid, index, ordinal)`` ·
                  ``("partial", wid, index, key, state)`` ·
                  ``("cell", wid, index, data)`` ·
                  ``("telemetry", wid, index|None, delta, events)`` ·
                  ``("incident", wid, data)`` ·
                  ``("fatal", wid, index, type, detail)`` ·
                  ``("stopped", wid)`` · ``("bye", wid)``

Heartbeats piggyback on the per-sample stop probe, so a worker that
stops heartbeating has by definition stopped making sample progress —
the scheduler's hang detector needs no second channel.  The
:class:`ResiliencePolicy` dataclass holds every tunable of the
resilience protocol layered on top (see DESIGN.md §10).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import queue as queue_module
import signal
import subprocess
import sys
import threading
import time
import traceback as traceback_module
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.obs.metrics import subtract_snapshot

from repro.core.campaign import (
    CampaignConfig,
    CellCheckpoint,
    golden_run,
    run_cell,
)
from repro.core.chaos import ChaosSpec
from repro.core.wire import (  # noqa: F401 - re-exported compat names
    HANDSHAKE_EPOCH,
    MAX_FRAME_BYTES,
    read_frame,
    write_frame,
)
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.errors import CampaignInterrupted, InjectionIncident
from repro.workloads import get_workload


@dataclass(frozen=True)
class CellTask:
    """One cell's marching orders, parent → worker."""

    index: int  # position in config.cells() — the merge key
    workload: str
    component: str
    cardinality: int
    cell_key: str
    partial: dict | None  # serialised CellCheckpoint to resume from
    attempt: int = 0  # 0 on first dispatch; >0 on retries


@dataclass(frozen=True)
class ResiliencePolicy:
    """Every tunable of the executor fabric's failure handling.

    Deadlines are derived, not configured: the scheduler calibrates a
    golden-cycles-per-wall-second rate from completed cells and allows
    each in-flight cell ``deadline_factor`` times its predicted wall
    time (never less than ``deadline_floor`` seconds).  Until the first
    cell completes there is no rate and no deadline — heartbeat silence
    (``hang_timeout``) is the primary hang signal throughout.

    **Leases** are the cell-ownership layer on top (DESIGN.md §12): a
    dispatched cell is *leased* to its worker for
    ``lease_factor × predicted wall`` seconds (never less than
    ``lease_floor``), renewed by every message from that worker.  An
    expired lease means the owner is unreachable — partitioned, killed,
    or wedged beyond even the hang escalator's reach (a remote host the
    scheduler cannot SIGKILL) — so ownership is reclaimed and the cell
    rescheduled; a late result from the old owner is suppressed by the
    first-canonical-result-wins rule.  The defaults keep the lease
    horizon comfortably beyond ``hang_timeout + grace_period`` so local
    backends escalate before they ever forfeit a lease.
    """

    heartbeat_interval: float = 0.5
    hang_timeout: float = 30.0
    grace_period: float = 5.0
    max_attempts: int = 3
    retry_base_delay: float = 0.25
    retry_max_delay: float = 30.0
    retry_jitter: float = 0.25
    deadline_factor: float = 8.0
    deadline_floor: float = 10.0
    straggler_factor: float = 3.0
    speculate: bool = True
    restarts_per_worker: int = 2
    degrade_to_serial: bool = True
    lease_factor: float = 16.0
    lease_floor: float = 60.0

    def validate(self) -> None:
        """Reject self-contradictory knob combinations loudly.

        The CLI funnels user-supplied overrides through here so a typo'd
        ``--heartbeat-interval 0`` fails at argument time, not as a
        mysterious mid-campaign reclaim storm.
        """
        from repro.errors import ConfigError

        positive = {
            "heartbeat_interval": self.heartbeat_interval,
            "hang_timeout": self.hang_timeout,
            "grace_period": self.grace_period,
            "retry_base_delay": self.retry_base_delay,
            "retry_max_delay": self.retry_max_delay,
            "deadline_factor": self.deadline_factor,
            "deadline_floor": self.deadline_floor,
            "straggler_factor": self.straggler_factor,
            "lease_factor": self.lease_factor,
            "lease_floor": self.lease_floor,
        }
        for name, value in positive.items():
            if value <= 0:
                raise ConfigError(f"{name} must be > 0 (got {value})")
        if self.retry_jitter < 0:
            raise ConfigError(
                f"retry_jitter must be >= 0 (got {self.retry_jitter})"
            )
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1 (got {self.max_attempts})"
            )
        if self.restarts_per_worker < 0:
            raise ConfigError(
                f"restarts_per_worker must be >= 0 "
                f"(got {self.restarts_per_worker})"
            )
        if self.retry_max_delay < self.retry_base_delay:
            raise ConfigError(
                f"retry_max_delay ({self.retry_max_delay}) must be >= "
                f"retry_base_delay ({self.retry_base_delay})"
            )
        if self.heartbeat_interval > self.hang_timeout:
            raise ConfigError(
                f"heartbeat_interval ({self.heartbeat_interval}) must not "
                f"exceed hang_timeout ({self.hang_timeout}) — every live "
                f"worker would look hung"
            )

    def backoff(self, cell_key: str, attempt: int) -> float:
        """Exponential backoff with deterministic jitter.

        The jitter fraction is drawn from a hash of (cell key, attempt),
        so two schedulers retrying the same cell spread out identically —
        reproducible schedules, no thundering herd.
        """
        base = min(
            self.retry_max_delay,
            self.retry_base_delay * (2 ** max(0, attempt - 1)),
        )
        digest = hashlib.sha256(f"{cell_key}:{attempt}".encode()).digest()
        return base * (1.0 + self.retry_jitter * digest[0] / 255.0)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to run cell batches, picklable."""

    config: CampaignConfig
    core_cfg: CoreConfig
    supervised: bool
    strict: bool
    watchdog: bool
    checkpoint_every: int | None
    telemetry_enabled: bool
    verify: bool
    prune: bool = False
    heartbeat_interval: float = 0.5
    chaos: ChaosSpec | None = None


# ---------------------------------------------------------------------------
# The shared worker loop (backend-independent)
# ---------------------------------------------------------------------------


class _SendJournal:
    """Worker-side incident journal: forwards every record to the parent."""

    def __init__(self, send: Callable, worker_id: int) -> None:
        self._send = send
        self._worker_id = worker_id
        self.incidents: list = []  # Supervisor reads len() nowhere, kept for shape

    def append(self, incident) -> None:
        self._send(("incident", self._worker_id, incident.as_dict()))


class _SendStore:
    """Worker-side store proxy: resume data in, checkpoints out.

    Duck-types the two methods :func:`~repro.core.campaign.run_cell`
    uses.  ``get_partial`` serves the checkpoint the parent attached to
    the task; ``put_partial`` streams new checkpoints to the parent, the
    single real-store writer.
    """

    def __init__(self, send: Callable, worker_id: int, task: CellTask) -> None:
        self._send = send
        self._worker_id = worker_id
        self._task = task

    def get_partial(self, key: str) -> CellCheckpoint | None:
        if self._task.partial is None or key != self._task.cell_key:
            return None
        try:
            return CellCheckpoint.from_dict(self._task.partial)
        except (KeyError, ValueError, TypeError):  # pragma: no cover
            return None

    def put_partial(self, key: str, checkpoint: CellCheckpoint) -> None:
        self._send(
            ("partial", self._worker_id, self._task.index, key,
             checkpoint.as_dict())
        )


class _TelemetryShipper:
    """Worker-side telemetry outbox: per-cell metric deltas + trace events.

    After every finished cell the worker snapshots its local registry,
    ships the delta since the previous snapshot (tagged with the cell's
    canonical index, so the parent can merge in canonical cell order) and
    drains its trace buffer into the same message.  Worker-scoped
    activity between cells ships with ``index=None`` at batch boundaries
    and shutdown.
    """

    def __init__(self, send: Callable, worker_id: int, telemetry) -> None:
        self._send = send
        self._worker_id = worker_id
        self._telemetry = telemetry
        self._base = (
            telemetry.metrics.as_dict() if telemetry is not None else None
        )

    def ship(self, index: int | None = None) -> None:
        if self._telemetry is None:
            return
        snapshot = self._telemetry.metrics.as_dict()
        delta = subtract_snapshot(snapshot, self._base)
        self._base = snapshot
        events = self._telemetry.tracer.drain()
        if index is None and not events and not any(
            delta[kind] for kind in ("counters", "histograms")
        ):
            return
        self._send(("telemetry", self._worker_id, index, delta, events))


def _make_probe(
    task: CellTask,
    spec: WorkerSpec,
    send: Callable,
    worker_id: int,
    stop_flag: Callable[[], bool],
) -> Callable[[], bool]:
    """The per-sample stop probe: chaos hook + heartbeat + stop check.

    Probed once before every sample by :func:`run_cell`; *ordinal*
    counts probes within this dispatch (it restarts at 0 when a
    rescheduled cell resumes from a checkpoint).  Chaos events fire
    before the heartbeat, so an ordinal-0 kill dies as silently as a
    real startup segfault.
    """
    state = {"ordinal": -1, "beat": time.monotonic()}
    chaos = spec.chaos

    def probe() -> bool:
        state["ordinal"] += 1
        if chaos is not None:
            chaos.worker_event(
                task.workload, task.component, task.cardinality,
                state["ordinal"],
            )
        now = time.monotonic()
        if now - state["beat"] >= spec.heartbeat_interval:
            send(("heartbeat", worker_id, task.index, state["ordinal"]))
            state["beat"] = now
        return stop_flag()

    return probe


def worker_loop(
    worker_id: int,
    spec: WorkerSpec,
    recv_batch: Callable[[float], object],
    send: Callable[[tuple], None],
    stop_flag: Callable[[], bool],
) -> None:
    """Backend-independent worker body: batches in, messages out.

    *recv_batch* blocks up to its timeout and raises ``queue.Empty`` on
    expiry; it returns a list of :class:`CellTask` or ``None`` for
    shutdown.  *stop_flag* is the soft-cancel probe — polled between
    samples, so a cancelled worker flushes one final mid-cell checkpoint
    before exiting.  SIGINT/SIGTERM are ignored here: shutdown is the
    parent's job, delivered through the stop flag (the scheduler
    escalates to SIGKILL when a worker ignores that too).
    """
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_IGN)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    # Fresh per-worker telemetry: anything inherited over fork belongs to
    # the parent and must not be double-reported from here.
    obs.disable()
    tel = obs.enable() if spec.telemetry_enabled else None
    shipper = _TelemetryShipper(send, worker_id, tel)
    supervisor = None
    if spec.supervised:
        from repro.core.supervisor import Supervisor

        supervisor = Supervisor(
            journal=_SendJournal(send, worker_id),
            max_incidents=None,  # the parent enforces the global budget
            strict=spec.strict,
            watchdog=spec.watchdog,
        )
    send(("ready", worker_id))
    while True:
        wait_begin = time.perf_counter() if tel is not None else 0.0
        try:
            batch = recv_batch(60.0)
        except queue_module.Empty:
            if stop_flag():  # pragma: no cover - parent gave up
                return
            continue  # pragma: no cover - parent merely busy
        if tel is not None:
            tel.metrics.histogram("time.worker.task_wait").observe(
                time.perf_counter() - wait_begin
            )
        if batch is None:
            shipper.ship()
            send(("bye", worker_id))
            return
        with obs.span("worker-batch", worker=worker_id, cells=len(batch)):
            for task in batch:
                if stop_flag():
                    shipper.ship()
                    send(("stopped", worker_id))
                    return
                # Golden cycles are the deadline currency: computed (or
                # cache-served) before the cell so the parent can bound
                # its wall clock from the very first heartbeat.
                try:
                    golden_cycles = golden_run(
                        get_workload(task.workload), spec.core_cfg
                    ).cycles
                except Exception as exc:  # noqa: BLE001 - surface, don't hang
                    shipper.ship()
                    send(("fatal", worker_id, task.index,
                          type(exc).__name__,
                          f"{exc}\n{traceback_module.format_exc()}"))
                    return
                send(("start", worker_id, task.index, golden_cycles))
                probe = _make_probe(task, spec, send, worker_id, stop_flag)
                store_proxy = _SendStore(send, worker_id, task)
                try:
                    cell = run_cell(
                        task.workload, task.component, task.cardinality,
                        spec.config, spec.core_cfg,
                        supervisor=supervisor,
                        store=store_proxy, cell_key=task.cell_key,
                        checkpoint_every=spec.checkpoint_every, resume=True,
                        stop=probe,
                        verify=spec.verify,
                        prune=spec.prune,
                    )
                except CampaignInterrupted:
                    shipper.ship()
                    send(("stopped", worker_id))
                    return
                except InjectionIncident as exc:
                    # --strict escalation: the incident itself was already
                    # forwarded by the send journal; tell the parent to
                    # abort.
                    shipper.ship()
                    send(("fatal", worker_id, task.index,
                          type(exc).__name__, str(exc)))
                    return
                except Exception as exc:  # noqa: BLE001 - must not hang the pool
                    shipper.ship()
                    send(("fatal", worker_id, task.index, type(exc).__name__,
                          f"{exc}\n{traceback_module.format_exc()}"))
                    return
                # Telemetry first, completion second: messages from one
                # worker arrive in order, so the parent still holds the
                # cell as pending when its metric delta arrives.
                shipper.ship(task.index)
                send(("cell", worker_id, task.index, cell.as_dict()))
        shipper.ship()
        send(("ready", worker_id))


# ---------------------------------------------------------------------------
# Backend interface
# ---------------------------------------------------------------------------


class WorkerHandle:
    """Parent-side view of one worker, whatever its transport."""

    worker_id: int

    def send(self, batch: list[CellTask] | None) -> None:
        """Dispatch a task batch (or ``None`` = shut down politely)."""
        raise NotImplementedError

    def soft_cancel(self) -> None:
        """Ask the worker to stop at the next sample boundary."""
        raise NotImplementedError

    def kill(self) -> None:
        """Terminate the worker immediately (SIGKILL-hard)."""
        raise NotImplementedError

    def alive(self) -> bool:
        raise NotImplementedError

    def exitcode(self) -> int | None:
        raise NotImplementedError

    def pid(self) -> int | None:
        raise NotImplementedError

    def join(self, timeout: float) -> None:
        raise NotImplementedError


class ExecutorBackend:
    """Spawns workers and multiplexes their message streams.

    The scheduler sees exactly this surface: ``spawn()`` a worker,
    ``recv()`` the next message from any worker (``None`` on timeout),
    ``close()`` when done.  Everything else — transport, serialisation,
    process lifecycle — is the backend's private business, which is what
    lets a multi-host backend slot in without touching the scheduler.
    """

    name: str = "abstract"

    def spawn(self) -> WorkerHandle:
        raise NotImplementedError

    def recv(self, timeout: float) -> tuple | None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Multiprocessing backend (queues, fork/spawn)
# ---------------------------------------------------------------------------


def _context() -> multiprocessing.context.BaseContext:
    """Fork when the platform offers it (cheap, inherits warm caches);
    spawn otherwise.  Determinism is identical either way — workers
    re-derive everything from the cell seed."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _mp_worker_main(
    worker_id: int, spec: WorkerSpec, task_queue, result_queue, stop_event
) -> None:
    worker_loop(
        worker_id, spec,
        recv_batch=lambda timeout: task_queue.get(timeout=timeout),
        send=result_queue.put,
        stop_flag=stop_event.is_set,
    )


class _MpHandle(WorkerHandle):
    def __init__(self, worker_id, proc, task_queue, stop_event) -> None:
        self.worker_id = worker_id
        self._proc = proc
        self._task_queue = task_queue
        self._stop_event = stop_event

    def send(self, batch) -> None:
        try:
            self._task_queue.put(batch)
        except (ValueError, OSError):  # pragma: no cover - queue torn down
            pass

    def soft_cancel(self) -> None:
        self._stop_event.set()

    def kill(self) -> None:
        if self._proc.is_alive():
            self._proc.kill()

    def alive(self) -> bool:
        return self._proc.is_alive()

    def exitcode(self) -> int | None:
        return self._proc.exitcode

    def pid(self) -> int | None:
        return self._proc.pid

    def join(self, timeout: float) -> None:
        self._proc.join(timeout=timeout)


class MultiprocessingBackend(ExecutorBackend):
    """The original in-process pool, behind the backend seam.

    One shared result queue, one task queue and one stop event per
    worker — the per-worker stop event is what makes targeted
    soft-cancel (hang escalation, straggler cancellation) possible where
    the old single shared event could only stop the world.
    """

    name = "multiprocessing"

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.ctx = _context()
        self.result_queue = self.ctx.Queue()
        self._next_id = 0

    def spawn(self) -> _MpHandle:
        worker_id = self._next_id
        self._next_id += 1
        task_queue = self.ctx.Queue()
        stop_event = self.ctx.Event()
        proc = self.ctx.Process(
            target=_mp_worker_main,
            args=(worker_id, self.spec, task_queue, self.result_queue,
                  stop_event),
            daemon=True,
        )
        proc.start()
        return _MpHandle(worker_id, proc, task_queue, stop_event)

    def recv(self, timeout: float) -> tuple | None:
        try:
            return self.result_queue.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def close(self) -> None:
        self.result_queue.close()
        self.result_queue.join_thread()


# ---------------------------------------------------------------------------
# Subprocess backend (CRC-framed messages over pipes)
# ---------------------------------------------------------------------------
#
# The framing itself lives in :mod:`repro.core.wire` — the socket backend
# shares it byte-for-byte, and pipes get the same per-frame CRC32: a torn,
# oversized or corrupted frame reads as EOF, which the scheduler already
# treats as a dead worker.  Pipe traffic stays in HANDSHAKE_EPOCH (there is
# exactly one session per spawned worker, no reconnects to confuse).


class _SubprocessHandle(WorkerHandle):
    def __init__(self, worker_id: int, proc, reader: threading.Thread) -> None:
        self.worker_id = worker_id
        self._proc = proc
        self._reader = reader
        self._stdin_lock = threading.Lock()

    def _write(self, message) -> None:
        try:
            with self._stdin_lock:
                write_frame(self._proc.stdin, message)
        except (BrokenPipeError, ValueError, OSError):
            pass  # worker died; the scheduler's liveness poll handles it

    def send(self, batch) -> None:
        self._write(("task", batch))

    def soft_cancel(self) -> None:
        self._write(("stop",))

    def kill(self) -> None:
        if self._proc.poll() is None:
            self._proc.kill()

    def alive(self) -> bool:
        return self._proc.poll() is None

    def exitcode(self) -> int | None:
        code = self._proc.poll()
        # Match multiprocessing's convention: death by signal N → -N.
        return code

    def pid(self) -> int | None:
        return self._proc.pid

    def join(self, timeout: float) -> None:
        try:
            self._proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            pass


class SubprocessBackend(ExecutorBackend):
    """Spawned workers speaking length-prefixed frames over pipes.

    Each worker is a fresh ``python -m repro.core.executor`` process; the
    parent writes ``("task", batch)`` / ``("stop",)`` frames to its
    stdin and a per-worker reader thread funnels its stdout frames into
    one inbox queue.  No shared memory, no inherited state, no
    multiprocessing machinery — only bytes over a pipe, which is the
    exact contract a socket to another host would satisfy.
    """

    name = "subprocess"

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.inbox: queue_module.Queue = queue_module.Queue()
        self._next_id = 0
        self._procs: list = []

    def spawn(self) -> _SubprocessHandle:
        worker_id = self._next_id
        self._next_id += 1
        env = dict(os.environ)
        package_root = str(
            __import__("pathlib").Path(__file__).resolve().parents[2]
        )
        env["PYTHONPATH"] = package_root + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.core.executor"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, stderr=None,
            env=env,
        )
        self._procs.append(proc)
        write_frame(proc.stdin, ("hello", worker_id, self.spec))

        def pump() -> None:
            while True:
                message = read_frame(proc.stdout, HANDSHAKE_EPOCH)
                if message is None:
                    return
                self.inbox.put(message)

        reader = threading.Thread(
            target=pump, name=f"repro-worker-{worker_id}-reader", daemon=True
        )
        reader.start()
        return _SubprocessHandle(worker_id, proc, reader)

    def recv(self, timeout: float) -> tuple | None:
        try:
            return self.inbox.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def close(self) -> None:
        for proc in self._procs:
            if proc.poll() is None:  # pragma: no cover - scheduler joined them
                proc.kill()
            for stream in (proc.stdin, proc.stdout):
                try:
                    stream.close()
                except OSError:  # pragma: no cover
                    pass


def _subprocess_worker_main() -> int:
    """Entry point of one spawned worker (``python -m repro.core.executor``).

    stdin carries frames in (hello, then task/stop), stdout carries
    frames out; anything that would have printed to stdout is rerouted
    to stderr so stray prints cannot corrupt the frame stream.
    """
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    sys.stdout = sys.stderr
    hello = read_frame(stdin, HANDSHAKE_EPOCH)
    if not (isinstance(hello, tuple) and hello and hello[0] == "hello"):
        return 2
    _, worker_id, spec = hello
    stop_event = threading.Event()
    tasks: queue_module.Queue = queue_module.Queue()

    def reader() -> None:
        while True:
            message = read_frame(stdin, HANDSHAKE_EPOCH)
            if message is None:  # parent died or closed stdin: wind down
                stop_event.set()
                tasks.put(None)
                return
            if message[0] == "stop":
                stop_event.set()
            elif message[0] == "task":
                tasks.put(message[1])

    threading.Thread(target=reader, daemon=True).start()
    write_lock = threading.Lock()

    def send(message: tuple) -> None:
        try:
            with write_lock:
                write_frame(stdout, message)
        except (BrokenPipeError, ValueError, OSError):
            # The parent is gone; nothing left to report to.
            os._exit(0)

    worker_loop(
        worker_id, spec,
        recv_batch=lambda timeout: tasks.get(timeout=timeout),
        send=send,
        stop_flag=stop_event.is_set,
    )
    # Skip interpreter finalization: the reader thread may be blocked in
    # stdin.buffer and would deadlock buffered-IO teardown.
    try:
        stdout.flush()
    except (ValueError, OSError):
        pass
    os._exit(0)
    return 0  # pragma: no cover - unreachable


#: Backend registry — the extension point a multi-host backend registers
#: into.  Names are what ``--backend`` accepts.
BACKENDS: dict[str, type[ExecutorBackend]] = {
    MultiprocessingBackend.name: MultiprocessingBackend,
    SubprocessBackend.name: SubprocessBackend,
}

#: Every backend ``--backend`` may name, including the socket backend
#: whose module (:mod:`repro.core.coordinator`) is imported on demand —
#: workers spawned as ``python -m repro.core.executor`` should not pay
#: for the TCP machinery they never use.
ALL_BACKEND_NAMES: tuple[str, ...] = (
    MultiprocessingBackend.name, SubprocessBackend.name, "socket",
)


def create_backend(
    name: str, spec: WorkerSpec, options: dict | None = None
) -> ExecutorBackend:
    """Instantiate a backend by name.

    *options* are backend-specific constructor keywords (the socket
    backend's listen address, accept timeout, autospawn switch...); the
    in-process backends accept none.
    """
    if name == "socket" and name not in BACKENDS:
        from repro.core import coordinator  # noqa: F401 - registers itself
    try:
        backend_cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor backend {name!r} "
            f"(available: {', '.join(sorted(set(BACKENDS) | set(ALL_BACKEND_NAMES)))})"
        ) from None
    return backend_cls(spec, **(options or {}))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(_subprocess_worker_main())
