"""TCP campaign coordinator: the multi-host socket executor backend.

One campaign, many hosts.  The parent (the *coordinator*) listens on a
TCP port; each worker host runs ``repro-campaign worker --connect
HOST:PORT`` and speaks exactly the protocol the in-process backends
speak — the same :func:`~repro.core.executor.worker_loop`, the same
messages, now carried as CRC-checked, epoch-stamped frames
(:mod:`repro.core.wire`) over a socket instead of a pipe.  The scheduler
in :mod:`repro.core.parallel` cannot tell the difference, which is the
point: leases, retries, quarantine and the byte-identical-to-serial
guarantee apply unchanged across a network boundary.

Session protocol (all frames; handshake in epoch 0, the rest in the
coordinator's session epoch):

worker → parent   ``("join", {"pid", "host", "epoch"})``
parent → worker   ``("welcome", worker_id, epoch, WorkerSpec)`` or
                  ``("reject", reason)``
parent → worker   ``("task", batch|None)`` · ``("stop",)``
worker → parent   the :func:`worker_loop` stream (ready/start/heartbeat/
                  partial/cell/telemetry/incident/fatal/stopped/bye)

Failure model — every path maps onto machinery the scheduler already
has:

* **Connection loss** (host death, TCP reset, corrupted or stale frame —
  the codec turns the last two into EOF) retires the worker exactly like
  a process crash: its in-flight cells are rescheduled from their last
  *acked* mid-cell checkpoint (the newest one the parent received — the
  parent's copy is the ack).
* **Reconnect-with-resume**: a ``--reconnect`` worker that loses its
  connection rejoins as a *new* worker in the same session epoch; the
  rescheduled cell task carries the acked checkpoint, so the rejoined
  worker resumes where the parent last saw it, bit-identically.
* **Stale sessions**: a worker claiming a different session's epoch is
  rejected at handshake, and data frames from a stale epoch read as EOF
  — a campaign can never absorb another campaign's results.
* **Partition**: a silent-but-connected worker forfeits its cell leases
  (see DESIGN.md §12); a full partition degrades the pool to the
  surviving hosts and ultimately to the in-parent serial fallback.
  Duplicate results from the far side of a healed partition are dropped
  by the first-canonical-result-wins rule.

There is no authentication layer: the coordinator trusts its network,
like the SGE dispatch in DAVOS trusts its cluster.  Bind to localhost
or a private network.
"""

from __future__ import annotations

import os
import queue as queue_module
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro import obs
from repro.core import chaos as chaos_module
from repro.core.executor import (
    BACKENDS,
    ExecutorBackend,
    WorkerHandle,
    WorkerSpec,
    worker_loop,
)
from repro.core.wire import (
    FRAME_CORRUPT,
    FRAME_STALE,
    HANDSHAKE_EPOCH,
    read_frame_ex,
    write_corrupt_frame,
    write_frame,
)

#: How long a connecting worker gets to present its join frame.
_HANDSHAKE_TIMEOUT = 10.0

#: The deliberately-bogus epoch the chaos harness claims on a stale
#: rejoin.  :func:`_fresh_epoch` never returns it.
STALE_CHAOS_EPOCH = 1


def _fresh_epoch() -> int:
    """A nonzero session epoch no other session plausibly shares."""
    return int.from_bytes(os.urandom(8), "big") % (2**63 - 3) + 2


def _counter(name: str, amount: int = 1) -> None:
    telemetry = obs.active()
    if telemetry is not None and amount:
        telemetry.metrics.counter(name).inc(amount)


def parse_address(text: str) -> tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT``) → ``(host, port)``."""
    host, _, port_text = str(text).rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"invalid address {text!r}: expected HOST:PORT"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid port {port} in {text!r}")
    return host or "127.0.0.1", port


def _close_quietly(*closables) -> None:
    for closable in closables:
        try:
            closable.close()
        except OSError:
            pass


class _SocketHandle(WorkerHandle):
    """Parent-side view of one connected worker."""

    def __init__(self, worker_id, conn, wfile, epoch, pid) -> None:
        self.worker_id = worker_id
        self._conn = conn
        self._wfile = wfile
        self._epoch = epoch
        self._pid = pid
        self._dead = threading.Event()
        self._lock = threading.Lock()

    def _write(self, message: tuple) -> None:
        try:
            with self._lock:
                write_frame(self._wfile, message, self._epoch)
        except (BrokenPipeError, ValueError, OSError):
            self._dead.set()  # the liveness poll turns this into a death

    def send(self, batch) -> None:
        self._write(("task", batch))

    def soft_cancel(self) -> None:
        self._write(("stop",))

    def kill(self) -> None:
        """Sever the connection — the strongest "kill" a network allows.

        The worker notices at its next heartbeat send (or instantly via
        its reader thread) and abandons the cell; the parent has already
        reclaimed it.  A remote process cannot be SIGKILLed from here,
        only disowned.
        """
        self._dead.set()
        try:
            self._conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        _close_quietly(self._wfile, self._conn)

    def alive(self) -> bool:
        return not self._dead.is_set()

    def exitcode(self) -> int | None:
        return None  # exit codes do not cross the network boundary

    def pid(self) -> int | None:
        return self._pid

    def join(self, timeout: float) -> None:
        self._dead.wait(timeout=timeout)


class SocketBackend(ExecutorBackend):
    """Executor backend over TCP: accept, handshake, pump frames.

    Two modes share one implementation:

    * **autospawn** (default) — each ``spawn()`` launches a local
      ``repro-campaign worker --connect`` subprocess against an ephemeral
      localhost port.  This is how ``--backend socket`` behaves with no
      ``--listen``: single-host, but every byte crosses a real TCP
      socket, so tests and chaos runs exercise the exact multi-host
      path.
    * **listen** (``autospawn=False``) — ``spawn()`` adopts the next
      externally-connected worker (the ``--listen HOST:PORT`` flow).
      Initial spawns wait up to *accept_timeout* for the fleet to
      arrive; replacement spawns wait only *replacement_timeout* while
      live workers remain, so losing one host of many stalls the
      scheduler briefly instead of for the full accept window before it
      degrades to the survivors.

    A worker that reconnects after a drop is handshaken by the accept
    thread and parked until the scheduler's next ``spawn()`` (triggered
    by the death of its previous incarnation) adopts it.
    """

    name = "socket"

    def __init__(
        self,
        spec: WorkerSpec,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        autospawn: bool = True,
        accept_timeout: float = 30.0,
        replacement_timeout: float = 5.0,
    ) -> None:
        self.spec = spec
        self.autospawn = autospawn
        self.accept_timeout = accept_timeout
        self.replacement_timeout = min(accept_timeout, replacement_timeout)
        self.epoch = _fresh_epoch()
        self.inbox: queue_module.Queue = queue_module.Queue()
        self._joined: queue_module.Queue = queue_module.Queue()
        self._next_id = 0
        self._closing = False
        self._handles: list[_SocketHandle] = []
        self._procs: list[subprocess.Popen] = []
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        threading.Thread(
            target=self._accept_loop, name="repro-coordinator-accept",
            daemon=True,
        ).start()

    # -- accept / handshake (listener threads) -----------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:  # listener closed
                return
            threading.Thread(
                target=self._handshake, args=(conn,),
                name="repro-coordinator-handshake", daemon=True,
            ).start()

    def _handshake(self, conn: socket.socket) -> None:
        conn.settimeout(_HANDSHAKE_TIMEOUT)
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        try:
            frame, _status = read_frame_ex(rfile)
        except (OSError, socket.timeout):
            frame = None
        message = frame.message if frame is not None else None
        if not (
            isinstance(message, tuple) and len(message) == 2
            and message[0] == "join" and isinstance(message[1], dict)
        ):
            _counter("exec.fabric.bad_joins")
            _close_quietly(rfile, wfile, conn)
            return
        info = message[1]
        claimed = int(info.get("epoch", HANDSHAKE_EPOCH))
        if claimed not in (HANDSHAKE_EPOCH, self.epoch):
            # A worker from some other session's lifetime: refuse it
            # before it can pollute this campaign's result stream.
            _counter("exec.fabric.stale_joins")
            try:
                write_frame(
                    wfile,
                    ("reject", f"stale session epoch {claimed}"),
                    HANDSHAKE_EPOCH,
                )
            except OSError:
                pass
            _close_quietly(rfile, wfile, conn)
            return
        _counter("exec.fabric.joins")
        if claimed == self.epoch:
            _counter("exec.fabric.rejoins")
        conn.settimeout(None)
        self._joined.put((conn, rfile, wfile, info))

    # -- the backend surface the scheduler sees ----------------------------

    def _spawn_timeout(self) -> float:
        if any(handle.alive() for handle in self._handles):
            return self.replacement_timeout
        return self.accept_timeout

    def spawn(self) -> _SocketHandle:
        deadline = time.monotonic() + self._spawn_timeout()
        launched = False
        while True:
            try:
                conn, rfile, wfile, info = self._joined.get(timeout=0.2)
                break
            except queue_module.Empty:
                if self._closing:
                    raise RuntimeError("socket backend is closing")
                if self.autospawn and not launched:
                    self._launch_local_worker()
                    launched = True
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"no worker joined {self.address[0]}:"
                        f"{self.address[1]} within the accept window"
                    )
        worker_id = self._next_id
        self._next_id += 1
        handle = _SocketHandle(
            worker_id, conn, wfile, self.epoch, info.get("pid")
        )
        try:
            with handle._lock:
                write_frame(
                    wfile, ("welcome", worker_id, self.epoch, self.spec),
                    self.epoch,
                )
        except (BrokenPipeError, ValueError, OSError):
            handle._dead.set()
        threading.Thread(
            target=self._pump, args=(rfile, conn, handle),
            name=f"repro-worker-{worker_id}-reader", daemon=True,
        ).start()
        self._handles.append(handle)
        return handle

    def _pump(self, rfile, conn, handle: _SocketHandle) -> None:
        """Funnel one worker's frames into the shared inbox.

        Any non-OK frame — EOF, torn, oversized, corrupt, stale — ends
        the session: the connection is dropped and the scheduler's
        liveness poll reschedules the worker's cells.  Corruption is
        counted so an operator can tell a flaky link from a dead host.
        """
        while True:
            frame, status = read_frame_ex(rfile, self.epoch)
            if frame is None:
                if status == FRAME_CORRUPT:
                    _counter("exec.fabric.corrupt_frames")
                elif status == FRAME_STALE:
                    _counter("exec.fabric.stale_frames")
                break
            self.inbox.put(frame.message)
        handle.kill()
        _close_quietly(rfile)

    def recv(self, timeout: float) -> tuple | None:
        try:
            return self.inbox.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def close(self) -> None:
        self._closing = True
        _close_quietly(self._listener)
        for handle in self._handles:
            handle.kill()
        while True:
            try:
                conn, rfile, wfile, _info = self._joined.get_nowait()
            except queue_module.Empty:
                break
            _close_quietly(rfile, wfile, conn)
        for proc in self._procs:
            if proc.poll() is None:
                proc.kill()

    # -- local worker autospawn --------------------------------------------

    def _launch_local_worker(self) -> None:
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = package_root + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.core.cli", "worker",
                "--connect", f"{self.address[0]}:{self.address[1]}",
                "--reconnect", "--retry-delay", "0.2", "--max-retries", "25",
                "--quiet",
            ],
            stdin=subprocess.DEVNULL, stdout=subprocess.DEVNULL, stderr=None,
            env=env,
        )
        self._procs.append(proc)


BACKENDS[SocketBackend.name] = SocketBackend


# ---------------------------------------------------------------------------
# The worker client (``repro-campaign worker``)
# ---------------------------------------------------------------------------


def _connect_with_retries(
    host: str, port: int, retry_delay: float, max_retries: int
) -> socket.socket | None:
    """Dial the coordinator, retrying while it is not (yet) there.

    Workers are routinely started *before* the coordinator (that is the
    natural multi-host deployment order), so refusal is patience, not
    failure — until the retry budget runs out.
    """
    for attempt in range(max_retries + 1):
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            sock.settimeout(None)
            return sock
        except OSError:
            if attempt == max_retries:
                return None
            time.sleep(retry_delay)
    return None  # pragma: no cover - loop always returns

def _serve_session(
    sock: socket.socket, claim_epoch: int
) -> tuple[str, int, WorkerSpec | None]:
    """One join → worker_loop → disconnect cycle.

    Returns ``(status, epoch, spec)`` where status is ``"shutdown"``
    (parent said we are done), ``"lost"`` (connection died — candidate
    for reconnect) or ``"rejected"`` (handshake refused).
    """
    rfile = sock.makefile("rb")
    wfile = sock.makefile("wb")
    try:
        write_frame(
            wfile,
            ("join", {
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "epoch": claim_epoch,
            }),
            HANDSHAKE_EPOCH,
        )
    except OSError:
        _close_quietly(rfile, wfile, sock)
        return "lost", HANDSHAKE_EPOCH, None
    frame, _status = read_frame_ex(rfile)  # welcome arrives in its epoch
    message = frame.message if frame is not None else None
    if not isinstance(message, tuple) or not message:
        _close_quietly(rfile, wfile, sock)
        return "lost", HANDSHAKE_EPOCH, None
    if message[0] == "reject":
        _close_quietly(rfile, wfile, sock)
        return "rejected", HANDSHAKE_EPOCH, None
    if message[0] != "welcome" or len(message) != 4:
        _close_quietly(rfile, wfile, sock)
        return "lost", HANDSHAKE_EPOCH, None
    _, worker_id, epoch, spec = message

    stop_event = threading.Event()
    tasks: queue_module.Queue = queue_module.Queue()
    state = {"shutdown": False}
    write_lock = threading.Lock()

    def reader() -> None:
        while True:
            incoming, _st = read_frame_ex(rfile, epoch)
            if incoming is None:
                stop_event.set()
                tasks.put(None)
                return
            body = incoming.message
            if body[0] == "stop":
                stop_event.set()
            elif body[0] == "task":
                if body[1] is None:
                    state["shutdown"] = True
                tasks.put(body[1])

    threading.Thread(
        target=reader, name="repro-worker-reader", daemon=True
    ).start()

    def send(message: tuple) -> None:
        try:
            with write_lock:
                write_frame(wfile, message, epoch)
        except (BrokenPipeError, ValueError, OSError):
            # The coordinator is unreachable: abandon the cell at the
            # next sample boundary; the parent reclaims and reschedules
            # it from the last checkpoint it acked.
            stop_event.set()

    def transport_chaos(kind: str) -> None:
        if kind == "disconnect":
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            _close_quietly(sock)
        elif kind == "corrupt":
            try:
                with write_lock:
                    write_corrupt_frame(wfile, epoch)
            except (BrokenPipeError, ValueError, OSError):
                pass

    chaos_module.set_transport_hook(transport_chaos)
    try:
        worker_loop(
            worker_id, spec,
            recv_batch=lambda timeout: tasks.get(timeout=timeout),
            send=send,
            stop_flag=stop_event.is_set,
        )
    finally:
        chaos_module.set_transport_hook(None)
        _close_quietly(rfile, wfile, sock)
    return ("shutdown" if state["shutdown"] else "lost"), epoch, spec


def _wants_stale_rejoin(spec: WorkerSpec | None) -> bool:
    """Consume the chaos harness's one-shot stale-rejoin marker."""
    chaos = getattr(spec, "chaos", None)
    if chaos is None or not getattr(chaos, "stale_rejoin", False):
        return False
    flag = Path(chaos.flag_dir) / "chaos-stale-rejoin.fired"
    if flag.exists():
        return False
    try:
        flag.parent.mkdir(parents=True, exist_ok=True)
        flag.touch()
    except OSError:  # pragma: no cover - flag dir vanished
        return False
    return True


def run_worker(
    address: str,
    *,
    reconnect: bool = False,
    retry_delay: float = 0.5,
    max_retries: int = 20,
    log=None,
) -> int:
    """The ``repro-campaign worker`` body: serve sessions until done.

    Exit code 0 means a clean life (a completed campaign, or a lost
    coordinator after at least one served session); 1 means this worker
    never managed to serve anything, which an orchestrator should treat
    as a deployment problem.
    """
    host, port = parse_address(address)
    emit = log if log is not None else (lambda text: None)
    last_epoch = HANDSHAKE_EPOCH
    last_spec: WorkerSpec | None = None
    served = 0
    while True:
        sock = _connect_with_retries(host, port, retry_delay, max_retries)
        if sock is None:
            emit(f"coordinator {host}:{port} unreachable; giving up")
            return 0 if served else 1
        claim = last_epoch
        if served and _wants_stale_rejoin(last_spec):
            claim = STALE_CHAOS_EPOCH  # chaos: impersonate a stale session
        status, epoch, spec = _serve_session(sock, claim)
        if spec is not None:
            last_spec = spec
        if status == "rejected":
            emit(f"join rejected by {host}:{port} (claimed epoch {claim})")
            if claim != HANDSHAKE_EPOCH:
                # Our session knowledge is stale: rejoin from scratch.
                last_epoch = HANDSHAKE_EPOCH
                continue
            return 1
        served += 1
        last_epoch = epoch
        if status == "shutdown":
            emit("campaign complete; exiting")
            return 0
        if not reconnect:
            emit("connection lost; exiting (no --reconnect)")
            return 0
        emit("connection lost; reconnecting")
