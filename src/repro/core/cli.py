"""Command-line entry point: run campaigns and regenerate paper artifacts.

Examples::

    repro-campaign run --samples 50 --workloads crc32 sha --out results.json
    repro-campaign run --store store.json --resume --max-incidents 20
    repro-campaign run --jobs 4 --store store.json   # multi-core, same bytes
    repro-campaign run --jobs 4 --store store.json --telemetry
    repro-campaign stats --telemetry store.json.telemetry.json
    repro-campaign trace --telemetry store.json.telemetry.json --out run.trace.json
    repro-campaign incidents --journal store.json.incidents.jsonl
    repro-campaign incidents --journal store.json.incidents.jsonl --json
    repro-campaign report --results results.json --artifact table5
    repro-campaign golden
    repro-campaign static --artifact table6
    repro-campaign run --samples 20 --verify   # oracle-checked campaign
    repro-campaign run --samples 50 --prune-masked   # liveness-pruned, same bytes
    repro-campaign run --adaptive --ci-target 0.02   # CI-driven early stopping
    repro-campaign fuzz --programs 25 --seed 0
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

from repro import obs
from repro.core import report
from repro.core.campaign import (
    DEFAULT_CHECKPOINT_EVERY,
    CampaignConfig,
    CampaignResult,
    CampaignStore,
    golden_run,
    run_campaign,
)
from repro.core.chaos import NET_SCENARIOS, SCENARIOS
from repro.core.executor import ALL_BACKEND_NAMES, ResiliencePolicy
from repro.core.generator import CLUSTERED, INDEPENDENT, ClusterShape
from repro.core.supervisor import IncidentJournal, Supervisor
from repro.errors import ConfigError, InjectionIncident
from repro.cpu.config import DEFAULT_CONFIG
from repro.cpu.system import COMPONENT_NAMES
from repro.obs.progress import EtaTracker
from repro.obs.schema import validate_chrome_trace, validate_telemetry
from repro.obs.telemetry import load_summary, summary_chrome_trace
from repro.workloads import get_workload, workload_names

_FIGURES = {
    "fig1": ("l1d", "FIG. 1"),
    "fig2": ("l1i", "FIG. 2"),
    "fig3": ("l2", "FIG. 3"),
    "fig4": ("regfile", "FIG. 4"),
    "fig5": ("dtlb", "FIG. 5"),
    "fig6": ("itlb", "FIG. 6"),
}

_STATIC = {
    "table1": lambda: report.render_table1(DEFAULT_CONFIG),
    "table6": report.render_table6,
    "table7": report.render_table7,
    "table8": report.render_table8,
}


def _add_campaign_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workloads", nargs="*", default=None,
        help="workload subset (default: all 15)",
    )
    parser.add_argument(
        "--components", nargs="*", default=list(COMPONENT_NAMES),
        choices=list(COMPONENT_NAMES),
    )
    parser.add_argument(
        "--cardinalities", nargs="*", type=int, default=[1, 2, 3]
    )
    parser.add_argument("--samples", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--cores", type=int, default=1, metavar="N",
        help="simulate an N-core SMP machine sharing one L2 (default 1, "
        "the paper's machine; --cores 1 is byte-identical to omitting "
        "the flag, other counts key their own cache cells; incompatible "
        "with --prune-masked and --adaptive)",
    )
    parser.add_argument(
        "--cluster", default="3x3", help="cluster shape ROWSxCOLS"
    )
    parser.add_argument(
        "--placement", choices=[CLUSTERED, INDEPENDENT], default=CLUSTERED
    )
    parser.add_argument(
        "--store", type=Path, default=None,
        help="incremental cell cache (JSON snapshot + write-ahead journal)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="abort (non-zero) on the first infra incident instead of "
        "containing it",
    )
    parser.add_argument(
        "--max-incidents", type=int, default=None, metavar="N",
        help="abort once more than N incidents were contained "
        "(default: unlimited)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume mid-cell from the store's partial checkpoints "
        "(bit-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--incident-journal", type=Path, default=None, metavar="PATH",
        help="incident journal path (default: <store>.incidents.jsonl "
        "when --store is given)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=DEFAULT_CHECKPOINT_EVERY,
        metavar="N",
        help="persist mid-cell progress every N samples "
        f"(default {DEFAULT_CHECKPOINT_EVERY}; 0 disables)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes; cells are sharded across them and merged "
        "deterministically (byte-identical to --jobs 1; default 1)",
    )
    parser.add_argument(
        "--backend", choices=sorted(ALL_BACKEND_NAMES),
        default="multiprocessing",
        help="executor backend for --jobs: 'multiprocessing' (in-process "
        "pool, default), 'subprocess' (spawned workers over CRC-checked "
        "pipe frames) or 'socket' (TCP coordinator for distributed "
        "workers — see --listen); results are byte-identical either way",
    )
    parser.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="with --backend socket: listen on HOST:PORT and wait for "
        "external 'repro-campaign worker --connect' processes instead of "
        "autospawning local ones",
    )
    parser.add_argument(
        "--accept-timeout", type=float, default=None, metavar="SECONDS",
        help="with --backend socket: how long the coordinator waits for "
        "a worker to join before degrading to fewer workers (default 30)",
    )
    parser.add_argument(
        "--hang-timeout", type=float, default=None, metavar="SECONDS",
        help="kill-and-reschedule a worker whose heartbeats go silent for "
        "this long (default 30; cells resume from their last streamed "
        "checkpoint, bit-identically)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="quarantine a cell after N failed executions (worker crashes "
        "or hangs) as a poison-cell incident instead of retrying forever "
        "(default 3)",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=None, metavar="SECONDS",
        help="how often workers heartbeat from the per-sample probe "
        "(default 0.5; must not exceed --hang-timeout)",
    )
    parser.add_argument(
        "--lease-factor", type=float, default=None, metavar="K",
        help="a worker owns a dispatched cell for K times its predicted "
        "wall time (default 16, floored at 60s); an expired lease — an "
        "unreachable or partitioned owner — is reclaimed and the cell "
        "rescheduled from its last acked checkpoint",
    )
    parser.add_argument(
        "--max-backoff", type=float, default=None, metavar="SECONDS",
        help="cap on the exponential retry backoff between reschedules "
        "of a failed cell (default 30)",
    )
    parser.add_argument(
        "--telemetry", nargs="?", const="auto", default=None, metavar="PATH",
        help="collect campaign telemetry (metrics + trace spans) and write "
        "it to PATH (default: <store>.telemetry.json next to --store, else "
        "telemetry.json); inspect with the stats and trace subcommands",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="cross-check the campaign against the ISA-level reference "
        "oracle: differential-verify each workload's fault-free run, audit "
        "mask application, compare every Masked outcome's architectural "
        "state, and enable per-commit pipeline invariants (slower; "
        "results are byte-identical to a non-verify run)",
    )
    parser.add_argument(
        "--prune-masked", action="store_true",
        help="classify faults whose flipped bits are provably dead during "
        "the golden run as Masked without simulating them (liveness "
        "pruning; results are byte-identical to an unpruned run, and "
        "--verify audits a sample of pruned verdicts end-to-end)",
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help="stop each cell early once its AVF confidence interval "
        "reaches --ci-target and reallocate the freed samples to the "
        "widest intervals; --samples becomes a per-cell budget ceiling "
        "(incompatible with --store/--resume; runs unsupervised)",
    )
    parser.add_argument(
        "--ci-target", type=float, default=0.02, metavar="E",
        help="target Wilson half-width for --adaptive (99%% confidence; "
        "default 0.02; 0 disables early stopping, reproducing the "
        "exact-replay campaign byte-for-byte)",
    )


def _config_from_args(args: argparse.Namespace) -> CampaignConfig:
    rows, _, cols = args.cluster.partition("x")
    return CampaignConfig(
        workloads=tuple(args.workloads) if args.workloads else (),
        components=tuple(args.components),
        cardinalities=tuple(args.cardinalities),
        samples=args.samples,
        seed=args.seed,
        cluster=ClusterShape(int(rows), int(cols)),
        placement=args.placement,
        cores=getattr(args, "cores", 1),
    )


def _journal_path(args: argparse.Namespace) -> Path | None:
    if args.incident_journal is not None:
        return args.incident_journal
    if args.store is not None:
        return Path(str(args.store) + ".incidents.jsonl")
    return None


def _telemetry_path(args: argparse.Namespace) -> Path | None:
    if args.telemetry is None:
        return None
    if args.telemetry != "auto":
        return Path(args.telemetry)
    if args.store is not None:
        return Path(str(args.store) + ".telemetry.json")
    return Path("telemetry.json")


def _write_telemetry(telemetry, path: Path) -> None:
    telemetry.write(path)
    derived = telemetry.summary(include_trace=False)["derived"]
    rate = derived.get("samples_per_sec")
    rate_note = f", {rate:.1f} samples/s" if rate is not None else ""
    print(
        f"telemetry: {path} ({telemetry.wall_seconds():.2f}s wall"
        f"{rate_note}) — inspect with: repro-campaign stats "
        f"--telemetry {path}",
        file=sys.stderr,
    )


def _policy_from_args(args: argparse.Namespace) -> ResiliencePolicy | None:
    """Validated resilience overrides, or ``None`` for policy defaults.

    Raises :class:`~repro.errors.ConfigError` on self-contradictory
    knobs (e.g. a heartbeat interval above the hang timeout).
    """
    overrides = {}
    for attr in (
        "hang_timeout", "max_attempts", "heartbeat_interval", "lease_factor",
    ):
        value = getattr(args, attr, None)
        if value is not None:
            overrides[attr] = value
    if getattr(args, "max_backoff", None) is not None:
        overrides["retry_max_delay"] = args.max_backoff
    if not overrides:
        return None
    policy = ResiliencePolicy(**overrides)
    policy.validate()
    return policy


def _backend_options(args: argparse.Namespace) -> dict | None:
    """Socket-coordinator options from --listen / --accept-timeout.

    Raises :class:`~repro.errors.ConfigError` when those flags are used
    with a non-socket backend or the address does not parse.
    """
    listen = getattr(args, "listen", None)
    accept_timeout = getattr(args, "accept_timeout", None)
    if args.backend != "socket":
        if listen is not None or accept_timeout is not None:
            raise ConfigError(
                "--listen/--accept-timeout require --backend socket"
            )
        return None
    if listen is not None and getattr(args, "jobs", 1) < 2:
        # --jobs 1 runs serially in-process: nothing would ever listen,
        # and remote workers would wait on a port that never opens.
        raise ConfigError("--listen requires --jobs 2 or more")
    options: dict = {}
    if listen is not None:
        from repro.core.coordinator import parse_address

        try:
            host, port = parse_address(listen)
        except ValueError as exc:
            raise ConfigError(str(exc)) from None
        options.update(host=host, port=port, autospawn=False)
    if accept_timeout is not None:
        if accept_timeout <= 0:
            raise ConfigError(
                f"--accept-timeout must be > 0 (got {accept_timeout})"
            )
        options["accept_timeout"] = accept_timeout
    return options or None


#: Which signal interrupted the run — SIGINT unless the SIGTERM handler
#: fired; the CLI exits 128+signum (130 for Ctrl-C, 143 for SIGTERM).
_interrupt_signum = {"value": signal.SIGINT}


def _install_graceful_signals() -> None:
    """Make SIGTERM drain exactly like Ctrl-C.

    Orchestrators (systemd, Kubernetes, CI timeouts) send SIGTERM; raising
    ``KeyboardInterrupt`` routes it into the same graceful path — workers
    stop at the next sample, final mid-cell checkpoints are flushed, and a
    ``--resume`` continues bit-identically.
    """
    _interrupt_signum["value"] = signal.SIGINT

    def handler(signum, frame) -> None:
        _interrupt_signum["value"] = signum
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, handler)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    _install_graceful_signals()
    try:
        policy = _policy_from_args(args)
        backend_options = _backend_options(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.cpu.smp import MAX_CORES

    if not 1 <= config.cores <= MAX_CORES:
        print(
            f"error: --cores must be in 1..{MAX_CORES} "
            f"(got {config.cores})",
            file=sys.stderr,
        )
        return 2
    if config.cores != 1 and (args.prune_masked or args.adaptive):
        print(
            "error: --cores > 1 is incompatible with --prune-masked and "
            "--adaptive (both replay single-core golden state)",
            file=sys.stderr,
        )
        return 2
    if args.adaptive and (args.store or args.resume):
        # Adaptive cells have no fixed sample count, so they cannot share
        # the store's exact-parameter cache keys.
        print(
            "error: --adaptive is incompatible with --store/--resume "
            "(adaptive cells have no fixed sample count to cache under)",
            file=sys.stderr,
        )
        return 2
    store = CampaignStore(args.store) if args.store else None
    if store is not None and store.quarantined is not None:
        print(
            f"warning: corrupt store snapshot quarantined to "
            f"{store.quarantined}; rebuilt from journal",
            file=sys.stderr,
        )
    journal = IncidentJournal(_journal_path(args))
    supervisor = Supervisor(
        journal=journal,
        max_incidents=args.max_incidents,
        strict=args.strict,
    )
    telemetry_path = _telemetry_path(args)
    telemetry = obs.enable() if telemetry_path is not None else None

    eta = EtaTracker(samples_per_cell=config.samples)

    def progress(done: int, total: int, cell) -> None:
        eta.update(done, total)
        suffix = eta.render()
        print(
            f"[{done:>4}/{total}] {cell.workload}/{cell.component}/"
            f"{cell.cardinality}-bit AVF={cell.avf:.3f}"
            + (f"  ({suffix})" if suffix else ""),
            file=sys.stderr,
        )

    core_cfg = DEFAULT_CONFIG
    if args.verify:
        from dataclasses import replace

        core_cfg = replace(DEFAULT_CONFIG, check_invariants=True)

    try:
        if args.adaptive:
            from repro.core.adaptive import run_campaign_adaptive

            adaptive = run_campaign_adaptive(
                config, args.ci_target,
                jobs=args.jobs, progress=progress,
                events=lambda message: print(message, file=sys.stderr),
                core_cfg=core_cfg,
                verify=args.verify, prune=args.prune_masked,
            )
            result = adaptive.result
            print(
                f"adaptive: {adaptive.spent_samples:,} of "
                f"{adaptive.baseline_samples:,} budgeted samples spent "
                f"({adaptive.saved_fraction:.0%} saved)",
                file=sys.stderr,
            )
        else:
            result = run_campaign(
                config, progress=progress, store=store,
                core_cfg=core_cfg,
                supervisor=supervisor,
                checkpoint_every=args.checkpoint_every or None,
                resume=args.resume,
                jobs=args.jobs,
                verify=args.verify,
                prune=args.prune_masked,
                backend=args.backend,
                backend_options=backend_options,
                policy=policy,
            )
    except InjectionIncident as exc:
        print(f"campaign aborted: {exc}", file=sys.stderr)
        if journal.path is not None:
            print(f"incident journal: {journal.path}", file=sys.stderr)
        if telemetry is not None:
            _write_telemetry(telemetry, telemetry_path)
        return 1
    except KeyboardInterrupt:
        signum = _interrupt_signum["value"]
        print(
            f"campaign interrupted ({signal.Signals(signum).name}) — "
            "mid-cell checkpoints flushed"
            + (", rerun with --resume to continue bit-identically"
               if store is not None else ""),
            file=sys.stderr,
        )
        if telemetry is not None:
            # Partial telemetry is still a valid summary of the work done
            # so far (metrics merge is prefix-closed).
            _write_telemetry(telemetry, telemetry_path)
        return 128 + signum
    if supervisor.incident_count:
        where = journal.path if journal.path is not None else "in-memory only"
        print(
            f"{supervisor.incident_count} infra incident(s) contained "
            f"(journal: {where})",
            file=sys.stderr,
        )
    blob = result.to_json()
    if args.out:
        Path(args.out).write_text(blob)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(blob)
    if telemetry is not None:
        _write_telemetry(telemetry, telemetry_path)
    return 0


def _load_result(path: Path) -> CampaignResult:
    return CampaignResult.from_json(path.read_text())


def _cmd_report(args: argparse.Namespace) -> int:
    result = _load_result(args.results)
    artifact = args.artifact
    if artifact in _FIGURES:
        component, title = _FIGURES[artifact]
        print(report.render_component_figure(result, component, title))
    elif artifact == "table4":
        print(report.render_table4(result))
    elif artifact == "table5":
        print(report.render_table5(result))
    elif artifact == "fig7":
        print(report.render_fig7(result))
    elif artifact == "fig8":
        print(report.render_fig8(result))
    else:
        print(f"unknown artifact {artifact!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_static(args: argparse.Namespace) -> int:
    renderer = _STATIC.get(args.artifact)
    if renderer is None:
        print(f"unknown static artifact {args.artifact!r}", file=sys.stderr)
        return 2
    print(renderer())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.core import export

    exporters = {
        "cells": export.cells_to_csv,
        "weighted-avf": export.weighted_avf_to_csv,
        "node-avf": export.node_avf_to_csv,
        "fit": export.fit_to_csv,
        "summary": export.summary_to_csv,
    }
    result = _load_result(args.results)
    print(exporters[args.what](result), end="")
    return 0


def _cmd_incidents(args: argparse.Namespace) -> int:
    from repro.core.supervisor import INCIDENT_KINDS

    journal = IncidentJournal.load(args.journal)
    incidents = journal.incidents
    selected = None
    if args.types:
        selected = [t.strip() for t in args.types.split(",") if t.strip()]
        unknown = [t for t in selected if t not in INCIDENT_KINDS]
        if unknown:
            print(
                f"error: unknown incident type(s) {', '.join(unknown)} "
                f"(choose from {', '.join(INCIDENT_KINDS)})",
                file=sys.stderr,
            )
            return 2
        incidents = [i for i in incidents if i.kind in selected]
    if args.json:
        print(json.dumps(
            [incident.as_dict() for incident in incidents],
            indent=1, sort_keys=True,
        ))
        return 0
    print(report.render_incidents(
        incidents, verbose=args.verbose,
        total=len(journal.incidents) if selected is not None else None,
        selected=selected,
    ))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.core.coordinator import run_worker

    def log(text: str) -> None:
        if not args.quiet:
            print(f"worker: {text}", file=sys.stderr)

    try:
        return run_worker(
            args.connect,
            reconnect=args.reconnect,
            retry_delay=args.retry_delay,
            max_retries=args.max_retries,
            log=log,
        )
    except ValueError as exc:  # bad --connect address
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_stats(args: argparse.Namespace) -> int:
    try:
        summary = load_summary(args.telemetry)
    except (OSError, ValueError) as exc:
        print(f"cannot read telemetry {args.telemetry}: {exc}", file=sys.stderr)
        return 2
    if args.check:
        errors = validate_telemetry(summary)
        errors += validate_chrome_trace(summary_chrome_trace(summary))
        if errors:
            for error in errors:
                print(f"invalid: {error}", file=sys.stderr)
            return 1
        print(f"{args.telemetry}: telemetry and trace schemas OK",
              file=sys.stderr)
    print(report.render_telemetry(summary))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        summary = load_summary(args.telemetry)
    except (OSError, ValueError) as exc:
        print(f"cannot read telemetry {args.telemetry}: {exc}", file=sys.stderr)
        return 2
    trace = summary_chrome_trace(summary)
    blob = json.dumps(trace, sort_keys=True)
    if args.out:
        Path(args.out).write_text(blob)
        print(
            f"wrote {args.out} ({len(trace['traceEvents'])} events) — open "
            "in chrome://tracing or https://ui.perfetto.dev",
            file=sys.stderr,
        )
    else:
        print(blob)
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.verify.fuzz import run_fuzz, run_smp_fuzz

    def progress(done: int, total: int, report) -> None:
        status = "ok" if report.ok else f"{len(report.divergences)} DIVERGENT"
        print(
            f"[{done:>4}/{total}] {report.instructions:,} instructions "
            f"compared, {status}",
            file=sys.stderr,
        )

    if args.cores > 1:
        report = run_smp_fuzz(
            args.programs, seed=args.seed, length=args.length,
            cores=args.cores,
            progress=progress if not args.quiet else None,
        )
    else:
        report = run_fuzz(
            args.programs, seed=args.seed, length=args.length,
            progress=progress if not args.quiet else None,
        )
    if report.ok:
        print(
            f"fuzz: {report.programs} programs, {report.instructions:,} "
            f"retired instructions compared against the oracle, "
            f"0 divergences"
        )
        return 0
    for div in report.divergences:
        print(f"=== divergent program {div.index} (seed {div.seed!r}) ===")
        print(div.message)
        print("--- program source ---")
        print(div.source)
    print(
        f"fuzz: {len(report.divergences)}/{report.programs} programs "
        f"diverged from the reference oracle",
        file=sys.stderr,
    )
    return 1


def _cmd_golden(args: argparse.Namespace) -> int:
    names = args.workloads or workload_names()
    measured = {}
    for name in names:
        workload = get_workload(name)
        result = golden_run(workload)
        measured[name] = result.cycles
        print(
            f"{name:14s} cycles={result.cycles:>9,} "
            f"instructions={result.instructions:>9,} ipc={result.ipc:.2f}"
        )
    paper = {name: get_workload(name).paper_cycles for name in names}
    print()
    print(report.render_table3(measured, paper))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.core.chaos import run_chaos

    config = CampaignConfig(
        workloads=tuple(args.workloads) if args.workloads else ("crc32",),
        components=tuple(args.components),
        cardinalities=tuple(args.cardinalities),
        samples=args.samples,
        seed=args.seed,
    )
    # The harness's tight timings (speculation off so stalls exercise the
    # escalation path), with any CLI overrides applied on top.
    knobs = dict(
        heartbeat_interval=0.1, hang_timeout=2.0, grace_period=1.0,
        retry_base_delay=0.05, retry_max_delay=0.5, speculate=False,
    )
    if args.hang_timeout is not None:
        knobs["hang_timeout"] = args.hang_timeout
    if args.max_attempts is not None:
        knobs["max_attempts"] = args.max_attempts
    scenarios = tuple(args.scenarios) if args.scenarios else SCENARIOS
    try:
        report = run_chaos(
            config,
            scenarios=scenarios,
            jobs=args.jobs,
            seed=args.chaos_seed,
            workdir=args.workdir,
            backend=args.backend,
            policy=ResiliencePolicy(**knobs),
            progress=lambda scenario: print(
                f"chaos: running scenario {scenario!r} ...", file=sys.stderr
            ),
        )
    except ValueError as exc:  # net scenario without --backend socket
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for outcome in report.outcomes:
        status = "ok" if outcome.ok else "FAIL"
        print(f"[{status}] {outcome.scenario:7s} {outcome.detail}")
    if args.out:
        Path(args.out).write_text(
            json.dumps(report.as_dict(), indent=1, sort_keys=True)
        )
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Multi-bit upset fault-injection campaigns "
        "(IISWC 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run an injection campaign")
    _add_campaign_args(p_run)
    p_run.add_argument("--out", type=Path, default=None)
    p_run.set_defaults(func=_cmd_run)

    p_report = sub.add_parser(
        "report", help="render a table/figure from campaign results"
    )
    p_report.add_argument("--results", type=Path, required=True)
    p_report.add_argument(
        "--artifact", required=True,
        choices=sorted([*_FIGURES, "table4", "table5", "fig7", "fig8"]),
    )
    p_report.set_defaults(func=_cmd_report)

    p_static = sub.add_parser(
        "static", help="render a data table that needs no campaign"
    )
    p_static.add_argument(
        "--artifact", required=True, choices=sorted(_STATIC)
    )
    p_static.set_defaults(func=_cmd_static)

    p_export = sub.add_parser(
        "export", help="export campaign results as CSV"
    )
    p_export.add_argument("--results", type=Path, required=True)
    p_export.add_argument(
        "--what", required=True,
        choices=["cells", "weighted-avf", "node-avf", "fit", "summary"],
    )
    p_export.set_defaults(func=_cmd_export)

    p_incidents = sub.add_parser(
        "incidents", help="inspect a campaign's incident journal"
    )
    p_incidents.add_argument("--journal", type=Path, required=True)
    p_incidents.add_argument(
        "--verbose", action="store_true",
        help="include the full traceback of every incident",
    )
    p_incidents.add_argument(
        "--json", action="store_true",
        help="emit the journal as machine-readable JSON instead of a table",
    )
    p_incidents.add_argument(
        "--type", dest="types", default=None, metavar="KINDS",
        help="comma-separated incident kinds to show, e.g. "
        "retry,lease-expired,poison-cell (default: all)",
    )
    p_incidents.set_defaults(func=_cmd_incidents)

    p_worker = sub.add_parser(
        "worker",
        help="join a distributed campaign as a socket worker "
        "(serves cells for a coordinator running with --backend socket)",
    )
    p_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator's listen address",
    )
    p_worker.add_argument(
        "--reconnect", action="store_true",
        help="rejoin the campaign after a lost connection and resume "
        "rescheduled cells from their last acked checkpoint (default: "
        "exit on disconnect)",
    )
    p_worker.add_argument(
        "--retry-delay", type=float, default=0.5, metavar="SECONDS",
        help="delay between connection attempts (default 0.5)",
    )
    p_worker.add_argument(
        "--max-retries", type=int, default=20, metavar="N",
        help="connection attempts before giving up on the coordinator "
        "(default 20)",
    )
    p_worker.add_argument(
        "--quiet", action="store_true", help="suppress lifecycle messages",
    )
    p_worker.set_defaults(func=_cmd_worker)

    p_stats = sub.add_parser(
        "stats", help="render a campaign telemetry summary"
    )
    p_stats.add_argument(
        "--telemetry", type=Path, required=True, metavar="PATH",
        help="telemetry.json written by run --telemetry",
    )
    p_stats.add_argument(
        "--check", action="store_true",
        help="validate the telemetry and derived Chrome trace against "
        "their schemas first (non-zero exit on violations)",
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_trace = sub.add_parser(
        "trace", help="export telemetry spans as a Chrome trace_event file"
    )
    p_trace.add_argument(
        "--telemetry", type=Path, required=True, metavar="PATH",
        help="telemetry.json written by run --telemetry",
    )
    p_trace.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="trace output path (default: stdout)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_golden = sub.add_parser(
        "golden", help="run fault-free golden simulations (Table III)"
    )
    p_golden.add_argument("--workloads", nargs="*", default=None)
    p_golden.set_defaults(func=_cmd_golden)

    p_chaos = sub.add_parser(
        "chaos",
        help="run the deterministic chaos matrix against the parallel "
        "executor and verify byte-identity to a serial run",
    )
    p_chaos.add_argument(
        "--workloads", nargs="*", default=None,
        help="workload subset for the chaos campaign (default: crc32)",
    )
    p_chaos.add_argument(
        "--components", nargs="*", default=["regfile", "itlb"],
        choices=list(COMPONENT_NAMES),
    )
    p_chaos.add_argument("--cardinalities", nargs="*", type=int, default=[1, 2])
    p_chaos.add_argument("--samples", type=int, default=4)
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--scenarios", nargs="*", default=None,
        choices=list(SCENARIOS + NET_SCENARIOS),
        metavar="NAME",
        help=f"scenario subset (default: the full local matrix "
        f"{SCENARIOS}; network scenarios {NET_SCENARIOS} need "
        f"--backend socket)",
    )
    p_chaos.add_argument("--jobs", type=int, default=2, metavar="N")
    p_chaos.add_argument(
        "--chaos-seed", type=int, default=0, metavar="SEED",
        help="seed of the fault plan (same seed → same chaos)",
    )
    p_chaos.add_argument(
        "--backend", choices=sorted(ALL_BACKEND_NAMES),
        default="multiprocessing",
    )
    p_chaos.add_argument(
        "--workdir", type=Path, required=True, metavar="DIR",
        help="scratch directory for per-scenario stores, chaos flag files "
        "and incident journals",
    )
    p_chaos.add_argument("--hang-timeout", type=float, default=None)
    p_chaos.add_argument("--max-attempts", type=int, default=None)
    p_chaos.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="write the machine-readable chaos report as JSON",
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differentially fuzz the simulator against the ISA-level "
        "reference oracle with random programs",
    )
    p_fuzz.add_argument(
        "--programs", type=int, default=25, metavar="N",
        help="number of random programs to generate and compare (default 25)",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0,
        help="fuzz seed; program i uses ProgramFuzzer seed '<seed>:<i>'",
    )
    p_fuzz.add_argument(
        "--length", type=int, default=40, metavar="N",
        help="approximate instructions generated per program (default 40)",
    )
    p_fuzz.add_argument(
        "--cores", type=int, default=1, metavar="N",
        help="fuzz N-core spawn/amo programs against the lock-step SMP "
        "oracle with the coherence auditor armed (default 1: the "
        "single-core fuzzer)",
    )
    p_fuzz.add_argument(
        "--quiet", action="store_true", help="suppress per-program progress",
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
