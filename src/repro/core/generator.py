"""Spatial multi-bit fault-mask generation (the paper's GeFIN extension).

For a cluster of X rows and Y columns, the generator draws N distinct cell
positions inside the cluster, then places the cluster uniformly at random in
the target structure's (rows × cols) bit array (§III.B).  Because the N
positions are unconstrained within the cluster, patterns that would fit a
smaller cluster are included — matching the paper's deliberate departure
from Ibe's minimum-bounding-box MBU coding.

An ``independent`` placement mode (N fully independent uniform bits, no
adjacency) is provided for the A2 ablation benchmark: it is the naive
multi-bit model that ignores spatial correlation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.faults import FaultMask
from repro.mem.sram import InjectableArray

#: Placement modes.
CLUSTERED = "clustered"
INDEPENDENT = "independent"


@dataclass(frozen=True)
class ClusterShape:
    """Cluster geometry in rows × columns (the paper uses 3×3)."""

    rows: int = 3
    cols: int = 3

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"degenerate cluster {self.rows}x{self.cols}")

    @property
    def cells(self) -> int:
        return self.rows * self.cols


class MultiBitFaultGenerator:
    """Draws fault masks for a structure geometry."""

    def __init__(
        self,
        cluster: ClusterShape = ClusterShape(),
        mode: str = CLUSTERED,
        seed: int | str = 0,
    ) -> None:
        if mode not in (CLUSTERED, INDEPENDENT):
            raise ValueError(f"unknown placement mode {mode!r}")
        self.cluster = cluster
        self.mode = mode
        self._rng = random.Random(f"repro-faultgen:{seed}")

    def rng_state(self) -> tuple:
        """Internal RNG state, for campaign checkpointing."""
        return self._rng.getstate()

    def set_rng_state(self, state: tuple) -> None:
        """Restore a state captured by :meth:`rng_state`.

        A generator whose state is restored draws exactly the same mask
        sequence as the original would have — the property intra-cell
        checkpoint/resume relies on.
        """
        self._rng.setstate(state)

    def generate(self, target: InjectableArray, cardinality: int) -> FaultMask:
        """Draw one mask of *cardinality* flips for *target*."""
        rows, cols = target.inject_rows, target.inject_cols
        if cardinality < 1:
            raise ValueError("cardinality must be at least 1")
        if self.mode == INDEPENDENT:
            return self._generate_independent(target, cardinality, rows, cols)
        cluster = self.cluster
        if cardinality > cluster.cells:
            raise ValueError(
                f"{cardinality} faults cannot fit a "
                f"{cluster.rows}x{cluster.cols} cluster"
            )
        if rows < cluster.rows or cols < cluster.cols:
            raise ValueError(
                f"{target.inject_name} geometry {rows}x{cols} smaller than "
                f"the {cluster.rows}x{cluster.cols} cluster"
            )
        rng = self._rng
        r0 = rng.randrange(rows - cluster.rows + 1)
        c0 = rng.randrange(cols - cluster.cols + 1)
        cells = rng.sample(range(cluster.cells), cardinality)
        bits = tuple(
            sorted(
                (r0 + cell // cluster.cols, c0 + cell % cluster.cols)
                for cell in cells
            )
        )
        return FaultMask(
            component=target.inject_name,
            bits=bits,
            origin=(r0, c0),
            cluster=(cluster.rows, cluster.cols),
        )

    def _generate_independent(
        self, target: InjectableArray, cardinality: int, rows: int, cols: int
    ) -> FaultMask:
        """N independent uniform bits (ablation baseline, no adjacency)."""
        rng = self._rng
        chosen: set[tuple[int, int]] = set()
        while len(chosen) < cardinality:
            chosen.add((rng.randrange(rows), rng.randrange(cols)))
        bits = tuple(sorted(chosen))
        return FaultMask(
            component=target.inject_name,
            bits=bits,
            origin=(0, 0),
            cluster=(rows, cols),
        )
