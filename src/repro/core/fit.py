"""Failures-in-Time analysis (Eq. 4, Figs. 7 and 8 of the paper).

``FIT_struct = AVF_struct × rawFIT_bit × #bits_struct`` — the raw FIT rate
comes from Table VII, the bit counts from Table VIII, and the AVF is the
technology node's aggregate multi-bit AVF (Eq. 3).  The CPU FIT is the sum
over structures.

The *multi-bit contribution* (the red areas of Figs. 7/8) is defined, as in
the paper, against the single-bit-only assessment: green = what an analysis
that only injects single-bit faults would report (the pure single-bit AVF,
which is also the 250 nm value), red = the additional vulnerability the
realistic MBU mix adds.  This module reproduces the paper's quoted numbers
exactly when fed the paper's Table V/VI/VII/VIII data (e.g. the L1I 22 nm
16% vs 12% = 33% gap, and the DTLB 11% / register-file 35% extremes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.avf import node_avf
from repro.core.targets import PAPER_COMPONENT_BITS
from repro.core.technology import TECHNOLOGY_NODES, raw_fit_per_bit


@dataclass(frozen=True)
class ComponentNodeFit:
    """FIT decomposition of one component at one technology node."""

    component: str
    node: str
    avf_single: float       # pure single-bit AVF (the "green" bar)
    avf_aggregate: float    # Eq. 3 multi-bit aggregate AVF
    bits: int
    raw_fit_bit: float

    @property
    def fit_total(self) -> float:
        return self.avf_aggregate * self.raw_fit_bit * self.bits

    @property
    def fit_single_only(self) -> float:
        """What a single-bit-only campaign would have estimated."""
        return self.avf_single * self.raw_fit_bit * self.bits

    @property
    def fit_multibit(self) -> float:
        """The FIT share missed by single-bit-only assessment (red area)."""
        return self.fit_total - self.fit_single_only

    @property
    def assessment_gap(self) -> float:
        """Relative AVF underestimate of single-bit-only analysis."""
        if self.avf_single == 0.0:
            return 0.0
        return (self.avf_aggregate - self.avf_single) / self.avf_single


def component_node_fit(
    component: str,
    avf_by_cardinality: dict[int, float],
    node: str,
    bits: dict[str, int] | None = None,
) -> ComponentNodeFit:
    """Eq. 3 + Eq. 4 for one component at one node."""
    bit_table = bits if bits is not None else PAPER_COMPONENT_BITS
    return ComponentNodeFit(
        component=component,
        node=node,
        avf_single=avf_by_cardinality.get(1, 0.0),
        avf_aggregate=node_avf(avf_by_cardinality, node),
        bits=bit_table[component],
        raw_fit_bit=raw_fit_per_bit(node),
    )


@dataclass(frozen=True)
class CpuNodeFit:
    """Whole-CPU FIT at one node: the sum over the six structures."""

    node: str
    components: tuple[ComponentNodeFit, ...]

    @property
    def fit_total(self) -> float:
        return sum(c.fit_total for c in self.components)

    @property
    def fit_single_only(self) -> float:
        return sum(c.fit_single_only for c in self.components)

    @property
    def fit_multibit(self) -> float:
        return sum(c.fit_multibit for c in self.components)

    @property
    def multibit_share(self) -> float:
        """Fraction of CPU FIT contributed by multi-bit upsets (Fig. 8 red)."""
        total = self.fit_total
        return self.fit_multibit / total if total else 0.0


def cpu_fit_by_node(
    avf_tables: dict[str, dict[int, float]],
    nodes: tuple[str, ...] = TECHNOLOGY_NODES,
    bits: dict[str, int] | None = None,
) -> dict[str, CpuNodeFit]:
    """Fig. 8: whole-CPU FIT per node.

    *avf_tables* maps component -> {cardinality -> weighted AVF} (Table V).
    """
    result = {}
    for node in nodes:
        components = tuple(
            component_node_fit(component, avfs, node, bits)
            for component, avfs in avf_tables.items()
        )
        result[node] = CpuNodeFit(node=node, components=components)
    return result
