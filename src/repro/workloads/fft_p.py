"""Parallel FFT workload: independent per-segment transforms.

The input is split into four fixed 16-point segments; each task runs a
complete radix-2 Q15 FFT (bit-reversal plus all stages) on its segment,
sharing one quarter-size twiddle table, and the main thread folds every
segment's spectrum into one checksum.
"""

from __future__ import annotations

import math

from repro.workloads.base import (
    Output, ParallelWorkload, asr, fmt_ints, rng, s32,
)

_TASKS = 4
_SEG = 16
_N = _TASKS * _SEG
_STRIDE = 4

_TEMPLATE = """\
int re[{n}] = {{{re}}};
int im[{n}];
int costab[{half}] = {{{cos}}};
int sintab[{half}] = {{{sin}}};
int flag[{tasks}];

void do_task(int t) {{
    int base = t * {seg};
    int j = 0;
    for (int i = 0; i < {seg} - 1; i = i + 1) {{
        if (i < j) {{
            int tmp = re[base + i];
            re[base + i] = re[base + j];
            re[base + j] = tmp;
            tmp = im[base + i];
            im[base + i] = im[base + j];
            im[base + j] = tmp;
        }}
        int k = {seg} / 2;
        while (k <= j) {{
            j = j - k;
            k = k / 2;
        }}
        j = j + k;
    }}
    int len = 2;
    while (len <= {seg}) {{
        int half = len / 2;
        int step = {seg} / len;
        for (int b = 0; b < {seg}; b = b + len) {{
            for (int q = 0; q < half; q = q + 1) {{
                int c = costab[q * step];
                int s = sintab[q * step];
                int u = base + b + q;
                int idx = u + half;
                int tr = (c * re[idx] + s * im[idx]) >> 15;
                int ti = (c * im[idx] - s * re[idx]) >> 15;
                int ur = re[u] >> 1;
                int ui = im[u] >> 1;
                tr = tr >> 1;
                ti = ti >> 1;
                re[u] = ur + tr;
                im[u] = ui + ti;
                re[idx] = ur - tr;
                im[idx] = ui - ti;
            }}
        }}
        len = len * 2;
    }}
    amoadd(flag, t, 1);
}}

int main() {{
    for (int t = 0; t < {tasks}; t = t + 1) {{
        if (spawn(do_task, t) == -1) {{
            do_task(t);
        }}
    }}
    int t = 0;
    while (t < {tasks}) {{
        if (flag[t] != 0) {{
            t = t + 1;
        }}
    }}
    int checksum = 0;
    for (int i = 0; i < {n}; i = i + 1) {{
        checksum = checksum * 17 + re[i] + im[i];
    }}
    putw(checksum);
    for (int i = 0; i < {n}; i = i + {stride}) {{
        putd(re[i]);
        putd(im[i]);
    }}
    exit(0);
    return 0;
}}
"""


def _segment_fft(re: list[int], im: list[int],
                 cos: list[int], sin: list[int], base: int) -> None:
    seg = _SEG
    j = 0
    for i in range(seg - 1):
        if i < j:
            re[base + i], re[base + j] = re[base + j], re[base + i]
            im[base + i], im[base + j] = im[base + j], im[base + i]
        k = seg // 2
        while k <= j:
            j -= k
            k //= 2
        j += k
    length = 2
    while length <= seg:
        half = length // 2
        step = seg // length
        for b in range(0, seg, length):
            for q in range(half):
                c = cos[q * step]
                s = sin[q * step]
                u = base + b + q
                idx = u + half
                tr = asr(c * re[idx] + s * im[idx], 15)
                ti = asr(c * im[idx] - s * re[idx], 15)
                ur = asr(re[u], 1)
                ui = asr(im[u], 1)
                tr = asr(tr, 1)
                ti = asr(ti, 1)
                re[u] = s32(ur + tr)
                im[u] = s32(ui + ti)
                re[idx] = s32(ur - tr)
                im[idx] = s32(ui - ti)
        length *= 2


def build() -> ParallelWorkload:
    rand = rng("fft_p")
    re = [rand.randrange(-2048, 2048) for _ in range(_N)]
    im = [0] * _N
    half = _SEG // 2
    cos = [round(32767 * math.cos(2 * math.pi * k / _SEG)) for k in range(half)]
    sin = [round(32767 * math.sin(2 * math.pi * k / _SEG)) for k in range(half)]

    ref_re, ref_im = list(re), list(im)
    for t in range(_TASKS):
        _segment_fft(ref_re, ref_im, cos, sin, t * _SEG)
    out = Output()
    checksum = 0
    for i in range(_N):
        checksum = (checksum * 17 + ref_re[i] + ref_im[i]) & 0xFFFFFFFF
    out.putw(checksum)
    for i in range(0, _N, _STRIDE):
        out.putd(ref_re[i])
        out.putd(ref_im[i])

    source = _TEMPLATE.format(
        n=_N, seg=_SEG, half=half, tasks=_TASKS, stride=_STRIDE,
        re=fmt_ints(re), cos=fmt_ints(cos), sin=fmt_ints(sin),
    )
    return ParallelWorkload(
        name="fft_p",
        paper_name="FFT (parallel)",
        paper_cycles=48_339_852,
        description=f"{_TASKS} independent {_SEG}-point Q15 radix-2 FFTs",
        source=source,
        expected_output=out.bytes(),
        tasks=_TASKS,
    )
