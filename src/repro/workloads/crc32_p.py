"""Parallel CRC32 workload: per-block checksums across cores.

The message is split into four fixed blocks; each task computes a full
bitwise CRC-32 of its block and the main thread folds the block CRCs.
Tasks are spawned greedily with an inline fallback, so the same binary
runs (and prints the same bytes) on any machine width from one core up.
"""

from __future__ import annotations

from repro.workloads.base import (
    Output, ParallelWorkload, fmt_ints, rng, u32,
)

_TASKS = 4
_BLOCK = 40
_SIZE = _TASKS * _BLOCK
_POLY = 0xEDB88320

_TEMPLATE = """\
byte msg[{size}] = {{{data}}};
int crcs[{tasks}];
int flag[{tasks}];

void do_task(int t) {{
    int crc = -1;
    int lo = t * {block};
    int hi = lo + {block};
    for (int i = lo; i < hi; i = i + 1) {{
        crc = crc ^ msg[i];
        for (int b = 0; b < 8; b = b + 1) {{
            int lsb = crc & 1;
            crc = (crc >> 1) & 2147483647;
            if (lsb) {{
                crc = crc ^ {poly};
            }}
        }}
    }}
    crcs[t] = crc ^ -1;
    amoadd(flag, t, 1);
}}

int main() {{
    for (int t = 0; t < {tasks}; t = t + 1) {{
        if (spawn(do_task, t) == -1) {{
            do_task(t);
        }}
    }}
    int t = 0;
    while (t < {tasks}) {{
        if (flag[t] != 0) {{
            t = t + 1;
        }}
    }}
    int fold = 0;
    for (int i = 0; i < {tasks}; i = i + 1) {{
        putw(crcs[i]);
        fold = fold ^ crcs[i];
    }}
    putw(fold);
    exit(0);
    return 0;
}}
"""


def _block_crc(data: bytes) -> int:
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            lsb = crc & 1
            crc >>= 1
            if lsb:
                crc ^= _POLY
    return u32(crc ^ 0xFFFFFFFF)


def build() -> ParallelWorkload:
    data = bytes(rng("crc32_p").randrange(256) for _ in range(_SIZE))
    out = Output()
    fold = 0
    for t in range(_TASKS):
        crc = _block_crc(data[t * _BLOCK:(t + 1) * _BLOCK])
        out.putw(crc)
        fold ^= crc
    out.putw(fold)
    source = _TEMPLATE.format(
        size=_SIZE, tasks=_TASKS, block=_BLOCK, poly=_POLY,
        data=fmt_ints(list(data)),
    )
    return ParallelWorkload(
        name="crc32_p",
        paper_name="CRC32 (parallel)",
        paper_cycles=132_195_721,
        description=f"bitwise CRC-32 over {_TASKS} blocks of {_BLOCK} bytes",
        source=source,
        expected_output=out.bytes(),
        tasks=_TASKS,
    )
