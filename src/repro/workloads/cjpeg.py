"""jpeg compress workload (MiBench consumer/jpeg "cjpeg" equivalent).

The classic JPEG luminance pipeline: level shift, integer
2-D DCT, quantisation with the Annex-K table, zigzag scan and zero-run-length
encoding on an 8x8 synthetic image.  The run-length pairs and coefficient checksum are the output.
"""

from __future__ import annotations

from repro.workloads.base import Output, Workload, fmt_ints, sdiv, u32
from repro.workloads._imagelib import (
    DCT_SCALE_BITS, QUANT_TABLE, ZIGZAG, dct_2d, dct_table, make_image,
)

_WIDTH = 8
_HEIGHT = 8
_BLOCKS = (_WIDTH // 8) * (_HEIGHT // 8)

_TEMPLATE = """\
byte img[{npix}] = {{{img}}};
int dcttab[64] = {{{dct}}};
int qtab[64] = {{{quant}}};
int zigzag[64] = {{{zigzag}}};
int blk[64];
int tmp[64];
int coef[64];

void load_block(int bx) {{
    for (int y = 0; y < 8; y = y + 1) {{
        for (int x = 0; x < 8; x = x + 1) {{
            blk[y * 8 + x] = img[y * {width} + bx * 8 + x] - 128;
        }}
    }}
}}

void dct_block() {{
    for (int y = 0; y < 8; y = y + 1) {{
        for (int u = 0; u < 8; u = u + 1) {{
            int acc = 0;
            for (int x = 0; x < 8; x = x + 1) {{
                acc = acc + dcttab[u * 8 + x] * blk[y * 8 + x];
            }}
            tmp[y * 8 + u] = acc >> {scale};
        }}
    }}
    for (int u = 0; u < 8; u = u + 1) {{
        for (int v = 0; v < 8; v = v + 1) {{
            int acc = 0;
            for (int y = 0; y < 8; y = y + 1) {{
                acc = acc + dcttab[v * 8 + y] * tmp[y * 8 + u];
            }}
            coef[v * 8 + u] = acc >> {scale};
        }}
    }}
}}

int main() {{
    int checksum = 0;
    int pairs = 0;
    for (int b = 0; b < {blocks}; b = b + 1) {{
        load_block(b);
        dct_block();
        int run = 0;
        for (int i = 0; i < 64; i = i + 1) {{
            int q = coef[zigzag[i]] / qtab[zigzag[i]];
            if (q == 0) {{
                run = run + 1;
            }} else {{
                putd(run);
                putd(q);
                pairs = pairs + 1;
                checksum = checksum * 37 + q + run;
                run = 0;
            }}
        }}
        putd(-run - 1);
    }}
    putd(pairs);
    putw(checksum);
    exit(0);
    return 0;
}}
"""


def build() -> Workload:
    image = make_image("cjpeg", _WIDTH, _HEIGHT)
    table = dct_table()

    out = Output()
    checksum = 0
    pairs = 0
    for b in range(_BLOCKS):
        block = [
            image[y * _WIDTH + b * 8 + x] - 128
            for y in range(8) for x in range(8)
        ]
        coeffs = dct_2d(block, table)
        run = 0
        for i in range(64):
            q = sdiv(coeffs[ZIGZAG[i]], QUANT_TABLE[ZIGZAG[i]])
            if q == 0:
                run += 1
            else:
                out.putd(run)
                out.putd(q)
                pairs += 1
                checksum = u32(checksum * 37 + q + run)
                run = 0
        out.putd(-run - 1)
    out.putd(pairs)
    out.putw(checksum)

    source = _TEMPLATE.format(
        npix=_WIDTH * _HEIGHT,
        width=_WIDTH,
        blocks=_BLOCKS,
        scale=DCT_SCALE_BITS,
        img=fmt_ints(image),
        dct=fmt_ints(table),
        quant=fmt_ints(QUANT_TABLE),
        zigzag=fmt_ints(ZIGZAG),
    )
    return Workload(
        name="cjpeg",
        paper_name="jpeg C",
        paper_cycles=26_126_843,
        description="JPEG-style DCT + quantise + zigzag + RLE per 8x8 block",
        source=source,
        expected_output=out.bytes(),
    )
