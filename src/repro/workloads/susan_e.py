"""susan edges workload (MiBench automotive/susan -e equivalent).

SUSAN edge detection: like the corner detector but with the edge geometric
threshold (3/4 of the maximum USAN area) and an accumulated edge-strength
response map.
"""

from __future__ import annotations

from repro.workloads.base import Output, Workload, fmt_ints, u32
from repro.workloads._imagelib import make_image

_WIDTH = 6
_HEIGHT = 6
_BRIGHT_THRESHOLD = 18
_GEOMETRIC = 6  # 3/4 of the 8-neighbour USAN maximum

_TEMPLATE = """\
byte img[{npix}] = {{{img}}};

int main() {{
    int edges = 0;
    int strength = 0;
    int checksum = 0;
    for (int y = 1; y < {height} - 1; y = y + 1) {{
        for (int x = 1; x < {width} - 1; x = x + 1) {{
            int centre = img[y * {width} + x];
            int area = 0;
            for (int dy = -1; dy <= 1; dy = dy + 1) {{
                for (int dx = -1; dx <= 1; dx = dx + 1) {{
                    if (dy != 0 || dx != 0) {{
                        int d = img[(y + dy) * {width} + x + dx] - centre;
                        if (d < 0) {{
                            d = -d;
                        }}
                        if (d < {bright}) {{
                            area = area + 1;
                        }}
                    }}
                }}
            }}
            if (area < {geometric}) {{
                int response = {geometric} - area;
                edges = edges + 1;
                strength = strength + response;
                checksum = checksum * 43 + response + x * y;
            }}
        }}
    }}
    putd(edges);
    putd(strength);
    putw(checksum);
    exit(0);
    return 0;
}}
"""


def build() -> Workload:
    image = make_image("susan_e", _WIDTH, _HEIGHT)
    edges = strength = checksum = 0
    for y in range(1, _HEIGHT - 1):
        for x in range(1, _WIDTH - 1):
            centre = image[y * _WIDTH + x]
            area = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    if dy == 0 and dx == 0:
                        continue
                    if abs(image[(y + dy) * _WIDTH + x + dx] - centre) < _BRIGHT_THRESHOLD:
                        area += 1
            if area < _GEOMETRIC:
                response = _GEOMETRIC - area
                edges += 1
                strength += response
                checksum = u32(checksum * 43 + response + x * y)
    out = Output()
    out.putd(edges)
    out.putd(strength)
    out.putw(checksum)

    source = _TEMPLATE.format(
        npix=_WIDTH * _HEIGHT,
        width=_WIDTH,
        height=_HEIGHT,
        bright=_BRIGHT_THRESHOLD,
        geometric=_GEOMETRIC,
        img=fmt_ints(image),
    )
    return Workload(
        name="susan_e",
        paper_name="usan_e",
        paper_cycles=2_876_202,
        description="SUSAN 3x3 edge detection on 11x11",
        source=source,
        expected_output=out.bytes(),
    )
