"""susan corners workload (MiBench automotive/susan -c equivalent).

SUSAN corner detection: each interior pixel's USAN (Univalue Segment
Assimilating Nucleus) area is the count of 3x3 neighbours whose brightness
is within a threshold of the nucleus; pixels whose area falls below the
geometric threshold respond as corners.
"""

from __future__ import annotations

from repro.workloads.base import Output, Workload, fmt_ints, u32
from repro.workloads._imagelib import make_image

_WIDTH = 5
_HEIGHT = 5
_BRIGHT_THRESHOLD = 20
_GEOMETRIC = 4

_TEMPLATE = """\
byte img[{npix}] = {{{img}}};

int main() {{
    int corners = 0;
    int checksum = 0;
    for (int y = 1; y < {height} - 1; y = y + 1) {{
        for (int x = 1; x < {width} - 1; x = x + 1) {{
            int centre = img[y * {width} + x];
            int area = 0;
            for (int dy = -1; dy <= 1; dy = dy + 1) {{
                for (int dx = -1; dx <= 1; dx = dx + 1) {{
                    if (dy != 0 || dx != 0) {{
                        int d = img[(y + dy) * {width} + x + dx] - centre;
                        if (d < 0) {{
                            d = -d;
                        }}
                        if (d < {bright}) {{
                            area = area + 1;
                        }}
                    }}
                }}
            }}
            if (area < {geometric}) {{
                int response = {geometric} - area;
                corners = corners + 1;
                checksum = checksum * 29 + response * (y * {width} + x);
            }}
        }}
    }}
    putd(corners);
    putw(checksum);
    exit(0);
    return 0;
}}
"""


def build() -> Workload:
    image = make_image("susan_c", _WIDTH, _HEIGHT)
    corners = 0
    checksum = 0
    for y in range(1, _HEIGHT - 1):
        for x in range(1, _WIDTH - 1):
            centre = image[y * _WIDTH + x]
            area = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    if dy == 0 and dx == 0:
                        continue
                    if abs(image[(y + dy) * _WIDTH + x + dx] - centre) < _BRIGHT_THRESHOLD:
                        area += 1
            if area < _GEOMETRIC:
                response = _GEOMETRIC - area
                corners += 1
                checksum = u32(checksum * 29 + response * (y * _WIDTH + x))
    out = Output()
    out.putd(corners)
    out.putw(checksum)

    source = _TEMPLATE.format(
        npix=_WIDTH * _HEIGHT,
        width=_WIDTH,
        height=_HEIGHT,
        bright=_BRIGHT_THRESHOLD,
        geometric=_GEOMETRIC,
        img=fmt_ints(image),
    )
    return Workload(
        name="susan_c",
        paper_name="susan_c",
        paper_cycles=2_150_961,
        description="SUSAN 3x3 corner detection on 10x10",
        source=source,
        expected_output=out.bytes(),
    )
