"""GSM decode workload (MiBench telecomm/gsm equivalent).

A GSM-06.10-flavoured decoder stage: long-term prediction (per-subframe lag
and gain applied to the reconstructed history) followed by a short
de-emphasis filter, on Q6 fixed-point residual data — the synthesis half of
the full-rate codec, scaled to subframe counts that simulate quickly.
"""

from __future__ import annotations

import math

from repro.workloads.base import Output, Workload, asr, fmt_ints, rng, s32

_SUBFRAMES = 2
_SUBLEN = 40
_TOTAL = _SUBFRAMES * _SUBLEN
_HISTORY = 120

_TEMPLATE = """\
int residual[{total}] = {{{residual}}};
int lags[{subframes}] = {{{lags}}};
int gains[{subframes}] = {{{gains}}};
int out[{buflen}];

int main() {{
    int pos = {history};
    for (int f = 0; f < {subframes}; f = f + 1) {{
        int lag = lags[f];
        int gain = gains[f];
        for (int n = 0; n < {sublen}; n = n + 1) {{
            int pred = (gain * out[pos - lag]) >> 6;
            int s = residual[f * {sublen} + n] + pred;
            if (s > 32767) {{
                s = 32767;
            }}
            if (s < -32768) {{
                s = -32768;
            }}
            out[pos] = s;
            pos = pos + 1;
        }}
    }}
    int msr = 0;
    int checksum = 0;
    for (int i = {history}; i < {history} + {total}; i = i + 1) {{
        msr = ((msr * 28180) >> 15) + out[i];
        if (msr > 32767) {{
            msr = 32767;
        }}
        if (msr < -32768) {{
            msr = -32768;
        }}
        checksum = checksum * 23 + msr;
        if ((i - {history}) % 48 == 47) {{
            putd(msr);
        }}
    }}
    putw(checksum);
    exit(0);
    return 0;
}}
"""


def build() -> Workload:
    rand = rng("gsm")
    residual = [
        int(900 * math.sin(i / 5.0)) + rand.randrange(-200, 200)
        for i in range(_TOTAL)
    ]
    lags = [rand.randrange(40, _HISTORY) for _ in range(_SUBFRAMES)]
    gains = [rand.randrange(20, 60) for _ in range(_SUBFRAMES)]

    buflen = _HISTORY + _TOTAL
    out_buf = [0] * buflen
    pos = _HISTORY
    for f in range(_SUBFRAMES):
        lag, gain = lags[f], gains[f]
        for n in range(_SUBLEN):
            pred = asr(gain * out_buf[pos - lag], 6)
            s = s32(residual[f * _SUBLEN + n] + s32(pred))
            s = max(-32768, min(32767, s))
            out_buf[pos] = s
            pos += 1

    out = Output()
    msr = checksum = 0
    for i in range(_HISTORY, buflen):
        msr = s32(asr(msr * 28180, 15) + out_buf[i])
        msr = max(-32768, min(32767, msr))
        checksum = (checksum * 23 + msr) & 0xFFFFFFFF
        if (i - _HISTORY) % 48 == 47:
            out.putd(msr)
    out.putw(checksum)

    source = _TEMPLATE.format(
        total=_TOTAL,
        subframes=_SUBFRAMES,
        sublen=_SUBLEN,
        history=_HISTORY,
        buflen=buflen,
        residual=fmt_ints(residual),
        lags=fmt_ints(lags),
        gains=fmt_ints(gains),
    )
    return Workload(
        name="gsm_dec",
        paper_name="gsm_dec",
        paper_cycles=12_862_888,
        description="GSM-style LTP synthesis + de-emphasis over 6 subframes",
        source=source,
        expected_output=out.bytes(),
    )
