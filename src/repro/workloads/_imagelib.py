"""Shared helpers for the image workloads (jpeg + susan families).

Provides seeded synthetic grayscale images with real structure (gradients,
a bright rectangle, noise) so that edge/corner detectors and DCT compaction
behave like they would on natural images, plus the integer 8-point DCT
machinery shared by cjpeg/djpeg and mirrored bit-exactly by their
references.
"""

from __future__ import annotations

import math

from repro.workloads.base import asr, rng, s32

DCT_SCALE_BITS = 8

#: Standard JPEG luminance quantisation table (Annex K), zigzag-free layout.
QUANT_TABLE = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]

#: Zigzag scan order: position i of the scan reads block index ZIGZAG[i].
ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
]


def dct_table() -> list[int]:
    """8x8 integer DCT kernel: T[u*8+x] = round(2^8 * (C(u)/2) cos(..))."""
    table = []
    for u in range(8):
        cu = 1 / math.sqrt(2) if u == 0 else 1.0
        for x in range(8):
            value = (cu / 2) * math.cos((2 * x + 1) * u * math.pi / 16)
            table.append(round(value * (1 << DCT_SCALE_BITS)))
    return table


def dct_2d(block: list[int], table: list[int]) -> list[int]:
    """Forward integer 2-D DCT, row pass then column pass (mirrors MiniC)."""
    temp = [0] * 64
    for y in range(8):
        for u in range(8):
            acc = 0
            for x in range(8):
                acc += table[u * 8 + x] * block[y * 8 + x]
            temp[y * 8 + u] = s32(asr(acc, DCT_SCALE_BITS))
    out = [0] * 64
    for u in range(8):
        for v in range(8):
            acc = 0
            for y in range(8):
                acc += table[v * 8 + y] * temp[y * 8 + u]
            out[v * 8 + u] = s32(asr(acc, DCT_SCALE_BITS))
    return out


def idct_2d(coeffs: list[int], table: list[int]) -> list[int]:
    """Inverse integer 2-D DCT using the same kernel transposed."""
    temp = [0] * 64
    for u in range(8):
        for y in range(8):
            acc = 0
            for v in range(8):
                acc += table[v * 8 + y] * coeffs[v * 8 + u]
            temp[y * 8 + u] = s32(asr(acc, DCT_SCALE_BITS))
    out = [0] * 64
    for y in range(8):
        for x in range(8):
            acc = 0
            for u in range(8):
                acc += table[u * 8 + x] * temp[y * 8 + u]
            out[y * 8 + x] = s32(asr(acc, DCT_SCALE_BITS))
    return out


def make_image(name: str, width: int, height: int) -> list[int]:
    """Synthetic grayscale image: gradient + bright rectangle + noise."""
    rand = rng(f"image:{name}")
    rx0, ry0 = width // 4, height // 4
    rx1, ry1 = 3 * width // 4, 3 * height // 4
    pixels = []
    for y in range(height):
        for x in range(width):
            value = 40 + (150 * x) // max(1, width - 1)
            if rx0 <= x < rx1 and ry0 <= y < ry1:
                value = 210
            value += rand.randrange(-12, 13)
            pixels.append(max(0, min(255, value)))
    return pixels
