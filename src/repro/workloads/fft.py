"""FFT workload (MiBench telecomm/FFT equivalent).

In-place radix-2 decimation-in-time FFT on Q15 fixed-point data, N = 64,
with embedded quarter-wave-derived twiddle tables and per-stage scaling —
the standard embedded-DSP formulation.  The reference implementation mirrors
the fixed-point arithmetic bit-exactly.
"""

from __future__ import annotations

import math

from repro.workloads.base import Output, Workload, asr, fmt_ints, rng, s32

_N = 64
_LOG2N = 6

_TEMPLATE = """\
int re[{n}] = {{{re}}};
int im[{n}];
int costab[{half}] = {{{cos}}};
int sintab[{half}] = {{{sin}}};

void bitrev() {{
    int j = 0;
    for (int i = 0; i < {n} - 1; i = i + 1) {{
        if (i < j) {{
            int t = re[i];
            re[i] = re[j];
            re[j] = t;
            t = im[i];
            im[i] = im[j];
            im[j] = t;
        }}
        int k = {n} / 2;
        while (k <= j) {{
            j = j - k;
            k = k / 2;
        }}
        j = j + k;
    }}
}}

int main() {{
    bitrev();
    int len = 2;
    while (len <= {n}) {{
        int half = len / 2;
        int step = {n} / len;
        for (int base = 0; base < {n}; base = base + len) {{
            for (int j = 0; j < half; j = j + 1) {{
                int c = costab[j * step];
                int s = sintab[j * step];
                int idx = base + j + half;
                int tr = (c * re[idx] + s * im[idx]) >> 15;
                int ti = (c * im[idx] - s * re[idx]) >> 15;
                int ur = re[base + j] >> 1;
                int ui = im[base + j] >> 1;
                tr = tr >> 1;
                ti = ti >> 1;
                re[base + j] = ur + tr;
                im[base + j] = ui + ti;
                re[idx] = ur - tr;
                im[idx] = ui - ti;
            }}
        }}
        len = len * 2;
    }}
    int checksum = 0;
    for (int i = 0; i < {n}; i = i + 1) {{
        checksum = checksum * 17 + re[i] + im[i];
    }}
    putw(checksum);
    for (int i = 0; i < {n}; i = i + {stride}) {{
        putd(re[i]);
        putd(im[i]);
    }}
    exit(0);
    return 0;
}}
"""

_STRIDE = 8


def _fft_reference(re: list[int], im: list[int],
                   cos: list[int], sin: list[int]) -> None:
    n = _N
    # Bit reversal.
    j = 0
    for i in range(n - 1):
        if i < j:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]
        k = n // 2
        while k <= j:
            j -= k
            k //= 2
        j += k
    length = 2
    while length <= n:
        half = length // 2
        step = n // length
        for base in range(0, n, length):
            for jj in range(half):
                c = cos[jj * step]
                s = sin[jj * step]
                idx = base + jj + half
                tr = asr(c * re[idx] + s * im[idx], 15)
                ti = asr(c * im[idx] - s * re[idx], 15)
                ur = asr(re[base + jj], 1)
                ui = asr(im[base + jj], 1)
                tr = asr(tr, 1)
                ti = asr(ti, 1)
                re[base + jj] = s32(ur + tr)
                im[base + jj] = s32(ui + ti)
                re[idx] = s32(ur - tr)
                im[idx] = s32(ui - ti)
        length *= 2


def build() -> Workload:
    rand = rng("fft")
    re = [rand.randrange(-2048, 2048) for _ in range(_N)]
    im = [0] * _N
    half = _N // 2
    cos = [round(32767 * math.cos(2 * math.pi * k / _N)) for k in range(half)]
    sin = [round(32767 * math.sin(2 * math.pi * k / _N)) for k in range(half)]

    ref_re, ref_im = list(re), list(im)
    _fft_reference(ref_re, ref_im, cos, sin)
    out = Output()
    checksum = 0
    for i in range(_N):
        checksum = (checksum * 17 + ref_re[i] + ref_im[i]) & 0xFFFFFFFF
    out.putw(checksum)
    for i in range(0, _N, _STRIDE):
        out.putd(ref_re[i])
        out.putd(ref_im[i])

    source = _TEMPLATE.format(
        n=_N, half=half, stride=_STRIDE,
        re=fmt_ints(re), cos=fmt_ints(cos), sin=fmt_ints(sin),
    )
    return Workload(
        name="fft",
        paper_name="FFT",
        paper_cycles=48_339_852,
        description="64-point Q15 fixed-point radix-2 FFT",
        source=source,
        expected_output=out.bytes(),
    )
