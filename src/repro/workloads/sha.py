"""SHA workload (MiBench security/sha equivalent): SHA-1 digest.

The MiniC program implements SHA-1 over a pre-padded message (padding is
computed by the generator; the compression function — message schedule,
rotations, all 80 rounds — runs on the simulated CPU).  The expected output
comes from :mod:`hashlib`, making this the strongest end-to-end oracle in
the suite: one wrong bit anywhere in the compiler, ISA, core or memory
system scrambles the digest.
"""

from __future__ import annotations

import hashlib
import struct

from repro.workloads.base import Output, Workload, fmt_ints, rng

_MSG_LEN = 30  # pads to one 64-byte block

_TEMPLATE = """\
byte msg[{padded_len}] = {{{data}}};
int w[80];

int rotl1(int x) {{
    return (x << 1) | ((x >> 31) & 1);
}}

int rotl5(int x) {{
    return (x << 5) | ((x >> 27) & 31);
}}

int rotl30(int x) {{
    return (x << 30) | ((x >> 2) & 1073741823);
}}

int h0; int h1; int h2; int h3; int h4;

void sha1_block(int off) {{
    for (int t = 0; t < 16; t = t + 1) {{
        int base = off + t * 4;
        w[t] = (msg[base] << 24) | (msg[base + 1] << 16)
             | (msg[base + 2] << 8) | msg[base + 3];
    }}
    for (int t = 16; t < 80; t = t + 1) {{
        w[t] = rotl1(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]);
    }}
    int a = h0;
    int b = h1;
    int c = h2;
    int d = h3;
    int e = h4;
    for (int t = 0; t < 80; t = t + 1) {{
        int f = 0;
        int k = 0;
        if (t < 20) {{
            f = (b & c) | ((~b) & d);
            k = 1518500249;
        }} else {{
            if (t < 40) {{
                f = b ^ c ^ d;
                k = 1859775393;
            }} else {{
                if (t < 60) {{
                    f = (b & c) | (b & d) | (c & d);
                    k = 2400959708;
                }} else {{
                    f = b ^ c ^ d;
                    k = 3395469782;
                }}
            }}
        }}
        int temp = rotl5(a) + f + e + k + w[t];
        e = d;
        d = c;
        c = rotl30(b);
        b = a;
        a = temp;
    }}
    h0 = h0 + a;
    h1 = h1 + b;
    h2 = h2 + c;
    h3 = h3 + d;
    h4 = h4 + e;
}}

int main() {{
    h0 = 1732584193;
    h1 = 4023233417;
    h2 = 2562383102;
    h3 = 271733878;
    h4 = 3285377520;
    for (int off = 0; off < {padded_len}; off = off + 64) {{
        sha1_block(off);
    }}
    putw(h0);
    putw(h1);
    putw(h2);
    putw(h3);
    putw(h4);
    exit(0);
    return 0;
}}
"""


def _sha1_pad(message: bytes) -> bytes:
    length = len(message)
    padded = message + b"\x80"
    while len(padded) % 64 != 56:
        padded += b"\x00"
    return padded + struct.pack(">Q", length * 8)


def build() -> Workload:
    message = bytes(rng("sha").randrange(256) for _ in range(_MSG_LEN))
    padded = _sha1_pad(message)
    digest = hashlib.sha1(message).digest()
    out = Output()
    for word in struct.unpack(">5I", digest):
        out.putw(word)
    source = _TEMPLATE.format(
        padded_len=len(padded),
        data=fmt_ints(list(padded)),
    )
    return Workload(
        name="sha",
        paper_name="sha",
        paper_cycles=12_141_593,
        description="SHA-1 digest of a 30-byte message (oracle: hashlib)",
        source=source,
        expected_output=out.bytes(),
    )
