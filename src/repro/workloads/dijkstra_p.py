"""Parallel dijkstra workload: one shortest-path tree per core.

Four tasks each run a complete O(N^2) single-source Dijkstra over the
same shared adjacency matrix (read-only) from a different source node,
writing into a private slice of the distance arrays; the main thread
prints each tree's distances and a combined checksum.
"""

from __future__ import annotations

from repro.workloads.base import Output, ParallelWorkload, fmt_ints, rng

_TASKS = 4
_NODES = 14
_INF = 1 << 28


def _generate_graph() -> list[list[int]]:
    rand = rng("dijkstra_p")
    adj = [[0] * _NODES for _ in range(_NODES)]
    for i in range(_NODES):
        for j in range(_NODES):
            if i != j and rand.random() < 0.35:
                adj[i][j] = rand.randrange(1, 30)
    for i in range(_NODES):
        adj[i][(i + 1) % _NODES] = adj[i][(i + 1) % _NODES] or 7
    return adj


def _dijkstra_reference(adj: list[list[int]], source: int) -> list[int]:
    dist = [_INF] * _NODES
    done = [False] * _NODES
    dist[source] = 0
    for _ in range(_NODES):
        best, best_d = -1, _INF + 1
        for v in range(_NODES):
            if not done[v] and dist[v] < best_d:
                best, best_d = v, dist[v]
        if best < 0:
            break
        done[best] = True
        for v in range(_NODES):
            w = adj[best][v]
            if w and dist[best] + w < dist[v]:
                dist[v] = dist[best] + w
    return dist


_TEMPLATE = """\
int adj[{cells}] = {{{matrix}}};
int dist[{slots}];
int done[{slots}];
int flag[{tasks}];

void do_task(int t) {{
    int base = t * {nodes};
    for (int v = 0; v < {nodes}; v = v + 1) {{
        dist[base + v] = {inf};
        done[base + v] = 0;
    }}
    dist[base + t] = 0;
    for (int iter = 0; iter < {nodes}; iter = iter + 1) {{
        int best = -1;
        int bestd = {inf} + 1;
        for (int v = 0; v < {nodes}; v = v + 1) {{
            if (done[base + v] == 0 && dist[base + v] < bestd) {{
                best = v;
                bestd = dist[base + v];
            }}
        }}
        if (best < 0) {{
            break;
        }}
        done[base + best] = 1;
        for (int v = 0; v < {nodes}; v = v + 1) {{
            int w = adj[best * {nodes} + v];
            if (w != 0 && dist[base + best] + w < dist[base + v]) {{
                dist[base + v] = dist[base + best] + w;
            }}
        }}
    }}
    amoadd(flag, t, 1);
}}

int main() {{
    for (int t = 0; t < {tasks}; t = t + 1) {{
        if (spawn(do_task, t) == -1) {{
            do_task(t);
        }}
    }}
    int t = 0;
    while (t < {tasks}) {{
        if (flag[t] != 0) {{
            t = t + 1;
        }}
    }}
    int checksum = 0;
    for (int s = 0; s < {tasks}; s = s + 1) {{
        for (int v = 0; v < {nodes}; v = v + 1) {{
            putd(dist[s * {nodes} + v]);
            checksum = checksum * 131 + dist[s * {nodes} + v];
        }}
    }}
    putw(checksum);
    exit(0);
    return 0;
}}
"""


def build() -> ParallelWorkload:
    adj = _generate_graph()
    out = Output()
    checksum = 0
    for source in range(_TASKS):
        for value in _dijkstra_reference(adj, source):
            out.putd(value)
            checksum = (checksum * 131 + value) & 0xFFFFFFFF
    out.putw(checksum)
    flat = [w for row in adj for w in row]
    source_text = _TEMPLATE.format(
        cells=_NODES * _NODES, nodes=_NODES, slots=_TASKS * _NODES,
        tasks=_TASKS, inf=_INF, matrix=fmt_ints(flat),
    )
    return ParallelWorkload(
        name="dijkstra_p",
        paper_name="dijkstra (parallel)",
        paper_cycles=41_643_556,
        description=f"{_TASKS}-source Dijkstra trees on a {_NODES}-node digraph",
        source=source_text,
        expected_output=out.bytes(),
        tasks=_TASKS,
    )
