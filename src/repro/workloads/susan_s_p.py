"""Parallel susan smoothing workload: row strips across cores.

The interior rows of the image are split into four fixed two-row strips;
each task smooths its strip (reading the shared input image, writing a
disjoint region of the output image) and publishes a per-strip checksum.
The main thread then re-reads every smoothed pixel the workers wrote —
through the shared L2 — to form a global checksum, so a corrupted shared
line between producer and consumer cores is architecturally visible.
"""

from __future__ import annotations

import math

from repro.workloads.base import (
    Output, ParallelWorkload, fmt_ints, u32,
)
from repro.workloads._imagelib import make_image

_TASKS = 4
_ROWS_PER_TASK = 2
_WIDTH = 8
_HEIGHT = _TASKS * _ROWS_PER_TASK + 2   # interior rows only are smoothed
_THRESHOLD = 27

_TEMPLATE = """\
byte img[{npix}] = {{{img}}};
byte lut[256] = {{{lut}}};
byte smoothed[{npix}];
int strip_sum[{tasks}];
int flag[{tasks}];

void do_task(int t) {{
    int checksum = 0;
    int y0 = 1 + t * {rows};
    for (int y = y0; y < y0 + {rows}; y = y + 1) {{
        for (int x = 1; x < {width} - 1; x = x + 1) {{
            int centre = img[y * {width} + x];
            int total = 0;
            int wsum = 0;
            for (int dy = -1; dy <= 1; dy = dy + 1) {{
                for (int dx = -1; dx <= 1; dx = dx + 1) {{
                    int v = img[(y + dy) * {width} + x + dx];
                    int d = v - centre;
                    if (d < 0) {{
                        d = -d;
                    }}
                    int w = lut[d];
                    total = total + w * v;
                    wsum = wsum + w;
                }}
            }}
            int value = total / wsum;
            smoothed[y * {width} + x] = value;
            checksum = checksum * 31 + value;
        }}
    }}
    strip_sum[t] = checksum;
    amoadd(flag, t, 1);
}}

int main() {{
    for (int t = 0; t < {tasks}; t = t + 1) {{
        if (spawn(do_task, t) == -1) {{
            do_task(t);
        }}
    }}
    int t = 0;
    while (t < {tasks}) {{
        if (flag[t] != 0) {{
            t = t + 1;
        }}
    }}
    int global = 0;
    for (int s = 0; s < {tasks}; s = s + 1) {{
        putw(strip_sum[s]);
        for (int y = 1 + s * {rows}; y < 1 + s * {rows} + {rows}; y = y + 1) {{
            for (int x = 1; x < {width} - 1; x = x + 1) {{
                global = global * 31 + smoothed[y * {width} + x];
            }}
        }}
    }}
    putw(global);
    exit(0);
    return 0;
}}
"""


def _similarity_lut() -> list[int]:
    return [
        max(0, min(255, round(100 * math.exp(-((d / _THRESHOLD) ** 2)))))
        for d in range(256)
    ]


def build() -> ParallelWorkload:
    image = make_image("susan_s_p", _WIDTH, _HEIGHT)
    lut = _similarity_lut()
    out = Output()
    smoothed = [0] * (_WIDTH * _HEIGHT)
    strip_sums = []
    for t in range(_TASKS):
        checksum = 0
        for y in range(1 + t * _ROWS_PER_TASK,
                       1 + (t + 1) * _ROWS_PER_TASK):
            for x in range(1, _WIDTH - 1):
                centre = image[y * _WIDTH + x]
                total = wsum = 0
                for dy in (-1, 0, 1):
                    for dx in (-1, 0, 1):
                        v = image[(y + dy) * _WIDTH + x + dx]
                        w = lut[abs(v - centre)]
                        total += w * v
                        wsum += w
                value = total // wsum
                smoothed[y * _WIDTH + x] = value
                checksum = u32(checksum * 31 + value)
        strip_sums.append(checksum)
    glob = 0
    for t in range(_TASKS):
        out.putw(strip_sums[t])
        for y in range(1 + t * _ROWS_PER_TASK,
                       1 + (t + 1) * _ROWS_PER_TASK):
            for x in range(1, _WIDTH - 1):
                glob = u32(glob * 31 + smoothed[y * _WIDTH + x])
    out.putw(glob)

    source = _TEMPLATE.format(
        npix=_WIDTH * _HEIGHT, width=_WIDTH, rows=_ROWS_PER_TASK,
        tasks=_TASKS, img=fmt_ints(image), lut=fmt_ints(lut),
    )
    return ParallelWorkload(
        name="susan_s_p",
        paper_name="susan s (parallel)",
        paper_cycles=13_750_557,
        description=(
            f"strip-parallel SUSAN smoothing, {_TASKS} strips of "
            f"{_ROWS_PER_TASK} rows"
        ),
        source=source,
        expected_output=out.bytes(),
        tasks=_TASKS,
    )
