"""Workload registry: the paper's 15 MiBench benchmarks by name."""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from repro.errors import ConfigError
from repro.workloads.base import Workload


def _builders() -> dict[str, Callable[[], Workload]]:
    # Imported lazily so that a single broken workload module does not take
    # down the whole package, and so import cost is paid on first use.
    from repro.workloads import (
        adpcm_dec, basicmath, cjpeg, crc32, dijkstra, djpeg, fft, gsm_dec,
        qsort, rijndael_dec, sha, stringsearch, susan_c, susan_e, susan_s,
    )

    modules = [
        crc32, fft, adpcm_dec, basicmath, cjpeg, dijkstra, djpeg, gsm_dec,
        qsort, rijndael_dec, sha, stringsearch, susan_c, susan_e, susan_s,
    ]
    return {mod.__name__.rsplit(".", 1)[-1]: mod.build for mod in modules}


#: name -> zero-argument builder, in the paper's Table III order.
WORKLOAD_BUILDERS: dict[str, Callable[[], Workload]] = {}


def _ensure_builders() -> dict[str, Callable[[], Workload]]:
    if not WORKLOAD_BUILDERS:
        WORKLOAD_BUILDERS.update(_builders())
    return WORKLOAD_BUILDERS


def workload_names() -> list[str]:
    """All 15 workload names in Table III order."""
    return list(_ensure_builders())


@lru_cache(maxsize=None)
def get_workload(name: str) -> Workload:
    """Build (and cache) one workload by name."""
    builders = _ensure_builders()
    if name not in builders:
        raise ConfigError(
            f"unknown workload {name!r}; available: {', '.join(builders)}"
        )
    return builders[name]()


def load_all_workloads() -> list[Workload]:
    """Build all 15 workloads."""
    return [get_workload(name) for name in workload_names()]
