"""Workload registry: the paper's 15 MiBench benchmarks by name."""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from repro.errors import ConfigError
from repro.workloads.base import Workload


def _builders() -> dict[str, Callable[[], Workload]]:
    # Imported lazily so that a single broken workload module does not take
    # down the whole package, and so import cost is paid on first use.
    from repro.workloads import (
        adpcm_dec, basicmath, cjpeg, crc32, dijkstra, djpeg, fft, gsm_dec,
        qsort, rijndael_dec, sha, stringsearch, susan_c, susan_e, susan_s,
    )

    modules = [
        crc32, fft, adpcm_dec, basicmath, cjpeg, dijkstra, djpeg, gsm_dec,
        qsort, rijndael_dec, sha, stringsearch, susan_c, susan_e, susan_s,
    ]
    return {mod.__name__.rsplit(".", 1)[-1]: mod.build for mod in modules}


def _parallel_builders() -> dict[str, Callable[[], Workload]]:
    from repro.workloads import (
        crc32_p, dijkstra_p, fft_p, qsort_p, susan_s_p,
    )

    modules = [crc32_p, fft_p, qsort_p, dijkstra_p, susan_s_p]
    return {mod.__name__.rsplit(".", 1)[-1]: mod.build for mod in modules}


#: name -> zero-argument builder, in the paper's Table III order.
WORKLOAD_BUILDERS: dict[str, Callable[[], Workload]] = {}

#: Parallel ports (the ``*_p`` tier) — kept out of WORKLOAD_BUILDERS so
#: the paper's 15-benchmark table and every existing campaign default are
#: unchanged; reachable through :func:`get_workload` by name.
PARALLEL_BUILDERS: dict[str, Callable[[], Workload]] = {}


def _ensure_builders() -> dict[str, Callable[[], Workload]]:
    if not WORKLOAD_BUILDERS:
        WORKLOAD_BUILDERS.update(_builders())
    return WORKLOAD_BUILDERS


def _ensure_parallel() -> dict[str, Callable[[], Workload]]:
    if not PARALLEL_BUILDERS:
        PARALLEL_BUILDERS.update(_parallel_builders())
    return PARALLEL_BUILDERS


def workload_names() -> list[str]:
    """All 15 workload names in Table III order."""
    return list(_ensure_builders())


def parallel_workload_names() -> list[str]:
    """The spawn-based parallel ports (identical output at any core count)."""
    return list(_ensure_parallel())


@lru_cache(maxsize=None)
def get_workload(name: str) -> Workload:
    """Build (and cache) one workload by name (serial or parallel tier)."""
    builders = _ensure_builders()
    if name in builders:
        return builders[name]()
    parallel = _ensure_parallel()
    if name in parallel:
        return parallel[name]()
    raise ConfigError(
        f"unknown workload {name!r}; available: "
        f"{', '.join(list(builders) + list(parallel))}"
    )


def load_all_workloads() -> list[Workload]:
    """Build all 15 workloads."""
    return [get_workload(name) for name in workload_names()]
