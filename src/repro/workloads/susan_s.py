"""susan smoothing workload (MiBench automotive/susan -s equivalent).

SUSAN structure-preserving smoothing: each interior pixel is replaced by a
brightness-similarity-weighted average of its 3x3 neighbourhood, with the
similarity weights coming from an exponential lookup table — the same
shape as the original's ``exp(-(dI/t)^2)`` kernel, precomputed to integers.
"""

from __future__ import annotations

import math

from repro.workloads.base import Output, Workload, fmt_ints, u32
from repro.workloads._imagelib import make_image

_WIDTH = 8
_HEIGHT = 8
_THRESHOLD = 27

_TEMPLATE = """\
byte img[{npix}] = {{{img}}};
byte lut[256] = {{{lut}}};
byte smoothed[{npix}];

int main() {{
    int checksum = 0;
    for (int y = 1; y < {height} - 1; y = y + 1) {{
        for (int x = 1; x < {width} - 1; x = x + 1) {{
            int centre = img[y * {width} + x];
            int total = 0;
            int wsum = 0;
            for (int dy = -1; dy <= 1; dy = dy + 1) {{
                for (int dx = -1; dx <= 1; dx = dx + 1) {{
                    int v = img[(y + dy) * {width} + x + dx];
                    int d = v - centre;
                    if (d < 0) {{
                        d = -d;
                    }}
                    int w = lut[d];
                    total = total + w * v;
                    wsum = wsum + w;
                }}
            }}
            int value = total / wsum;
            smoothed[y * {width} + x] = value;
            checksum = checksum * 31 + value;
        }}
        putw(checksum);
    }}
    exit(0);
    return 0;
}}
"""


def _similarity_lut() -> list[int]:
    return [
        max(0, min(255, round(100 * math.exp(-((d / _THRESHOLD) ** 2)))))
        for d in range(256)
    ]


def build() -> Workload:
    image = make_image("susan_s", _WIDTH, _HEIGHT)
    lut = _similarity_lut()
    out = Output()
    checksum = 0
    for y in range(1, _HEIGHT - 1):
        for x in range(1, _WIDTH - 1):
            centre = image[y * _WIDTH + x]
            total = wsum = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    v = image[(y + dy) * _WIDTH + x + dx]
                    w = lut[abs(v - centre)]
                    total += w * v
                    wsum += w
            value = total // wsum
            checksum = u32(checksum * 31 + value)
        out.putw(checksum)

    source = _TEMPLATE.format(
        npix=_WIDTH * _HEIGHT,
        width=_WIDTH,
        height=_HEIGHT,
        img=fmt_ints(image),
        lut=fmt_ints(lut),
    )
    return Workload(
        name="susan_s",
        paper_name="susan s",
        paper_cycles=13_750_557,
        description="SUSAN similarity-weighted 3x3 smoothing on 14x14",
        source=source,
        expected_output=out.bytes(),
    )
