"""stringsearch workload (MiBench office/stringsearch equivalent).

Boyer-Moore-Horspool search of several patterns in a text buffer (the
skip table covers the 7-bit alphabet the text is drawn from).  This is the
shortest benchmark in the paper's Table III and stays the shortest here.
"""

from __future__ import annotations

from repro.workloads.base import Output, Workload, fmt_ints, rng

_TEXT_LEN = 80
_PATTERNS = 2
_PAT_LEN = 6

_TEMPLATE = """\
byte text[{text_len}] = {{{text}}};
byte pats[{pats_len}] = {{{pats}}};
int skip[128];

int search(int pat_off, int plen) {{
    for (int c = 0; c < 128; c = c + 1) {{
        skip[c] = plen;
    }}
    for (int k = 0; k < plen - 1; k = k + 1) {{
        skip[pats[pat_off + k]] = plen - 1 - k;
    }}
    int pos = 0;
    while (pos + plen <= {text_len}) {{
        int j = plen - 1;
        while (j >= 0 && text[pos + j] == pats[pat_off + j]) {{
            j = j - 1;
        }}
        if (j < 0) {{
            return pos;
        }}
        pos = pos + skip[text[pos + plen - 1]];
    }}
    return -1;
}}

int main() {{
    for (int p = 0; p < {patterns}; p = p + 1) {{
        putd(search(p * {pat_len}, {pat_len}));
    }}
    exit(0);
    return 0;
}}
"""


def _search_reference(text: bytes, pattern: bytes) -> int:
    idx = text.find(pattern)
    return idx  # find returns -1 on miss, like the MiniC routine


def build() -> Workload:
    rand = rng("stringsearch")
    # Lower-entropy alphabet so partial matches actually occur.
    text = bytes(rand.randrange(ord("a"), ord("e")) for _ in range(_TEXT_LEN))
    patterns = []
    # One pattern guaranteed present, one likely absent.
    start = rand.randrange(_TEXT_LEN - _PAT_LEN)
    patterns.append(text[start:start + _PAT_LEN])
    patterns.append(bytes(rand.randrange(ord("f"), ord("j")) for _ in range(_PAT_LEN)))
    out = Output()
    for pattern in patterns:
        out.putd(_search_reference(text, pattern))
    source = _TEMPLATE.format(
        text_len=_TEXT_LEN,
        pats_len=_PATTERNS * _PAT_LEN,
        patterns=_PATTERNS,
        pat_len=_PAT_LEN,
        text=fmt_ints(list(text)),
        pats=fmt_ints([b for p in patterns for b in p]),
    )
    return Workload(
        name="stringsearch",
        paper_name="stringSearch",
        paper_cycles=1_082_451,
        description="Boyer-Moore-Horspool search of 2 patterns in 120 bytes",
        source=source,
        expected_output=out.bytes(),
    )
