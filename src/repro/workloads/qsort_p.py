"""Parallel qsort workload: slice-parallel quicksort.

The array is split into four fixed slices; each task quicksorts its slice
in place with an explicit work-list (no recursion, so a worker's carved
stack slice is never at risk) and the main thread verifies and folds the
slice-sorted array.
"""

from __future__ import annotations

from repro.workloads.base import Output, ParallelWorkload, fmt_ints, rng

_TASKS = 4
_SLICE = 25
_SIZE = _TASKS * _SLICE
#: Per-task work-list capacity (index pairs); Lomuto pushes at most one
#: pair per element of the slice, so 2 * _SLICE + 2 words is safe.
_STK = 2 * _SLICE + 2
_STRIDE = 5

_TEMPLATE = """\
int a[{size}] = {{{data}}};
int stk[{stk_total}];
int flag[{tasks}];

void do_task(int t) {{
    int base = t * {stk};
    int sp = base;
    stk[sp] = t * {slice};
    stk[sp + 1] = t * {slice} + {slice} - 1;
    sp = sp + 2;
    while (sp > base) {{
        sp = sp - 2;
        int lo = stk[sp];
        int hi = stk[sp + 1];
        if (lo < hi) {{
            int pivot = a[hi];
            int i = lo - 1;
            for (int j = lo; j < hi; j = j + 1) {{
                if (a[j] <= pivot) {{
                    i = i + 1;
                    int tmp = a[i];
                    a[i] = a[j];
                    a[j] = tmp;
                }}
            }}
            int tmp2 = a[i + 1];
            a[i + 1] = a[hi];
            a[hi] = tmp2;
            stk[sp] = lo;
            stk[sp + 1] = i;
            sp = sp + 2;
            stk[sp] = i + 2;
            stk[sp + 1] = hi;
            sp = sp + 2;
        }}
    }}
    amoadd(flag, t, 1);
}}

int main() {{
    for (int t = 0; t < {tasks}; t = t + 1) {{
        if (spawn(do_task, t) == -1) {{
            do_task(t);
        }}
    }}
    int t = 0;
    while (t < {tasks}) {{
        if (flag[t] != 0) {{
            t = t + 1;
        }}
    }}
    int checksum = 0;
    int sorted = 1;
    for (int i = 0; i < {size}; i = i + 1) {{
        checksum = checksum * 31 + a[i];
        if (i % {slice} != 0 && a[i - 1] > a[i]) {{
            sorted = 0;
        }}
    }}
    putd(sorted);
    putw(checksum);
    for (int i = 0; i < {size}; i = i + {stride}) {{
        putd(a[i]);
    }}
    exit(0);
    return 0;
}}
"""


def build() -> ParallelWorkload:
    rand = rng("qsort_p")
    data = [rand.randrange(-5000, 5000) for _ in range(_SIZE)]
    final = []
    for t in range(_TASKS):
        final.extend(sorted(data[t * _SLICE:(t + 1) * _SLICE]))
    out = Output()
    checksum = 0
    for value in final:
        checksum = (checksum * 31 + value) & 0xFFFFFFFF
    out.putd(1)
    out.putw(checksum)
    for i in range(0, _SIZE, _STRIDE):
        out.putd(final[i])
    source = _TEMPLATE.format(
        size=_SIZE, tasks=_TASKS, slice=_SLICE, stk=_STK,
        stk_total=_TASKS * _STK, stride=_STRIDE, data=fmt_ints(data),
    )
    return ParallelWorkload(
        name="qsort_p",
        paper_name="qsort (parallel)",
        paper_cycles=31_326_716,
        description=f"work-list quicksort of {_TASKS} slices of {_SLICE}",
        source=source,
        expected_output=out.bytes(),
        tasks=_TASKS,
    )
