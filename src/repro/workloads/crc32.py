"""CRC32 workload (MiBench telecomm/CRC32 equivalent).

Bitwise (table-free) CRC-32 with the reflected polynomial 0xEDB88320 over a
seeded byte buffer, emitting periodic checkpoints and the final checksum.
CRC32 is the longest-running benchmark in the paper's Table III, so it gets
the largest input here as well.
"""

from __future__ import annotations

from repro.workloads.base import Output, Workload, fmt_ints, rng, u32

_SIZE = 245
_CHECKPOINT = 100
_POLY = 0xEDB88320

_TEMPLATE = """\
byte msg[{size}] = {{{data}}};

int main() {{
    int crc = -1;
    for (int i = 0; i < {size}; i = i + 1) {{
        crc = crc ^ msg[i];
        for (int b = 0; b < 8; b = b + 1) {{
            int lsb = crc & 1;
            crc = (crc >> 1) & 2147483647;
            if (lsb) {{
                crc = crc ^ {poly};
            }}
        }}
        if (i % {checkpoint} == {checkpoint} - 1) {{
            putw(crc);
        }}
    }}
    putw(crc ^ -1);
    exit(0);
    return 0;
}}
"""


def _crc32_reference(data: bytes, out: Output) -> None:
    crc = 0xFFFFFFFF
    for i, byte in enumerate(data):
        crc ^= byte
        for _ in range(8):
            lsb = crc & 1
            crc >>= 1
            if lsb:
                crc ^= _POLY
        if i % _CHECKPOINT == _CHECKPOINT - 1:
            out.putw(crc)
    out.putw(u32(crc ^ 0xFFFFFFFF))


def build() -> Workload:
    data = bytes(rng("crc32").randrange(256) for _ in range(_SIZE))
    out = Output()
    _crc32_reference(data, out)
    source = _TEMPLATE.format(
        size=_SIZE,
        checkpoint=_CHECKPOINT,
        poly=_POLY,
        data=fmt_ints(list(data)),
    )
    return Workload(
        name="crc32",
        paper_name="CRC32",
        paper_cycles=132_195_721,
        description="bitwise CRC-32 over a 300-byte buffer",
        source=source,
        expected_output=out.bytes(),
    )
