"""Rijndael decode workload (MiBench security/rijndael equivalent).

AES-128 decryption (FIPS-197 InvCipher: InvShiftRows, InvSubBytes via an
embedded inverse S-box, AddRoundKey, xtime-chain InvMixColumns) of one
block.  The generator encrypts a known printable plaintext with a full
Python AES-128 *forward* cipher, so the simulated decryption is verified
against an independent implementation of the other direction — any
asymmetry or dataflow error breaks the round trip.
"""

from __future__ import annotations

from repro.workloads.base import Output, Workload, fmt_ints, rng, u32

_BLOCKS = 1


# -- GF(2^8) and S-box construction (standard generator, self-checked) -------

def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _rotl8(x: int, n: int) -> int:
    return ((x << n) | (x >> (8 - n))) & 0xFF


def _build_sbox() -> list[int]:
    sbox = [0] * 256
    p = q = 1
    while True:
        # p iterates over GF(2^8)* via multiplication by 3; q tracks 1/p.
        p = p ^ ((p << 1) & 0xFF) ^ (0x1B if p & 0x80 else 0)
        q ^= q << 1
        q ^= q << 2
        q ^= q << 4
        q &= 0xFF
        if q & 0x80:
            q ^= 0x09
        value = (
            q ^ _rotl8(q, 1) ^ _rotl8(q, 2) ^ _rotl8(q, 3) ^ _rotl8(q, 4)
        ) ^ 0x63
        sbox[p] = value
        if p == 1:
            break
    sbox[0] = 0x63
    assert sbox[0x00] == 0x63 and sbox[0x01] == 0x7C and sbox[0x53] == 0xED
    return sbox


_SBOX = _build_sbox()
_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i


def _gmul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _expand_key(key: bytes) -> list[list[int]]:
    """AES-128 key schedule: 44 words as byte quadruples."""
    words = [list(key[4 * i:4 * i + 4]) for i in range(4)]
    rcon = 1
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [_SBOX[b] for b in temp]
            temp[0] ^= rcon
            rcon = _xtime(rcon)
        words.append([words[i - 4][j] ^ temp[j] for j in range(4)])
    return words


def _encrypt_block(block: bytes, round_keys: list[list[int]]) -> bytes:
    # FIPS state is column-major with state[r + 4c] = in[4c + r]; since we
    # index the flat list as state[4c + r], input order is the identity.
    state = list(block)

    def add_round_key(rnd: int) -> None:
        for c in range(4):
            for r in range(4):
                state[4 * c + r] ^= round_keys[4 * rnd + c][r]

    def sub_bytes() -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    def shift_rows() -> None:
        old = list(state)
        for r in range(4):
            for c in range(4):
                state[4 * c + r] = old[4 * ((c + r) % 4) + r]

    def mix_columns() -> None:
        for c in range(4):
            col = state[4 * c:4 * c + 4]
            state[4 * c + 0] = _gmul(col[0], 2) ^ _gmul(col[1], 3) ^ col[2] ^ col[3]
            state[4 * c + 1] = col[0] ^ _gmul(col[1], 2) ^ _gmul(col[2], 3) ^ col[3]
            state[4 * c + 2] = col[0] ^ col[1] ^ _gmul(col[2], 2) ^ _gmul(col[3], 3)
            state[4 * c + 3] = _gmul(col[0], 3) ^ col[1] ^ col[2] ^ _gmul(col[3], 2)

    add_round_key(0)
    for rnd in range(1, 10):
        sub_bytes()
        shift_rows()
        mix_columns()
        add_round_key(rnd)
    sub_bytes()
    shift_rows()
    add_round_key(10)
    return bytes(state)


_TEMPLATE = """\
byte ct[{nbytes}] = {{{ct}}};
byte rk[176] = {{{rk}}};
byte invsbox[256] = {{{invsbox}}};
byte state[16];
byte tmp[16];

int xt(int a) {{
    int r = (a << 1) & 255;
    if (a & 128) {{
        r = r ^ 27;
    }}
    return r;
}}

void add_round_key(int rnd) {{
    for (int i = 0; i < 16; i = i + 1) {{
        state[i] = state[i] ^ rk[rnd * 16 + i];
    }}
}}

void inv_shift_rows() {{
    for (int i = 0; i < 16; i = i + 1) {{
        tmp[i] = state[i];
    }}
    for (int r = 0; r < 4; r = r + 1) {{
        for (int c = 0; c < 4; c = c + 1) {{
            state[4 * ((c + r) % 4) + r] = tmp[4 * c + r];
        }}
    }}
}}

void inv_sub_bytes() {{
    for (int i = 0; i < 16; i = i + 1) {{
        state[i] = invsbox[state[i]];
    }}
}}

void inv_mix_columns() {{
    for (int c = 0; c < 4; c = c + 1) {{
        int s0 = state[4 * c];
        int s1 = state[4 * c + 1];
        int s2 = state[4 * c + 2];
        int s3 = state[4 * c + 3];
        int m2_0 = xt(s0);
        int m4_0 = xt(m2_0);
        int m8_0 = xt(m4_0);
        int m2_1 = xt(s1);
        int m4_1 = xt(m2_1);
        int m8_1 = xt(m4_1);
        int m2_2 = xt(s2);
        int m4_2 = xt(m2_2);
        int m8_2 = xt(m4_2);
        int m2_3 = xt(s3);
        int m4_3 = xt(m2_3);
        int m8_3 = xt(m4_3);
        state[4 * c]     = (m8_0 ^ m4_0 ^ m2_0) ^ (m8_1 ^ m2_1 ^ s1)
                         ^ (m8_2 ^ m4_2 ^ s2) ^ (m8_3 ^ s3);
        state[4 * c + 1] = (m8_0 ^ s0) ^ (m8_1 ^ m4_1 ^ m2_1)
                         ^ (m8_2 ^ m2_2 ^ s2) ^ (m8_3 ^ m4_3 ^ s3);
        state[4 * c + 2] = (m8_0 ^ m4_0 ^ s0) ^ (m8_1 ^ s1)
                         ^ (m8_2 ^ m4_2 ^ m2_2) ^ (m8_3 ^ m2_3 ^ s3);
        state[4 * c + 3] = (m8_0 ^ m2_0 ^ s0) ^ (m8_1 ^ m4_1 ^ s1)
                         ^ (m8_2 ^ s2) ^ (m8_3 ^ m4_3 ^ m2_3);
    }}
}}

int main() {{
    int checksum = 0;
    for (int b = 0; b < {blocks}; b = b + 1) {{
        for (int i = 0; i < 16; i = i + 1) {{
            state[i] = ct[b * 16 + i];
        }}
        add_round_key(10);
        for (int rnd = 9; rnd >= 1; rnd = rnd - 1) {{
            inv_shift_rows();
            inv_sub_bytes();
            add_round_key(rnd);
            inv_mix_columns();
        }}
        inv_shift_rows();
        inv_sub_bytes();
        add_round_key(0);
        for (int i = 0; i < 16; i = i + 1) {{
            putc(state[i]);
            checksum = checksum * 7 + state[i];
        }}
    }}
    putc('\\n');
    putw(checksum);
    exit(0);
    return 0;
}}
"""


def build() -> Workload:
    rand = rng("rijndael")
    key = bytes(rand.randrange(256) for _ in range(16))
    plaintext = bytes(
        rand.randrange(0x20, 0x7F) for _ in range(16 * _BLOCKS)
    )
    round_keys = _expand_key(key)
    ciphertext = b"".join(
        _encrypt_block(plaintext[16 * b:16 * b + 16], round_keys)
        for b in range(_BLOCKS)
    )
    rk_flat = [round_keys[4 * rnd + c][r]
               for rnd in range(11) for c in range(4) for r in range(4)]

    out = Output()
    checksum = 0
    for byte in plaintext:
        out.putc(byte)
        checksum = u32(checksum * 7 + byte)
    out.putc(ord("\n"))
    out.putw(checksum)

    source = _TEMPLATE.format(
        nbytes=16 * _BLOCKS,
        blocks=_BLOCKS,
        ct=fmt_ints(list(ciphertext)),
        rk=fmt_ints(rk_flat),
        invsbox=fmt_ints(_INV_SBOX),
    )
    return Workload(
        name="rijndael_dec",
        paper_name="rijndael D",
        paper_cycles=33_327_494,
        description="AES-128 decryption (oracle: independent forward cipher)",
        source=source,
        expected_output=out.bytes(),
    )
