"""jpeg decompress workload (MiBench consumer/jpeg "djpeg" equivalent).

Inverse of the cjpeg pipeline at 1/2 scale, the way ``djpeg -scale 1/2``
decodes: the generator runs the forward path (integer DCT + quantise +
zigzag) on a synthetic 8x8 image to produce a realistic coefficient stream,
and the simulated program dequantises the top-left 4x4 coefficients and
applies a 4-point integer 2-D IDCT, producing a downscaled 4x4 tile.
Scaled decoding keeps djpeg much lighter than cjpeg, matching the paper's
Table III ratio.
"""

from __future__ import annotations

import math

from repro.workloads.base import Output, Workload, asr, fmt_ints, s32, sdiv, u32
from repro.workloads._imagelib import (
    DCT_SCALE_BITS, QUANT_TABLE, ZIGZAG, dct_2d, dct_table, make_image,
)

_TEMPLATE = """\
int qcoef[64] = {{{qcoef}}};
int dct4[16] = {{{dct4}}};
int qtab[64] = {{{quant}}};
int zigzag[64] = {{{zigzag}}};
int coef[64];
int tmp[16];
int pix[16];

int main() {{
    for (int i = 0; i < 64; i = i + 1) {{
        coef[zigzag[i]] = qcoef[i] * qtab[zigzag[i]];
    }}
    for (int u = 0; u < 4; u = u + 1) {{
        for (int y = 0; y < 4; y = y + 1) {{
            int acc = 0;
            for (int v = 0; v < 4; v = v + 1) {{
                acc = acc + dct4[v * 4 + y] * coef[v * 8 + u];
            }}
            tmp[y * 4 + u] = acc >> {scale};
        }}
    }}
    for (int y = 0; y < 4; y = y + 1) {{
        for (int x = 0; x < 4; x = x + 1) {{
            int acc = 0;
            for (int u = 0; u < 4; u = u + 1) {{
                acc = acc + dct4[u * 4 + x] * tmp[y * 4 + u];
            }}
            int value = (acc >> {scale}) + 128;
            if (value < 0) {{
                value = 0;
            }}
            if (value > 255) {{
                value = 255;
            }}
            pix[y * 4 + x] = value;
        }}
    }}
    int checksum = 0;
    for (int i = 0; i < 16; i = i + 1) {{
        checksum = checksum * 41 + pix[i];
        if (i % 4 == 3) {{
            putd(pix[i]);
        }}
    }}
    putw(checksum);
    exit(0);
    return 0;
}}
"""


def _dct4_table() -> list[int]:
    """4-point scaled-IDCT kernel, same construction as the 8-point one."""
    table = []
    for u in range(4):
        cu = 1 / math.sqrt(2) if u == 0 else 1.0
        for x in range(4):
            value = (cu / 2) * math.cos((2 * x + 1) * u * math.pi / 8)
            table.append(round(value * (1 << DCT_SCALE_BITS)))
    return table


def build() -> Workload:
    image = make_image("djpeg", 8, 8)
    table8 = dct_table()
    table4 = _dct4_table()
    block = [image[i] - 128 for i in range(64)]
    coeffs = dct_2d(block, table8)
    qcoef = [sdiv(coeffs[ZIGZAG[i]], QUANT_TABLE[ZIGZAG[i]]) for i in range(64)]

    # Reference decode, mirroring the MiniC program (4x4 scaled IDCT).
    dequant = [0] * 64
    for i in range(64):
        dequant[ZIGZAG[i]] = qcoef[i] * QUANT_TABLE[ZIGZAG[i]]
    tmp = [0] * 16
    for u in range(4):
        for y in range(4):
            acc = 0
            for v in range(4):
                acc += table4[v * 4 + y] * dequant[v * 8 + u]
            tmp[y * 4 + u] = s32(asr(acc, DCT_SCALE_BITS))
    out = Output()
    checksum = 0
    for y in range(4):
        for x in range(4):
            acc = 0
            for u in range(4):
                acc += table4[u * 4 + x] * tmp[y * 4 + u]
            value = max(0, min(255, s32(asr(acc, DCT_SCALE_BITS)) + 128))
            checksum = u32(checksum * 41 + value)
            if (y * 4 + x) % 4 == 3:
                out.putd(value)
    out.putw(checksum)

    source = _TEMPLATE.format(
        scale=DCT_SCALE_BITS,
        qcoef=fmt_ints(qcoef),
        dct4=fmt_ints(table4),
        quant=fmt_ints(QUANT_TABLE),
        zigzag=fmt_ints(ZIGZAG),
    )
    return Workload(
        name="djpeg",
        paper_name="jpeg D",
        paper_cycles=10_105_853,
        description="JPEG-style 1/2-scale decode: dequantise + 4x4 IDCT",
        source=source,
        expected_output=out.bytes(),
    )
