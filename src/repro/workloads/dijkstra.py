"""dijkstra workload (MiBench network/dijkstra equivalent).

Single-source shortest paths on a seeded dense weighted digraph using the
O(N^2) adjacency-matrix formulation, like the MiBench original.
"""

from __future__ import annotations

from repro.workloads.base import Output, Workload, fmt_ints, rng

_NODES = 20
_INF = 1 << 28


def _generate_graph() -> list[list[int]]:
    rand = rng("dijkstra")
    adj = [[0] * _NODES for _ in range(_NODES)]
    for i in range(_NODES):
        for j in range(_NODES):
            if i != j and rand.random() < 0.35:
                adj[i][j] = rand.randrange(1, 30)
    # Guarantee reachability via a ring.
    for i in range(_NODES):
        adj[i][(i + 1) % _NODES] = adj[i][(i + 1) % _NODES] or 7
    return adj


def _dijkstra_reference(adj: list[list[int]]) -> list[int]:
    dist = [_INF] * _NODES
    done = [False] * _NODES
    dist[0] = 0
    for _ in range(_NODES):
        best, best_d = -1, _INF + 1
        for v in range(_NODES):
            if not done[v] and dist[v] < best_d:
                best, best_d = v, dist[v]
        if best < 0:
            break
        done[best] = True
        for v in range(_NODES):
            w = adj[best][v]
            if w and dist[best] + w < dist[v]:
                dist[v] = dist[best] + w
    return dist


_TEMPLATE = """\
int adj[{cells}] = {{{matrix}}};
int dist[{nodes}];
int done[{nodes}];

int main() {{
    for (int v = 0; v < {nodes}; v = v + 1) {{
        dist[v] = {inf};
        done[v] = 0;
    }}
    dist[0] = 0;
    for (int iter = 0; iter < {nodes}; iter = iter + 1) {{
        int best = -1;
        int bestd = {inf} + 1;
        for (int v = 0; v < {nodes}; v = v + 1) {{
            if (done[v] == 0 && dist[v] < bestd) {{
                best = v;
                bestd = dist[v];
            }}
        }}
        if (best < 0) {{
            break;
        }}
        done[best] = 1;
        for (int v = 0; v < {nodes}; v = v + 1) {{
            int w = adj[best * {nodes} + v];
            if (w != 0 && dist[best] + w < dist[v]) {{
                dist[v] = dist[best] + w;
            }}
        }}
    }}
    int checksum = 0;
    for (int v = 0; v < {nodes}; v = v + 1) {{
        putd(dist[v]);
        checksum = checksum * 131 + dist[v];
    }}
    putw(checksum);
    exit(0);
    return 0;
}}
"""


def build() -> Workload:
    adj = _generate_graph()
    dist = _dijkstra_reference(adj)
    out = Output()
    checksum = 0
    for value in dist:
        out.putd(value)
        checksum = (checksum * 131 + value) & 0xFFFFFFFF
    out.putw(checksum)
    flat = [w for row in adj for w in row]
    source = _TEMPLATE.format(
        cells=_NODES * _NODES,
        nodes=_NODES,
        inf=_INF,
        matrix=fmt_ints(flat),
    )
    return Workload(
        name="dijkstra",
        paper_name="dijkstra",
        paper_cycles=41_643_556,
        description=f"O(N^2) Dijkstra on a dense {_NODES}-node digraph",
        source=source,
        expected_output=out.bytes(),
    )
