"""Shared workload machinery: the Workload record and reference-impl helpers.

Reference implementations must mirror MiniC/ISA semantics exactly:
32-bit wrap-around arithmetic, C-style truncating division, arithmetic
right shift on signed values.  The helpers here encode those rules once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa.program import Program
from repro.minic import compile_source

MASK32 = 0xFFFFFFFF


def u32(value: int) -> int:
    """Wrap to unsigned 32-bit."""
    return value & MASK32


def s32(value: int) -> int:
    """Wrap to signed 32-bit."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def sdiv(a: int, b: int) -> int:
    """C-style signed division (truncation toward zero)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def smod(a: int, b: int) -> int:
    """C-style signed remainder (sign of the dividend)."""
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def asr(value: int, amount: int) -> int:
    """Arithmetic right shift of a 32-bit value."""
    return u32(s32(value) >> (amount & 31))


class Output:
    """Builds the byte stream the kernel's syscalls would produce."""

    def __init__(self) -> None:
        self.data = bytearray()

    def putw(self, value: int) -> None:
        self.data += f"{u32(value):08x}\n".encode("ascii")

    def putd(self, value: int) -> None:
        self.data += f"{s32(value)}\n".encode("ascii")

    def putc(self, value: int) -> None:
        self.data.append(value & 0xFF)

    def bytes(self) -> bytes:
        return bytes(self.data)


def rng(seed: str) -> random.Random:
    """Deterministic per-workload random stream."""
    return random.Random(f"repro-workload:{seed}")


def fmt_ints(values: list[int]) -> str:
    """Render an initialiser list for embedding into MiniC source."""
    return ", ".join(str(v) for v in values)


@dataclass
class Workload:
    """One benchmark: MiniC source plus its independently computed output."""

    name: str
    paper_name: str
    paper_cycles: int               # Table III execution time (clock cycles)
    description: str
    source: str                     # MiniC program text
    expected_output: bytes          # from the pure-Python reference
    _program: Program | None = field(default=None, repr=False)

    def program(self) -> Program:
        """Compile (once) and return the loadable program image."""
        if self._program is None:
            self._program = compile_source(self.source)
        return self._program

    def program_for(self, cores: int) -> Program:
        """Program image for an N-core machine.

        Serial workloads return the same image at every core count (the
        extra cores simply idle).  Parallel workloads also return one
        image: their MiniC source queries ``ncores()``/``spawn()`` at run
        time and falls back to inline execution when no core is free, so
        a single binary is portable across every machine width.
        """
        return self.program()


@dataclass
class ParallelWorkload(Workload):
    """A workload decomposed into a fixed set of spawnable tasks.

    The task count is fixed at build time (never derived from the core
    count) and every task's result is placement-independent, so
    ``expected_output`` is identical at *every* core count — including
    one, where every ``spawn`` fails and core 0 runs all tasks inline.
    That invariance is what lets a campaign sweep ``--cores`` while
    classifying against one golden byte stream.
    """

    #: Number of independent tasks the program decomposes into.
    tasks: int = 0
