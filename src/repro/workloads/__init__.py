"""The 15 MiBench-equivalent workloads of the paper (Table III).

Each workload is a MiniC program implementing the same algorithm as its
MiBench counterpart, with deterministic seeded inputs scaled so the golden
simulation is 10³–10⁵ cycles (see DESIGN.md §2).  Every workload also ships
a pure-Python *reference implementation* that computes the expected program
output independently of the simulator — compiler, ISA, core and memory
system are all validated against it end-to-end.

Usage::

    from repro.workloads import get_workload, workload_names
    wl = get_workload("crc32")
    program = wl.program()          # assembled, loadable image
    wl.expected_output              # golden output bytes (from the reference)
"""

from repro.workloads.base import Workload
from repro.workloads.registry import (
    WORKLOAD_BUILDERS,
    get_workload,
    load_all_workloads,
    workload_names,
)

__all__ = [
    "WORKLOAD_BUILDERS",
    "Workload",
    "get_workload",
    "load_all_workloads",
    "workload_names",
]
