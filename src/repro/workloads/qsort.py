"""qsort workload (MiBench auto/qsort equivalent).

Recursive quicksort (Lomuto partition) over a seeded integer array.  The
paper observes unusually high Timeout rates for qsort under injection —
corrupted indices readily turn the partition walk into a non-terminating
loop — and the same structure is preserved here.
"""

from __future__ import annotations

from repro.workloads.base import Output, Workload, fmt_ints, rng

_SIZE = 100

_TEMPLATE = """\
int a[{size}] = {{{data}}};

void quicksort(int *arr, int lo, int hi) {{
    if (lo >= hi) {{
        return;
    }}
    int pivot = arr[hi];
    int i = lo - 1;
    for (int j = lo; j < hi; j = j + 1) {{
        if (arr[j] <= pivot) {{
            i = i + 1;
            int tmp = arr[i];
            arr[i] = arr[j];
            arr[j] = tmp;
        }}
    }}
    int tmp2 = arr[i + 1];
    arr[i + 1] = arr[hi];
    arr[hi] = tmp2;
    quicksort(arr, lo, i);
    quicksort(arr, i + 2, hi);
}}

int main() {{
    quicksort(a, 0, {size} - 1);
    int checksum = 0;
    int sorted = 1;
    for (int i = 0; i < {size}; i = i + 1) {{
        checksum = checksum * 31 + a[i];
        if (i > 0 && a[i - 1] > a[i]) {{
            sorted = 0;
        }}
    }}
    putd(sorted);
    putw(checksum);
    for (int i = 0; i < {size}; i = i + {stride}) {{
        putd(a[i]);
    }}
    exit(0);
    return 0;
}}
"""

_STRIDE = 10


def build() -> Workload:
    rand = rng("qsort")
    data = [rand.randrange(-5000, 5000) for _ in range(_SIZE)]
    ordered = sorted(data)
    checksum = 0
    for value in ordered:
        checksum = (checksum * 31 + value) & 0xFFFFFFFF
    out = Output()
    out.putd(1)
    out.putw(checksum)
    for i in range(0, _SIZE, _STRIDE):
        out.putd(ordered[i])
    source = _TEMPLATE.format(
        size=_SIZE, stride=_STRIDE, data=fmt_ints(data)
    )
    return Workload(
        name="qsort",
        paper_name="qsort",
        paper_cycles=31_326_716,
        description="recursive quicksort of 220 integers",
        source=source,
        expected_output=out.bytes(),
    )
