"""basicmath workload (MiBench auto/basicmath equivalent).

Integer ports of basicmath's kernels: integer square root (bit-by-bit,
like MiBench's ``usqrt``), cube-root extraction by binary search (standing
in for the cubic-equation solver) and fixed-point degree→radian conversion.
"""

from __future__ import annotations

from repro.workloads.base import Output, Workload, sdiv, u32

_COUNT = 60

_TEMPLATE = """\
int isqrt(int x) {{
    int root = 0;
    int bit = 1 << 30;
    while (bit > x) {{
        bit = bit >> 2;
    }}
    while (bit != 0) {{
        if (x >= root + bit) {{
            x = x - (root + bit);
            root = (root >> 1) + bit;
        }} else {{
            root = root >> 1;
        }}
        bit = bit >> 2;
    }}
    return root;
}}

int icbrt(int x) {{
    int lo = 0;
    int hi = 1291;
    while (lo < hi) {{
        int mid = (lo + hi + 1) / 2;
        if (mid * mid * mid <= x) {{
            lo = mid;
        }} else {{
            hi = mid - 1;
        }}
    }}
    return lo;
}}

int deg2rad(int deg) {{
    return (deg * 31416) / 1800;
}}

int main() {{
    int sq = 0;
    int cb = 0;
    int rad = 0;
    for (int i = 1; i <= {count}; i = i + 1) {{
        sq = sq + isqrt(i * i * 37 + i * 11 + 5);
        cb = cb + icbrt(i * i * i + i * 101 + 7);
        rad = rad + deg2rad(i * 13 % 360);
    }}
    putd(sq);
    putd(cb);
    putd(rad);
    putw(sq * 31 + cb * 17 + rad);
    exit(0);
    return 0;
}}
"""


def _isqrt(x: int) -> int:
    root = 0
    bit = 1 << 30
    while bit > x:
        bit >>= 2
    while bit:
        if x >= root + bit:
            x -= root + bit
            root = (root >> 1) + bit
        else:
            root >>= 1
        bit >>= 2
    return root


def _icbrt(x: int) -> int:
    lo, hi = 0, 1291
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if mid * mid * mid <= x:
            lo = mid
        else:
            hi = mid - 1
    return lo


def build() -> Workload:
    sq = cb = rad = 0
    for i in range(1, _COUNT + 1):
        sq += _isqrt(i * i * 37 + i * 11 + 5)
        cb += _icbrt(i * i * i + i * 101 + 7)
        rad += sdiv((i * 13 % 360) * 31416, 1800)
    out = Output()
    out.putd(sq)
    out.putd(cb)
    out.putd(rad)
    out.putw(u32(sq * 31 + cb * 17 + rad))
    source = _TEMPLATE.format(count=_COUNT)
    return Workload(
        name="basicmath",
        paper_name="basicmath",
        paper_cycles=67_556_250,
        description="integer sqrt / cbrt / angle-conversion kernels",
        source=source,
        expected_output=out.bytes(),
    )
