"""ADPCM decode workload (MiBench telecomm/adpcm equivalent).

IMA ADPCM decoder: 4-bit codes expand to 16-bit PCM through the standard
step-size/index tables.  The code stream is produced by running the matching
IMA *encoder* in the generator over a synthetic waveform, so the decoder
exercises realistic step-size trajectories.
"""

from __future__ import annotations

import math

from repro.workloads.base import Output, Workload, fmt_ints, rng, s32

_SAMPLES = 240  # decoded samples (2 codes per byte)

_STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]
_INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]

_TEMPLATE = """\
byte codes[{nbytes}] = {{{codes}}};
int steptab[89] = {{{steps}}};
int indextab[16] = {{{indices}}};

int main() {{
    int valpred = 0;
    int index = 0;
    int checksum = 0;
    for (int n = 0; n < {samples}; n = n + 1) {{
        int packed = codes[n / 2];
        int code = 0;
        if (n % 2 == 0) {{
            code = packed & 15;
        }} else {{
            code = (packed >> 4) & 15;
        }}
        int step = steptab[index];
        int diff = step >> 3;
        if (code & 4) {{
            diff = diff + step;
        }}
        if (code & 2) {{
            diff = diff + (step >> 1);
        }}
        if (code & 1) {{
            diff = diff + (step >> 2);
        }}
        if (code & 8) {{
            valpred = valpred - diff;
        }} else {{
            valpred = valpred + diff;
        }}
        if (valpred > 32767) {{
            valpred = 32767;
        }}
        if (valpred < -32768) {{
            valpred = -32768;
        }}
        index = index + indextab[code];
        if (index < 0) {{
            index = 0;
        }}
        if (index > 88) {{
            index = 88;
        }}
        checksum = checksum * 13 + valpred;
        if (n % 64 == 63) {{
            putd(valpred);
        }}
    }}
    putw(checksum);
    exit(0);
    return 0;
}}
"""


def _ima_encode(samples: list[int]) -> list[int]:
    """Standard IMA encoder producing one 4-bit code per sample."""
    valpred, index = 0, 0
    codes = []
    for sample in samples:
        step = _STEP_TABLE[index]
        diff = sample - valpred
        code = 0
        if diff < 0:
            code = 8
            diff = -diff
        if diff >= step:
            code |= 4
            diff -= step
        if diff >= step >> 1:
            code |= 2
            diff -= step >> 1
        if diff >= step >> 2:
            code |= 1
        codes.append(code)
        valpred, index = _ima_decode_step(valpred, index, code)
    return codes


def _ima_decode_step(valpred: int, index: int, code: int) -> tuple[int, int]:
    step = _STEP_TABLE[index]
    diff = step >> 3
    if code & 4:
        diff += step
    if code & 2:
        diff += step >> 1
    if code & 1:
        diff += step >> 2
    valpred = valpred - diff if code & 8 else valpred + diff
    valpred = max(-32768, min(32767, valpred))
    index = max(0, min(88, index + _INDEX_TABLE[code]))
    return valpred, index


def build() -> Workload:
    rand = rng("adpcm")
    samples = [
        int(6000 * math.sin(i / 9.0)) + rand.randrange(-300, 300)
        for i in range(_SAMPLES)
    ]
    codes = _ima_encode(samples)
    packed = []
    for i in range(0, len(codes), 2):
        low = codes[i]
        high = codes[i + 1] if i + 1 < len(codes) else 0
        packed.append(low | (high << 4))

    out = Output()
    valpred, index, checksum = 0, 0, 0
    for n, code in enumerate(codes):
        valpred, index = _ima_decode_step(valpred, index, code)
        checksum = (checksum * 13 + valpred) & 0xFFFFFFFF
        if n % 64 == 63:
            out.putd(s32(valpred))
    out.putw(checksum)

    source = _TEMPLATE.format(
        nbytes=len(packed),
        samples=_SAMPLES,
        codes=fmt_ints(packed),
        steps=fmt_ints(_STEP_TABLE),
        indices=fmt_ints(_INDEX_TABLE),
    )
    return Workload(
        name="adpcm_dec",
        paper_name="ADPCM decode",
        paper_cycles=53_690_367,
        description=f"IMA ADPCM decode of {_SAMPLES} samples",
        source=source,
        expected_output=out.bytes(),
    )
