"""Memory-system substrate: physical memory, caches, paging and TLBs.

Every storage structure that the paper injects faults into exposes the
:class:`~repro.mem.sram.InjectableArray` protocol — a named bit array with a
(rows × cols) geometry and a ``flip_bit`` operation — so the fault injector
in :mod:`repro.core` can treat an L1 cache, a TLB and the physical register
file uniformly.
"""

from repro.mem.cache import Cache
from repro.mem.paging import PageTable
from repro.mem.physmem import PhysicalMemory
from repro.mem.sram import InjectableArray
from repro.mem.tlb import TLB, TLBEntryFields

__all__ = [
    "TLB",
    "Cache",
    "InjectableArray",
    "PageTable",
    "PhysicalMemory",
    "TLBEntryFields",
]
