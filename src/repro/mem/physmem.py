"""Flat physical memory (DRAM) with a hard platform memory map.

Accesses outside the platform's physical range raise
:class:`~repro.errors.SimAssertion`: this is the paper's *Assert* class —
"a physical address request that is not part of the system map" — which its
DTLB campaigns report as the dominant simulator-failure mechanism.

DRAM itself is not a fault-injection target in the paper (the six injected
components cover the on-chip arrays), so plain ``bytearray`` storage is used
without an injection geometry.
"""

from __future__ import annotations

from repro.errors import SimAssertion

#: Default platform physical memory: 256 KiB (4096 frames of 64 B).  The
#: 13-bit TLB frame numbers can name 2x more frames than the platform maps,
#: so corrupted translations regularly point outside the memory map,
#: reproducing the paper's TLB Assert behaviour.
DEFAULT_PHYS_SIZE = 256 * 1024


class PhysicalMemory:
    """Byte-addressable physical memory with range-checked access."""

    def __init__(self, size: int = DEFAULT_PHYS_SIZE, latency: int = 50) -> None:
        if size <= 0 or size % 4096:
            raise ValueError(f"physical memory size must be page-aligned: {size}")
        self.size = size
        self.data = bytearray(size)
        self.latency = latency

    def check_range(self, paddr: int, length: int = 1) -> None:
        """Raise :class:`SimAssertion` unless [paddr, paddr+length) is mapped."""
        if paddr < 0 or paddr + length > self.size:
            raise SimAssertion(
                f"physical access 0x{paddr:08x}+{length} outside the "
                f"{self.size // (1024 * 1024)} MiB platform memory map"
            )

    def read(self, paddr: int, length: int) -> bytes:
        self.check_range(paddr, length)
        return bytes(self.data[paddr:paddr + length])

    def write(self, paddr: int, payload: bytes) -> None:
        self.check_range(paddr, len(payload))
        self.data[paddr:paddr + len(payload)] = payload

    # Line-granular interface used by the lowest cache level.

    def fetch_line(self, line_addr: int, line_size: int) -> tuple[bytearray, int]:
        """Return (line bytes, access latency in cycles)."""
        self.check_range(line_addr, line_size)
        return bytearray(self.data[line_addr:line_addr + line_size]), self.latency

    def writeback_line(self, line_addr: int, payload: bytes) -> int:
        """Write a full line back to DRAM; returns the latency in cycles."""
        self.check_range(line_addr, len(payload))
        self.data[line_addr:line_addr + len(payload)] = payload
        return self.latency
