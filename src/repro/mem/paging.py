"""Page tables and the hardware page-table walker's view of them.

Page tables live in (non-injected) DRAM conceptually; the paper injects only
the six on-chip arrays, so we keep the tables as a Python mapping for speed
and document the substitution in DESIGN.md.  A TLB miss costs a fixed walk
latency and refills the TLB with the *correct* translation — which is why a
corrupted TLB entry heals itself once evicted, one of the masking paths the
paper's TLB campaigns exercise.
"""

from __future__ import annotations

#: 64-byte pages — the platform is a scale model of the paper's machine
#: (see DESIGN.md §5): workload footprints are scaled down together with
#: cache/TLB/page capacities so that structure *occupancy ratios*, which AVF
#: depends on, match the full-size system.  Small pages make the scaled
#: workloads touch enough pages to keep the TLBs as hot as the paper's.
PAGE_SHIFT = 6
PAGE_SIZE = 1 << PAGE_SHIFT

#: Width of virtual/physical page numbers in a TLB entry (see
#: :mod:`repro.mem.tlb`); translations must fit these fields.
VPN_BITS = 13
PPN_BITS = 13


class PageTable:
    """Virtual-to-physical mapping for one address space.

    Each entry maps a virtual page number to ``(ppn, writable, executable,
    kernel)``.
    """

    def __init__(self, walk_latency: int = 20) -> None:
        self._entries: dict[int, tuple[int, bool, bool, bool]] = {}
        self.walk_latency = walk_latency

    def map_page(
        self,
        vpn: int,
        ppn: int,
        writable: bool = False,
        executable: bool = False,
        kernel: bool = False,
    ) -> None:
        if not 0 <= vpn < (1 << VPN_BITS):
            raise ValueError(f"vpn out of range: {vpn}")
        if not 0 <= ppn < (1 << PPN_BITS):
            raise ValueError(f"ppn out of range: {ppn}")
        self._entries[vpn] = (ppn, writable, executable, kernel)

    def lookup(self, vpn: int) -> tuple[int, bool, bool, bool] | None:
        """Walk the table; None means an unmapped page (page fault)."""
        return self._entries.get(vpn)

    def mapped_vpns(self) -> list[int]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
