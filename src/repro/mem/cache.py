"""Set-associative write-back, write-allocate caches with injectable data arrays.

The data array is the fault-injection target (matching Table VIII of the
paper, which counts data bits only: 32 KB × 8 = 262,144 for each L1).  Its
injection geometry is ``rows = sets × ways`` physical lines (row index =
``set * ways + way``) by ``cols = line_size × 8`` bit columns, so a 3×3
fault cluster can straddle *adjacent cache lines* — the physical-adjacency
mechanism that makes multi-bit AVF grow sublinearly with cardinality.

Functional behaviour:

* lookup by (set, tag), true LRU replacement per set;
* write-back: stores mark lines dirty, dirty victims propagate one level
  down on eviction (so a corrupted dirty line infects L2/DRAM while a
  corrupted clean line is silently discarded — a real masking mechanism);
* miss fill from the next level (another :class:`Cache` or
  :class:`~repro.mem.physmem.PhysicalMemory`).

Latency is returned to the caller (the core model) rather than simulated
with events, which keeps the access path a plain function call.
"""

from __future__ import annotations

from typing import Union

from repro.mem.physmem import PhysicalMemory

NextLevel = Union["Cache", PhysicalMemory]


class CacheStats:
    """Hit/miss/writeback counters for one cache."""

    __slots__ = ("hits", "misses", "writebacks")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
        }

    def publish(self, metrics, prefix: str) -> None:
        """Accumulate these counters into an ``obs`` metrics registry.

        The no-op default lives at the call site (``System.publish_metrics``
        is only invoked when telemetry is enabled), so the simulator's
        access paths stay free of instrumentation: counters are harvested
        once per finished run, never per access.
        """
        # Zero counts are skipped, not recorded as 0: worker deltas only
        # carry changed counters, so recording zeros here would make the
        # serial registry's key set differ from the merged parallel one.
        if self.hits:
            metrics.counter(prefix + ".hits").inc(self.hits)
        if self.misses:
            metrics.counter(prefix + ".misses").inc(self.misses)
        if self.writebacks:
            metrics.counter(prefix + ".writebacks").inc(self.writebacks)


class Cache:
    """One level of a set-associative write-back cache."""

    def __init__(
        self,
        name: str,
        size: int,
        assoc: int,
        line_size: int,
        hit_latency: int,
        next_level: NextLevel,
    ) -> None:
        if size % (assoc * line_size):
            raise ValueError(
                f"{name}: size {size} not divisible by assoc*line_size"
            )
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.hit_latency = hit_latency
        self.next_level = next_level
        self.num_sets = size // (assoc * line_size)
        self.num_lines = self.num_sets * assoc
        if line_size & (line_size - 1):
            raise ValueError(f"{name}: line size must be a power of two")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: number of sets must be a power of two")
        self._offset_mask = line_size - 1
        self._set_mask = self.num_sets - 1
        self._set_shift = line_size.bit_length() - 1
        self._tag_shift = self.num_sets.bit_length() - 1

        lines = self.num_lines
        # Flat way-major-within-set arrays indexed by set*assoc + way.
        self._tags = [0] * lines
        self._valid = [False] * lines
        self._dirty = [False] * lines
        self._data = [bytearray(line_size) for _ in range(lines)]
        # LRU: per-set list of way indices, most recent last.
        self._lru = [list(range(assoc)) for _ in range(self.num_sets)]
        self.stats = CacheStats()
        # Coherence bus hook (set by CoherenceBus.attach for per-core L1Ds
        # sharing one L2).  ``None`` keeps single-cache behaviour untouched.
        self.coherence = None

    # -- InjectableArray protocol -------------------------------------------

    @property
    def inject_name(self) -> str:
        return self.name

    @property
    def inject_rows(self) -> int:
        return self.num_lines

    @property
    def inject_cols(self) -> int:
        return self.line_size * 8

    def flip_bit(self, row: int, col: int) -> None:
        self._data[row][col >> 3] ^= 1 << (col & 7)

    def read_bit(self, row: int, col: int) -> int:
        return (self._data[row][col >> 3] >> (col & 7)) & 1

    # -- internals -----------------------------------------------------------

    def _lookup(self, set_idx: int, tag: int) -> int:
        """Return the line index of a hit, or -1."""
        base = set_idx * self.assoc
        for way in range(self.assoc):
            idx = base + way
            if self._valid[idx] and self._tags[idx] == tag:
                return idx
        return -1

    def _touch(self, set_idx: int, way: int) -> None:
        lru = self._lru[set_idx]
        lru.remove(way)
        lru.append(way)

    def _fill(self, set_idx: int, tag: int, line_addr: int) -> tuple[int, int]:
        """Fetch a line from below into this cache; return (index, latency)."""
        self.stats.misses += 1
        latency = 0
        lru = self._lru[set_idx]
        way = lru[0]
        idx = set_idx * self.assoc + way
        if self._valid[idx] and self._dirty[idx]:
            victim_addr = self._line_addr(set_idx, self._tags[idx])
            latency += self._writeback_below(victim_addr, self._data[idx])
            self.stats.writebacks += 1
            if self.coherence is not None:
                self.coherence.on_evict(self, victim_addr)
        if self.coherence is not None:
            # A remote dirty copy must reach the shared level before the
            # fetch below observes it.
            self.coherence.on_fill(self, line_addr)
        data, fill_latency = self._fetch_below(line_addr)
        latency += fill_latency
        self._tags[idx] = tag
        self._valid[idx] = True
        self._dirty[idx] = False
        self._data[idx][:] = data
        self._touch(set_idx, way)
        return idx, latency

    def _line_addr(self, set_idx: int, tag: int) -> int:
        return ((tag * self.num_sets) + set_idx) * self.line_size

    def _fetch_below(self, line_addr: int) -> tuple[bytearray, int]:
        nxt = self.next_level
        if isinstance(nxt, Cache):
            return nxt.read_line(line_addr)
        return nxt.fetch_line(line_addr, self.line_size)

    def _writeback_below(self, line_addr: int, payload: bytearray) -> int:
        nxt = self.next_level
        if isinstance(nxt, Cache):
            return nxt.write_line(line_addr, payload)
        return nxt.writeback_line(line_addr, bytes(payload))

    def _access(self, paddr: int, length: int) -> tuple[int, int, int]:
        """Resolve (line index, offset-in-line, latency), filling on miss."""
        offset = paddr & self._offset_mask
        if offset + length > self.line_size:
            # The ISA only generates 1- and 4-byte aligned accesses, so an
            # access can never straddle a 32-byte line.
            raise ValueError(
                f"{self.name}: access at 0x{paddr:x} straddles a line"
            )
        line_addr = paddr - offset
        set_idx = (line_addr >> self._set_shift) & self._set_mask
        tag = line_addr >> self._set_shift >> self._tag_shift
        idx = self._lookup(set_idx, tag)
        if idx >= 0:
            self.stats.hits += 1
            self._touch(set_idx, idx - set_idx * self.assoc)
            return idx, offset, self.hit_latency
        idx, miss_latency = self._fill(set_idx, tag, line_addr)
        return idx, offset, self.hit_latency + miss_latency

    # -- public word/byte interface ------------------------------------------

    def read(self, paddr: int, length: int) -> tuple[bytes, int]:
        """Read *length* bytes; returns (data, latency)."""
        idx, offset, latency = self._access(paddr, length)
        return bytes(self._data[idx][offset:offset + length]), latency

    def read_word(self, paddr: int) -> tuple[int, int]:
        """Read an aligned 32-bit little-endian word; returns (value, latency).

        Semantically identical to ``read(paddr, 4)`` but inlined: this is
        the instruction-fetch and word-load fast path, called once per
        fetched instruction.
        """
        offset = paddr & self._offset_mask
        line_addr = paddr - offset
        set_idx = (line_addr >> self._set_shift) & self._set_mask
        tag = line_addr >> self._set_shift >> self._tag_shift
        base = set_idx * self.assoc
        valid = self._valid
        tags = self._tags
        for way in range(self.assoc):
            idx = base + way
            if valid[idx] and tags[idx] == tag:
                self.stats.hits += 1
                lru = self._lru[set_idx]
                lru.remove(way)
                lru.append(way)
                line = self._data[idx]
                return (
                    line[offset]
                    | line[offset + 1] << 8
                    | line[offset + 2] << 16
                    | line[offset + 3] << 24
                ), self.hit_latency
        idx, miss_latency = self._fill(set_idx, tag, line_addr)
        line = self._data[idx]
        return (
            line[offset]
            | line[offset + 1] << 8
            | line[offset + 2] << 16
            | line[offset + 3] << 24
        ), self.hit_latency + miss_latency

    def write(self, paddr: int, payload: bytes) -> int:
        """Write bytes (write-allocate); returns latency."""
        idx, offset, latency = self._access(paddr, len(payload))
        self._data[idx][offset:offset + len(payload)] = payload
        self._dirty[idx] = True
        if self.coherence is not None:
            self.coherence.on_write(self, paddr - (paddr & self._offset_mask))
        return latency

    # -- line interface used by an upper cache level ---------------------------

    def read_line(self, line_addr: int) -> tuple[bytearray, int]:
        idx, _, latency = self._access(line_addr, self.line_size)
        return bytearray(self._data[idx]), latency

    def write_line(self, line_addr: int, payload: bytearray) -> int:
        idx, _, latency = self._access(line_addr, self.line_size)
        self._data[idx][:] = payload
        self._dirty[idx] = True
        return latency

    # -- direct inspection helpers (tests, fetch fast path) ---------------------

    def probe(self, paddr: int) -> tuple[int, int] | None:
        """Return (line index, offset) if *paddr* currently hits, else None."""
        offset = paddr & self._offset_mask
        line_addr = paddr - offset
        set_idx = (line_addr >> self._set_shift) & self._set_mask
        tag = line_addr >> self._set_shift >> self._tag_shift
        idx = self._lookup(set_idx, tag)
        if idx < 0:
            return None
        return idx, offset

    def line_data(self, idx: int) -> bytearray:
        """Live (mutable) data of a physical line; used by the fetch path."""
        return self._data[idx]

    def line_tag_valid(self, idx: int) -> tuple[int, bool]:
        return self._tags[idx], self._valid[idx]

    # -- audit accessors (verification subsystem) -------------------------------
    #
    # Everything below is strictly non-mutating: no LRU touches, no fills, no
    # stat updates.  The invariant checker must be able to observe the
    # hierarchy without perturbing the replacement state it is auditing.

    def audit_lines(self):
        """Yield ``(line index, physical line address, dirty)`` per valid line."""
        for set_idx in range(self.num_sets):
            for way in range(self.assoc):
                idx = set_idx * self.assoc + way
                if self._valid[idx]:
                    yield (
                        idx,
                        self._line_addr(set_idx, self._tags[idx]),
                        self._dirty[idx],
                    )

    def peek_line(self, idx: int) -> bytes:
        """Copy of a physical line's data, valid or not."""
        return bytes(self._data[idx])

    def peek_range(self, paddr: int, length: int) -> bytes:
        """Read through the hierarchy without mutating any level.

        Returns the bytes an access at this level *would* observe: the
        local line on a hit, otherwise whatever the next level would
        observe (recursively down to :class:`PhysicalMemory`).
        """
        hit = self.probe(paddr)
        if hit is not None:
            idx, offset = hit
            return bytes(self._data[idx][offset:offset + length])
        nxt = self.next_level
        if isinstance(nxt, Cache):
            return nxt.peek_range(paddr, length)
        return nxt.read(paddr, length)

    def lru_order(self, set_idx: int) -> list[int]:
        """Copy of a set's LRU stack (way indices, most recent last)."""
        return list(self._lru[set_idx])

    # -- snoop interface (coherence bus) ----------------------------------------

    def snoop_invalidate(self, line_addr: int) -> bool:
        """Drop a line on a remote write; returns True when it was present.

        A dirty copy should never be snoop-invalidated under the protocol
        (the writer's fill flushed it first); if one is found anyway it is
        written back rather than silently discarded, so a protocol bug
        shows up as a data divergence the differential harness can see.
        """
        hit = self.probe(line_addr)
        if hit is None:
            return False
        idx, _ = hit
        if self._dirty[idx]:
            self._writeback_below(line_addr, self._data[idx])
            self.stats.writebacks += 1
        self._valid[idx] = False
        self._dirty[idx] = False
        return True

    def snoop_flush(self, line_addr: int, invalidate: bool = False) -> bool:
        """Push a dirty copy down one level (intervention).

        Leaves the local copy clean (or drops it when *invalidate*); returns
        True when the line was present.
        """
        hit = self.probe(line_addr)
        if hit is None:
            return False
        idx, _ = hit
        if self._dirty[idx]:
            self._writeback_below(line_addr, self._data[idx])
            self.stats.writebacks += 1
            self._dirty[idx] = False
        if invalidate:
            self._valid[idx] = False
        return True

    def flush_all(self) -> None:
        """Write back every dirty line and invalidate the cache."""
        for set_idx in range(self.num_sets):
            for way in range(self.assoc):
                idx = set_idx * self.assoc + way
                if self._valid[idx] and self._dirty[idx]:
                    addr = self._line_addr(set_idx, self._tags[idx])
                    self._writeback_below(addr, self._data[idx])
                    if self.coherence is not None:
                        self.coherence.on_evict(self, addr)
                self._valid[idx] = False
                self._dirty[idx] = False
