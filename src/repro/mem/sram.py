"""Injectable-bit-array protocol shared by all fault-injection targets.

The paper's fault generator thinks of every hardware structure as a 2-D SRAM
array of bits: a cluster of flips is placed at a random (row, column) inside
the array.  Each microarchitectural structure in this repo (cache data
arrays, TLB entry arrays, the physical register file) implements this
protocol over its own native storage, so injection never needs to know how a
structure stores its bits.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable


@runtime_checkable
class InjectableArray(Protocol):
    """A named 2-D bit array supporting targeted bit flips."""

    @property
    def inject_name(self) -> str:
        """Stable component identifier (e.g. ``"l1d"``)."""

    @property
    def inject_rows(self) -> int:
        """Number of physical rows in the array."""

    @property
    def inject_cols(self) -> int:
        """Number of bit columns per row."""

    def flip_bit(self, row: int, col: int) -> None:
        """Invert the bit at (row, col) in the live structure."""

    def read_bit(self, row: int, col: int) -> int:
        """Return the current value (0/1) of the bit at (row, col)."""


def total_bits(array: InjectableArray) -> int:
    """Number of storage bits in *array* (rows × cols)."""
    return array.inject_rows * array.inject_cols


def flip_bits(array: InjectableArray, bits: Iterable[tuple[int, int]]) -> None:
    """Flip every (row, col) position in *bits*, validating coordinates."""
    rows, cols = array.inject_rows, array.inject_cols
    for row, col in bits:
        if not (0 <= row < rows and 0 <= col < cols):
            raise ValueError(
                f"bit ({row}, {col}) outside {array.inject_name} geometry "
                f"{rows}x{cols}"
            )
        array.flip_bit(row, col)
