"""Fully-associative translation lookaside buffers with injectable entries.

Entry format (32 bits per entry; 32 entries × 32 bits = 1,024 bits, matching
Table VIII of the paper)::

    [31]    valid
    [30:18] vpn  (13 bits)
    [17:5]  ppn  (13 bits)
    [4]     writable
    [3]     executable
    [2]     kernel-only
    [1:0]   spare

The packed words are the injection target.  Consequences of a flip mirror
the paper's observed TLB failure modes:

* a flipped ``ppn`` bit silently redirects accesses to a different physical
  frame (wrong data / wrong code), and — because the platform maps only a
  fraction of the 13-bit frame space — often to a physical address outside
  the memory map, which raises :class:`~repro.errors.SimAssertion`
  (the paper's *Assert* class);
* a flipped ``vpn`` or ``valid`` bit makes the entry stop matching (a miss
  refills the correct translation → masked) or match the wrong page;
* flipped permission bits turn legal accesses into protection faults
  (→ Crash) ;
* flips in the spare bits are architecturally masked.
"""

from __future__ import annotations

from repro.mem.paging import PAGE_SHIFT, PAGE_SIZE, VPN_BITS, PageTable

VALID_BIT = 1 << 31
VPN_SHIFT = 18
PPN_SHIFT = 5
FIELD_MASK_13 = 0x1FFF
W_BIT = 1 << 4
X_BIT = 1 << 3
K_BIT = 1 << 2

#: Architectural access kinds used for permission checks.
ACCESS_LOAD = 0
ACCESS_STORE = 1
ACCESS_EXEC = 2

#: translate() fault codes (None = success).
FAULT_PAGE = "page_fault"
FAULT_PROT = "prot_fault"


class TLBEntryFields:
    """Decoded view of one packed TLB entry (testing/debug helper)."""

    __slots__ = ("valid", "vpn", "ppn", "writable", "executable", "kernel")

    def __init__(self, packed: int) -> None:
        self.valid = bool(packed & VALID_BIT)
        self.vpn = (packed >> VPN_SHIFT) & FIELD_MASK_13
        self.ppn = (packed >> PPN_SHIFT) & FIELD_MASK_13
        self.writable = bool(packed & W_BIT)
        self.executable = bool(packed & X_BIT)
        self.kernel = bool(packed & K_BIT)

    @staticmethod
    def pack(
        vpn: int,
        ppn: int,
        writable: bool,
        executable: bool,
        kernel: bool,
        valid: bool = True,
    ) -> int:
        word = (vpn & FIELD_MASK_13) << VPN_SHIFT
        word |= (ppn & FIELD_MASK_13) << PPN_SHIFT
        if writable:
            word |= W_BIT
        if executable:
            word |= X_BIT
        if kernel:
            word |= K_BIT
        if valid:
            word |= VALID_BIT
        return word


class TLB:
    """One translation lookaside buffer backed by a hardware walker."""

    def __init__(
        self,
        name: str,
        page_table: PageTable,
        entries: int = 32,
        hit_latency: int = 1,
    ) -> None:
        self.name = name
        self.page_table = page_table
        self.num_entries = entries
        self.hit_latency = hit_latency
        self.packed = [0] * entries
        self._last_use = [0] * entries
        self._clock = 0
        self._index: dict[int, int] = {}
        self._index_stale = True
        # Last-translation latch: (vpn, access, entry index, packed word,
        # paddr page base).  Valid only while the index is fresh and the
        # latched entry's packed word is unchanged, so bit flips and refills
        # always fall back to the full lookup — exact fast path.
        self._latch: tuple[int, int, int, int, int] | None = None
        self.hits = 0
        self.misses = 0

    # -- InjectableArray protocol -------------------------------------------

    @property
    def inject_name(self) -> str:
        return self.name

    @property
    def inject_rows(self) -> int:
        return self.num_entries

    @property
    def inject_cols(self) -> int:
        return 32

    def flip_bit(self, row: int, col: int) -> None:
        self.packed[row] ^= 1 << col
        self._index_stale = True
        self._latch = None

    def read_bit(self, row: int, col: int) -> int:
        return (self.packed[row] >> col) & 1

    # -- lookup ----------------------------------------------------------------

    def _rebuild_index(self) -> None:
        self._index = {}
        for idx, word in enumerate(self.packed):
            if word & VALID_BIT:
                # First (lowest-index) match wins, like a priority CAM.
                self._index.setdefault((word >> VPN_SHIFT) & FIELD_MASK_13, idx)
        self._index_stale = False

    def translate(self, vaddr: int, access: int) -> tuple[int, int, str | None]:
        """Translate *vaddr*; returns (paddr, latency, fault_code).

        ``fault_code`` is None on success, otherwise :data:`FAULT_PAGE` or
        :data:`FAULT_PROT`; on fault ``paddr`` is meaningless.
        """
        vpn = vaddr >> PAGE_SHIFT
        latch = self._latch
        if (
            latch is not None
            and latch[0] == vpn
            and latch[1] == access
            and not self._index_stale
            and self.packed[latch[2]] == latch[3]
        ):
            idx = latch[2]
            self._clock += 1
            self._last_use[idx] = self._clock
            self.hits += 1
            return (
                latch[4] | (vaddr & (PAGE_SIZE - 1)),
                self.hit_latency,
                None,
            )
        if vpn >= (1 << VPN_BITS):
            return 0, self.hit_latency, FAULT_PAGE
        if self._index_stale:
            self._rebuild_index()
        idx = self._index.get(vpn)
        if idx is not None:
            word = self.packed[idx]
            self._clock += 1
            self._last_use[idx] = self._clock
            self.hits += 1
            result = self._check(word, vaddr, access, self.hit_latency)
            if result[2] is None:
                self._latch = (
                    vpn, access, idx, word,
                    result[0] & ~(PAGE_SIZE - 1),
                )
            return result
        return self._refill(vpn, vaddr, access)

    def _refill(self, vpn: int, vaddr: int, access: int) -> tuple[int, int, str | None]:
        self.misses += 1
        latency = self.hit_latency + self.page_table.walk_latency
        entry = self.page_table.lookup(vpn)
        if entry is None:
            return 0, latency, FAULT_PAGE
        ppn, writable, executable, kernel = entry
        word = TLBEntryFields.pack(vpn, ppn, writable, executable, kernel)
        victim = min(range(self.num_entries), key=self._last_use.__getitem__)
        self.packed[victim] = word
        self._clock += 1
        self._last_use[victim] = self._clock
        self._index_stale = True
        return self._check(word, vaddr, access, latency)

    @staticmethod
    def _check(
        word: int, vaddr: int, access: int, latency: int
    ) -> tuple[int, int, str | None]:
        if word & K_BIT:
            return 0, latency, FAULT_PROT
        if access == ACCESS_STORE and not word & W_BIT:
            return 0, latency, FAULT_PROT
        if access == ACCESS_EXEC and not word & X_BIT:
            return 0, latency, FAULT_PROT
        ppn = (word >> PPN_SHIFT) & FIELD_MASK_13
        return (ppn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1)), latency, None

    # -- statistics --------------------------------------------------------------

    def stats_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    def publish_stats(self, metrics, prefix: str) -> None:
        """Accumulate hit/miss counters into an ``obs`` metrics registry
        (called once per finished run when telemetry is enabled — the
        translate fast path itself carries no instrumentation)."""
        # Zero counts are skipped for parity with worker metric deltas,
        # which only carry changed counters (see CacheStats.publish).
        if self.hits:
            metrics.counter(prefix + ".hits").inc(self.hits)
        if self.misses:
            metrics.counter(prefix + ".misses").inc(self.misses)

    # -- maintenance -------------------------------------------------------------

    def flush(self) -> None:
        self.packed = [0] * self.num_entries
        self._last_use = [0] * self.num_entries
        self._index_stale = True
        self._latch = None

    def valid_entries(self) -> list[TLBEntryFields]:
        return [
            TLBEntryFields(word) for word in self.packed if word & VALID_BIT
        ]

    def audit_entries(self):
        """Yield ``(entry index, decoded fields)`` per valid entry.

        Non-mutating (no LRU touch, no latch update): the verification
        subsystem uses this to cross-check cached translations against the
        page tables without perturbing replacement state.
        """
        for idx, word in enumerate(self.packed):
            if word & VALID_BIT:
                yield idx, TLBEntryFields(word)
