"""Invalidate-on-write coherence over per-core L1Ds sharing one L2.

The protocol is a two-state (clean/dirty) MSI reduction sized to the
simulator's write-back hierarchy:

* **invalidate on write** — when a core's L1D writes a line, every remote
  L1D copy is dropped, so at most one cache ever holds a dirty line and no
  stale clean copies survive a store;
* **owner tracking** — the bus records which L1D holds each dirty line, so
  a remote fill first forces the owner to push its data down to the shared
  L2 (an *intervention*) and the fill observes current data;
* **write-back** — evictions and interventions move data through the shared
  L2, which is exactly why a corrupted shared-L2 line has multiple
  consumers: every core's miss path reads through it.

Coherence actions are charged zero extra latency: the protocol is modelled
for *data movement* (which faults propagate along), not for bus contention
timing.  All bookkeeping is deterministic, so multi-core golden runs replay
bit-exactly.

The bus maintains the invariant the verifier audits (see
``repro.verify.invariants.check_smp``): if any attached cache holds a line
dirty, no other attached cache holds that line at all, and every clean
attached copy equals the shared level's view.
"""

from __future__ import annotations

from repro.mem.cache import Cache


class CoherenceStats:
    """Bus event counters (deterministic, harvested once per run)."""

    __slots__ = ("invalidations", "interventions", "upgrades")

    def __init__(self) -> None:
        self.invalidations = 0   #: remote copies dropped by a write
        self.interventions = 0   #: dirty owner flushed for a remote fill
        self.upgrades = 0        #: writes that took dirty ownership of a line

    def as_dict(self) -> dict[str, int]:
        return {
            "invalidations": self.invalidations,
            "interventions": self.interventions,
            "upgrades": self.upgrades,
        }

    def publish(self, metrics, prefix: str) -> None:
        # Zero counts are skipped for serial/parallel registry parity, like
        # CacheStats.publish.
        if self.invalidations:
            metrics.counter(prefix + ".invalidations").inc(self.invalidations)
        if self.interventions:
            metrics.counter(prefix + ".interventions").inc(self.interventions)
        if self.upgrades:
            metrics.counter(prefix + ".upgrades").inc(self.upgrades)


class CoherenceBus:
    """Snoop bus connecting per-core L1Ds above one shared level."""

    def __init__(self, shared: Cache) -> None:
        self.shared = shared
        self.caches: list[Cache] = []
        #: line address -> the L1D currently holding that line dirty.
        self.owner: dict[int, Cache] = {}
        self.stats = CoherenceStats()

    def attach(self, cache: Cache) -> None:
        cache.coherence = self
        self.caches.append(cache)

    # -- hooks called from Cache ---------------------------------------------

    def on_write(self, cache: Cache, line_addr: int) -> None:
        """*cache* just dirtied *line_addr*: invalidate remote copies."""
        if self.owner.get(line_addr) is cache:
            # Already the exclusive dirty owner — no remote copy can exist.
            return
        for other in self.caches:
            if other is not cache and other.snoop_invalidate(line_addr):
                self.stats.invalidations += 1
        self.owner[line_addr] = cache
        self.stats.upgrades += 1

    def on_fill(self, cache: Cache, line_addr: int) -> None:
        """*cache* is about to fetch *line_addr* from the shared level."""
        owner = self.owner.get(line_addr)
        if owner is not None and owner is not cache:
            # Intervention: the owner pushes its dirty data to the shared
            # level (keeping a clean copy) so the fill reads current data.
            owner.snoop_flush(line_addr)
            del self.owner[line_addr]
            self.stats.interventions += 1

    def on_evict(self, cache: Cache, line_addr: int) -> None:
        """*cache* wrote back and dropped its dirty copy of *line_addr*."""
        if self.owner.get(line_addr) is cache:
            del self.owner[line_addr]

    # -- coherent observation (verification, commit-time load replay) ---------

    def peek_range(self, cache: Cache, paddr: int, length: int) -> bytes:
        """Bytes a read by *cache* at *paddr* would observe, without mutating.

        A local hit wins (invalidate-on-write keeps it current); otherwise a
        remote dirty owner's data is what an intervention would supply; the
        shared hierarchy answers the rest.
        """
        hit = cache.probe(paddr)
        if hit is not None:
            idx, offset = hit
            return cache.peek_line(idx)[offset:offset + length]
        line_addr = paddr - (paddr % cache.line_size)
        owner = self.owner.get(line_addr)
        if owner is not None and owner is not cache:
            owner_hit = owner.probe(paddr)
            if owner_hit is not None:
                idx, offset = owner_hit
                return owner.peek_line(idx)[offset:offset + length]
        return self.shared.peek_range(paddr, length)
