"""Verification subsystem: differential oracle, invariants, fuzzing.

Three independent lines of defence against platform bugs that would
silently skew fault-effect classification:

* :mod:`repro.verify.reference` — an in-order ISA-level executor (no
  caches, no TLBs, no out-of-order machinery) serving as an independent
  oracle for architectural behaviour;
* :mod:`repro.verify.differential` — lock-step comparison of the
  out-of-order system's committed state against the oracle, plus the
  cached workload-level checks behind campaign ``--verify`` mode;
* :mod:`repro.verify.invariants` — structural checks on the live
  pipeline and memory hierarchy (ROB order, rename conservation,
  clean-line coherence, TLB/page-table consistency, mask accounting);
* :mod:`repro.verify.fuzz` — a seeded random-program generator driving
  the differential harness over adversarial instruction mixes
  (``repro-campaign fuzz``).
"""

from repro.verify.differential import (
    DifferentialReport,
    check_masked_run,
    reference_run,
    run_differential,
    verify_workload,
)
from repro.verify.fuzz import FuzzReport, ProgramFuzzer, run_fuzz
from repro.verify.invariants import (
    InvariantChecker,
    check_mask_applied,
    snapshot_mask_bits,
    state_fingerprint,
)
from repro.verify.reference import CommitRecord, ReferenceExecutor

__all__ = [
    "CommitRecord",
    "DifferentialReport",
    "FuzzReport",
    "InvariantChecker",
    "ProgramFuzzer",
    "ReferenceExecutor",
    "check_mask_applied",
    "check_masked_run",
    "reference_run",
    "run_differential",
    "run_fuzz",
    "snapshot_mask_bits",
    "state_fingerprint",
    "verify_workload",
]
