"""ISA-level in-order reference executor: the independent oracle.

Fault-effect classification is only as trustworthy as the simulator it
runs on, so this module provides a second, much simpler implementation of
the architecture to cross-check the out-of-order system against: one
instruction at a time, in program order, straight against flat physical
memory and the page tables — no caches, no TLBs, no renaming, no
speculation, no pipeline.

The two implementations deliberately share exactly two things:

* the instruction decoder (:func:`repro.isa.encoding.decode`) — the binary
  format is architecture, not microarchitecture, and a divergence there
  would be caught by the assembler round-trip tests instead;
* the pure ALU/branch semantics tables (:mod:`repro.isa.semantics`).

Everything else — address translation, permission checks, memory access,
syscall sequencing, exception priority — is re-implemented here from the
architecture definition, so agreement between the reference and the
600-line out-of-order core is meaningful evidence that the caches, TLBs,
store queue, renaming and precise-exception machinery preserve
architectural behaviour.

The executor yields one :class:`CommitRecord` per retired instruction.
Matching the out-of-order commit stage, a *run-terminating* instruction
(HALT, an exiting SYS, or anything that raises an architectural exception)
never retires and produces no record.
"""

from __future__ import annotations

from repro.errors import VerificationError
from repro.isa.encoding import decode
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.registers import NUM_ARCH_REGS, SP
from repro.isa.semantics import ALU_OPS, BRANCH_CONDS, ArithmeticFault
from repro.kernel.loader import load_program
from repro.kernel.status import CrashReason, RunResult, RunStatus
from repro.kernel.syscalls import SPAWN_FAILED, Kernel, worker_sp
from repro.mem.paging import PAGE_SHIFT, PAGE_SIZE, VPN_BITS, PageTable
from repro.mem.physmem import PhysicalMemory
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig

MASK32 = 0xFFFFFFFF

#: Access kinds for permission checks (kept local on purpose: importing the
#: TLB model here would couple the oracle to the thing it checks).
ACCESS_LOAD = 0
ACCESS_STORE = 1
ACCESS_EXEC = 2

#: Instruction budget for one reference run.  The suite's largest golden
#: runs retire a few hundred thousand instructions; hitting this bound
#: means the program (or the oracle) is broken, not slow.
DEFAULT_MAX_INSTRUCTIONS = 5_000_000


class CommitRecord:
    """Architectural effect of one retired instruction.

    ``arch_dest``/``value`` describe the register writeback (``-1``/``None``
    when the instruction writes no register); the ``store_*`` fields
    describe the memory effect of a retired store (``None`` otherwise).
    """

    __slots__ = (
        "index", "pc", "raw", "arch_dest", "value",
        "store_paddr", "store_size", "store_data",
    )

    def __init__(
        self,
        index: int,
        pc: int,
        raw: int,
        arch_dest: int = -1,
        value: int | None = None,
        store_paddr: int | None = None,
        store_size: int | None = None,
        store_data: int | None = None,
    ) -> None:
        self.index = index
        self.pc = pc
        self.raw = raw
        self.arch_dest = arch_dest
        self.value = value
        self.store_paddr = store_paddr
        self.store_size = store_size
        self.store_data = store_data

    def store_effect(self) -> tuple[int | None, int | None, int | None]:
        return (self.store_paddr, self.store_size, self.store_data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        from repro.isa.disasm import disassemble

        parts = [f"#{self.index} 0x{self.pc:08x}: {disassemble(self.raw)}"]
        if self.arch_dest >= 0:
            parts.append(f"r{self.arch_dest} <- 0x{self.value:08x}")
        if self.store_paddr is not None:
            parts.append(
                f"mem[0x{self.store_paddr:08x}]{{{self.store_size}}} "
                f"<- 0x{self.store_data:08x}"
            )
        return "  ".join(parts)


class ReferenceExecutor:
    """In-order, one-instruction-at-a-time executor of the architected ISA."""

    def __init__(
        self,
        program: Program,
        cfg: CoreConfig = DEFAULT_CONFIG,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> None:
        layout = cfg.layout
        self.cfg = cfg
        self.mem = PhysicalMemory(layout.phys_size)
        self.page_table = PageTable()
        self.kernel = Kernel()
        process = load_program(program, self.mem, self.page_table, layout)
        self.regs = [0] * NUM_ARCH_REGS
        self.regs[SP] = process.initial_sp & MASK32
        self.pc = process.entry_pc
        self.retired = 0
        self.max_instructions = max_instructions
        #: Which core the current instruction runs on (always 0 here; the
        #: SMP subclass swaps it per scheduled core).
        self.core = 0
        #: Set when execution reaches a terminal state.
        self.result: RunResult | None = None

    # -- address translation -------------------------------------------------

    def _translate(self, vaddr: int, access: int) -> tuple[int, CrashReason | None]:
        """Translate straight off the page table.

        Mirrors the architectural contract of ``TLB.translate`` +
        ``TLB._check`` (fault priority: page fault for out-of-range or
        unmapped pages, then kernel-only, write and execute permission) —
        but shares no code with the TLB model it cross-checks.
        """
        vpn = vaddr >> PAGE_SHIFT
        if vpn >= (1 << VPN_BITS):
            return 0, CrashReason.PAGE_FAULT
        entry = self.page_table.lookup(vpn)
        if entry is None:
            return 0, CrashReason.PAGE_FAULT
        ppn, writable, executable, kernel = entry
        if kernel:
            return 0, CrashReason.PROT_FAULT
        if access == ACCESS_STORE and not writable:
            return 0, CrashReason.PROT_FAULT
        if access == ACCESS_EXEC and not executable:
            return 0, CrashReason.PROT_FAULT
        return (ppn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1)), None

    # -- termination ---------------------------------------------------------

    def _finish(
        self,
        status: RunStatus,
        reason: CrashReason | None = None,
        pc: int | None = None,
        detail: str = "",
    ) -> None:
        # ``cycles`` is the retired-instruction count: the oracle has no
        # timing model, and the differential harness never compares cycles.
        self.result = RunResult(
            status=status,
            cycles=self.retired,
            instructions=self.retired,
            output=bytes(self.kernel.output),
            exit_code=self.kernel.exit_code or 0,
            crash_reason=reason,
            crash_pc=pc,
            detail=detail,
        )

    def _crash(self, reason: CrashReason, pc: int, detail: str = "") -> None:
        self._finish(RunStatus.CRASH_PROCESS, reason, pc, detail)

    def _halt(self, pc: int) -> None:
        """The current thread ended (HALT or exiting SYS).

        On the single-core executor that terminates the run; the SMP
        subclass parks worker cores instead.
        """
        self._finish(RunStatus.FINISHED)

    # -- execution -----------------------------------------------------------

    def step(self) -> CommitRecord | None:
        """Execute one instruction.

        Returns its :class:`CommitRecord`, or ``None`` when the instruction
        terminated the run (``self.result`` is then set).
        """
        if self.result is not None:
            return None
        if self.retired >= self.max_instructions:
            raise VerificationError(
                f"reference oracle exceeded its {self.max_instructions:,}-"
                f"instruction budget at pc 0x{self.pc:08x}"
            )

        pc = self.pc
        if pc & 3:
            self._crash(
                CrashReason.MISALIGNED, pc, f"instruction fetch at 0x{pc:08x}"
            )
            return None
        paddr, fault = self._translate(pc, ACCESS_EXEC)
        if fault is not None:
            self._crash(fault, pc, f"instruction fetch at 0x{pc:08x}")
            return None
        raw = int.from_bytes(self.mem.read(paddr, 4), "little")
        inst = decode(raw)
        if inst.illegal:
            self._crash(
                CrashReason.ILLEGAL_INSTRUCTION, pc, f"word 0x{raw:08x}"
            )
            return None

        regs = self.regs
        op = inst.op
        next_pc = (pc + 4) & MASK32
        value: int | None = None
        store: tuple[int, int, int] | None = None

        if op in ALU_OPS:
            a = regs[inst.reads[0]]
            b = (inst.imm & MASK32) if inst.fmt.value == "i" \
                else regs[inst.reads[1]]
            try:
                value = ALU_OPS[op](a, b)
            except ArithmeticFault as exc:
                self._crash(CrashReason.DIV_ZERO, pc, str(exc))
                return None
        elif op is Op.MOVI:
            value = inst.imm & MASK32
        elif op is Op.LUI:
            value = (inst.imm & 0xFFFF) << 16
        elif inst.is_load:
            vaddr = (regs[inst.reads[0]] + inst.imm) & MASK32
            size = inst.mem_size
            if size == 4 and vaddr & 3:
                self._crash(
                    CrashReason.MISALIGNED, pc, f"load at 0x{vaddr:08x}"
                )
                return None
            mem_paddr, fault = self._translate(vaddr, ACCESS_LOAD)
            if fault is not None:
                self._crash(fault, pc, f"load at 0x{vaddr:08x}")
                return None
            value = int.from_bytes(self.mem.read(mem_paddr, size), "little")
        elif inst.is_store:
            vaddr = (regs[inst.reads[1]] + inst.imm) & MASK32
            size = inst.mem_size
            if size == 4 and vaddr & 3:
                self._crash(
                    CrashReason.MISALIGNED, pc, f"store at 0x{vaddr:08x}"
                )
                return None
            mem_paddr, fault = self._translate(vaddr, ACCESS_STORE)
            if fault is not None:
                self._crash(fault, pc, f"store at 0x{vaddr:08x}")
                return None
            if mem_paddr < self.cfg.layout.kernel_reserved:
                self._finish(
                    RunStatus.CRASH_KERNEL, CrashReason.KERNEL_PANIC, pc,
                    f"store to kernel frame at phys 0x{mem_paddr:08x}",
                )
                return None
            data = regs[inst.reads[0]] & (MASK32 if size == 4 else 0xFF)
            self.mem.write(mem_paddr, data.to_bytes(size, "little"))
            store = (mem_paddr, size, data)
        elif inst.is_amo:
            vaddr = regs[inst.reads[0]]
            if vaddr & 3:
                self._crash(
                    CrashReason.MISALIGNED, pc, f"amo at 0x{vaddr:08x}"
                )
                return None
            mem_paddr, fault = self._translate(vaddr, ACCESS_STORE)
            if fault is not None:
                self._crash(fault, pc, f"amo at 0x{vaddr:08x}")
                return None
            if mem_paddr < self.cfg.layout.kernel_reserved:
                self._finish(
                    RunStatus.CRASH_KERNEL, CrashReason.KERNEL_PANIC, pc,
                    f"store to kernel frame at phys 0x{mem_paddr:08x}",
                )
                return None
            old = int.from_bytes(self.mem.read(mem_paddr, 4), "little")
            operand = regs[inst.reads[1]]
            if op is Op.AMOADD:
                new = (old + operand) & MASK32
            else:  # AMOSWAP
                new = operand & MASK32
            self.mem.write(mem_paddr, new.to_bytes(4, "little"))
            value = old
            store = (mem_paddr, 4, new)
        elif inst.is_cond_branch:
            a = regs[inst.reads[0]]
            b = regs[inst.reads[1]] if len(inst.reads) > 1 else 0
            if BRANCH_CONDS[op](a, b):
                next_pc = (pc + 4 * inst.imm) & MASK32
        elif op is Op.B:
            next_pc = (pc + 4 * inst.imm) & MASK32
        elif op is Op.BL:
            value = (pc + 4) & MASK32
            next_pc = (pc + 4 * inst.imm) & MASK32
        elif op in (Op.JR, Op.JALR):
            target = regs[inst.reads[0]]
            if target & 3:
                self._crash(
                    CrashReason.MISALIGNED, pc, f"jump target 0x{target:08x}"
                )
                return None
            if op is Op.JALR:
                value = (pc + 4) & MASK32
            next_pc = target
        elif inst.is_sys:
            ret, exited, crash = self.kernel.do_syscall(
                inst.imm, regs[0], regs[1], regs[2], core=self.core
            )
            if crash is not None:
                self._crash(crash, pc)
                return None
            value = ret & MASK32
            if exited:
                self._halt(pc)
                return None
        elif inst.is_halt:
            self._halt(pc)
            return None
        # NOP: no effect.

        dest = inst.writes
        if dest is not None:
            regs[dest] = value if value is not None else regs[dest]
        record = CommitRecord(
            self.retired, pc, raw,
            arch_dest=dest if dest is not None else -1,
            value=value if dest is not None else None,
            store_paddr=store[0] if store is not None else None,
            store_size=store[1] if store is not None else None,
            store_data=store[2] if store is not None else None,
        )
        self.retired += 1
        self.pc = next_pc
        return record

    def run(self) -> RunResult:
        """Execute to termination; returns the terminal :class:`RunResult`."""
        while self.result is None:
            self.step()
        return self.result

    def commit_stream(self):
        """Lazily yield one :class:`CommitRecord` per retired instruction."""
        while self.result is None:
            record = self.step()
            if record is not None:
                yield record


class _CoreContext:
    """One oracle core's architectural thread state."""

    __slots__ = ("regs", "pc", "running")

    def __init__(self) -> None:
        self.regs = [0] * NUM_ARCH_REGS
        self.pc = 0
        self.running = False


class SMPReferenceExecutor(ReferenceExecutor):
    """Multi-core extension of the ISA-level oracle.

    Shares one flat memory, page table and kernel across N per-core
    architectural contexts (registers + pc + running flag) and mirrors the
    machine's thread model exactly: SPAWN starts the first idle worker core
    with the same carved-out stack slice, HALT (or an exiting SYS) on a
    worker parks that core, and any non-FINISHED terminal state on any core
    ends the program tagged with the core id.

    Two driving modes:

    * **externally scheduled** (``step_core``): the differential harness
      replays the machine's observed per-core commit order, making the
      comparison exact for *any* program — the commit points are the
      sequential-consistency serialization the SMP system enforces;
    * **self-scheduled** (``run``): a deterministic round-robin, one
      instruction per running core per round — the terminal result matches
      the machine's for race-free (properly join-synchronized) programs.
    """

    def __init__(
        self,
        program: Program,
        cfg: CoreConfig = DEFAULT_CONFIG,
        ncores: int = 2,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> None:
        super().__init__(program, cfg, max_instructions)
        self.ncores = ncores
        self.kernel.smp = self  # SPAWN/NCORES route back here
        self.contexts = [_CoreContext() for _ in range(ncores)]
        core0 = self.contexts[0]
        core0.regs = self.regs
        core0.pc = self.pc
        core0.running = True
        self._parked = False

    # -- thread model (mirrors SMPSystem) ------------------------------------

    def start_core(self, entry: int, arg: int) -> int:
        for k in range(1, self.ncores):
            ctx = self.contexts[k]
            if ctx.running:
                continue
            regs = [0] * NUM_ARCH_REGS
            regs[SP] = worker_sp(self.cfg.layout, k, self.ncores) & MASK32
            regs[0] = arg & MASK32
            ctx.regs = regs
            ctx.pc = entry & MASK32
            ctx.running = True
            return k
        return SPAWN_FAILED

    def _halt(self, pc: int) -> None:
        if self.core == 0:
            self._finish(RunStatus.FINISHED)
        else:
            self._parked = True

    def _finish(self, status, reason=None, pc=None, detail="") -> None:
        if self.core and status is not RunStatus.FINISHED:
            detail = f"core {self.core}: {detail}" if detail \
                else f"core {self.core}"
        super()._finish(status, reason, pc, detail)

    # -- scheduling ----------------------------------------------------------

    def step_core(self, k: int) -> CommitRecord | None:
        """Execute one instruction on core *k* (external scheduling mode).

        Returns its commit record, or ``None`` when the instruction
        terminated the program (``self.result`` set) or parked the worker.
        """
        ctx = self.contexts[k]
        if self.result is not None or not ctx.running:
            return None
        self.core = k
        self.regs = ctx.regs
        self.pc = ctx.pc
        self._parked = False
        record = self.step()
        ctx.regs = self.regs
        ctx.pc = self.pc
        if self._parked:
            ctx.running = False
        return record

    def run(self) -> RunResult:
        """Self-scheduled round-robin run to termination."""
        while self.result is None:
            progressed = False
            for k in range(self.ncores):
                if self.result is not None:
                    break
                if self.contexts[k].running:
                    self.step_core(k)
                    progressed = True
            if not progressed:
                raise VerificationError(
                    "smp oracle: every core parked but core 0 never "
                    "reached a terminal state"
                )
        return self.result
