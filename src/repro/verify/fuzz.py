"""Seeded random-program fuzzing over the differential oracle.

Hand-written workloads exercise the pipeline the way a careful programmer
would; fuzzed programs exercise it the way an adversary would — dense
dependency chains, branchy control flow, byte/word aliasing in a shared
buffer, guarded divisions.  Every generated program is run through
:func:`repro.verify.differential.run_differential`, so any disagreement
between the out-of-order core and the ISA-level oracle on *any* reachable
behaviour surfaces as a first-divergence report with the offending
program's full source attached for replay.

Generation is deterministic per ``(seed, index, length)``: program *i* of
a fuzz run is ``ProgramFuzzer(f"{seed}:{i}", length)``, so a divergence
report names everything needed to reproduce it in isolation.

Termination by construction: the only backward branches are counted loops
over a dedicated counter register that no generated body instruction may
write, and every program ends by printing a fold of its working registers
(so computed values are architecturally live) and exiting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import VerificationError
from repro.isa.assembler import assemble
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.verify.differential import run_differential, run_smp_differential

#: Working registers the fuzzer computes in.  r0 is the syscall argument,
#: r1 the data-buffer base, r2 the loop counter; r12+ are FP/SP/LR.
_WORK_REGS = tuple(range(3, 12))

_ALU_R = (
    "add", "sub", "mul", "and", "orr", "eor",
    "lsl", "lsr", "asr", "slt", "sltu",
)
_COND_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")

#: Bytes reserved in the shared load/store buffer.
_BUF_SIZE = 256


class ProgramFuzzer:
    """Generates one random-but-terminating assembly program."""

    def __init__(self, seed, length: int = 40) -> None:
        self.seed = seed
        self.length = length
        self._rng = random.Random(f"repro-fuzz:{seed}")
        self._labels = 0

    def _label(self) -> str:
        self._labels += 1
        return f"L{self._labels}"

    def _reg(self) -> str:
        return f"r{self._rng.choice(_WORK_REGS)}"

    # -- segment emitters (each returns a list of source lines) --------------

    def _seg_alu_r(self) -> list[str]:
        op = self._rng.choice(_ALU_R)
        return [f"        {op} {self._reg()}, {self._reg()}, {self._reg()}"]

    def _seg_alu_i(self) -> list[str]:
        rng = self._rng
        kind = rng.randrange(3)
        if kind == 0:
            op = rng.choice(("addi", "slti"))
            imm = rng.randint(-32768, 32767)
        elif kind == 1:
            op = rng.choice(("andi", "orri", "eori"))
            imm = rng.randint(0, 65535)
        else:
            op = rng.choice(("lsli", "lsri", "asri"))
            imm = rng.randint(0, 31)
        return [f"        {op} {self._reg()}, {self._reg()}, #{imm}"]

    def _seg_divmod(self) -> list[str]:
        rd, ra, rb = self._reg(), self._reg(), self._reg()
        op = self._rng.choice(("div", "mod"))
        # orri #1 makes the divisor provably non-zero.
        return [
            f"        orri {rb}, {rb}, #1",
            f"        {op} {rd}, {ra}, {rb}",
        ]

    def _seg_word_mem(self) -> list[str]:
        rng = self._rng
        off = 4 * rng.randrange(_BUF_SIZE // 4)
        return [
            f"        str {self._reg()}, [r1, #{off}]",
            f"        ldr {self._reg()}, [r1, #{off}]",
        ]

    def _seg_byte_mem(self) -> list[str]:
        rng = self._rng
        off = rng.randrange(_BUF_SIZE)
        return [
            f"        strb {self._reg()}, [r1, #{off}]",
            f"        ldrb {self._reg()}, [r1, #{rng.randrange(_BUF_SIZE)}]",
        ]

    def _seg_loop(self) -> list[str]:
        rng = self._rng
        label = self._label()
        lines = [f"        movi r2, #{rng.randint(2, 6)}", f"{label}:"]
        for _ in range(rng.randint(1, 2)):
            lines.extend(
                self._seg_alu_r() if rng.random() < 0.5 else self._seg_alu_i()
            )
        lines.append("        addi r2, r2, #-1")
        lines.append(f"        bnez r2, {label}")
        return lines

    def _seg_skip(self) -> list[str]:
        rng = self._rng
        label = self._label()
        if rng.random() < 0.3:
            op = rng.choice(("beqz", "bnez"))
            branch = f"        {op} {self._reg()}, {label}"
        else:
            op = rng.choice(_COND_BRANCHES)
            branch = f"        {op} {self._reg()}, {self._reg()}, {label}"
        lines = [branch]
        for _ in range(rng.randint(1, 2)):
            lines.extend(
                self._seg_alu_r() if rng.random() < 0.5 else self._seg_alu_i()
            )
        lines.append(f"{label}:")
        return lines

    def _seg_putw(self) -> list[str]:
        return [
            f"        mov r0, {self._reg()}",
            "        sys #1",
        ]

    _SEGMENTS = (
        (_seg_alu_r, 5),
        (_seg_alu_i, 5),
        (_seg_divmod, 2),
        (_seg_word_mem, 3),
        (_seg_byte_mem, 2),
        (_seg_loop, 2),
        (_seg_skip, 2),
        (_seg_putw, 1),
    )

    def source(self) -> str:
        """Emit the program's assembly source."""
        rng = self._rng
        lines = [
            "        .text",
            "_start:",
            "        la r1, buf",
        ]
        for reg in _WORK_REGS:
            lines.append(f"        movi r{reg}, #{rng.randint(-32768, 32767)}")
        emitters = [seg for seg, weight in self._SEGMENTS]
        weights = [weight for seg, weight in self._SEGMENTS]
        emitted = 0
        while emitted < self.length:
            seg = rng.choices(emitters, weights)[0](self)
            lines.extend(seg)
            emitted += sum(1 for line in seg if not line.endswith(":"))
        # Epilogue: fold every working register into the output so dead-
        # code elimination by accident (e.g. a broken writeback) is visible.
        lines.append(f"        mov r0, r{_WORK_REGS[0]}")
        for reg in _WORK_REGS[1:]:
            lines.append(f"        eor r0, r0, r{reg}")
        lines.append("        sys #1")
        lines.append("        movi r0, #0")
        lines.append("        sys #0")
        lines.append("        .data")
        lines.append(f"buf:    .space {_BUF_SIZE}")
        return "\n".join(lines) + "\n"

    def program(self):
        return assemble(self.source())


class SMPProgramFuzzer(ProgramFuzzer):
    """Generates one random multithreaded program for the SMP differential.

    Core 0 spawns 1..(cores-1) workers, interleaves its own fuzzed
    segments with their execution, spin-joins on per-worker release
    flags, then folds its registers *and* the shared counters into the
    output.  Workers run fuzzed straight-line/loop bodies over disjoint
    slices of the shared buffer and contribute to one contended counter
    word via ``amoadd`` — so every program exercises invalidation,
    intervention and commit-time load replay under a random interleaving
    of cache traffic, while the final output stays a deterministic
    function of the program (amoadd is commutative and joins are real).

    Workers never write program output: core 0's program order is the
    only output order, which keeps the byte stream interleaving-free.
    """

    def __init__(self, seed, length: int = 40, cores: int = 2) -> None:
        super().__init__(seed, length)
        if cores < 2:
            raise ValueError(f"SMP fuzzing needs >= 2 cores, got {cores}")
        self.cores = cores

    #: Worker-body segments: no output, no syscalls.
    _WORKER_SEGMENTS = (
        (ProgramFuzzer._seg_alu_r, 5),
        (ProgramFuzzer._seg_alu_i, 5),
        (ProgramFuzzer._seg_divmod, 2),
        (ProgramFuzzer._seg_word_mem, 3),
        (ProgramFuzzer._seg_byte_mem, 2),
        (ProgramFuzzer._seg_loop, 2),
        (ProgramFuzzer._seg_skip, 2),
    )

    def _emit_segments(self, lines, table, count) -> None:
        rng = self._rng
        emitters = [seg for seg, weight in table]
        weights = [weight for seg, weight in table]
        emitted = 0
        while emitted < count:
            seg = rng.choices(emitters, weights)[0](self)
            lines.extend(seg)
            emitted += sum(1 for line in seg if not line.endswith(":"))

    def source(self) -> str:
        rng = self._rng
        workers = rng.randint(1, min(3, self.cores - 1))
        lines = ["        .text", "_start:", "        la r1, buf"]
        for reg in _WORK_REGS:
            lines.append(f"        movi r{reg}, #{rng.randint(-32768, 32767)}")
        self._emit_segments(lines, self._SEGMENTS, self.length // 3)
        # Spawn phase.  SYS #4 consumes r0/r1, so the buffer base is
        # re-established afterwards; with workers <= cores-1 every spawn
        # lands on an idle core by construction.
        for w in range(1, workers + 1):
            lines.append(f"        la r0, worker_{w}")
            lines.append(f"        movi r1, #{rng.randint(-32768, 32767)}")
            lines.append("        sys #4")
        lines.append("        la r1, buf")
        # Core 0 keeps computing while the workers run.
        self._emit_segments(lines, self._SEGMENTS, self.length)
        # Join phase: one spin loop per worker release flag.
        for w in range(1, workers + 1):
            lines.append(f"join_{w}:")
            lines.append("        la r2, flags")
            lines.append(f"        ldr r2, [r2, #{4 * (w - 1)}]")
            lines.append(f"        beqz r2, join_{w}")
        # Fold the contended counter into the visible result.
        lines.append("        la r2, counters")
        lines.append("        ldr r2, [r2, #0]")
        lines.append(f"        eor r{_WORK_REGS[0]}, r{_WORK_REGS[0]}, r2")
        lines.append(f"        mov r0, r{_WORK_REGS[0]}")
        for reg in _WORK_REGS[1:]:
            lines.append(f"        eor r0, r0, r{reg}")
        lines.append("        sys #1")
        lines.append("        movi r0, #0")
        lines.append("        sys #0")
        # Worker bodies: private buffer slice, fuzzed body, amoadd
        # contribution to the shared counter, amoadd release, halt.
        for w in range(1, workers + 1):
            lines.append(f"worker_{w}:")
            lines.append("        la r1, buf")
            lines.append(f"        addi r1, r1, #{w * _BUF_SIZE}")
            for reg in _WORK_REGS:
                lines.append(
                    f"        movi r{reg}, #{rng.randint(-32768, 32767)}"
                )
                if rng.random() < 0.4:
                    lines.append(f"        eor r{reg}, r{reg}, r0")
            self._emit_segments(
                lines, self._WORKER_SEGMENTS, self.length // 2
            )
            lines.append("        la r2, counters")
            lines.append(f"        amoadd r3, r2, r{rng.choice(_WORK_REGS)}")
            lines.append("        la r2, flags")
            lines.append(f"        addi r2, r2, #{4 * (w - 1)}")
            lines.append("        movi r3, #1")
            lines.append("        amoadd r3, r2, r3")
            lines.append("        halt")
        lines.append("        .data")
        lines.append(f"buf:      .space {_BUF_SIZE * self.cores}")
        lines.append("counters: .word 0, 0, 0, 0")
        lines.append("flags:    .word 0, 0, 0, 0")
        return "\n".join(lines) + "\n"


@dataclass
class FuzzDivergence:
    """One fuzz case the two implementations disagreed on."""

    index: int        #: program number within the run
    seed: str         #: exact ProgramFuzzer seed to replay it
    message: str      #: the DivergenceError / InvariantViolation text
    source: str       #: full assembly source of the failing program


@dataclass
class FuzzReport:
    """Outcome of a differential fuzz run."""

    programs: int = 0
    instructions: int = 0   #: total retired instructions compared
    divergences: list[FuzzDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def run_fuzz(
    programs: int,
    seed=0,
    length: int = 40,
    core_cfg: CoreConfig | None = None,
    progress=None,
) -> FuzzReport:
    """Differentially fuzz *programs* random programs.

    Each case runs with per-commit invariant checks and a final
    cache/TLB audit in addition to the lock-step comparison.  Returns a
    report rather than raising, so one divergent case does not hide the
    rest of the batch.
    """
    if core_cfg is None:
        from dataclasses import replace

        core_cfg = replace(DEFAULT_CONFIG, check_invariants=True)
    report = FuzzReport()
    for index in range(programs):
        case_seed = f"{seed}:{index}"
        fuzzer = ProgramFuzzer(case_seed, length=length)
        source = fuzzer.source()
        try:
            outcome = run_differential(
                assemble(source), core_cfg, audit=True
            )
            report.instructions += outcome.committed
        except VerificationError as exc:
            report.divergences.append(
                FuzzDivergence(index, case_seed, str(exc), source)
            )
        report.programs += 1
        if progress is not None:
            progress(index + 1, programs, report)
    return report


def run_smp_fuzz(
    programs: int,
    seed=0,
    length: int = 40,
    cores: int = 2,
    core_cfg: CoreConfig | None = None,
    progress=None,
) -> FuzzReport:
    """Differentially fuzz multithreaded programs on an N-core machine.

    Each case runs in lock step against the multi-core oracle (driven by
    the machine's observed commit order, so it is exact for any
    interleaving) with per-commit invariant checks and a final coherence
    audit of every cache and the bus owner map.
    """
    if core_cfg is None:
        from dataclasses import replace

        core_cfg = replace(DEFAULT_CONFIG, check_invariants=True)
    report = FuzzReport()
    for index in range(programs):
        case_seed = f"{seed}:{index}"
        fuzzer = SMPProgramFuzzer(case_seed, length=length, cores=cores)
        source = fuzzer.source()
        try:
            outcome = run_smp_differential(
                assemble(source), core_cfg, cores, audit=True
            )
            report.instructions += outcome.committed
        except VerificationError as exc:
            report.divergences.append(
                FuzzDivergence(index, case_seed, str(exc), source)
            )
        report.programs += 1
        if progress is not None:
            progress(index + 1, programs, report)
    return report
