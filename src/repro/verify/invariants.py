"""Microarchitectural invariant checks for the out-of-order system.

These are properties the pipeline must maintain *by construction* — not
architectural behaviour (the differential oracle covers that) but the
structural bookkeeping underneath it.  Each check names a class of bug
that would silently skew fault-effect classification if it slipped in:

* **ROB program order** — retirement must follow fetch order; a reordered
  or squashed-but-present ROB entry means precise exceptions no longer
  point at the right instruction, misclassifying Crash PCs.
* **Rename conservation** — the free list, the rename map and the
  previous-mapping fields of in-flight destinations must partition the
  physical register file.  A leaked or doubly-allocated register shows up
  as a hang (rename stall forever → Timeout) or as silent cross-talk
  between unrelated architectural registers (→ phantom SDC).
* **Clean-line coherence** — a valid *clean* cache line must equal what a
  non-mutating read-through of the levels below would observe.  A stale
  clean line converts real memory state into phantom "masked" outcomes.
* **TLB/page-table consistency** — every valid TLB entry must match the
  page tables exactly (fault-free, the tables are immutable after load
  and entries are only created by refill).  A drifting entry silently
  redirects accesses, the very failure mode injections are supposed to
  *cause*, not suffer.
* **Mask application accounting** — after an injection, each masked bit
  must have actually toggled and no other accounting drifted; checked by
  the campaign layer via :func:`snapshot_mask_bits` /
  :func:`check_mask_applied`.

All violations raise :class:`repro.errors.InvariantViolation`, which is
*not* a :class:`~repro.errors.SimAssertion` — a failed invariant is a
platform bug and must never be classified as a fault outcome.

The per-commit core checks are cheap (set algebra over a few hundred
integers) and safe to run even on fault-injected state: injections target
SRAM payload bits (cache data, TLB words, register values), never the
rename bookkeeping itself.  The cache/TLB audits read through the memory
hierarchy and are only meaningful on fault-free state, so they run at
verification boundaries (end of a differential run), not per cycle.
"""

from __future__ import annotations

import hashlib

from repro.errors import InvariantViolation


class InvariantChecker:
    """Pluggable invariant checks over a live :class:`~repro.cpu.system.System`.

    An instance is attached to ``core.invariant_checker`` when
    ``CoreConfig.check_invariants`` is set; the core then calls
    :meth:`check_core` once per simulation step, after the commit stage.
    Instances hold no state, so they survive ``deepcopy`` checkpointing.
    """

    # -- per-step core checks ------------------------------------------------

    def check_core(self, core) -> None:
        cycle = core.cycle
        phys_regs = core.cfg.phys_regs
        all_regs = range(phys_regs)

        rename = list(core.rename_map)
        if len(set(rename)) != len(rename):
            raise InvariantViolation(
                f"cycle {cycle}: rename map aliases a physical register: "
                f"{rename}"
            )
        for phys in rename:
            if not 0 <= phys < phys_regs:
                raise InvariantViolation(
                    f"cycle {cycle}: rename map points outside the register "
                    f"file: {phys} (phys_regs={phys_regs})"
                )

        free = list(core.free_list)
        free_set = set(free)
        if len(free_set) != len(free):
            raise InvariantViolation(
                f"cycle {cycle}: duplicate entries in the free list: {free}"
            )

        prev_seq = -1
        pending = set()
        for uop in core.rob:
            if uop.squashed:
                raise InvariantViolation(
                    f"cycle {cycle}: squashed uop still in the ROB: {uop!r}"
                )
            if uop.seq <= prev_seq:
                raise InvariantViolation(
                    f"cycle {cycle}: ROB out of program order "
                    f"(seq {uop.seq} after {prev_seq})"
                )
            prev_seq = uop.seq
            if uop.dest >= 0:
                pending.add(uop.old_dest)

        # Conservation: free list ⊎ rename map ⊎ {in-flight old mappings}
        # must partition the physical register file.
        rename_set = set(rename)
        for name_a, set_a, name_b, set_b in (
            ("free list", free_set, "rename map", rename_set),
            ("free list", free_set, "in-flight old_dest", pending),
            ("rename map", rename_set, "in-flight old_dest", pending),
        ):
            overlap = set_a & set_b
            if overlap:
                raise InvariantViolation(
                    f"cycle {cycle}: physical registers {sorted(overlap)} "
                    f"owned by both the {name_a} and the {name_b}"
                )
        union = free_set | rename_set | pending
        if union != set(all_regs):
            missing = sorted(set(all_regs) - union)
            extra = sorted(union - set(all_regs))
            raise InvariantViolation(
                f"cycle {cycle}: physical register conservation broken "
                f"(leaked: {missing}, out of range: {extra})"
            )

    # -- whole-system audits (fault-free state only) -------------------------

    def check_system(self, system) -> None:
        """Audit the memory hierarchy of a (fault-free) system.

        Meaningful only on uninjected state: a fault-injected dirty or
        clean line legitimately differs from the backing memory — that is
        the effect being studied.
        """
        for cache in (system.l1d, system.l1i, system.l2):
            self._audit_cache(cache, system.cycle)
        for tlb in (system.itlb, system.dtlb):
            self._audit_tlb(tlb, system.page_table, system.cycle)

    @staticmethod
    def _audit_cache(cache, cycle: int) -> None:
        for set_idx in range(cache.num_sets):
            order = cache.lru_order(set_idx)
            if sorted(order) != list(range(cache.assoc)):
                raise InvariantViolation(
                    f"cycle {cycle}: {cache.name} set {set_idx} LRU stack "
                    f"is not a permutation of its ways: {order}"
                )
        seen_addrs: dict[int, int] = {}
        for idx, line_addr, dirty in cache.audit_lines():
            prior = seen_addrs.get(line_addr)
            if prior is not None:
                raise InvariantViolation(
                    f"cycle {cycle}: {cache.name} caches physical line "
                    f"0x{line_addr:08x} twice (indices {prior} and {idx})"
                )
            seen_addrs[line_addr] = idx
            if not dirty:
                local = cache.peek_line(idx)
                # peek_range on this cache would hit its own line; audit
                # against what the hierarchy *below* observes instead.
                nxt = cache.next_level
                if hasattr(nxt, "peek_range"):
                    below = nxt.peek_range(line_addr, cache.line_size)
                else:
                    below = nxt.read(line_addr, cache.line_size)
                if local != below:
                    raise InvariantViolation(
                        f"cycle {cycle}: {cache.name} holds a clean line at "
                        f"0x{line_addr:08x} that differs from the level "
                        f"below (line index {idx})"
                    )

    def check_smp(self, smp) -> None:
        """Audit an SMP machine: per-core structures plus coherence state.

        Extends :meth:`check_system` across every core and adds the
        coherence invariants of the clean/dirty protocol:

        * **Single-writer** — at most one L1D holds a given line dirty,
          and when one does, no other L1D holds any copy of that line.
        * **Clean agreement** — a clean L1D line equals what the shared
          hierarchy below observes (inherited from :meth:`_audit_cache`).
        * **Owner-map consistency** — the bus's dirty-owner map points at
          exactly the caches that actually hold the line dirty.

        Like :meth:`check_system`, meaningful only on fault-free state.
        """
        cycle = smp.cycle
        self._audit_cache(smp.l2, cycle)
        dirty_holders: dict[int, list] = {}
        holders: dict[int, list] = {}
        for bundle in smp.cores:
            self._audit_cache(bundle.l1d, cycle)
            self._audit_cache(bundle.l1i, cycle)
            self._audit_tlb(bundle.itlb, smp.page_table, cycle)
            self._audit_tlb(bundle.dtlb, smp.page_table, cycle)
            for _idx, line_addr, dirty in bundle.l1d.audit_lines():
                holders.setdefault(line_addr, []).append(bundle.l1d)
                if dirty:
                    dirty_holders.setdefault(line_addr, []).append(bundle.l1d)
        for line_addr, caches in dirty_holders.items():
            if len(caches) > 1:
                names = [c.name for c in caches]
                raise InvariantViolation(
                    f"cycle {cycle}: line 0x{line_addr:08x} dirty in "
                    f"multiple L1Ds: {names}"
                )
            copies = holders[line_addr]
            if len(copies) > 1:
                names = [c.name for c in copies]
                raise InvariantViolation(
                    f"cycle {cycle}: line 0x{line_addr:08x} is dirty in "
                    f"{caches[0].name} but also cached by {names}"
                )
        for line_addr, owner in smp.bus.owner.items():
            actual = dirty_holders.get(line_addr, [])
            if actual != [owner]:
                names = [c.name for c in actual]
                raise InvariantViolation(
                    f"cycle {cycle}: bus owner map says {owner.name} holds "
                    f"line 0x{line_addr:08x} dirty, but the dirty holders "
                    f"are {names}"
                )
        for line_addr, caches in dirty_holders.items():
            if smp.bus.owner.get(line_addr) is not caches[0]:
                raise InvariantViolation(
                    f"cycle {cycle}: {caches[0].name} holds line "
                    f"0x{line_addr:08x} dirty but is not the bus's "
                    f"recorded owner"
                )

    @staticmethod
    def _audit_tlb(tlb, page_table, cycle: int) -> None:
        for idx, fields in tlb.audit_entries():
            entry = page_table.lookup(fields.vpn)
            if entry is None:
                raise InvariantViolation(
                    f"cycle {cycle}: {tlb.name} entry {idx} caches vpn "
                    f"0x{fields.vpn:x}, which the page table does not map"
                )
            ppn, writable, executable, kernel = entry
            if (fields.ppn, fields.writable, fields.executable,
                    fields.kernel) != (ppn, writable, executable, kernel):
                raise InvariantViolation(
                    f"cycle {cycle}: {tlb.name} entry {idx} for vpn "
                    f"0x{fields.vpn:x} disagrees with the page table: "
                    f"cached (ppn=0x{fields.ppn:x}, w={fields.writable}, "
                    f"x={fields.executable}, k={fields.kernel}) vs walked "
                    f"(ppn=0x{ppn:x}, w={writable}, x={executable}, "
                    f"k={kernel})"
                )


# -- injection-mask accounting ------------------------------------------------

def snapshot_mask_bits(target, mask) -> list[int]:
    """Record the pre-injection value of every bit a mask will flip."""
    return [target.read_bit(row, col) for row, col in mask.bits]


def check_mask_applied(target, mask, before: list[int]) -> None:
    """Assert every masked bit toggled — SRAM bit-count conservation.

    An injector that silently drops a flip (out-of-bounds clamp, aliased
    coordinates) undercounts the injected cardinality and inflates the
    Masked fraction; this catches it at the injection site.
    """
    for (row, col), old in zip(mask.bits, before):
        new = target.read_bit(row, col)
        if new == old:
            raise InvariantViolation(
                f"injection into {mask.component} did not flip bit "
                f"(row={row}, col={col}): still {old} "
                f"(mask cardinality {mask.cardinality})"
            )


# -- state fingerprinting ------------------------------------------------------

def state_fingerprint(system) -> str:
    """SHA-256 over a system's complete simulated state.

    Covers the core (registers, rename state, in-flight uops, cycle/seq
    counters), every cache's tag/valid/dirty/data/LRU arrays, both TLBs'
    packed entries, kernel output/exit state and all of physical memory.
    Two systems with equal fingerprints are bit-identical for every
    purpose the campaign cares about; the determinism and checkpoint
    regression tests compare these across process and restore boundaries.
    """
    h = hashlib.sha256()

    def put(tag: str, value) -> None:
        h.update(tag.encode())
        h.update(repr(value).encode())

    core = system.core
    put("cycle", core.cycle)
    put("seq", core.seq)
    put("prf", core.prf.values)
    put("rename", core.rename_map)
    put("free", list(core.free_list))
    put("rob", [
        (u.seq, u.pc, u.state, u.dest, u.old_dest, u.arch_dest)
        for u in core.rob
    ])

    for cache in (system.l1d, system.l1i, system.l2):
        put("cache", cache.name)
        put("tags", cache._tags)
        put("valid", cache._valid)
        put("dirty", cache._dirty)
        put("lru", cache._lru)
        for line in cache._data:
            h.update(bytes(line))

    for tlb in (system.itlb, system.dtlb):
        put("tlb", tlb.name)
        put("packed", tlb.packed)

    put("kout", bytes(system.kernel.output))
    put("kexit", system.kernel.exit_code)
    h.update(bytes(system.mem.data))
    return h.hexdigest()


def smp_state_fingerprint(smp) -> str:
    """SHA-256 over an SMP machine's complete simulated state.

    The multi-core analogue of :func:`state_fingerprint`: every core's
    pipeline/caches/TLBs (keyed by core id), the shared L2, the coherence
    owner map, the run/park state of each core, kernel state and physical
    memory.  Equal fingerprints mean bit-identical machines; the
    multi-core golden-replay determinism tests compare these across
    independent runs of the same program.
    """
    h = hashlib.sha256()

    def put(tag: str, value) -> None:
        h.update(tag.encode())
        h.update(repr(value).encode())

    put("ncores", smp.ncores)
    put("gcycle", smp.cycle)
    put("running", smp.running)
    for bundle in smp.cores:
        core = bundle.pipe
        put("core", bundle.core_id)
        put("cycle", core.cycle)
        put("seq", core.seq)
        put("prf", core.prf.values)
        put("rename", core.rename_map)
        put("free", list(core.free_list))
        put("rob", [
            (u.seq, u.pc, u.state, u.dest, u.old_dest, u.arch_dest)
            for u in core.rob
        ])
        for cache in (bundle.l1d, bundle.l1i):
            put("cache", cache.name)
            put("tags", cache._tags)
            put("valid", cache._valid)
            put("dirty", cache._dirty)
            put("lru", cache._lru)
            for line in cache._data:
                h.update(bytes(line))
        for tlb in (bundle.itlb, bundle.dtlb):
            put("tlb", tlb.name)
            put("packed", tlb.packed)

    put("cache", smp.l2.name)
    put("tags", smp.l2._tags)
    put("valid", smp.l2._valid)
    put("dirty", smp.l2._dirty)
    put("lru", smp.l2._lru)
    for line in smp.l2._data:
        h.update(bytes(line))
    put("owner", sorted(
        (addr, cache.name) for addr, cache in smp.bus.owner.items()
    ))
    put("kout", bytes(smp.kernel.output))
    put("kexit", smp.kernel.exit_code)
    h.update(bytes(smp.mem.data))
    return h.hexdigest()
